"""Quickstart: the document store, denormalization, and one analytical query.

This example walks through the reproduction's core workflow on a very small
dataset:

1. generate a TPC-DS-style dataset and load it with the migration algorithm;
2. inspect the normalized collections (the referenced data model);
3. denormalize the ``store_sales`` fact collection (the embedded data model);
4. run Query 7 against both data models and compare answers and runtimes;
5. serve the same database over a real socket and query it remotely.

Run it with::

    python examples/quickstart.py
"""

from __future__ import annotations

import time

from repro.core import (
    denormalize_store_sales,
    migrate_generated_dataset,
    render_table,
    run_denormalized_query,
    run_normalized_query,
    tiny_profile,
)
from repro.documentstore import DocumentStoreClient
from repro.server import DocumentStoreServer, RemoteClient
from repro.tpcds import TPCDSGenerator, query_definition
from repro.tpcds.schema import QUERY_TABLES


def main() -> None:
    # ------------------------------------------------------------------ load
    profile = tiny_profile(1.0 / 5_000.0)
    generator = TPCDSGenerator(profile, seed=20151109)
    client = DocumentStoreClient()
    database = client[profile.database_name]

    print("Loading the TPC-DS tables used by the evaluation queries...")
    report = migrate_generated_dataset(database, generator, tables=QUERY_TABLES)
    print(
        render_table(
            ["table", "documents", "seconds"],
            [
                [result.table, result.documents_inserted, f"{result.seconds:.3f}"]
                for result in report.results.values()
            ],
            title="Data load (migration algorithm, Figure 4.3)",
        )
    )

    # ------------------------------------------------------- normalized model
    sale = database["store_sales"].find_one({})
    print("\nA normalized store_sales document (foreign keys are scalars):")
    print({k: sale[k] for k in ("ss_item_sk", "ss_store_sk", "ss_quantity", "ss_sales_price")})

    # -------------------------------------------------- the lazy read protocol
    # find() returns a lazy cursor: chained options only refine its FindSpec,
    # and the complete spec reaches the executor when iteration starts — so
    # the engine can pick a bounded top-k (or an index-order scan) instead of
    # sorting everything and slicing afterwards.
    sales = database["store_sales"]
    cursor = (
        sales.find({"ss_quantity": {"$gte": 50}}, {"ss_sales_price": 1, "ss_quantity": 1})
        .sort("ss_sales_price", -1)
        .limit(3)
    )
    plan = cursor.explain()["queryPlanner"]
    print("\nTop-3 sales by price (one FindSpec, executed lazily):")
    print(f"  access path: {plan['winningPlan']['stage']}, sort mode: {plan['sortMode']}")
    for row in cursor:
        print(" ", row)
    sales.create_index("ss_sales_price")
    plan = (
        sales.find({}).sort("ss_sales_price", -1).limit(3).explain()["queryPlanner"]
    )
    print(
        "  after create_index('ss_sales_price'): "
        f"sort mode {plan['sortMode']} ({plan['winningPlan'].get('direction')} index scan)"
    )

    # ----------------------------------------------------- denormalized model
    print("\nDenormalizing store_sales (EmbedDocuments, Figures 4.6/4.7)...")
    denormalization = denormalize_store_sales(database)
    print(
        f"embedded {len(denormalization.embeddings)} dimension collections "
        f"into {denormalization.documents} documents "
        f"in {denormalization.seconds:.2f}s"
    )
    wide = database["store_sales_denormalized"].find_one({})
    print("The same sale after denormalization (the item is now embedded):")
    print({"ss_item_sk": wide["ss_item_sk"], "ss_quantity": wide["ss_quantity"]})

    # ------------------------------------------------------------- run Query 7
    print("\n" + query_definition(7).description)
    started = time.perf_counter()
    denormalized_rows = run_denormalized_query(database, 7)
    denormalized_seconds = time.perf_counter() - started

    started = time.perf_counter()
    normalized_report = run_normalized_query(database, 7)
    normalized_seconds = time.perf_counter() - started

    print(
        render_table(
            ["data model", "seconds", "result rows"],
            [
                ["denormalized (single pipeline)", f"{denormalized_seconds:.4f}", len(denormalized_rows)],
                ["normalized (client-side joins)", f"{normalized_seconds:.4f}", normalized_report.result_documents],
            ],
            title="Query 7 — embedded vs referenced data model",
        )
    )
    print("\nFirst result rows:")
    for row in denormalized_rows[:3]:
        print(" ", {k: round(v, 2) if isinstance(v, float) else v for k, v in row.items()})

    # ----------------------------------------------------------------- serving
    # The same database can be served over a real TCP socket: the server
    # speaks a length-prefixed binary wire protocol, and RemoteClient
    # re-speaks the Collection API — the lazy FindSpec crosses the wire whole,
    # so sort+limit pushdown and batched getMore cursors survive serving.
    print("\nServing the loaded database over a socket (repro.server)...")
    with DocumentStoreServer(client, port=0) as server:
        host, port = server.address
        with RemoteClient((host, port)) as remote:
            remote_sales = remote[profile.database_name]["store_sales"]
            count = remote_sales.count_documents({})
            top = (
                remote_sales.find({}, {"_id": 0, "ss_sales_price": 1})
                .sort("ss_sales_price", -1)
                .limit(1)
                .to_list()
            )
            status = remote.server_status()
        print(
            f"  {host}:{port} answered count={count}, top price={top[0]['ss_sales_price']}  "
            f"(opcounters: {status['opcounters']}, "
            f"wire bytes out: {status['wire']['bytes_out']:,})"
        )


if __name__ == "__main__":
    main()
