"""Sharded-cluster analytics: routing, chunk distribution, and Query 50.

This example builds the paper's sharded deployment (3 shards, 1 config
server, 1 query router — Figure 3.1), loads the evaluation dataset through
the router, and shows:

* how the shard-count formulas of Section 2.1.3.2 size the cluster;
* how chunks are distributed and balanced across shards;
* the difference between a *targeted* query (contains the shard key) and a
  *broadcast* query, which is what separates Query 50 from the other
  analytical queries in the paper's results;
* Query 50 executed end-to-end through the router, with the router's cost
  accounting.

Run it with::

    python examples/sharded_cluster_analytics.py
"""

from __future__ import annotations

from repro.core import render_table, run_normalized_query, tiny_profile
from repro.core.experiments import EXPERIMENT_CHUNK_SIZE_BYTES, SHARD_KEYS
from repro.core.migration import migrate_generated_dataset
from repro.sharding import ClusterSizingInputs, ShardedCluster, recommend_shard_count
from repro.tpcds import TPCDSGenerator
from repro.tpcds.schema import QUERY_TABLES

GB = 1024 ** 3


def size_the_cluster() -> None:
    """Apply the Section 2.1.3.2 sizing rules to the paper's small dataset."""
    sizing = recommend_shard_count(
        ClusterSizingInputs(
            data_size_bytes=9.94 * GB,
            working_set_bytes=9.94 * GB,
            shard_ram_bytes=8 * GB,
            shard_disk_bytes=256 * GB,
        )
    )
    print(
        render_table(
            ["rule", "shards"],
            [[rule, count] for rule, count in sizing.items()],
            title="Cluster sizing for the 9.94GB dataset (Section 2.1.3.2)",
        )
    )
    print("The thesis rounds the RAM-driven recommendation up to 3 shards.\n")


def main() -> None:
    size_the_cluster()

    profile = tiny_profile(1.0 / 5_000.0)
    generator = TPCDSGenerator(profile, seed=20151109)

    print("Building a 3-shard cluster and sharding the query collections...")
    # The cluster owns threads (scatter workers) and per-shard state; the
    # context manager shuts everything down even if the demo fails midway.
    with ShardedCluster(shard_count=3) as cluster:
        run_cluster_demo(cluster, profile, generator)


def run_cluster_demo(cluster: ShardedCluster, profile, generator) -> None:
    database_name = profile.database_name
    cluster.enable_sharding(database_name)
    for collection_name, shard_key in SHARD_KEYS.items():
        if collection_name in QUERY_TABLES:
            cluster.shard_collection(
                database_name,
                collection_name,
                shard_key,
                chunk_size_bytes=EXPERIMENT_CHUNK_SIZE_BYTES,
            )

    routed = cluster.get_database(database_name)
    migrate_generated_dataset(routed, generator, tables=QUERY_TABLES)
    cluster.balance()

    print(
        render_table(
            ["collection", "shard1", "shard2", "shard3"],
            [
                [name, *cluster.data_distribution(database_name, name).values()]
                for name in ("store_sales", "store_returns", "inventory")
            ],
            title="Documents per shard after loading and balancing",
        )
    )

    # ------------------------------------------------- targeted vs broadcast
    cluster.reset_metrics()
    routed["store_returns"].find({"sr_returned_date_sk": {"$gte": 2451088, "$lte": 2451118}}).to_list()
    targeted = cluster.router.metrics.snapshot()

    cluster.reset_metrics()
    routed["store_sales"].find({"ss_quantity": {"$gte": 90}}).to_list()
    broadcast = cluster.router.metrics.snapshot()

    print(
        render_table(
            ["query kind", "shards contacted", "targeted ops", "broadcast ops"],
            [
                ["range on shard key (like Q50)", targeted["shards_contacted"],
                 targeted["targeted_operations"], targeted["broadcast_operations"]],
                ["non-key predicate (like Q7)", broadcast["shards_contacted"],
                 broadcast["targeted_operations"], broadcast["broadcast_operations"]],
            ],
            title="Targeted vs broadcast routing",
        )
    )

    # ------------------------------------------- shard-side pushdown (FindSpec)
    # A sorted + limited find pushes projection, sort, and skip+limit to every
    # shard: each returns at most skip+limit pre-sorted documents, and the
    # router k-way-merges the shard-sorted lists.  RouterMetrics shows how few
    # documents cross the simulated network.
    cluster.reset_metrics()
    top_sales = (
        routed["store_sales"]
        .find({}, {"ss_sales_price": 1, "ss_ticket_number": 1})
        .sort([("ss_sales_price", -1), ("ss_ticket_number", 1)])
        .limit(5)
    )
    explain = top_sales.explain()["queryPlanner"]
    rows = top_sales.to_list()
    pushdown_metrics = cluster.router.metrics.snapshot()
    print(
        render_table(
            ["metric", "value"],
            [
                ["plan", explain["winningPlan"]["stage"]],
                ["merge", explain["sortMode"]],
                ["per-shard limit pushed", explain["winningPlan"]["pushdown"]["limit"]],
                ["projection pushed", explain["winningPlan"]["pushdown"]["projection"]],
                ["documents shipped", pushdown_metrics["documents_shipped"]],
                ["bytes shipped", pushdown_metrics["bytes_shipped"]],
                ["result rows", len(rows)],
            ],
            title="Sorted+limited broadcast find with shard-side pushdown",
        )
    )
    shard_plan = next(iter(explain["winningPlan"]["shards"].values()))
    print(
        "per-shard plan:",
        shard_plan["winningPlan"]["stage"],
        "/ sort mode",
        shard_plan["sortMode"],
        "/ shard-local limit",
        shard_plan["findSpec"]["limit"],
    )

    # ------------------------------------------------------------- Query 50
    print("\nRunning Query 50 (return-latency buckets) through the router...")
    cluster.reset_metrics()
    report = run_normalized_query(routed, 50)
    metrics = cluster.router.metrics.snapshot()
    network = cluster.network.stats.snapshot()
    print(f"result rows: {report.result_documents}  client time: {report.seconds:.3f}s")
    print(
        render_table(
            ["metric", "value"],
            [
                ["router operations", metrics["operations"]],
                ["targeted operations", metrics["targeted_operations"]],
                ["broadcast operations", metrics["broadcast_operations"]],
                ["network messages", network["messages"]],
                ["bytes over the wire", network["bytes_transferred"]],
                ["simulated network seconds", f"{metrics['network_seconds']:.4f}"],
            ],
            title="Router cost accounting for Query 50",
        )
    )
    for row in report.results[:3]:
        print(" ", {k: row[k] for k in ("s_store_name", "s_city", "30 days", ">120 days")})


if __name__ == "__main__":
    main()
