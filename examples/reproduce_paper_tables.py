"""Reproduce the paper's evaluation tables from the public API.

This is the programmatic version of the benchmark suite: it runs the six
experimental setups of Table 4.1 on reduced datasets and prints

* Table 4.3 / Figure 4.9 — data load times,
* Table 4.4 — query selectivity,
* Table 4.5 / Figures 4.10, 4.11 — query runtimes per experiment,

next to the values published in the paper.  Use ``--scale tiny`` for a quick
run (about a minute) or ``--scale full`` for the standard reproduction scale.

Run it with::

    python examples/reproduce_paper_tables.py --scale tiny
"""

from __future__ import annotations

import argparse

from repro.core import (
    EXPERIMENTS,
    ExperimentHarness,
    format_seconds,
    paper_reference_table_44,
    paper_reference_table_45,
    render_bar_chart,
    render_table,
    selectivity_table,
    tiny_profile,
)
from repro.tpcds import QUERY_IDS


def build_harness(scale: str) -> ExperimentHarness:
    if scale == "tiny":
        overrides = {
            "small": tiny_profile(1.0 / 10_000.0),
            "large": tiny_profile(1.0 / 4_000.0),
        }
        return ExperimentHarness(scale_overrides=overrides)
    return ExperimentHarness()


def report_load_times(harness: ExperimentHarness) -> None:
    totals = {}
    for experiment in (2, 5):
        config = EXPERIMENTS[experiment]
        profile = harness.scale(config)
        harness.standalone_database(profile)
        report = harness.load_report(profile)
        totals[profile.name] = report.total_seconds
        rows = [
            [result.table, result.documents_inserted, f"{result.seconds:.3f}"]
            for result in sorted(report.results.values(), key=lambda r: r.table)
        ]
        print(
            render_table(
                ["table", "documents", "seconds"],
                rows,
                title=f"Table 4.3 — load times, {profile.name} dataset",
            )
        )
        print()
    print(
        render_bar_chart(
            {
                "small dataset (paper: 47m20s)": totals.get("small", 0.0),
                "large dataset (paper: 3h31m54s)": totals.get("large", 0.0),
            },
            title="Figure 4.9 — total load time comparison",
        )
    )
    print()


def report_selectivity(harness: ExperimentHarness) -> None:
    paper = paper_reference_table_44()
    rows = []
    for scale_name, experiment in (("small", 3), ("large", 6)):
        database = harness.standalone_denormalized_database(
            harness.scale(EXPERIMENTS[experiment])
        )
        for query_id, measurement in selectivity_table(database).items():
            rows.append(
                [
                    scale_name,
                    f"Query {query_id}",
                    f"{measurement.megabytes:.4f}",
                    f"{paper[scale_name][query_id]:.3f}",
                ]
            )
    print(render_table(["dataset", "query", "reproduction MB", "paper MB"], rows,
                       title="Table 4.4 — query selectivity"))
    print()


def report_runtimes(harness: ExperimentHarness) -> None:
    paper = paper_reference_table_45()
    measured: dict[tuple[int, int], float] = {}
    rows = []
    for experiment in (1, 2, 3, 4, 5, 6):
        config = EXPERIMENTS[experiment]
        result = harness.run_experiment(experiment, repetitions=2)
        for query_id, run in sorted(result.query_runs.items()):
            measured[(experiment, query_id)] = run.simulated_seconds
            rows.append(
                [
                    f"Exp {experiment} ({config.scale.name}/{config.data_model}/{config.environment})",
                    f"Query {query_id}",
                    format_seconds(run.simulated_seconds),
                    format_seconds(paper[experiment][query_id]),
                ]
            )
    print(render_table(["experiment", "query", "reproduction", "paper"], rows,
                       title="Table 4.5 — query execution runtimes"))
    print()

    for figure, experiments in (("Figure 4.10 (small dataset)", (3, 2, 1)),
                                ("Figure 4.11 (large dataset)", (6, 5, 4))):
        for query_id in QUERY_IDS:
            series = {}
            for experiment in experiments:
                config = EXPERIMENTS[experiment]
                label = f"{config.data_model}/{config.environment} (Exp {experiment})"
                series[label] = measured[(experiment, query_id)]
            print(render_bar_chart(series, title=f"{figure} — Query {query_id}"))
            print()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=("tiny", "full"), default="tiny")
    parser.add_argument(
        "--section",
        choices=("all", "load", "selectivity", "runtimes"),
        default="all",
        help="which part of the evaluation to reproduce",
    )
    arguments = parser.parse_args()

    harness = build_harness(arguments.scale)
    if arguments.section in ("all", "load"):
        report_load_times(harness)
    if arguments.section in ("all", "selectivity"):
        report_selectivity(harness)
    if arguments.section in ("all", "runtimes"):
        report_runtimes(harness)


if __name__ == "__main__":
    main()
