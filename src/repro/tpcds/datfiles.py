"""TPC-DS ``.dat`` flat files.

``dsdgen`` emits one ``.dat`` file per table with ``|``-delimited columns and
no header row (Section 4.1.1, Figure 4.4).  The data-migration algorithm of
the thesis consumes exactly this format, so the reproduction generates the
same files and parses them back with typed conversion.
"""

from __future__ import annotations

import pathlib
from typing import Any, Iterable, Iterator, Mapping

from .schema import ColumnType, TableSchema, table_schema

__all__ = [
    "DELIMITER",
    "format_row",
    "parse_line",
    "write_dat_file",
    "read_dat_file",
    "write_dataset",
    "dat_file_name",
]

#: Column delimiter used by dsdgen.
DELIMITER = "|"


def dat_file_name(table_name: str) -> str:
    """The conventional file name for a table's data file."""
    return f"{table_name}.dat"


def _format_value(value: Any) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_row(schema: TableSchema, row: Mapping[str, Any]) -> str:
    """Format *row* as a dsdgen-style delimited line (trailing delimiter)."""
    fields = [_format_value(row.get(column.name)) for column in schema.columns]
    return DELIMITER.join(fields) + DELIMITER


def parse_line(schema: TableSchema, line: str) -> dict[str, Any]:
    """Parse a delimited line into a typed row dictionary.

    Empty fields become ``None`` (the thesis omits the key/value pair for
    null columns when building documents; that decision is made later by the
    migration algorithm, not the parser).
    """
    raw_values = line.rstrip("\n").split(DELIMITER)
    row: dict[str, Any] = {}
    for position, column in enumerate(schema.columns):
        raw = raw_values[position] if position < len(raw_values) else ""
        if raw == "":
            row[column.name] = None
        elif column.type in (ColumnType.INTEGER, ColumnType.IDENTIFIER):
            row[column.name] = int(raw)
        elif column.type == ColumnType.DECIMAL:
            row[column.name] = float(raw)
        else:
            row[column.name] = raw
    return row


def write_dat_file(
    table_name: str,
    rows: Iterable[Mapping[str, Any]],
    directory: str | pathlib.Path,
) -> pathlib.Path:
    """Write *rows* of *table_name* as a ``.dat`` file; returns the path."""
    schema = table_schema(table_name)
    target_directory = pathlib.Path(directory)
    target_directory.mkdir(parents=True, exist_ok=True)
    path = target_directory / dat_file_name(table_name)
    with path.open("w", encoding="utf-8") as handle:
        for row in rows:
            handle.write(format_row(schema, row))
            handle.write("\n")
    return path


def read_dat_file(
    table_name: str,
    path: str | pathlib.Path,
) -> Iterator[dict[str, Any]]:
    """Stream typed rows from a ``.dat`` file."""
    schema = table_schema(table_name)
    with pathlib.Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            if line.strip():
                yield parse_line(schema, line)


def write_dataset(
    tables: Mapping[str, Iterable[Mapping[str, Any]]],
    directory: str | pathlib.Path,
) -> dict[str, pathlib.Path]:
    """Write every table of a generated dataset; returns table -> file path."""
    paths: dict[str, pathlib.Path] = {}
    for table_name, rows in tables.items():
        paths[table_name] = write_dat_file(table_name, rows, directory)
    return paths
