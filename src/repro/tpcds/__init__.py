"""TPC-DS substrate: schema, scaling, data generation, ``.dat`` files, queries.

This package replaces the official ``dsdgen``/``dsqgen`` tools with a
deterministic, laptop-scale synthetic generator that preserves the schema,
foreign-key structure, per-table scaling behaviour (Table 3.6), and the
predicate selectivity structure of the four evaluation queries.
"""

from .datfiles import (
    DELIMITER,
    dat_file_name,
    format_row,
    parse_line,
    read_dat_file,
    write_dat_file,
    write_dataset,
)
from .generator import GeneratedDataset, TPCDSGenerator
from .queries import (
    QUERY_DEFINITIONS,
    QUERY_FEATURES,
    QUERY_IDS,
    QueryDefinition,
    query_definition,
    query_parameters,
)
from .scaling import (
    DATE_RANGE_END,
    DATE_RANGE_START,
    NON_SCALING_TABLES,
    PAPER_ROW_COUNTS,
    SCALE_LARGE,
    SCALE_SMALL,
    ScaleProfile,
    generation_row_counts,
    paper_row_counts,
)
from .schema import (
    DIMENSION_TABLES,
    FACT_TABLES,
    QUERY_TABLES,
    TPCDS_TABLES,
    Column,
    ColumnType,
    ForeignKey,
    TableSchema,
    table_schema,
)

__all__ = [
    "Column",
    "ColumnType",
    "DATE_RANGE_END",
    "DATE_RANGE_START",
    "DELIMITER",
    "DIMENSION_TABLES",
    "FACT_TABLES",
    "ForeignKey",
    "GeneratedDataset",
    "NON_SCALING_TABLES",
    "PAPER_ROW_COUNTS",
    "QUERY_DEFINITIONS",
    "QUERY_FEATURES",
    "QUERY_IDS",
    "QUERY_TABLES",
    "QueryDefinition",
    "SCALE_LARGE",
    "SCALE_SMALL",
    "ScaleProfile",
    "TPCDSGenerator",
    "TPCDS_TABLES",
    "TableSchema",
    "dat_file_name",
    "format_row",
    "generation_row_counts",
    "paper_row_counts",
    "parse_line",
    "query_definition",
    "query_parameters",
    "read_dat_file",
    "table_schema",
    "write_dat_file",
    "write_dataset",
]
