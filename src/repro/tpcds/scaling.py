"""Dataset scaling.

Table 3.6 of the paper lists the number of records per table for the 1 GB and
5 GB datasets.  The reproduction cannot materialize gigabyte-scale datasets
inside an in-process Python store, so it works with *reduced* datasets whose
shape mirrors the paper:

* every table's row count is the paper's count multiplied by a global
  ``reduction`` factor (default 1/1000);
* tables whose cardinality does not change between the 1 GB and 5 GB scales
  (``customer_demographics``, ``date_dim``, ``household_demographics``,
  ``income_band``, ``ship_mode``, ``time_dim``, ``catalog_page``) keep
  identical counts in the small and large reproduction datasets too, which is
  what produces the paper's load-time observation (i);
* ``date_dim`` is special: instead of a shrunken random sample it always
  covers the contiguous day range 1998-01-01 .. 2003-12-31 so that every date
  predicate of queries 7, 21, 46, and 50 remains meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass
import datetime as _dt

__all__ = [
    "PAPER_ROW_COUNTS",
    "NON_SCALING_TABLES",
    "DATE_RANGE_START",
    "DATE_RANGE_END",
    "DATE_DIM_ROWS",
    "ScaleProfile",
    "SCALE_SMALL",
    "SCALE_LARGE",
    "paper_row_counts",
    "generation_row_counts",
]

#: Row counts reported by Table 3.6 of the paper: {table: (1GB, 5GB)}.
PAPER_ROW_COUNTS: dict[str, tuple[int, int]] = {
    "call_center": (6, 14),
    "catalog_page": (11_718, 11_718),
    "catalog_returns": (144_067, 720_174),
    "catalog_sales": (1_441_548, 7_199_490),
    "customer": (100_000, 277_000),
    "customer_address": (50_000, 138_000),
    "customer_demographics": (1_920_800, 1_920_800),
    "date_dim": (73_049, 73_049),
    "household_demographics": (7_200, 7_200),
    "income_band": (20, 20),
    "inventory": (11_745_000, 49_329_000),
    "item": (18_000, 54_000),
    "promotion": (300, 388),
    "reason": (35, 39),
    "ship_mode": (20, 20),
    "store": (12, 52),
    "store_returns": (287_514, 1_437_911),
    "store_sales": (2_880_404, 14_400_052),
    "time_dim": (86_400, 86_400),
    "warehouse": (5, 7),
    "web_page": (60, 122),
    "web_returns": (71_763, 359_991),
    "web_sales": (719_384, 3_599_503),
    "web_site": (30, 34),
}

#: Tables whose row count does not change between the two paper datasets.
NON_SCALING_TABLES: frozenset[str] = frozenset(
    name for name, (small, large) in PAPER_ROW_COUNTS.items() if small == large
)

#: Calendar range covered by the reproduction's date dimension.
DATE_RANGE_START = _dt.date(1998, 1, 1)
DATE_RANGE_END = _dt.date(2003, 12, 31)
DATE_DIM_ROWS = (DATE_RANGE_END - DATE_RANGE_START).days + 1

#: Caps applied to the large non-scaling dimensions after reduction, so that
#: a laptop-scale run stays laptop-scale while the dimension remains big
#: enough for the query predicates to have realistic selectivity.
_NON_SCALING_TARGETS: dict[str, int] = {
    "customer_demographics": 1_920,
    "time_dim": 1_440,
    "catalog_page": 117,
    "household_demographics": 720,
    "income_band": 20,
    "ship_mode": 20,
    "date_dim": DATE_DIM_ROWS,
}

#: Tables at or below this cardinality keep their exact paper row counts —
#: shrinking a 12-row ``store`` table would destroy the query predicates.
_SMALL_TABLE_THRESHOLD = 1_000

#: Reduced tables never shrink below this row count, so that dimension
#: predicates (item price bands, demographic combinations, ...) keep a
#: realistic number of distinct values.
_MINIMUM_ROWS = 50


@dataclass(frozen=True)
class ScaleProfile:
    """A reproduction dataset scale.

    ``paper_gb`` identifies the corresponding paper dataset (1 or 5),
    ``reduction`` is the global row-count divisor applied to scaling tables.
    """

    name: str
    paper_gb: int
    reduction: float = 1.0 / 1000.0

    @property
    def paper_index(self) -> int:
        """Index into the ``PAPER_ROW_COUNTS`` tuples (0 = 1 GB, 1 = 5 GB)."""
        return 0 if self.paper_gb == 1 else 1

    @property
    def database_name(self) -> str:
        """Database name used by the thesis for this scale."""
        return f"Dataset_{self.paper_gb}GB"


#: The two scales of the evaluation (1 GB -> 9.94 GB and 5 GB -> 41.93 GB in
#: the paper; reduced by ``reduction`` here).
SCALE_SMALL = ScaleProfile(name="small", paper_gb=1)
SCALE_LARGE = ScaleProfile(name="large", paper_gb=5)


def paper_row_counts(paper_gb: int) -> dict[str, int]:
    """Row counts for the paper's 1 GB or 5 GB dataset (Table 3.6)."""
    if paper_gb not in (1, 5):
        raise ValueError("the paper reports row counts for the 1GB and 5GB datasets only")
    index = 0 if paper_gb == 1 else 1
    return {name: counts[index] for name, counts in PAPER_ROW_COUNTS.items()}


def generation_row_counts(profile: ScaleProfile) -> dict[str, int]:
    """Row counts the generator should produce for *profile*.

    Scaling tables follow the paper's count times the reduction factor;
    non-scaling tables use fixed practical targets that are identical across
    profiles (so the paper's "same rows, same load time" observation holds).
    """
    counts: dict[str, int] = {}
    for name, per_scale in PAPER_ROW_COUNTS.items():
        paper_count = per_scale[profile.paper_index]
        if name in NON_SCALING_TABLES:
            target = _NON_SCALING_TARGETS.get(name, paper_count)
            counts[name] = min(paper_count, target)
        elif paper_count <= _SMALL_TABLE_THRESHOLD:
            counts[name] = paper_count
        else:
            reduced = int(round(paper_count * profile.reduction))
            counts[name] = max(_MINIMUM_ROWS, min(paper_count, reduced))
    return counts
