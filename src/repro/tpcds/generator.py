"""Synthetic TPC-DS data generator (``dsdgen`` substitute).

The generator produces deterministic, seedable row sets for every TPC-DS
table at a reproduction scale (see :mod:`repro.tpcds.scaling`).  The value
distributions are simplified relative to the official ``dsdgen`` but preserve
the correlations the four evaluation queries depend on:

* ``date_dim`` covers 1998-01-01 .. 2003-12-31 contiguously, so the year,
  month, day-of-week, and ±30-day window predicates of Q7/Q21/Q46/Q50 select
  realistic fractions of the fact data;
* ``customer_demographics`` enumerates the gender × marital-status ×
  education cross product (Q7's ``M / M / 4 yr Degree`` bucket exists);
* ``store`` and ``customer_address`` concentrate on a small set of cities
  including ``Midway`` and ``Fairview`` (Q46);
* a configurable fraction of ``store_sales`` rows has a matching
  ``store_returns`` row with the same ticket number, item, and customer,
  returned between 5 and 150 days after the sale (Q50's aging buckets);
* ``item`` prices straddle the ``0.99 .. 1.49`` band used by Q21.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Iterator

from .scaling import (
    DATE_RANGE_END,
    DATE_RANGE_START,
    ScaleProfile,
    SCALE_SMALL,
    generation_row_counts,
)
from .schema import TPCDS_TABLES, table_schema

__all__ = ["TPCDSGenerator", "GeneratedDataset"]


_GENDERS = ("M", "F")
_MARITAL_STATUSES = ("M", "S", "D", "W", "U")
_EDUCATION_LEVELS = (
    "Primary",
    "Secondary",
    "College",
    "2 yr Degree",
    "4 yr Degree",
    "Advanced Degree",
    "Unknown",
)
_CREDIT_RATINGS = ("Low Risk", "Good", "High Risk", "Unknown")
_BUY_POTENTIALS = ("0-500", "501-1000", "1001-5000", "5001-10000", ">10000", "Unknown")
_CITIES = (
    "Midway",
    "Fairview",
    "Oak Grove",
    "Glendale",
    "Pleasant Hill",
    "Centerville",
    "Riverside",
    "Salem",
    "Union",
    "Wildwood",
)
_STREET_NAMES = ("Jackson", "Main", "Oak", "Maple", "Washington", "Park", "Elm", "Lake")
_STREET_TYPES = ("Parkway", "Street", "Avenue", "Boulevard", "Court", "Drive", "Lane")
_STATES = ("CA", "TX", "OH", "GA", "NY", "WA", "TN", "IL", "MI", "VA")
_COUNTIES = ("Williamson County", "Ziebach County", "Walker County", "Daviess County")
_FIRST_NAMES = (
    "Earl", "Anna", "James", "Maria", "Robert", "Linda", "David", "Susan",
    "John", "Karen", "Michael", "Nancy", "William", "Lisa", "Richard", "Betty",
)
_LAST_NAMES = (
    "Garrison", "Smith", "Johnson", "Williams", "Brown", "Jones", "Miller",
    "Davis", "Wilson", "Anderson", "Thomas", "Moore", "Martin", "Lee",
)
_ITEM_CATEGORIES = ("Books", "Electronics", "Home", "Jewelry", "Music", "Shoes", "Sports", "Women")
_ITEM_CLASSES = ("accent", "classical", "dresses", "fiction", "fitness", "portable", "wallpaper")
_WAREHOUSE_NAMES = (
    "Conventional childr",
    "Important issues liv",
    "Doors canno",
    "Bad cards must make",
    "Rooms cook ",
    "Eyes hold rather",
    "Slow engines test",
)
_YES_NO = ("Y", "N")


def _item_id(index: int) -> str:
    return f"AAAAAAAA{index:08d}"


@dataclass
class GeneratedDataset:
    """All generated rows for one scale, keyed by table name."""

    profile: ScaleProfile
    tables: dict[str, list[dict[str, Any]]] = field(default_factory=dict)

    def row_counts(self) -> dict[str, int]:
        """Row count per table."""
        return {name: len(rows) for name, rows in self.tables.items()}

    def __getitem__(self, table_name: str) -> list[dict[str, Any]]:
        return self.tables[table_name]


class TPCDSGenerator:
    """Deterministic generator for one reproduction scale."""

    def __init__(
        self,
        profile: ScaleProfile = SCALE_SMALL,
        *,
        seed: int = 20151109,
        returns_fraction: float = 0.10,
    ) -> None:
        self.profile = profile
        self.seed = seed
        self.returns_fraction = returns_fraction
        self.row_counts = generation_row_counts(profile)
        self._random = random.Random(seed)
        self._cache: dict[str, list[dict[str, Any]]] = {}

    # ------------------------------------------------------------- public API

    def generate_table(self, table_name: str) -> list[dict[str, Any]]:
        """Generate (and memoize) the rows of *table_name*."""
        if table_name not in TPCDS_TABLES:
            raise KeyError(f"unknown TPC-DS table {table_name!r}")
        if table_name not in self._cache:
            generator = getattr(self, f"_generate_{table_name}", None)
            if generator is None:
                rows = self._generate_generic(table_name)
            else:
                rows = generator()
            self._cache[table_name] = rows
        return self._cache[table_name]

    def generate_all(self) -> GeneratedDataset:
        """Generate every table and return the complete dataset."""
        dataset = GeneratedDataset(profile=self.profile)
        for table_name in sorted(TPCDS_TABLES):
            dataset.tables[table_name] = self.generate_table(table_name)
        return dataset

    def iter_rows(self, table_name: str) -> Iterator[dict[str, Any]]:
        """Iterate the rows of *table_name*."""
        yield from self.generate_table(table_name)

    # ---------------------------------------------------------------- helpers

    def _rng(self, table_name: str) -> random.Random:
        """Per-table RNG so tables are independent of generation order."""
        return random.Random((self.seed, table_name, self.profile.name).__repr__())

    def _count(self, table_name: str) -> int:
        return self.row_counts[table_name]

    def _date_rows(self) -> list[dict[str, Any]]:
        return self.generate_table("date_dim")

    def _primary_keys(self, table_name: str) -> list[int]:
        schema = table_schema(table_name)
        return [row[schema.primary_key] for row in self.generate_table(table_name)]

    # ------------------------------------------------------------- dimensions

    def _generate_date_dim(self) -> list[dict[str, Any]]:
        rows = []
        import datetime as dt

        day = DATE_RANGE_START
        base_sk = 2_450_815 + (DATE_RANGE_START - dt.date(1998, 1, 1)).days
        index = 0
        while day <= DATE_RANGE_END:
            date_sk = base_sk + index
            quarter = (day.month - 1) // 3 + 1
            rows.append(
                {
                    "d_date_sk": date_sk,
                    "d_date_id": f"AAAAAAAA{date_sk:08d}",
                    "d_date": day.isoformat(),
                    "d_month_seq": (day.year - 1900) * 12 + day.month - 1,
                    "d_week_seq": (date_sk - base_sk) // 7,
                    "d_quarter_seq": (day.year - 1900) * 4 + quarter - 1,
                    "d_year": day.year,
                    # TPC-DS convention: 0 = Sunday ... 6 = Saturday.
                    "d_dow": (day.weekday() + 1) % 7,
                    "d_moy": day.month,
                    "d_dom": day.day,
                    "d_qoy": quarter,
                    "d_fy_year": day.year,
                    "d_day_name": day.strftime("%A"),
                    "d_quarter_name": f"{day.year}Q{quarter}",
                    "d_holiday": "N",
                    "d_weekend": "Y" if day.weekday() >= 5 else "N",
                }
            )
            day += dt.timedelta(days=1)
            index += 1
        return rows

    def _generate_item(self) -> list[dict[str, Any]]:
        rng = self._rng("item")
        rows = []
        for index in range(1, self._count("item") + 1):
            category = rng.choice(_ITEM_CATEGORIES)
            price = round(rng.uniform(0.49, 4.99), 2)
            rows.append(
                {
                    "i_item_sk": index,
                    "i_item_id": _item_id(index),
                    "i_rec_start_date": "1997-10-27",
                    "i_item_desc": f"Synthetic item {index} in {category}",
                    "i_current_price": price,
                    "i_wholesale_cost": round(price * rng.uniform(0.4, 0.8), 2),
                    "i_brand_id": rng.randint(1_001_001, 10_016_017),
                    "i_brand": f"brand#{rng.randint(1, 10)}",
                    "i_class_id": rng.randint(1, 16),
                    "i_class": rng.choice(_ITEM_CLASSES),
                    "i_category_id": _ITEM_CATEGORIES.index(category) + 1,
                    "i_category": category,
                    "i_manufact_id": rng.randint(1, 1000),
                    "i_manufact": f"manufact#{rng.randint(1, 100)}",
                    "i_size": rng.choice(("small", "medium", "large", "N/A")),
                    "i_color": rng.choice(("azure", "beige", "coral", "khaki", "rose")),
                    "i_units": rng.choice(("Each", "Dozen", "Case", "Pound")),
                    "i_product_name": f"product{index}",
                }
            )
        return rows

    def _generate_customer_demographics(self) -> list[dict[str, Any]]:
        rows = []
        count = self._count("customer_demographics")
        rng = self._rng("customer_demographics")
        index = 0
        while len(rows) < count:
            for gender in _GENDERS:
                for marital_status in _MARITAL_STATUSES:
                    for education in _EDUCATION_LEVELS:
                        if len(rows) >= count:
                            break
                        index += 1
                        rows.append(
                            {
                                "cd_demo_sk": index,
                                "cd_gender": gender,
                                "cd_marital_status": marital_status,
                                "cd_education_status": education,
                                "cd_purchase_estimate": rng.choice((500, 1000, 5000, 10000)),
                                "cd_credit_rating": rng.choice(_CREDIT_RATINGS),
                                "cd_dep_count": rng.randint(0, 6),
                                "cd_dep_employed_count": rng.randint(0, 6),
                                "cd_dep_college_count": rng.randint(0, 6),
                            }
                        )
        return rows

    def _generate_household_demographics(self) -> list[dict[str, Any]]:
        rng = self._rng("household_demographics")
        rows = []
        for index in range(1, self._count("household_demographics") + 1):
            rows.append(
                {
                    "hd_demo_sk": index,
                    "hd_income_band_sk": (index - 1) % 20 + 1,
                    "hd_buy_potential": rng.choice(_BUY_POTENTIALS),
                    "hd_dep_count": (index - 1) % 10,
                    "hd_vehicle_count": (index - 1) % 6 - 1,
                }
            )
        return rows

    def _generate_income_band(self) -> list[dict[str, Any]]:
        rows = []
        for index in range(1, self._count("income_band") + 1):
            rows.append(
                {
                    "ib_income_band_sk": index,
                    "ib_lower_bound": (index - 1) * 10_000,
                    "ib_upper_bound": index * 10_000,
                }
            )
        return rows

    def _generate_promotion(self) -> list[dict[str, Any]]:
        rng = self._rng("promotion")
        rows = []
        for index in range(1, self._count("promotion") + 1):
            rows.append(
                {
                    "p_promo_sk": index,
                    "p_promo_id": f"AAAAAAAA{index:08d}",
                    "p_start_date_sk": 2_450_100 + rng.randint(0, 2000),
                    "p_end_date_sk": 2_450_100 + rng.randint(2000, 4000),
                    "p_item_sk": rng.randint(1, max(1, self._count("item"))),
                    "p_cost": 1000.0,
                    "p_response_target": 1,
                    "p_promo_name": rng.choice(("ought", "able", "pri", "ese", "anti")),
                    "p_channel_dmail": rng.choice(_YES_NO),
                    "p_channel_email": "N" if rng.random() < 0.85 else "Y",
                    "p_channel_catalog": rng.choice(_YES_NO),
                    "p_channel_tv": rng.choice(_YES_NO),
                    "p_channel_radio": rng.choice(_YES_NO),
                    "p_channel_press": rng.choice(_YES_NO),
                    "p_channel_event": "N" if rng.random() < 0.85 else "Y",
                    "p_channel_demo": rng.choice(_YES_NO),
                    "p_purpose": "Unknown",
                    "p_discount_active": rng.choice(_YES_NO),
                }
            )
        return rows

    def _generate_store(self) -> list[dict[str, Any]]:
        rng = self._rng("store")
        rows = []
        for index in range(1, self._count("store") + 1):
            # Roughly half of the stores sit in the two Q46 cities.
            city = _CITIES[index % 4] if index % 2 else rng.choice(_CITIES)
            rows.append(
                {
                    "s_store_sk": index,
                    "s_store_id": f"AAAAAAAA{index:08d}",
                    "s_store_name": rng.choice(("ought", "able", "pri", "ese", "anti", "cally")),
                    "s_number_employees": rng.randint(200, 300),
                    "s_floor_space": rng.randint(5_000_000, 9_999_999),
                    "s_hours": rng.choice(("8AM-4PM", "8AM-8AM", "8AM-12AM")),
                    "s_manager": f"{rng.choice(_FIRST_NAMES)} {rng.choice(_LAST_NAMES)}",
                    "s_market_id": rng.randint(1, 10),
                    "s_company_id": 1,
                    "s_company_name": "Unknown",
                    "s_street_number": str(rng.randint(1, 999)),
                    "s_street_name": rng.choice(_STREET_NAMES),
                    "s_street_type": rng.choice(_STREET_TYPES),
                    "s_suite_number": f"Suite {rng.randint(0, 450)}",
                    "s_city": city,
                    "s_county": rng.choice(_COUNTIES),
                    "s_state": rng.choice(_STATES),
                    "s_zip": f"{rng.randint(10000, 99999)}",
                    "s_country": "United States",
                    "s_tax_precentage": round(rng.uniform(0.0, 0.11), 2),
                }
            )
        return rows

    def _generate_customer_address(self) -> list[dict[str, Any]]:
        rng = self._rng("customer_address")
        rows = []
        for index in range(1, self._count("customer_address") + 1):
            rows.append(
                {
                    "ca_address_sk": index,
                    "ca_address_id": f"AAAAAAAA{index:08d}",
                    "ca_street_number": str(rng.randint(1, 999)),
                    "ca_street_name": rng.choice(_STREET_NAMES),
                    "ca_street_type": rng.choice(_STREET_TYPES),
                    "ca_suite_number": f"Suite {rng.randint(0, 450)}",
                    "ca_city": rng.choice(_CITIES),
                    "ca_county": rng.choice(_COUNTIES),
                    "ca_state": rng.choice(_STATES),
                    "ca_zip": f"{rng.randint(10000, 99999)}",
                    "ca_country": "United States",
                    "ca_gmt_offset": rng.choice((-5.0, -6.0, -7.0, -8.0)),
                    "ca_location_type": rng.choice(("apartment", "condo", "single family")),
                }
            )
        return rows

    def _generate_customer(self) -> list[dict[str, Any]]:
        rng = self._rng("customer")
        cdemo_count = self._count("customer_demographics")
        hdemo_count = self._count("household_demographics")
        address_count = self._count("customer_address")
        rows = []
        for index in range(1, self._count("customer") + 1):
            rows.append(
                {
                    "c_customer_sk": index,
                    "c_customer_id": f"AAAAAAAA{index:08d}",
                    "c_current_cdemo_sk": rng.randint(1, cdemo_count),
                    "c_current_hdemo_sk": rng.randint(1, hdemo_count),
                    "c_current_addr_sk": rng.randint(1, address_count),
                    "c_first_shipto_date_sk": 2_450_815 + rng.randint(0, 2000),
                    "c_first_sales_date_sk": 2_450_815 + rng.randint(0, 2000),
                    "c_salutation": rng.choice(("Mr.", "Ms.", "Dr.", "Mrs.", "Sir")),
                    "c_first_name": rng.choice(_FIRST_NAMES),
                    "c_last_name": rng.choice(_LAST_NAMES),
                    "c_preferred_cust_flag": rng.choice(_YES_NO),
                    "c_birth_day": rng.randint(1, 28),
                    "c_birth_month": rng.randint(1, 12),
                    "c_birth_year": rng.randint(1930, 1995),
                    "c_birth_country": "UNITED STATES",
                    "c_email_address": f"customer{index}@example.com",
                }
            )
        return rows

    def _generate_warehouse(self) -> list[dict[str, Any]]:
        rng = self._rng("warehouse")
        rows = []
        for index in range(1, self._count("warehouse") + 1):
            rows.append(
                {
                    "w_warehouse_sk": index,
                    "w_warehouse_id": f"AAAAAAAA{index:08d}",
                    "w_warehouse_name": _WAREHOUSE_NAMES[(index - 1) % len(_WAREHOUSE_NAMES)],
                    "w_warehouse_sq_ft": rng.randint(50_000, 999_999),
                    "w_street_number": str(rng.randint(1, 999)),
                    "w_street_name": rng.choice(_STREET_NAMES),
                    "w_city": rng.choice(_CITIES),
                    "w_county": rng.choice(_COUNTIES),
                    "w_state": rng.choice(_STATES),
                    "w_zip": f"{rng.randint(10000, 99999)}",
                    "w_country": "United States",
                }
            )
        return rows

    def _generate_time_dim(self) -> list[dict[str, Any]]:
        rows = []
        for index in range(self._count("time_dim")):
            hour, minute = divmod(index, 60)
            rows.append(
                {
                    "t_time_sk": index,
                    "t_time_id": f"AAAAAAAA{index:08d}",
                    "t_time": index * 60,
                    "t_hour": hour % 24,
                    "t_minute": minute,
                    "t_second": 0,
                    "t_am_pm": "AM" if hour % 24 < 12 else "PM",
                    "t_shift": ("first", "second", "third")[(hour % 24) // 8],
                }
            )
        return rows

    def _generate_reason(self) -> list[dict[str, Any]]:
        reasons = (
            "Package was damaged", "Stopped working", "Did not fit",
            "Not the product that was ordred", "Parts missing", "Does not work with a product",
            "Gift exchange", "Did not like the color", "Did not like the model",
            "Did not like the make", "Found a better price", "Found a better extended warranty",
            "No service location in my area", "unauthoized purchase", "duplicate purchase",
            "its is a boy", "it is a girl", "reason 18", "reason 19", "reason 20",
        )
        rows = []
        for index in range(1, self._count("reason") + 1):
            rows.append(
                {
                    "r_reason_sk": index,
                    "r_reason_id": f"AAAAAAAA{index:08d}",
                    "r_reason_desc": reasons[(index - 1) % len(reasons)],
                }
            )
        return rows

    # ------------------------------------------------------------- fact tables

    def _generate_store_sales(self) -> list[dict[str, Any]]:
        rng = self._rng("store_sales")
        dates = self._date_rows()
        date_keys = [row["d_date_sk"] for row in dates]
        item_count = self._count("item")
        customer_count = self._count("customer")
        cdemo_count = self._count("customer_demographics")
        hdemo_count = self._count("household_demographics")
        address_count = self._count("customer_address")
        store_count = self._count("store")
        promo_count = self._count("promotion")

        rows: list[dict[str, Any]] = []
        ticket_number = 0
        target = self._count("store_sales")
        while len(rows) < target:
            ticket_number += 1
            items_on_ticket = min(rng.randint(1, 3), target - len(rows))
            customer = rng.randint(1, customer_count)
            address = rng.randint(1, address_count)
            hdemo = rng.randint(1, hdemo_count)
            cdemo = rng.randint(1, cdemo_count)
            store = rng.randint(1, store_count)
            sold_date = rng.choice(date_keys)
            chosen_items = rng.sample(range(1, item_count + 1), k=min(items_on_ticket, item_count))
            for item_sk in chosen_items:
                quantity = rng.randint(1, 100)
                list_price = round(rng.uniform(1.0, 200.0), 2)
                sales_price = round(list_price * rng.uniform(0.2, 1.0), 2)
                coupon_amt = round(sales_price * quantity * rng.uniform(0.0, 0.3), 2)
                wholesale = round(list_price * rng.uniform(0.3, 0.7), 2)
                net_paid = round(sales_price * quantity - coupon_amt, 2)
                rows.append(
                    {
                        "ss_sold_date_sk": sold_date,
                        "ss_sold_time_sk": rng.randint(0, max(1, self._count("time_dim") - 1)),
                        "ss_item_sk": item_sk,
                        "ss_customer_sk": customer,
                        "ss_cdemo_sk": cdemo,
                        "ss_hdemo_sk": hdemo,
                        "ss_addr_sk": address,
                        "ss_store_sk": store,
                        "ss_promo_sk": rng.randint(1, promo_count),
                        "ss_ticket_number": ticket_number,
                        "ss_quantity": quantity,
                        "ss_wholesale_cost": wholesale,
                        "ss_list_price": list_price,
                        "ss_sales_price": sales_price,
                        "ss_ext_discount_amt": round(coupon_amt * 0.5, 2),
                        "ss_ext_sales_price": round(sales_price * quantity, 2),
                        "ss_coupon_amt": coupon_amt,
                        "ss_net_paid": net_paid,
                        "ss_net_profit": round(net_paid - wholesale * quantity, 2),
                    }
                )
        return rows

    def _generate_store_returns(self) -> list[dict[str, Any]]:
        rng = self._rng("store_returns")
        sales = self.generate_table("store_sales")
        dates = self._date_rows()
        date_keys = [row["d_date_sk"] for row in dates]
        min_date, max_date = date_keys[0], date_keys[-1]
        target = self._count("store_returns")
        candidates = list(range(len(sales)))
        rng.shuffle(candidates)
        chosen = sorted(candidates[: min(target, len(sales))])

        rows = []
        for position in chosen:
            sale = sales[position]
            lag_days = rng.randint(5, 150)
            returned_date = min(max_date, max(min_date, sale["ss_sold_date_sk"] + lag_days))
            quantity = rng.randint(1, sale["ss_quantity"])
            return_amt = round(sale["ss_sales_price"] * quantity, 2)
            rows.append(
                {
                    "sr_returned_date_sk": returned_date,
                    "sr_return_time_sk": rng.randint(0, max(1, self._count("time_dim") - 1)),
                    "sr_item_sk": sale["ss_item_sk"],
                    "sr_customer_sk": sale["ss_customer_sk"],
                    "sr_cdemo_sk": sale["ss_cdemo_sk"],
                    "sr_hdemo_sk": sale["ss_hdemo_sk"],
                    "sr_addr_sk": sale["ss_addr_sk"],
                    "sr_store_sk": sale["ss_store_sk"],
                    "sr_reason_sk": rng.randint(1, self._count("reason")),
                    "sr_ticket_number": sale["ss_ticket_number"],
                    "sr_return_quantity": quantity,
                    "sr_return_amt": return_amt,
                    "sr_return_tax": round(return_amt * 0.08, 2),
                    "sr_fee": round(rng.uniform(0.5, 100.0), 2),
                    "sr_return_ship_cost": round(rng.uniform(0.0, 50.0), 2),
                    "sr_refunded_cash": round(return_amt * rng.uniform(0.5, 1.0), 2),
                    "sr_net_loss": round(rng.uniform(0.5, 500.0), 2),
                }
            )
        return rows

    def _generate_inventory(self) -> list[dict[str, Any]]:
        rng = self._rng("inventory")
        dates = self._date_rows()
        # Inventory snapshots are weekly in TPC-DS.
        weekly_dates = [row["d_date_sk"] for row in dates if row["d_dow"] == 0]
        item_count = self._count("item")
        warehouse_count = self._count("warehouse")
        target = self._count("inventory")

        rows = []
        index = 0
        while len(rows) < target:
            date_sk = weekly_dates[index % len(weekly_dates)]
            item_sk = (index // len(weekly_dates)) % item_count + 1
            warehouse_sk = (index // (len(weekly_dates) * item_count)) % warehouse_count + 1
            rows.append(
                {
                    "inv_date_sk": date_sk,
                    "inv_item_sk": item_sk,
                    "inv_warehouse_sk": warehouse_sk,
                    "inv_quantity_on_hand": rng.randint(0, 1000),
                }
            )
            index += 1
        return rows

    # ------------------------------------------------ generic small/fact tables

    def _generate_generic(self, table_name: str) -> list[dict[str, Any]]:
        """Plausible rows for tables that only matter for load benchmarks."""
        rng = self._rng(table_name)
        schema = table_schema(table_name)
        dates = [row["d_date_sk"] for row in self._date_rows()]
        item_count = max(1, self._count("item"))
        customer_count = max(1, self._count("customer"))
        rows = []
        for index in range(1, self._count(table_name) + 1):
            row: dict[str, Any] = {}
            for column in schema.columns:
                name = column.name
                if name == schema.primary_key:
                    row[name] = index
                elif name.endswith("_date_sk"):
                    row[name] = rng.choice(dates)
                elif name.endswith("_item_sk"):
                    row[name] = rng.randint(1, item_count)
                elif name.endswith("_customer_sk") or name.endswith("customer_sk"):
                    row[name] = rng.randint(1, customer_count)
                elif column.type == "identifier":
                    row[name] = index
                elif column.type == "integer":
                    row[name] = rng.randint(1, 1000)
                elif column.type == "decimal":
                    row[name] = round(rng.uniform(1.0, 500.0), 2)
                elif column.type == "date":
                    row[name] = "2001-01-01"
                else:
                    row[name] = f"{table_name}_{name}_{index % 17}"
            rows.append(row)
        return rows
