"""TPC-DS schema description.

The benchmark's retail snowflake schema has 7 fact tables and 17 dimension
tables (24 in total, Section 3.4).  The reproduction describes every table —
its columns, primary key, and foreign-key relationships — with full column
detail for the 12 tables touched by the four evaluation queries (3 fact
tables and 9 dimension tables, Figures 3.2–3.4) and compact column sets for
the remaining tables, which only participate in the data-load experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "ColumnType",
    "Column",
    "TableSchema",
    "ForeignKey",
    "TPCDS_TABLES",
    "FACT_TABLES",
    "DIMENSION_TABLES",
    "QUERY_TABLES",
    "table_schema",
]


class ColumnType:
    """Column type tags used by the generator and the ``.dat`` reader."""

    INTEGER = "integer"
    DECIMAL = "decimal"
    STRING = "string"
    DATE = "date"
    IDENTIFIER = "identifier"  # surrogate key


@dataclass(frozen=True)
class Column:
    """One table column."""

    name: str
    type: str
    nullable: bool = False


@dataclass(frozen=True)
class ForeignKey:
    """A foreign-key relationship between a fact/dimension pair."""

    column: str
    references_table: str
    references_column: str


@dataclass(frozen=True)
class TableSchema:
    """A TPC-DS table: columns, key, and relationships."""

    name: str
    columns: tuple[Column, ...]
    primary_key: str
    is_fact: bool = False
    foreign_keys: tuple[ForeignKey, ...] = field(default_factory=tuple)

    @property
    def column_names(self) -> tuple[str, ...]:
        """Ordered column names (matches the ``.dat`` field order)."""
        return tuple(column.name for column in self.columns)

    def column(self, name: str) -> Column:
        """Return the column called *name*."""
        for column in self.columns:
            if column.name == name:
                return column
        raise KeyError(f"{self.name} has no column {name!r}")

    def foreign_key_for(self, column: str) -> ForeignKey | None:
        """Return the foreign key declared on *column*, if any."""
        for foreign_key in self.foreign_keys:
            if foreign_key.column == column:
                return foreign_key
        return None


def _columns(*specs: tuple[str, str]) -> tuple[Column, ...]:
    return tuple(Column(name=name, type=type_) for name, type_ in specs)


_I = ColumnType.IDENTIFIER
_N = ColumnType.INTEGER
_D = ColumnType.DECIMAL
_S = ColumnType.STRING
_DT = ColumnType.DATE


# ---------------------------------------------------------------------------
# Dimension tables used by the evaluation queries
# ---------------------------------------------------------------------------

DATE_DIM = TableSchema(
    name="date_dim",
    primary_key="d_date_sk",
    columns=_columns(
        ("d_date_sk", _I),
        ("d_date_id", _S),
        ("d_date", _DT),
        ("d_month_seq", _N),
        ("d_week_seq", _N),
        ("d_quarter_seq", _N),
        ("d_year", _N),
        ("d_dow", _N),
        ("d_moy", _N),
        ("d_dom", _N),
        ("d_qoy", _N),
        ("d_fy_year", _N),
        ("d_day_name", _S),
        ("d_quarter_name", _S),
        ("d_holiday", _S),
        ("d_weekend", _S),
    ),
)

ITEM = TableSchema(
    name="item",
    primary_key="i_item_sk",
    columns=_columns(
        ("i_item_sk", _I),
        ("i_item_id", _S),
        ("i_rec_start_date", _DT),
        ("i_item_desc", _S),
        ("i_current_price", _D),
        ("i_wholesale_cost", _D),
        ("i_brand_id", _N),
        ("i_brand", _S),
        ("i_class_id", _N),
        ("i_class", _S),
        ("i_category_id", _N),
        ("i_category", _S),
        ("i_manufact_id", _N),
        ("i_manufact", _S),
        ("i_size", _S),
        ("i_color", _S),
        ("i_units", _S),
        ("i_product_name", _S),
    ),
)

CUSTOMER_DEMOGRAPHICS = TableSchema(
    name="customer_demographics",
    primary_key="cd_demo_sk",
    columns=_columns(
        ("cd_demo_sk", _I),
        ("cd_gender", _S),
        ("cd_marital_status", _S),
        ("cd_education_status", _S),
        ("cd_purchase_estimate", _N),
        ("cd_credit_rating", _S),
        ("cd_dep_count", _N),
        ("cd_dep_employed_count", _N),
        ("cd_dep_college_count", _N),
    ),
)

PROMOTION = TableSchema(
    name="promotion",
    primary_key="p_promo_sk",
    columns=_columns(
        ("p_promo_sk", _I),
        ("p_promo_id", _S),
        ("p_start_date_sk", _N),
        ("p_end_date_sk", _N),
        ("p_item_sk", _N),
        ("p_cost", _D),
        ("p_response_target", _N),
        ("p_promo_name", _S),
        ("p_channel_dmail", _S),
        ("p_channel_email", _S),
        ("p_channel_catalog", _S),
        ("p_channel_tv", _S),
        ("p_channel_radio", _S),
        ("p_channel_press", _S),
        ("p_channel_event", _S),
        ("p_channel_demo", _S),
        ("p_purpose", _S),
        ("p_discount_active", _S),
    ),
)

STORE = TableSchema(
    name="store",
    primary_key="s_store_sk",
    columns=_columns(
        ("s_store_sk", _I),
        ("s_store_id", _S),
        ("s_store_name", _S),
        ("s_number_employees", _N),
        ("s_floor_space", _N),
        ("s_hours", _S),
        ("s_manager", _S),
        ("s_market_id", _N),
        ("s_company_id", _N),
        ("s_company_name", _S),
        ("s_street_number", _S),
        ("s_street_name", _S),
        ("s_street_type", _S),
        ("s_suite_number", _S),
        ("s_city", _S),
        ("s_county", _S),
        ("s_state", _S),
        ("s_zip", _S),
        ("s_country", _S),
        ("s_tax_precentage", _D),
    ),
)

HOUSEHOLD_DEMOGRAPHICS = TableSchema(
    name="household_demographics",
    primary_key="hd_demo_sk",
    columns=_columns(
        ("hd_demo_sk", _I),
        ("hd_income_band_sk", _N),
        ("hd_buy_potential", _S),
        ("hd_dep_count", _N),
        ("hd_vehicle_count", _N),
    ),
    foreign_keys=(ForeignKey("hd_income_band_sk", "income_band", "ib_income_band_sk"),),
)

CUSTOMER_ADDRESS = TableSchema(
    name="customer_address",
    primary_key="ca_address_sk",
    columns=_columns(
        ("ca_address_sk", _I),
        ("ca_address_id", _S),
        ("ca_street_number", _S),
        ("ca_street_name", _S),
        ("ca_street_type", _S),
        ("ca_suite_number", _S),
        ("ca_city", _S),
        ("ca_county", _S),
        ("ca_state", _S),
        ("ca_zip", _S),
        ("ca_country", _S),
        ("ca_gmt_offset", _D),
        ("ca_location_type", _S),
    ),
)

CUSTOMER = TableSchema(
    name="customer",
    primary_key="c_customer_sk",
    columns=_columns(
        ("c_customer_sk", _I),
        ("c_customer_id", _S),
        ("c_current_cdemo_sk", _N),
        ("c_current_hdemo_sk", _N),
        ("c_current_addr_sk", _N),
        ("c_first_shipto_date_sk", _N),
        ("c_first_sales_date_sk", _N),
        ("c_salutation", _S),
        ("c_first_name", _S),
        ("c_last_name", _S),
        ("c_preferred_cust_flag", _S),
        ("c_birth_day", _N),
        ("c_birth_month", _N),
        ("c_birth_year", _N),
        ("c_birth_country", _S),
        ("c_email_address", _S),
    ),
    foreign_keys=(
        ForeignKey("c_current_cdemo_sk", "customer_demographics", "cd_demo_sk"),
        ForeignKey("c_current_hdemo_sk", "household_demographics", "hd_demo_sk"),
        ForeignKey("c_current_addr_sk", "customer_address", "ca_address_sk"),
    ),
)

WAREHOUSE = TableSchema(
    name="warehouse",
    primary_key="w_warehouse_sk",
    columns=_columns(
        ("w_warehouse_sk", _I),
        ("w_warehouse_id", _S),
        ("w_warehouse_name", _S),
        ("w_warehouse_sq_ft", _N),
        ("w_street_number", _S),
        ("w_street_name", _S),
        ("w_city", _S),
        ("w_county", _S),
        ("w_state", _S),
        ("w_zip", _S),
        ("w_country", _S),
    ),
)


# ---------------------------------------------------------------------------
# Fact tables used by the evaluation queries
# ---------------------------------------------------------------------------

STORE_SALES = TableSchema(
    name="store_sales",
    primary_key="ss_ticket_number",
    is_fact=True,
    columns=_columns(
        ("ss_sold_date_sk", _N),
        ("ss_sold_time_sk", _N),
        ("ss_item_sk", _I),
        ("ss_customer_sk", _N),
        ("ss_cdemo_sk", _N),
        ("ss_hdemo_sk", _N),
        ("ss_addr_sk", _N),
        ("ss_store_sk", _N),
        ("ss_promo_sk", _N),
        ("ss_ticket_number", _I),
        ("ss_quantity", _N),
        ("ss_wholesale_cost", _D),
        ("ss_list_price", _D),
        ("ss_sales_price", _D),
        ("ss_ext_discount_amt", _D),
        ("ss_ext_sales_price", _D),
        ("ss_coupon_amt", _D),
        ("ss_net_paid", _D),
        ("ss_net_profit", _D),
    ),
    foreign_keys=(
        ForeignKey("ss_sold_date_sk", "date_dim", "d_date_sk"),
        ForeignKey("ss_sold_time_sk", "time_dim", "t_time_sk"),
        ForeignKey("ss_item_sk", "item", "i_item_sk"),
        ForeignKey("ss_customer_sk", "customer", "c_customer_sk"),
        ForeignKey("ss_cdemo_sk", "customer_demographics", "cd_demo_sk"),
        ForeignKey("ss_hdemo_sk", "household_demographics", "hd_demo_sk"),
        ForeignKey("ss_addr_sk", "customer_address", "ca_address_sk"),
        ForeignKey("ss_store_sk", "store", "s_store_sk"),
        ForeignKey("ss_promo_sk", "promotion", "p_promo_sk"),
    ),
)

STORE_RETURNS = TableSchema(
    name="store_returns",
    primary_key="sr_ticket_number",
    is_fact=True,
    columns=_columns(
        ("sr_returned_date_sk", _N),
        ("sr_return_time_sk", _N),
        ("sr_item_sk", _I),
        ("sr_customer_sk", _N),
        ("sr_cdemo_sk", _N),
        ("sr_hdemo_sk", _N),
        ("sr_addr_sk", _N),
        ("sr_store_sk", _N),
        ("sr_reason_sk", _N),
        ("sr_ticket_number", _I),
        ("sr_return_quantity", _N),
        ("sr_return_amt", _D),
        ("sr_return_tax", _D),
        ("sr_fee", _D),
        ("sr_return_ship_cost", _D),
        ("sr_refunded_cash", _D),
        ("sr_net_loss", _D),
    ),
    foreign_keys=(
        ForeignKey("sr_returned_date_sk", "date_dim", "d_date_sk"),
        ForeignKey("sr_return_time_sk", "time_dim", "t_time_sk"),
        ForeignKey("sr_item_sk", "item", "i_item_sk"),
        ForeignKey("sr_customer_sk", "customer", "c_customer_sk"),
        ForeignKey("sr_cdemo_sk", "customer_demographics", "cd_demo_sk"),
        ForeignKey("sr_hdemo_sk", "household_demographics", "hd_demo_sk"),
        ForeignKey("sr_addr_sk", "customer_address", "ca_address_sk"),
        ForeignKey("sr_store_sk", "store", "s_store_sk"),
        ForeignKey("sr_reason_sk", "reason", "r_reason_sk"),
    ),
)

INVENTORY = TableSchema(
    name="inventory",
    primary_key="inv_item_sk",
    is_fact=True,
    columns=_columns(
        ("inv_date_sk", _N),
        ("inv_item_sk", _I),
        ("inv_warehouse_sk", _N),
        ("inv_quantity_on_hand", _N),
    ),
    foreign_keys=(
        ForeignKey("inv_date_sk", "date_dim", "d_date_sk"),
        ForeignKey("inv_item_sk", "item", "i_item_sk"),
        ForeignKey("inv_warehouse_sk", "warehouse", "w_warehouse_sk"),
    ),
)


# ---------------------------------------------------------------------------
# Remaining tables (participate in data loading only)
# ---------------------------------------------------------------------------

CALL_CENTER = TableSchema(
    name="call_center",
    primary_key="cc_call_center_sk",
    columns=_columns(
        ("cc_call_center_sk", _I),
        ("cc_call_center_id", _S),
        ("cc_name", _S),
        ("cc_class", _S),
        ("cc_employees", _N),
        ("cc_city", _S),
        ("cc_state", _S),
    ),
)

CATALOG_PAGE = TableSchema(
    name="catalog_page",
    primary_key="cp_catalog_page_sk",
    columns=_columns(
        ("cp_catalog_page_sk", _I),
        ("cp_catalog_page_id", _S),
        ("cp_department", _S),
        ("cp_catalog_number", _N),
        ("cp_catalog_page_number", _N),
        ("cp_description", _S),
        ("cp_type", _S),
    ),
)

CATALOG_SALES = TableSchema(
    name="catalog_sales",
    primary_key="cs_order_number",
    is_fact=True,
    columns=_columns(
        ("cs_sold_date_sk", _N),
        ("cs_item_sk", _I),
        ("cs_bill_customer_sk", _N),
        ("cs_order_number", _I),
        ("cs_quantity", _N),
        ("cs_list_price", _D),
        ("cs_sales_price", _D),
        ("cs_net_profit", _D),
    ),
    foreign_keys=(
        ForeignKey("cs_sold_date_sk", "date_dim", "d_date_sk"),
        ForeignKey("cs_item_sk", "item", "i_item_sk"),
        ForeignKey("cs_bill_customer_sk", "customer", "c_customer_sk"),
    ),
)

CATALOG_RETURNS = TableSchema(
    name="catalog_returns",
    primary_key="cr_order_number",
    is_fact=True,
    columns=_columns(
        ("cr_returned_date_sk", _N),
        ("cr_item_sk", _I),
        ("cr_refunded_customer_sk", _N),
        ("cr_order_number", _I),
        ("cr_return_quantity", _N),
        ("cr_return_amount", _D),
        ("cr_net_loss", _D),
    ),
    foreign_keys=(
        ForeignKey("cr_returned_date_sk", "date_dim", "d_date_sk"),
        ForeignKey("cr_item_sk", "item", "i_item_sk"),
    ),
)

INCOME_BAND = TableSchema(
    name="income_band",
    primary_key="ib_income_band_sk",
    columns=_columns(
        ("ib_income_band_sk", _I),
        ("ib_lower_bound", _N),
        ("ib_upper_bound", _N),
    ),
)

REASON = TableSchema(
    name="reason",
    primary_key="r_reason_sk",
    columns=_columns(
        ("r_reason_sk", _I),
        ("r_reason_id", _S),
        ("r_reason_desc", _S),
    ),
)

SHIP_MODE = TableSchema(
    name="ship_mode",
    primary_key="sm_ship_mode_sk",
    columns=_columns(
        ("sm_ship_mode_sk", _I),
        ("sm_ship_mode_id", _S),
        ("sm_type", _S),
        ("sm_code", _S),
        ("sm_carrier", _S),
        ("sm_contract", _S),
    ),
)

TIME_DIM = TableSchema(
    name="time_dim",
    primary_key="t_time_sk",
    columns=_columns(
        ("t_time_sk", _I),
        ("t_time_id", _S),
        ("t_time", _N),
        ("t_hour", _N),
        ("t_minute", _N),
        ("t_second", _N),
        ("t_am_pm", _S),
        ("t_shift", _S),
    ),
)

WEB_PAGE = TableSchema(
    name="web_page",
    primary_key="wp_web_page_sk",
    columns=_columns(
        ("wp_web_page_sk", _I),
        ("wp_web_page_id", _S),
        ("wp_creation_date_sk", _N),
        ("wp_url", _S),
        ("wp_type", _S),
        ("wp_char_count", _N),
    ),
)

WEB_SALES = TableSchema(
    name="web_sales",
    primary_key="ws_order_number",
    is_fact=True,
    columns=_columns(
        ("ws_sold_date_sk", _N),
        ("ws_item_sk", _I),
        ("ws_bill_customer_sk", _N),
        ("ws_order_number", _I),
        ("ws_quantity", _N),
        ("ws_list_price", _D),
        ("ws_sales_price", _D),
        ("ws_net_profit", _D),
    ),
    foreign_keys=(
        ForeignKey("ws_sold_date_sk", "date_dim", "d_date_sk"),
        ForeignKey("ws_item_sk", "item", "i_item_sk"),
        ForeignKey("ws_bill_customer_sk", "customer", "c_customer_sk"),
    ),
)

WEB_RETURNS = TableSchema(
    name="web_returns",
    primary_key="wr_order_number",
    is_fact=True,
    columns=_columns(
        ("wr_returned_date_sk", _N),
        ("wr_item_sk", _I),
        ("wr_refunded_customer_sk", _N),
        ("wr_order_number", _I),
        ("wr_return_quantity", _N),
        ("wr_return_amt", _D),
        ("wr_net_loss", _D),
    ),
    foreign_keys=(
        ForeignKey("wr_returned_date_sk", "date_dim", "d_date_sk"),
        ForeignKey("wr_item_sk", "item", "i_item_sk"),
    ),
)

WEB_SITE = TableSchema(
    name="web_site",
    primary_key="web_site_sk",
    columns=_columns(
        ("web_site_sk", _I),
        ("web_site_id", _S),
        ("web_name", _S),
        ("web_class", _S),
        ("web_manager", _S),
        ("web_city", _S),
        ("web_state", _S),
    ),
)


#: Every TPC-DS table, keyed by name.
TPCDS_TABLES: dict[str, TableSchema] = {
    table.name: table
    for table in (
        CALL_CENTER,
        CATALOG_PAGE,
        CATALOG_RETURNS,
        CATALOG_SALES,
        CUSTOMER,
        CUSTOMER_ADDRESS,
        CUSTOMER_DEMOGRAPHICS,
        DATE_DIM,
        HOUSEHOLD_DEMOGRAPHICS,
        INCOME_BAND,
        INVENTORY,
        ITEM,
        PROMOTION,
        REASON,
        SHIP_MODE,
        STORE,
        STORE_RETURNS,
        STORE_SALES,
        TIME_DIM,
        WAREHOUSE,
        WEB_PAGE,
        WEB_RETURNS,
        WEB_SALES,
        WEB_SITE,
    )
}

#: Names of the 7 fact tables.
FACT_TABLES: tuple[str, ...] = tuple(
    sorted(name for name, table in TPCDS_TABLES.items() if table.is_fact)
)

#: Names of the 17 dimension tables.
DIMENSION_TABLES: tuple[str, ...] = tuple(
    sorted(name for name, table in TPCDS_TABLES.items() if not table.is_fact)
)

#: The 12 tables used by queries 7, 21, 46, and 50 (3 facts + 9 dimensions).
QUERY_TABLES: tuple[str, ...] = (
    "store_sales",
    "store_returns",
    "inventory",
    "date_dim",
    "item",
    "customer_demographics",
    "promotion",
    "store",
    "household_demographics",
    "customer_address",
    "customer",
    "warehouse",
)


def table_schema(name: str) -> TableSchema:
    """Return the schema of the table called *name*."""
    try:
        return TPCDS_TABLES[name]
    except KeyError:
        raise KeyError(f"unknown TPC-DS table {name!r}") from None
