"""The four evaluation queries.

Table 3.5 of the paper selects queries 7, 21, 46, and 50 from the TPC-DS
data-mining class because each one joins four or more tables, aggregates,
groups and orders, and (for some) uses conditional constructs or a correlated
subquery.  This module records, for each query:

* the original SQL text (Figures 3.5–3.8), parameterized per scale exactly as
  ``dsqgen`` varies the predicate values between scales;
* the per-scale predicate parameter values used by the reproduction;
* the feature summary of Table 3.5.

The executable translations (aggregation pipelines and the normalized
semi-join plans) live in :mod:`repro.core.translate_denormalized` and
:mod:`repro.core.translate_normalized`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = [
    "QueryDefinition",
    "QUERY_DEFINITIONS",
    "QUERY_IDS",
    "query_definition",
    "query_parameters",
    "QUERY_FEATURES",
]

QUERY_IDS = (7, 21, 46, 50)


@dataclass(frozen=True)
class QueryDefinition:
    """Static description of one evaluation query."""

    query_id: int
    name: str
    description: str
    fact_tables: tuple[str, ...]
    dimension_tables: tuple[str, ...]
    sql_template: str
    default_parameters: Mapping[str, Any] = field(default_factory=dict)
    features: Mapping[str, int] = field(default_factory=dict)

    def sql(self, parameters: Mapping[str, Any] | None = None) -> str:
        """Return the SQL text with *parameters* substituted."""
        values = dict(self.default_parameters)
        if parameters:
            values.update(parameters)
        return self.sql_template.format(**values)

    @property
    def tables(self) -> tuple[str, ...]:
        """Every table referenced by the query."""
        return self.fact_tables + self.dimension_tables


_QUERY7_SQL = """\
select i_item_id,
       avg(ss_quantity) agg1,
       avg(ss_list_price) agg2,
       avg(ss_coupon_amt) agg3,
       avg(ss_sales_price) agg4
from store_sales, customer_demographics, date_dim, item, promotion
where ss_sold_date_sk = d_date_sk and
      ss_item_sk = i_item_sk and
      ss_cdemo_sk = cd_demo_sk and
      ss_promo_sk = p_promo_sk and
      cd_gender = '{gender}' and
      cd_marital_status = '{marital_status}' and
      cd_education_status = '{education_status}' and
      (p_channel_email = 'N' or p_channel_event = 'N') and
      d_year = {year}
group by i_item_id
order by i_item_id"""

_QUERY21_SQL = """\
select *
from (select w_warehouse_name, i_item_id,
             sum(case when (cast(d_date as date) < cast('{sales_date}' as date))
                      then inv_quantity_on_hand else 0 end) as inv_before,
             sum(case when (cast(d_date as date) >= cast('{sales_date}' as date))
                      then inv_quantity_on_hand else 0 end) as inv_after
      from inventory, warehouse, item, date_dim
      where i_current_price between {price_min} and {price_max}
        and i_item_sk = inv_item_sk
        and inv_warehouse_sk = w_warehouse_sk
        and inv_date_sk = d_date_sk
        and d_date between (cast('{sales_date}' as date) - 30 days)
                       and (cast('{sales_date}' as date) + 30 days)
      group by w_warehouse_name, i_item_id) x
where (case when inv_before > 0 then inv_after / inv_before else null end)
      between 2.0/3.0 and 3.0/2.0
order by w_warehouse_name, i_item_id"""

_QUERY46_SQL = """\
select c_last_name, c_first_name, ca_city, bought_city, ss_ticket_number, amt, profit
from (select ss_ticket_number, ss_customer_sk, ca_city bought_city,
             sum(ss_coupon_amt) amt, sum(ss_net_profit) profit
      from store_sales, date_dim, store, household_demographics, customer_address
      where store_sales.ss_sold_date_sk = date_dim.d_date_sk
        and store_sales.ss_store_sk = store.s_store_sk
        and store_sales.ss_hdemo_sk = household_demographics.hd_demo_sk
        and store_sales.ss_addr_sk = customer_address.ca_address_sk
        and (household_demographics.hd_dep_count = {dep_count} or
             household_demographics.hd_vehicle_count = {vehicle_count})
        and date_dim.d_dow in (6, 0)
        and date_dim.d_year in ({year}, {year}+1, {year}+2)
        and store.s_city in ({cities})
      group by ss_ticket_number, ss_customer_sk, ss_addr_sk, ca_city) dn,
     customer, customer_address current_addr
where ss_customer_sk = c_customer_sk
  and customer.c_current_addr_sk = current_addr.ca_address_sk
  and current_addr.ca_city <> bought_city
order by c_last_name, c_first_name, ca_city, bought_city, ss_ticket_number"""

_QUERY50_SQL = """\
select s_store_name, s_company_id, s_street_number, s_street_name, s_street_type,
       s_suite_number, s_city, s_county, s_state, s_zip,
       sum(case when (sr_returned_date_sk - ss_sold_date_sk <= 30) then 1 else 0 end) as "30 days",
       sum(case when (sr_returned_date_sk - ss_sold_date_sk > 30) and
                     (sr_returned_date_sk - ss_sold_date_sk <= 60) then 1 else 0 end) as "31-60 days",
       sum(case when (sr_returned_date_sk - ss_sold_date_sk > 60) and
                     (sr_returned_date_sk - ss_sold_date_sk <= 90) then 1 else 0 end) as "61-90 days",
       sum(case when (sr_returned_date_sk - ss_sold_date_sk > 90) and
                     (sr_returned_date_sk - ss_sold_date_sk <= 120) then 1 else 0 end) as "91-120 days",
       sum(case when (sr_returned_date_sk - ss_sold_date_sk > 120) then 1 else 0 end) as ">120 days"
from store_sales, store_returns, store, date_dim d1, date_dim d2
where d2.d_year = {year}
  and d2.d_moy = {month}
  and ss_ticket_number = sr_ticket_number
  and ss_item_sk = sr_item_sk
  and ss_sold_date_sk = d1.d_date_sk
  and sr_returned_date_sk = d2.d_date_sk
  and ss_customer_sk = sr_customer_sk
  and ss_store_sk = s_store_sk
group by s_store_name, s_company_id, s_street_number, s_street_name, s_street_type,
         s_suite_number, s_city, s_county, s_state, s_zip
order by s_store_name, s_company_id, s_street_number, s_street_name, s_street_type,
         s_suite_number, s_city"""


QUERY_DEFINITIONS: dict[int, QueryDefinition] = {
    7: QueryDefinition(
        query_id=7,
        name="query7",
        description=(
            "Average quantity, list price, coupon amount, and sales price per "
            "item for sales to a demographic bucket during one year."
        ),
        fact_tables=("store_sales",),
        dimension_tables=("customer_demographics", "date_dim", "item", "promotion"),
        sql_template=_QUERY7_SQL,
        default_parameters={
            "gender": "M",
            "marital_status": "M",
            "education_status": "4 yr Degree",
            "year": 2001,
        },
        features={
            "tables": 5,
            "aggregation_functions": 4,
            "group_order_clauses": 1,
            "conditional_constructs": 0,
            "correlated_subqueries": 0,
        },
    ),
    21: QueryDefinition(
        query_id=21,
        name="query21",
        description=(
            "Inventory quantity before/after a date for items in a price band, "
            "per warehouse and item, keeping warehouses whose ratio stayed "
            "within [2/3, 3/2]."
        ),
        fact_tables=("inventory",),
        dimension_tables=("warehouse", "item", "date_dim"),
        sql_template=_QUERY21_SQL,
        default_parameters={
            "sales_date": "2002-05-29",
            "price_min": 0.99,
            "price_max": 1.49,
        },
        features={
            "tables": 4,
            "aggregation_functions": 2,
            "group_order_clauses": 1,
            "conditional_constructs": 3,
            "correlated_subqueries": 0,
        },
    ),
    46: QueryDefinition(
        query_id=46,
        name="query46",
        description=(
            "Weekend purchases in selected cities by households with a given "
            "dependent or vehicle count, for customers who bought in a city "
            "different from their home city."
        ),
        fact_tables=("store_sales",),
        dimension_tables=(
            "date_dim",
            "store",
            "household_demographics",
            "customer_address",
            "customer",
        ),
        sql_template=_QUERY46_SQL,
        default_parameters={
            "dep_count": 2,
            "vehicle_count": 3,
            "year": 1998,
            "cities": "'Midway','Fairview','Fairview','Fairview','Fairview'",
        },
        features={
            "tables": 6,
            "aggregation_functions": 2,
            "group_order_clauses": 1,
            "conditional_constructs": 0,
            "correlated_subqueries": 1,
        },
    ),
    50: QueryDefinition(
        query_id=50,
        name="query50",
        description=(
            "Return-latency aging buckets (30/60/90/120/120+ days) per store "
            "for returns accepted in one month."
        ),
        fact_tables=("store_sales", "store_returns"),
        dimension_tables=("store", "date_dim"),
        sql_template=_QUERY50_SQL,
        default_parameters={"year": 1998, "month": 10},
        features={
            "tables": 5,
            "aggregation_functions": 5,
            "group_order_clauses": 1,
            "conditional_constructs": 5,
            "correlated_subqueries": 0,
        },
    ),
}

#: Table 3.5 of the paper, keyed by query id.
QUERY_FEATURES: dict[int, Mapping[str, int]] = {
    query_id: definition.features for query_id, definition in QUERY_DEFINITIONS.items()
}

#: Per-scale predicate values.  ``dsqgen`` regenerates predicates per scale;
#: the reproduction keeps them identical across scales (the paper notes only
#: the values differ, not the query structure), except where noted.
_SCALE_PARAMETERS: dict[str, dict[int, dict[str, Any]]] = {
    "small": {7: {}, 21: {}, 46: {}, 50: {}},
    "large": {7: {}, 21: {}, 46: {}, 50: {}},
}


def query_definition(query_id: int) -> QueryDefinition:
    """Return the definition of query *query_id*."""
    try:
        return QUERY_DEFINITIONS[query_id]
    except KeyError:
        raise KeyError(
            f"query {query_id} is not part of the evaluation (use one of {QUERY_IDS})"
        ) from None


def query_parameters(query_id: int, scale_name: str = "small") -> dict[str, Any]:
    """Predicate parameter values for *query_id* at *scale_name*."""
    definition = query_definition(query_id)
    parameters = dict(definition.default_parameters)
    parameters.update(_SCALE_PARAMETERS.get(scale_name, {}).get(query_id, {}))
    return parameters
