"""repro — reproduction of "Performance Evaluation of Analytical Queries on a
Stand-alone and Sharded Document Store" (EDBT 2017).

Subpackages
-----------
``repro.documentstore``
    A from-scratch, in-process document store (the substitute for the
    document database benchmarked in the paper).
``repro.sharding``
    Sharded-cluster components: shards, config server, query router,
    chunk management, balancer, and a simulated network.
``repro.server``
    The served front door: a length-prefixed binary wire protocol, a
    threaded socket server fronting either deployment environment, and a
    pooled remote client re-speaking the Collection API.
``repro.tpcds``
    A scaled-down TPC-DS-style data generator, the ``.dat`` file format, and
    the four analytical queries (7, 21, 46, 50) used in the evaluation.
``repro.core``
    The paper's contribution: the data-migration algorithm, the
    denormalization (document-embedding) algorithm, the SQL-to-document
    query-translation algorithms, and the six experimental setups.
"""

from importlib.metadata import PackageNotFoundError, version

try:  # pragma: no cover - depends on installation mode
    __version__ = version("repro")
except PackageNotFoundError:  # pragma: no cover
    __version__ = "0.0.0.dev0"

__all__ = ["__version__"]
