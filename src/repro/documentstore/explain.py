"""The unified ``explain()`` schema shared by every query surface.

Before this module each surface grew its own explain shape —
``Cursor.explain()``, ``Collection.explain_find`` /
``explain_aggregate``, and the router's variants all returned similar
but differently-keyed documents.  The redesigned entry point is one
method everywhere::

    collection.explain(query_or_pipeline, verbosity="queryPlanner")

available with the same signature — and the same document shape — on a
stand-alone :class:`~repro.documentstore.collection.Collection`, a
sharded ``RoutedCollection``, and a served ``RemoteCollection``.  The
old names survive as thin deprecated aliases returning their historical
shapes.

Schema (version 1)::

    {
      "explainVersion": 1,
      "surface":   "standalone" | "sharded" | "served",
      "operation": "find" | "aggregate",
      "verbosity": "queryPlanner" | "executionStats",
      "namespace": "db.collection",
      "queryPlanner": {
        "winningPlan": {...},     # access path (COLLSCAN/IXSCAN/
                                  # VECTOR_SEARCH/SINGLE_SHARD/SHARD_MERGE)
        "sortMode": str | None,   # indexOrder/topK/sortMaterialize/
                                  # streamingKWayMerge/None
        "spec": {...},            # the find spec, or {"pipeline": [...]}
      },
      "shards": {shard_id: {...}},  # per-shard plans ({} standalone)
      # present if and only if verbosity == "executionStats":
      "executionStats": {
        "nReturned": int,
        "stages": [{...}],          # per-stage counters ([] for finds)
        "shards": {shard_id: {...}},  # per-shard runtime stats
      },
    }

Every key above is present on every surface for the same operation and
verbosity — that shape identity is asserted by the parity tests.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from .errors import OperationFailure

__all__ = [
    "EXPLAIN_VERSION",
    "VERBOSITIES",
    "TOP_LEVEL_KEYS",
    "PLANNER_KEYS",
    "EXECUTION_KEYS",
    "validate_verbosity",
    "build_explain",
    "build_execution_stats",
]

EXPLAIN_VERSION = 1

VERBOSITIES = ("queryPlanner", "executionStats")

#: Key sets of the schema, importable by shape-parity tests.
TOP_LEVEL_KEYS = frozenset(
    {"explainVersion", "surface", "operation", "verbosity", "namespace", "queryPlanner", "shards"}
)
PLANNER_KEYS = frozenset({"winningPlan", "sortMode", "spec"})
EXECUTION_KEYS = frozenset({"nReturned", "stages", "shards"})


def validate_verbosity(verbosity: str) -> str:
    """Return *verbosity* if valid, else raise a clear ``OperationFailure``."""
    if verbosity not in VERBOSITIES:
        raise OperationFailure(
            f"unknown explain verbosity {verbosity!r} "
            f"(expected one of {', '.join(VERBOSITIES)})"
        )
    return verbosity


def build_execution_stats(
    *,
    n_returned: int,
    stages: Sequence[Mapping[str, Any]] | None = None,
    shards: Mapping[str, Any] | None = None,
    extra: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """An ``executionStats`` section with the canonical keys always present."""
    section: dict[str, Any] = {
        "nReturned": int(n_returned),
        "stages": [dict(stage) for stage in stages or []],
        "shards": dict(shards or {}),
    }
    if extra:
        section.update(extra)
    return section


def build_explain(
    *,
    surface: str,
    operation: str,
    verbosity: str,
    namespace: str,
    winning_plan: Mapping[str, Any],
    sort_mode: str | None = None,
    spec: Mapping[str, Any] | None = None,
    shards: Mapping[str, Any] | None = None,
    execution_stats: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Assemble one schema-v1 explain document.

    ``execution_stats`` must be provided exactly when *verbosity* is
    ``"executionStats"`` — the builder enforces the schema invariant so no
    surface can drift.
    """
    validate_verbosity(verbosity)
    wants_stats = verbosity == "executionStats"
    if wants_stats != (execution_stats is not None):  # pragma: no cover - guard
        raise OperationFailure(
            "executionStats section must be present exactly at executionStats verbosity"
        )
    document: dict[str, Any] = {
        "explainVersion": EXPLAIN_VERSION,
        "surface": surface,
        "operation": operation,
        "verbosity": verbosity,
        "namespace": namespace,
        "queryPlanner": {
            "winningPlan": dict(winning_plan),
            "sortMode": sort_mode,
            "spec": dict(spec) if spec else {},
        },
        "shards": dict(shards or {}),
    }
    if execution_stats is not None:
        document["executionStats"] = dict(execution_stats)
    return document
