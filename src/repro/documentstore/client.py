"""Top-level client.

A :class:`DocumentStoreClient` plays the role of a driver connection to a
single ``mongod`` process — the stand-alone deployment environment of the
paper.  The sharded deployment environment is provided by
:class:`repro.sharding.cluster.ShardedCluster`, which exposes the same
database/collection API through its query router.
"""

from __future__ import annotations

from typing import Iterator

from .database import Database

__all__ = ["DocumentStoreClient"]


class DocumentStoreClient:
    """An in-process document store server (stand-alone deployment)."""

    def __init__(self, name: str = "standalone") -> None:
        self.name = name
        self._databases: dict[str, Database] = {}

    def __getitem__(self, name: str) -> Database:
        """Return the database called *name*, creating it lazily."""
        if name not in self._databases:
            self._databases[name] = Database(self, name)
        return self._databases[name]

    def __getattr__(self, name: str) -> Database:
        if name.startswith("_"):
            raise AttributeError(name)
        return self[name]

    def __iter__(self) -> Iterator[Database]:
        return iter(list(self._databases.values()))

    def get_database(self, name: str) -> Database:
        """Return (and lazily create) the database called *name*."""
        return self[name]

    def list_database_names(self) -> list[str]:
        """Names of every database, sorted."""
        return sorted(self._databases)

    def drop_database(self, name: str) -> None:
        """Drop the database called *name* and all its collections."""
        database = self._databases.pop(name, None)
        if database is not None:
            for collection_name in database.list_collection_names():
                database.drop_collection(collection_name)

    def server_info(self) -> dict[str, object]:
        """Server metadata, mirroring the version benchmarked in the paper."""
        return {
            "version": "3.0.2-repro",
            "storageEngine": "in-memory",
            "deployment": "standalone",
        }

    def total_data_size(self) -> int:
        """Total data size across all databases, in bytes."""
        return sum(int(database.stats()["dataSize"]) for database in self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DocumentStoreClient({self.name!r}, databases={len(self._databases)})"
