"""Top-level client.

A :class:`DocumentStoreClient` plays the role of a driver connection to a
single ``mongod`` process — the stand-alone deployment environment of the
paper.  The sharded deployment environment is provided by
:class:`repro.sharding.cluster.ShardedCluster`, which exposes the same
database/collection API through its query router.

Given a ``data_dir`` the client is *durable*: construction recovers
whatever the directory holds (snapshot load + WAL replay, truncating any
torn tail), and from then on every acknowledged write batch is logged
through the :class:`~repro.documentstore.storage.StorageEngine` before the
call returns.  Without a ``data_dir`` the store stays purely in-memory, as
in earlier PRs.
"""

from __future__ import annotations

import pathlib
from typing import Any, Iterator

from .database import Database
from .storage import StorageEngine

__all__ = ["DocumentStoreClient"]


class DocumentStoreClient:
    """An in-process document store server (stand-alone deployment)."""

    def __init__(
        self,
        name: str = "standalone",
        *,
        data_dir: str | pathlib.Path | None = None,
        fsync: str = "batch",
        batch_fsync_every: int | None = None,
        auto_checkpoint_bytes: int | None = None,
        storage_engine: StorageEngine | None = None,
    ) -> None:
        self.name = name
        self._databases: dict[str, Database] = {}
        # A real instance attribute, set before any engine work: __getattr__
        # materializes a *database* for unknown attribute names, so ``engine``
        # must always resolve through normal attribute lookup.
        self.engine: StorageEngine | None = None
        if storage_engine is None and data_dir is not None:
            kwargs: dict[str, Any] = {"fsync": fsync}
            if batch_fsync_every is not None:
                kwargs["batch_fsync_every"] = batch_fsync_every
            if auto_checkpoint_bytes is not None:
                kwargs["auto_checkpoint_bytes"] = auto_checkpoint_bytes
            storage_engine = StorageEngine(data_dir, **kwargs)
        if storage_engine is not None:
            # Recover first (logging disabled during replay), then publish
            # the engine so subsequent writes append to the WAL.
            storage_engine.attach(self)
            self.engine = storage_engine

    def __getitem__(self, name: str) -> Database:
        """Return the database called *name*, creating it lazily."""
        if name not in self._databases:
            self._databases[name] = Database(self, name)
        return self._databases[name]

    def __getattr__(self, name: str) -> Database:
        if name.startswith("_"):
            raise AttributeError(name)
        return self[name]

    def __iter__(self) -> Iterator[Database]:
        return iter(list(self._databases.values()))

    def get_database(self, name: str) -> Database:
        """Return (and lazily create) the database called *name*."""
        return self[name]

    def list_database_names(self) -> list[str]:
        """Names of every database, sorted."""
        return sorted(self._databases)

    def drop_database(self, name: str) -> None:
        """Drop the database called *name* and all its collections."""
        database = self._databases.pop(name, None)
        if database is not None:
            for collection_name in database.list_collection_names():
                database.drop_collection(collection_name)
            if self.engine is not None:
                self.engine.log(name, None, {"op": "drop_database"})

    # ------------------------------------------------------------- durability

    def flush_durability(self) -> None:
        """Force group-committed WAL records to stable storage (if durable)."""
        if self.engine is not None:
            self.engine.flush()

    def checkpoint(self) -> int | None:
        """Snapshot + WAL truncation; returns the new generation (if durable)."""
        if self.engine is not None:
            return self.engine.checkpoint()
        return None

    def close(self) -> None:
        """Flush and detach the storage engine (a no-op when in-memory)."""
        if self.engine is not None:
            self.engine.close()

    def durability_status(self) -> dict[str, Any]:
        """Durability counters, or ``{"active": False}`` when in-memory."""
        if self.engine is None:
            return {"active": False}
        return self.engine.status()

    def __enter__(self) -> "DocumentStoreClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ----------------------------------------------------------------- meta

    def server_info(self) -> dict[str, object]:
        """Server metadata, mirroring the version benchmarked in the paper."""
        return {
            "version": "3.0.2-repro",
            "storageEngine": "wal" if self.engine is not None else "in-memory",
            "deployment": "standalone",
        }

    def total_data_size(self) -> int:
        """Total data size across all databases, in bytes."""
        return sum(int(database.stats()["dataSize"]) for database in self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DocumentStoreClient({self.name!r}, databases={len(self._databases)})"
