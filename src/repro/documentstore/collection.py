"""Collections: the document store's core CRUD + aggregation surface.

A :class:`Collection` owns its documents, its indexes (the default ``_id``
index plus any user-created secondary indexes), and exposes the operations
the thesis algorithms rely on:

* ``insert_one`` / ``insert_many`` (data migration, Figure 4.3);
* ``find`` returning a cursor (EmbedDocuments, Figure 4.7, step 3);
* ``update_many`` with ``upsert``/``multi`` semantics (Figure 4.7, step 10);
* ``aggregate`` executing an aggregation pipeline (Appendix B queries);
* ``create_index`` for the index types of Section 2.1.2.
"""

from __future__ import annotations

import heapq
import itertools
from contextlib import contextmanager, nullcontext
from typing import TYPE_CHECKING, Any, ContextManager, Iterable, Iterator, Mapping, Sequence

from .aggregation import StageStats, optimize_pipeline, run_pipeline
from .bson import (
    deep_copy_document,
    document_size,
    ensure_document_size,
    validate_document,
    validate_update_values,
)
from .cursor import (
    Cursor,
    DeleteResult,
    InsertManyResult,
    InsertOneResult,
    UpdateResult,
    project_document,
)
from .errors import (
    DocumentStoreError,
    DuplicateKeyError,
    IndexNotFoundError,
    InvalidDocumentError,
    OperationFailure,
)
from .explain import build_execution_stats, build_explain, validate_verbosity
from .findspec import FindSpec
from .indexes import ASCENDING, Index, IndexSpec
from .matching import compile_matcher, resolve_path, values_equal
from .objectid import ObjectId
from .ordering import document_sort_key
from .planner import QueryPlan, plan_find, plan_query
from .update import apply_update, build_upsert_document, is_update_document
from .vector import VectorIndex

if TYPE_CHECKING:  # pragma: no cover
    from .database import Database

__all__ = ["Collection", "CollectionStats", "bulk_load_or_noop"]


def bulk_load_or_noop(collection: Any) -> ContextManager[Any]:
    """``collection.bulk_load()`` when the target supports it, else a no-op.

    Loaders accept both stand-alone collections (which defer secondary-index
    maintenance during the load) and routed collections (which don't expose
    ``bulk_load`` — the router already batch-routes every insert).
    """
    bulk_load = getattr(collection, "bulk_load", None)
    return bulk_load() if callable(bulk_load) else nullcontext()


class CollectionStats:
    """Size and access statistics for a collection (``collstats`` analogue)."""

    def __init__(self, collection: "Collection") -> None:
        self.name = collection.name
        self.count = len(collection)
        self.size_bytes = collection.data_size()
        self.storage_size_bytes = self.size_bytes
        self.index_count = len(collection.index_information())
        self.index_size_bytes = collection.index_size()
        self.avg_document_size = (
            self.size_bytes / self.count if self.count else 0.0
        )

    def as_dict(self) -> dict[str, Any]:
        """Return the statistics as a plain dictionary."""
        return {
            "ns": self.name,
            "count": self.count,
            "size": self.size_bytes,
            "storageSize": self.storage_size_bytes,
            "nindexes": self.index_count,
            "totalIndexSize": self.index_size_bytes,
            "avgObjSize": self.avg_document_size,
        }


class Collection:
    """A named set of documents with indexes."""

    def __init__(self, database: "Database | None", name: str) -> None:
        if not name or "$" in name:
            raise OperationFailure(f"invalid collection name {name!r}")
        self._database = database
        self.name = name
        self._documents: dict[int, dict[str, Any]] = {}
        self._doc_id_counter = itertools.count(1)
        self._indexes: dict[str, Index | VectorIndex] = {}
        self._id_index = Index(IndexSpec(keys=(("_id", ASCENDING),), unique=True, name="_id_"))
        self._indexes["_id_"] = self._id_index
        # Secondary-index deferral (bulk_load / create_index(defer=True)).
        # Deferred or pending indexes are not maintained by writes and not
        # consulted by the planner until rebuild_indexes() brings them back.
        self._defer_secondary_indexes = False
        self._deferred_writes = False
        self._pending_index_builds: set[str] = set()
        # Operation counters used by benchmarks and the sharded router.
        self.operation_counters = {
            "inserts": 0,
            "queries": 0,
            "updates": 0,
            "deletes": 0,
            "documents_scanned": 0,
        }

    # ------------------------------------------------------------------ meta

    @property
    def database(self) -> "Database | None":
        """The owning database (``None`` for free-standing collections)."""
        return self._database

    @property
    def full_name(self) -> str:
        """The namespaced name, ``database.collection``."""
        if self._database is None:
            return self.name
        return f"{self._database.name}.{self.name}"

    def __len__(self) -> int:
        return len(self._documents)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Collection({self.full_name!r}, count={len(self)})"

    def data_size(self) -> int:
        """Total serialized size of all documents, in bytes."""
        return sum(document_size(document) for document in self._documents.values())

    def index_size(self) -> int:
        """Approximate total index size, in bytes (16 bytes per entry)."""
        return sum(16 * len(index) for index in self._indexes.values())

    def stats(self) -> CollectionStats:
        """Return collection statistics."""
        return CollectionStats(self)

    # ------------------------------------------------------------- durability

    def _write_log(self, record: dict[str, Any]) -> None:
        """Append one write record to the owning client's WAL, if any.

        Called *after* the in-memory apply and *before* the operation
        returns, so an acknowledgement implies the record met the engine's
        fsync policy.  Free-standing collections and clients without a data
        directory skip straight through.
        """
        database = self._database
        if database is None:
            return
        engine = database.storage_engine
        if engine is not None:
            engine.log(database.name, self.name, record)

    # --------------------------------------------------------------- indexes

    def create_index(
        self,
        keys: str | Sequence[tuple[str, Any]] | Mapping[str, Any],
        *,
        unique: bool = False,
        name: str = "",
        defer: bool = False,
    ) -> str:
        """Create a secondary index and return its name.

        Re-creating an index with an identical specification is a no-op.
        The index is built with one key-extraction pass and one sort
        (O(n log n)) rather than n incremental sorted-array inserts.

        *keys* accepts the legacy sugar forms (field name, key list,
        ``{field: direction}`` mapping) or a structured spec document such
        as ``{"keys": ["embedding"], "type": "vector", "dims": 16,
        "metric": "cosine"}`` — the form :meth:`list_indexes` returns.

        With ``defer=True`` — or inside a :meth:`bulk_load` block — the
        index is registered but left empty; it is built by the next
        :meth:`rebuild_indexes` call (which ``bulk_load`` exit performs
        automatically).  Until then the planner ignores it.
        """
        spec = IndexSpec.from_key_specification(keys, unique=unique, name=name)
        if spec.name in self._indexes:
            return spec.name
        ddl_record = {"op": "create_index", "spec": spec.describe()}
        index: Index | VectorIndex
        if spec.is_vector:
            index = VectorIndex(spec)
        else:
            index = Index(spec)
        if defer or self._defer_secondary_indexes:
            self._indexes[spec.name] = index
            self._pending_index_builds.add(spec.name)
            self._write_log(ddl_record)
            return spec.name
        if self._documents:
            index.rebuild(self._documents.items())
        self._indexes[spec.name] = index
        self._write_log(ddl_record)
        return spec.name

    def rebuild_indexes(self) -> list[str]:
        """Build every deferred index with one sort each; returns their names.

        A unique violation aborts the offending build: the exception
        propagates, that index stays pending (and invisible to the planner),
        and the remaining pending builds are kept for a later attempt.
        """
        pending = sorted(self._pending_index_builds)
        rebuilt: list[str] = []
        for position, index_name in enumerate(pending):
            index = self._indexes.get(index_name)
            try:
                if index is not None:
                    index.rebuild(self._documents.items())
            except DuplicateKeyError:
                self._pending_index_builds = set(pending[position:])
                raise
            rebuilt.append(index_name)
        self._pending_index_builds.clear()
        return rebuilt

    @contextmanager
    def bulk_load(self) -> Iterator["Collection"]:
        """Context manager deferring secondary-index maintenance for a load.

        Inside the block, inserts (and updates/deletes) maintain only the
        ``_id`` index; the planner answers queries without the stale
        secondary indexes so results stay correct.  On exit every secondary
        index is rebuilt with a single sort — the load-with-index ablation's
        fast shape.  Unique-key enforcement on secondary indexes is deferred
        to the rebuild: a violation surfaces as ``DuplicateKeyError`` on
        exit, with the offending index left pending.

        Nested ``bulk_load`` blocks are no-ops; the outermost exit rebuilds.
        """
        if self._defer_secondary_indexes:
            yield self
            return
        self._defer_secondary_indexes = True
        self._deferred_writes = False
        body_failed = False
        try:
            yield self
        except BaseException:
            body_failed = True
            raise
        finally:
            self._defer_secondary_indexes = False
            if self._deferred_writes:
                self._pending_index_builds.update(
                    index_name for index_name in self._indexes if index_name != "_id_"
                )
            self._deferred_writes = False
            if body_failed:
                # The block is already unwinding: rebuild best-effort, but a
                # deferred unique violation must not mask the original error.
                # Offending indexes stay pending for a later rebuild_indexes().
                try:
                    self.rebuild_indexes()
                except DuplicateKeyError:
                    pass
            else:
                self.rebuild_indexes()

    def drop_index(self, name: str) -> None:
        """Drop the index called *name* (the ``_id`` index cannot be dropped)."""
        if name == "_id_":
            raise OperationFailure("cannot drop the _id index")
        if name not in self._indexes:
            raise IndexNotFoundError(name)
        del self._indexes[name]
        self._pending_index_builds.discard(name)
        self._write_log({"op": "drop_index", "name": name})

    def index_information(self) -> dict[str, dict[str, Any]]:
        """Describe every index on the collection (legacy shape + ``type``)."""
        information: dict[str, dict[str, Any]] = {}
        for name, index in self._indexes.items():
            entry: dict[str, Any] = {
                "key": list(index.spec.keys),
                "unique": index.spec.unique,
                "type": index.spec.type,
            }
            if index.spec.is_vector:
                entry["dims"] = index.spec.dims
                entry["metric"] = index.spec.metric
                if index.spec.nlist:
                    entry["nlist"] = index.spec.nlist
            information[name] = entry
        return information

    def list_indexes(self) -> list[dict[str, Any]]:
        """Structured spec documents for every index, in creation order.

        Each entry is accepted back by :meth:`create_index` — specs
        round-trip through ``list_indexes``, the WAL, snapshots, and the
        wire protocol.
        """
        return [index.spec.describe() for index in self._indexes.values()]

    def _live_indexes(self) -> Mapping[str, Index | VectorIndex]:
        """The indexes the planner (and write maintenance) may rely on.

        Deferred-mode secondaries and pending (unbuilt) indexes are stale or
        empty, so they are excluded until :meth:`rebuild_indexes` runs.
        """
        if self._defer_secondary_indexes:
            return {"_id_": self._id_index}
        if self._pending_index_builds:
            return {
                index_name: index
                for index_name, index in self._indexes.items()
                if index_name not in self._pending_index_builds
            }
        return self._indexes

    # --------------------------------------------------------------- inserts

    def _prepare_for_insert(self, document: Mapping[str, Any]) -> dict[str, Any]:
        """Deep-copy *document* once, assign an ``_id``, and validate it."""
        if not isinstance(document, Mapping):
            raise InvalidDocumentError(
                f"documents must be mappings, got {type(document).__name__}"
            )
        prepared = deep_copy_document(document)
        if "_id" not in prepared:
            prepared["_id"] = ObjectId()
        validate_document(prepared)
        return prepared

    def insert_one(self, document: Mapping[str, Any]) -> InsertOneResult:
        """Insert a single document, assigning an ``ObjectId`` if needed."""
        prepared = self._prepare_for_insert(document)
        self._insert_prepared(prepared)
        self.operation_counters["inserts"] += 1
        self._write_log({"op": "insert", "docs": [prepared]})
        return InsertOneResult(inserted_id=prepared["_id"])

    def insert_many(self, documents: Iterable[Mapping[str, Any]]) -> InsertManyResult:
        """Insert many documents with one maintenance pass per index.

        The whole batch is validated and ``_id``-assigned first (one deep
        copy per document), so a malformed or oversized document rejects the
        entire batch before anything is stored — driver-style client-side
        validation.  Each index then absorbs the batch through a single
        sorted merge instead of one ``list.insert`` per key.  On a
        unique-key violation the bulk merge is rolled back from every index
        and the batch is replayed document-by-document, so the stored prefix
        and the raised error match ordered (stop-at-first-failure) mode.
        """
        prepared = [self._prepare_for_insert(document) for document in documents]
        if not prepared:
            return InsertManyResult(inserted_ids=[])
        try:
            self._bulk_insert_prepared(prepared)
            self.operation_counters["inserts"] += len(prepared)
            self._write_log({"op": "insert", "docs": prepared})
        except DuplicateKeyError:
            inserted = 0
            try:
                for document in prepared:
                    self._insert_prepared(document)
                    self.operation_counters["inserts"] += 1
                    inserted += 1
            finally:
                # Ordered mode stores the prefix before the duplicate; the
                # WAL must cover exactly that stored prefix even though the
                # error propagates to the caller.
                if inserted:
                    self._write_log({"op": "insert", "docs": prepared[:inserted]})
        return InsertManyResult(inserted_ids=[document["_id"] for document in prepared])

    def _maintained_index_items(self) -> list[tuple[str, Index | VectorIndex]]:
        """The indexes writes must maintain (deferred/pending ones rebuild later)."""
        return [
            (index_name, index)
            for index_name, index in self._indexes.items()
            if index_name == "_id_"
            or (
                not self._defer_secondary_indexes
                and index_name not in self._pending_index_builds
            )
        ]

    def _bulk_insert_prepared(self, documents: Sequence[dict[str, Any]]) -> list[int]:
        """Insert a prepared batch through the bulk index-merge path."""
        if self._defer_secondary_indexes:
            self._deferred_writes = True
        batch = [(next(self._doc_id_counter), document) for document in documents]
        undo_handles = []
        try:
            # dict order guarantees the unique _id index is merged first.
            for _name, index in self._maintained_index_items():
                undo_handles.append(index.bulk_insert(batch))
        except DocumentStoreError:
            # Unique violations *and* vector validation errors roll back the
            # batch from every already-merged index before propagating.
            for handle in reversed(undo_handles):
                handle.rollback()
            raise
        for doc_id, document in batch:
            self._documents[doc_id] = document
        return [doc_id for doc_id, _document in batch]

    def _insert_prepared(self, document: dict[str, Any]) -> int:
        if self._defer_secondary_indexes:
            self._deferred_writes = True
        doc_id = next(self._doc_id_counter)
        # The unique _id index comes first in dict order, so duplicate _ids
        # abort before any secondary index is touched.
        updated: list[Index | VectorIndex] = []
        try:
            for _name, index in self._maintained_index_items():
                index.insert(document, doc_id)
                updated.append(index)
        except DocumentStoreError:
            # Remove the document from every index updated so far — a
            # violation (or vector validation error) on the k-th secondary
            # index must not leave entries behind in indexes 1..k-1.
            for index in updated:
                index.remove(document, doc_id)
            raise
        self._documents[doc_id] = document
        return doc_id

    # ---------------------------------------------------------------- reads

    def _candidate_ids(self, query: Mapping[str, Any] | None) -> tuple[QueryPlan, Iterable[int]]:
        plan = plan_query(query, self._live_indexes(), len(self._documents))
        if plan.stage == "IXSCAN" and plan.candidate_ids is not None:
            return plan, plan.candidate_ids
        return plan, list(self._documents.keys())

    def _matched_raw(self, query: Mapping[str, Any] | None) -> list[dict[str, Any]]:
        """Matching *stored* documents (no copies); accounts scan counters."""
        predicate = compile_matcher(query)
        _plan, candidate_ids = self._candidate_ids(query)
        matched = []
        scanned = 0
        for doc_id in candidate_ids:
            document = self._documents.get(doc_id)
            if document is None:
                continue
            scanned += 1
            if predicate(document):
                matched.append(document)
        self.operation_counters["queries"] += 1
        self.operation_counters["documents_scanned"] += scanned
        return matched

    def _find_documents(self, query: Mapping[str, Any] | None) -> list[dict[str, Any]]:
        return [deep_copy_document(document) for document in self._matched_raw(query)]

    # -- the FindSpec executor ----------------------------------------------

    def _plan_find(self, spec: FindSpec) -> QueryPlan:
        indexes = self._live_indexes()
        hint = spec.hint
        if hint is not None and hint not in indexes and hint in self._indexes:
            # The hinted index exists but is hidden (deferred by bulk_load or
            # pending a build): plan without the hint rather than erroring.
            hint = None
        return plan_find(
            spec.filter,
            spec.sort,
            indexes,
            len(self._documents),
            hint=hint,
            fetch_bound=spec.fetch_bound,
        )

    @staticmethod
    def _emit(document: Mapping[str, Any], projection: Mapping[str, Any] | None) -> dict[str, Any]:
        """Copy one stored document out of the engine, projected if asked."""
        if projection:
            return deep_copy_document(project_document(document, projection))
        return deep_copy_document(document)

    def _execute_find(self, spec: FindSpec) -> Iterator[dict[str, Any]]:
        """Execute a complete find spec, streaming final result documents.

        Three shapes, chosen by the planner:

        * no sort, or a sort served by index order — stream candidates,
          stopping as soon as ``skip + limit`` matches were produced;
        * sort with a limit — bounded ``heapq`` top-k over the matches;
        * sort without a limit — one full sort of the matches.

        Only documents that survive skip/limit are copied (and projected)
        out of the engine.
        """
        plan = self._plan_find(spec)
        predicate = compile_matcher(spec.filter)
        self.operation_counters["queries"] += 1
        if plan.candidate_ids is not None:
            candidates: Iterable[int] = plan.candidate_ids
        else:
            candidates = list(self._documents.keys())

        if spec.sort and not plan.sort_served:
            yield from self._execute_find_sorted(spec, candidates, predicate)
            return

        scanned = 0
        matched = 0
        yielded = 0
        try:
            for doc_id in candidates:
                document = self._documents.get(doc_id)
                if document is None:
                    continue
                scanned += 1
                if not predicate(document):
                    continue
                matched += 1
                if matched <= spec.skip:
                    continue
                yield self._emit(document, spec.projection)
                yielded += 1
                if spec.limit is not None and yielded >= spec.limit:
                    return
        finally:
            self.operation_counters["documents_scanned"] += scanned

    def _execute_find_sorted(
        self,
        spec: FindSpec,
        candidates: Iterable[int],
        predicate: Any,
    ) -> Iterator[dict[str, Any]]:
        matched: list[dict[str, Any]] = []
        scanned = 0
        for doc_id in candidates:
            document = self._documents.get(doc_id)
            if document is None:
                continue
            scanned += 1
            if predicate(document):
                matched.append(document)
        self.operation_counters["documents_scanned"] += scanned
        assert spec.sort is not None
        key = document_sort_key(spec.sort)
        bound = spec.fetch_bound
        if bound is not None:
            selected = heapq.nsmallest(bound, matched, key=key)[spec.skip:]
        else:
            matched.sort(key=key)
            selected = matched[spec.skip:]
        for document in selected:
            yield self._emit(document, spec.projection)

    def explain_find(self, spec: FindSpec) -> dict[str, Any]:
        """The plan for *spec*: access path, sort strategy, and the spec."""
        plan = self._plan_find(spec)
        if not spec.sort:
            sort_mode = None
        elif plan.sort_served:
            sort_mode = "indexOrder"
        elif spec.fetch_bound is not None:
            sort_mode = "topK"
        else:
            sort_mode = "sortMaterialize"
        return {
            "queryPlanner": {
                "winningPlan": plan.describe(),
                "sortMode": sort_mode,
                "findSpec": spec.describe(),
            }
        }

    def find(
        self,
        query: Mapping[str, Any] | None = None,
        projection: Mapping[str, Any] | None = None,
        *,
        sort: str | Sequence[tuple[str, int]] | Mapping[str, int] | None = None,
        skip: int = 0,
        limit: int = 0,
        batch_size: int | None = None,
        hint: str | None = None,
    ) -> Cursor:
        """Return a lazy cursor over the documents matching *query*.

        Options may be passed here or chained on the cursor; either way the
        executor receives one complete :class:`FindSpec` when iteration
        starts.
        """
        spec = FindSpec.create(
            filter=query,
            projection=projection,
            sort=sort,
            skip=skip,
            limit=limit,
            batch_size=batch_size,
            hint=hint,
        )
        return Cursor(self._execute_find, spec=spec, explain=self.explain_find)

    def find_one(
        self,
        query: Mapping[str, Any] | None = None,
        projection: Mapping[str, Any] | None = None,
        *,
        sort: str | Sequence[tuple[str, int]] | Mapping[str, int] | None = None,
    ) -> dict[str, Any] | None:
        """Return one matching document, or ``None``."""
        for document in self.find(query, projection, sort=sort, limit=1):
            return document
        return None

    def count_documents(self, query: Mapping[str, Any] | None = None) -> int:
        """Count the documents matching *query*."""
        if not query:
            return len(self._documents)
        return len(self._matched_raw(query))

    def distinct(self, key: str, query: Mapping[str, Any] | None = None) -> list[Any]:
        """Return the distinct values of *key* among matching documents."""
        values: list[Any] = []
        for document in self._matched_raw(query):
            for value in resolve_path(document, key):
                candidates = value if isinstance(value, list) else [value]
                for candidate in candidates:
                    if not any(values_equal(candidate, existing) for existing in values):
                        values.append(candidate)
        return [deep_copy_document({"v": value})["v"] for value in values]

    def explain(
        self,
        query_or_pipeline: Mapping[str, Any] | Sequence[Mapping[str, Any]] | FindSpec | None = None,
        *,
        verbosity: str = "queryPlanner",
    ) -> dict[str, Any]:
        """The unified explain entry point (schema v1, see ``explain.py``).

        *query_or_pipeline* is a find filter (mapping or ``None``), a
        complete :class:`FindSpec`, or an aggregation pipeline (sequence of
        stages).  ``verbosity="executionStats"`` additionally executes the
        operation and reports ``nReturned`` plus per-stage counters; a
        trailing ``$out`` is never written during explain.  The same
        signature and document shape exist on ``RoutedCollection`` and
        ``RemoteCollection``.
        """
        validate_verbosity(verbosity)
        if isinstance(query_or_pipeline, Sequence) and not isinstance(
            query_or_pipeline, (str, bytes)
        ):
            return self._explain_pipeline(list(query_or_pipeline), verbosity)
        if isinstance(query_or_pipeline, FindSpec):
            spec = query_or_pipeline
        else:
            spec = FindSpec(filter=query_or_pipeline)
        return self._explain_spec(spec, verbosity)

    def _explain_spec(self, spec: FindSpec, verbosity: str) -> dict[str, Any]:
        legacy = self.explain_find(spec)["queryPlanner"]
        execution_stats = None
        if verbosity == "executionStats":
            n_returned = sum(1 for _document in self._execute_find(spec))
            execution_stats = build_execution_stats(n_returned=n_returned)
        return build_explain(
            surface="standalone",
            operation="find",
            verbosity=verbosity,
            namespace=self.full_name,
            winning_plan=legacy["winningPlan"],
            sort_mode=legacy["sortMode"],
            spec=legacy["findSpec"],
            execution_stats=execution_stats,
        )

    def _explain_pipeline(
        self, pipeline: Sequence[Mapping[str, Any]], verbosity: str
    ) -> dict[str, Any]:
        counters: list[StageStats] = []
        plan, results = self._execute_pipeline(
            pipeline, counters=counters, suppress_out=True
        )
        plan = plan.with_pipeline_stages([stats.as_dict() for stats in counters])
        execution_stats = None
        if verbosity == "executionStats":
            execution_stats = build_execution_stats(
                n_returned=len(results),
                stages=[stats.as_dict() for stats in counters],
            )
        return build_explain(
            surface="standalone",
            operation="aggregate",
            verbosity=verbosity,
            namespace=self.full_name,
            winning_plan=plan.describe(),
            sort_mode=None,
            spec={"pipeline": [dict(stage) for stage in pipeline]},
            execution_stats=execution_stats,
        )

    # --------------------------------------------------------------- updates

    @staticmethod
    def _paths_touched_by_update(update: Mapping[str, Any]) -> set[str] | None:
        """Field paths an operator update can modify (``None`` = everything)."""
        if not is_update_document(update):
            return None
        touched: set[str] = set()
        for operator, changes in update.items():
            if not isinstance(changes, Mapping):
                continue
            touched.update(str(path) for path in changes)
            if operator == "$rename":
                touched.update(str(target) for target in changes.values())
        return touched

    @staticmethod
    def _index_overlaps_paths(index: Index, paths: set[str]) -> bool:
        """True when any indexed field could be affected by the touched paths."""
        for field_path in index.spec.fields:
            for touched in paths:
                if (
                    field_path == touched
                    or field_path.startswith(touched + ".")
                    or touched.startswith(field_path + ".")
                ):
                    return True
        return False

    def _update(
        self,
        query: Mapping[str, Any] | None,
        update: Mapping[str, Any],
        *,
        upsert: bool,
        multi: bool,
    ) -> UpdateResult:
        predicate = compile_matcher(query)
        _plan, candidate_ids = self._candidate_ids(query)
        touched_paths = self._paths_touched_by_update(update)
        maintained = [index for _name, index in self._maintained_index_items()]
        if touched_paths is None:
            affected_indexes = maintained
        else:
            affected_indexes = [
                index
                for index in maintained
                if self._index_overlaps_paths(index, touched_paths)
            ]
            # Operator updates carry their new values in the update document;
            # validating them once here means the per-document step below only
            # needs the 16 MB size guard.
            for operator, changes in update.items():
                if operator in ("$set", "$setOnInsert", "$push", "$addToSet") and isinstance(
                    changes, Mapping
                ):
                    validate_update_values(list(changes.values()))
        matched = 0
        modified = 0
        changed_documents: list[dict[str, Any]] = []
        for doc_id in list(candidate_ids):
            document = self._documents.get(doc_id)
            if document is None or not predicate(document):
                continue
            matched += 1
            new_document = apply_update(document, update)
            if not values_equal(new_document.get("_id"), document.get("_id")):
                raise OperationFailure("the _id field is immutable")
            if new_document != document:
                if touched_paths is None:
                    validate_document(new_document)
                else:
                    ensure_document_size(new_document)
                for index in affected_indexes:
                    index.replace(document, new_document, doc_id)
                self._documents[doc_id] = new_document
                changed_documents.append(new_document)
                modified += 1
                if self._defer_secondary_indexes:
                    self._deferred_writes = True
            if not multi:
                break
        upserted_id = None
        if matched == 0 and upsert:
            seed = build_upsert_document(query or {}, update)
            if "_id" not in seed:
                seed["_id"] = ObjectId()
            validate_document(seed)
            self._insert_prepared(seed)
            upserted_id = seed["_id"]
            changed_documents.append(seed)
        self.operation_counters["updates"] += 1
        if changed_documents:
            # Physical redo: the full post-image of every changed document.
            # Replay is then deterministic even for $currentDate-style
            # operators and plan-order-dependent update_one targets.
            self._write_log({"op": "apply", "docs": changed_documents})
        return UpdateResult(matched_count=matched, modified_count=modified, upserted_id=upserted_id)

    def update_one(
        self,
        query: Mapping[str, Any] | None,
        update: Mapping[str, Any],
        *,
        upsert: bool = False,
    ) -> UpdateResult:
        """Update the first matching document."""
        return self._update(query, update, upsert=upsert, multi=False)

    def update_many(
        self,
        query: Mapping[str, Any] | None,
        update: Mapping[str, Any],
        *,
        upsert: bool = False,
    ) -> UpdateResult:
        """Update every matching document (the thesis' ``multi=true``)."""
        if not is_update_document(update):
            raise OperationFailure("update_many requires update operators")
        return self._update(query, update, upsert=upsert, multi=True)

    def replace_one(
        self,
        query: Mapping[str, Any] | None,
        replacement: Mapping[str, Any],
        *,
        upsert: bool = False,
    ) -> UpdateResult:
        """Replace the first matching document with *replacement*."""
        if is_update_document(replacement):
            raise OperationFailure("replace_one requires a plain replacement document")
        return self._update(query, replacement, upsert=upsert, multi=False)

    # --------------------------------------------------------------- deletes

    def _delete(self, query: Mapping[str, Any] | None, *, multi: bool) -> DeleteResult:
        predicate = compile_matcher(query)
        _plan, candidate_ids = self._candidate_ids(query)
        deleted = 0
        deleted_ids: list[Any] = []
        for doc_id in list(candidate_ids):
            document = self._documents.get(doc_id)
            if document is None or not predicate(document):
                continue
            for _name, index in self._maintained_index_items():
                index.remove(document, doc_id)
            del self._documents[doc_id]
            deleted += 1
            deleted_ids.append(document.get("_id"))
            if self._defer_secondary_indexes:
                self._deferred_writes = True
            if not multi:
                break
        self.operation_counters["deletes"] += 1
        if deleted_ids:
            self._write_log({"op": "delete", "ids": deleted_ids})
        return DeleteResult(deleted_count=deleted)

    def delete_one(self, query: Mapping[str, Any] | None) -> DeleteResult:
        """Delete the first matching document."""
        return self._delete(query, multi=False)

    def delete_many(self, query: Mapping[str, Any] | None) -> DeleteResult:
        """Delete every matching document."""
        return self._delete(query, multi=True)

    def drop(self) -> None:
        """Remove every document and every secondary index."""
        self._documents.clear()
        for index in self._indexes.values():
            index.clear()
        self._indexes = {"_id_": self._id_index}
        self._pending_index_builds.clear()
        self._deferred_writes = False
        self._write_log({"op": "drop_collection"})

    # ----------------------------------------------------------- aggregation

    def _pipeline_environment(
        self,
    ) -> tuple[Any, Any]:
        """Return the ``$lookup`` resolver / ``$out`` writer for this collection."""
        collection_resolver = None
        output_writer = None
        if self._database is not None:
            database = self._database

            def collection_resolver(name: str) -> list[dict[str, Any]]:
                return database[name].find().to_list()

            def output_writer(name: str, documents: list[dict[str, Any]]) -> None:
                target = database[name]
                target.drop()
                target.insert_many(documents)

        return collection_resolver, output_writer

    def _aggregate_plan_and_source(
        self, pipeline: Sequence[Mapping[str, Any]]
    ) -> tuple[QueryPlan, Iterable[Mapping[str, Any]]]:
        """Choose the access path for a pipeline's leading ``$match``.

        A leading $match can be served from an index, exactly like find():
        the planner narrows the candidate documents and the pipeline's own
        $match still re-filters them, so the result is unchanged.
        """
        if pipeline and isinstance(pipeline[0], Mapping) and "$match" in pipeline[0]:
            plan = plan_query(pipeline[0]["$match"], self._live_indexes(), len(self._documents))
            if plan.stage == "IXSCAN" and plan.candidate_ids is not None:
                source = (
                    self._documents[doc_id]
                    for doc_id in plan.candidate_ids
                    if doc_id in self._documents
                )
                return plan, source
            return plan, self.raw_documents()
        plan = QueryPlan(stage="COLLSCAN", documents_examined=len(self._documents))
        return plan, self.raw_documents()

    def _resolve_vector_index(
        self, index_name: Any, path: Any
    ) -> tuple[str, VectorIndex]:
        """Pick the vector index a ``$vectorSearch`` stage runs against."""
        live = self._live_indexes()
        vector_indexes = {
            name: index
            for name, index in live.items()
            if isinstance(index, VectorIndex)
        }
        if index_name is not None:
            index = vector_indexes.get(str(index_name))
            if index is None:
                raise OperationFailure(
                    f"$vectorSearch index {index_name!r} is not a usable vector index"
                )
            return str(index_name), index
        if path is not None:
            for name, index in vector_indexes.items():
                if index.spec.fields[0] == str(path):
                    return name, index
            raise OperationFailure(f"no vector index on path {path!r}")
        if len(vector_indexes) == 1:
            return next(iter(vector_indexes.items()))
        if not vector_indexes:
            raise OperationFailure(
                "$vectorSearch requires a vector index on the collection"
            )
        raise OperationFailure(
            "collection has multiple vector indexes; "
            "name one with 'index' or 'path' in $vectorSearch"
        )

    _VECTOR_SEARCH_OPTIONS = frozenset(
        {"queryVector", "k", "limit", "path", "index", "filter", "nprobe", "exact", "scoreField"}
    )

    def _vector_search_source(
        self, specification: Any
    ) -> tuple[QueryPlan, list[dict[str, Any]], StageStats]:
        """Execute a leading ``$vectorSearch`` stage against a vector index.

        Returns the plan, the ranked result documents (each a shallow copy
        of the stored document plus the score field), and the stage's
        counters.  A metadata ``filter`` is applied *before* the search
        (pre-filter semantics): the compiled matcher — index-assisted where
        possible — narrows the candidate set, and the kNN then runs exactly
        over the survivors.
        """
        if not isinstance(specification, Mapping):
            raise OperationFailure("$vectorSearch requires a specification document")
        unknown = sorted(set(specification) - self._VECTOR_SEARCH_OPTIONS)
        if unknown:
            raise OperationFailure(
                f"unknown $vectorSearch option(s) {unknown!r}; "
                f"allowed: {sorted(self._VECTOR_SEARCH_OPTIONS)!r}"
            )
        query_vector = specification.get("queryVector")
        if query_vector is None:
            raise OperationFailure("$vectorSearch requires 'queryVector'")
        k = specification.get("k", specification.get("limit"))
        if k is None:
            raise OperationFailure("$vectorSearch requires 'k' (or 'limit')")
        k = int(k)
        index_name, vector_index = self._resolve_vector_index(
            specification.get("index"), specification.get("path")
        )

        filter_specification = specification.get("filter")
        allowed_ids: set[int] | None = None
        filter_examined = 0
        filter_plan_stage: str | None = None
        if filter_specification:
            predicate = compile_matcher(filter_specification)
            filter_plan, candidate_ids = self._candidate_ids(filter_specification)
            filter_plan_stage = filter_plan.stage
            allowed_ids = set()
            for doc_id in candidate_ids:
                document = self._documents.get(doc_id)
                if document is None:
                    continue
                filter_examined += 1
                if predicate(document):
                    allowed_ids.add(doc_id)

        nprobe = specification.get("nprobe")
        nprobe = int(nprobe) if nprobe is not None else None
        exact = bool(specification.get("exact", False))
        ranked, scored = vector_index.search(
            query_vector, k, nprobe=nprobe, exact=exact, allowed_ids=allowed_ids
        )
        score_field = str(specification.get("scoreField") or "_score")
        results: list[dict[str, Any]] = []
        for doc_id, score in ranked:
            document = self._documents.get(doc_id)
            if document is None:  # pragma: no cover - defensive
                continue
            scored_document = dict(document)
            scored_document[score_field] = score
            results.append(scored_document)

        if allowed_ids is not None:
            mode = "filteredExact"
        elif exact or not vector_index.trained:
            mode = "exact"
        else:
            mode = "ivf"
        details: dict[str, Any] = {
            "k": k,
            "metric": vector_index.spec.metric,
            "mode": mode,
            "vectorsScored": scored,
            "indexedVectors": len(vector_index),
            "scoreField": score_field,
        }
        if mode == "ivf":
            details["nlist"] = vector_index.nlist
            details["nprobe"] = nprobe or vector_index.default_nprobe()
        if filter_plan_stage is not None:
            details["filterPlan"] = filter_plan_stage
            details["filterMatched"] = len(allowed_ids or ())
        examined = filter_examined + scored
        plan = QueryPlan(
            stage="VECTOR_SEARCH",
            index_name=index_name,
            index_fields=vector_index.spec.fields,
            documents_examined=examined,
            vector=details,
        )
        stats = StageStats(
            "$vectorSearch", docs_examined=examined, docs_returned=len(results)
        )
        self.operation_counters["queries"] += 1
        self.operation_counters["documents_scanned"] += examined
        return plan, results, stats

    def _execute_pipeline(
        self,
        pipeline: Sequence[Mapping[str, Any]],
        *,
        counters: list[StageStats] | None = None,
        suppress_out: bool = False,
    ) -> tuple[QueryPlan, list[dict[str, Any]]]:
        """Shared core of :meth:`aggregate` and the explain surfaces."""
        optimized = optimize_pipeline(pipeline)
        if optimized and "$vectorSearch" in optimized[0]:
            plan, source, vector_stats = self._vector_search_source(
                optimized[0]["$vectorSearch"]
            )
            remaining: list[Mapping[str, Any]] = list(optimized[1:])
            if counters is not None:
                counters.append(vector_stats)
        else:
            plan, source = self._aggregate_plan_and_source(optimized)
            remaining = optimized
        collection_resolver, output_writer = self._pipeline_environment()
        if suppress_out:
            output_writer = lambda _name, _documents: None  # noqa: E731

        # The pipeline never mutates its input documents (stages copy before
        # modifying), so aggregation reads the stored documents directly
        # instead of paying a defensive deep copy per document.
        results = run_pipeline(
            source,
            remaining,
            collection_resolver=collection_resolver,
            output_writer=output_writer,
            counters=counters,
            optimize=False,
            fuse=True,
        )
        return plan, results

    def aggregate(
        self,
        pipeline: Sequence[Mapping[str, Any]],
        *,
        counters: list[StageStats] | None = None,
    ) -> list[dict[str, Any]]:
        """Run an aggregation pipeline over the collection.

        The pipeline is optimized once (match merging / pushdown, top-k and
        ``$vectorSearch``+``$limit`` fusion) so the planner sees the
        effective leading stage even when the caller wrote it after a
        ``$sort``.  A leading ``$vectorSearch`` runs against the
        collection's vector index (with optional metadata pre-filter)
        before the compiled stages.  When *counters* is a list it receives
        per-stage :class:`~repro.documentstore.aggregation.StageStats`.
        """
        _plan, results = self._execute_pipeline(pipeline, counters=counters)
        return results

    def explain_aggregate(self, pipeline: Sequence[Mapping[str, Any]]) -> dict[str, Any]:
        """Deprecated alias: use ``explain(pipeline, verbosity=...)``.

        Kept for callers of the historical shape — the winning plan of the
        leading ``$match``/``$vectorSearch`` plus per-stage counters.  A
        trailing ``$out`` is *not* written during explain.
        """
        counters: list[StageStats] = []
        plan, _results = self._execute_pipeline(
            pipeline, counters=counters, suppress_out=True
        )
        plan = plan.with_pipeline_stages([stats.as_dict() for stats in counters])
        return {
            "queryPlanner": {"winningPlan": plan.describe()},
            "executionStats": {"stages": [stats.as_dict() for stats in counters]},
        }

    # ------------------------------------------------------------- iteration

    def all_documents(self) -> Iterator[dict[str, Any]]:
        """Iterate over copies of every stored document (insertion order)."""
        for document in self._documents.values():
            yield deep_copy_document(document)

    def raw_documents(self) -> Iterator[Mapping[str, Any]]:
        """Iterate over the stored documents without copying.

        Intended for read-only fast paths (aggregation over large collections
        and the shard data-transfer path); callers must not mutate the
        returned documents.
        """
        yield from self._documents.values()

    def find_with_options(
        self,
        query: Mapping[str, Any] | None = None,
        projection: Mapping[str, Any] | None = None,
        sort: Sequence[tuple[str, int]] | None = None,
        skip: int = 0,
        limit: int = 0,
    ) -> list[dict[str, Any]]:
        """One-shot find over the spec executor (used by the sharded router)."""
        return self.find(
            query, projection, sort=sort, skip=skip, limit=limit
        ).to_list()

    def execute_find(self, spec: FindSpec) -> list[dict[str, Any]]:
        """Execute a complete spec in one shot (the shard-side entry point)."""
        return list(self._execute_find(spec))
