"""Secondary indexes.

Section 2.1.2 of the paper describes the index types the store must provide:
the default ``_id`` index, single-field indexes, compound indexes with index
prefixes, multikey indexes over arrays of embedded documents, and hashed
indexes (used for hash-based shard keys).  Geospatial and text indexes are not
needed by any thesis workload and are intentionally out of scope.

Indexes are kept as sorted arrays of ``(key, document_id)`` pairs with binary
search for point and range lookups — an array-backed B-tree stand-in with the
same asymptotics for reads (``O(log n)`` lookups) that the thesis analysis
assumes in Section 4.1.3.1.1.
"""

from __future__ import annotations

import bisect
import hashlib
from dataclasses import dataclass, field
from collections.abc import Mapping, Sequence  # fast isinstance in key extraction
from typing import Any, Iterable, Iterator

from .bson import encode_document
from .errors import DuplicateKeyError, OperationFailure
from .matching import compare_values, resolve_path
from .ordering import OrderedValue

__all__ = [
    "IndexSpec",
    "Index",
    "BulkUndo",
    "hashed_value",
    "ASCENDING",
    "DESCENDING",
    "HASHED",
    "VECTOR",
    "BTREE_TYPE",
    "VECTOR_TYPE",
    "VECTOR_METRICS",
]

ASCENDING = 1
DESCENDING = -1
HASHED = "hashed"
#: Key direction marker used by vector indexes (``[("embedding", "vector")]``).
VECTOR = "vector"

#: Index types accepted by the structured ``create_index`` spec.
BTREE_TYPE = "btree"
VECTOR_TYPE = "vector"

#: Similarity metrics a vector index can be declared with.
VECTOR_METRICS = ("cosine", "l2")

#: Fields allowed in a structured index spec document.
_STRUCTURED_SPEC_FIELDS = frozenset(
    {"keys", "type", "dims", "metric", "unique", "name", "nlist"}
)

_MISSING_KEY = None  # documents without the indexed field index a null key

#: Canonical index key stored for embedded-document values.  Indexing the
#: deep value of an embedded document is never useful to the reproduction's
#: query planner but is very expensive to keep sorted (the denormalization
#: algorithm replaces millions of scalar foreign keys with documents), so
#: every document-valued key collapses to this marker.  Lookups canonicalize
#: their operands the same way, which keeps index results a superset of the
#: true matches — the matcher always re-checks candidates.
_EMBEDDED_DOCUMENT_KEY = "\x00$embedded-document"


def _canonical_key_value(value: Any) -> Any:
    """Map a document value to the value actually stored in the index."""
    if isinstance(value, Mapping):
        return _EMBEDDED_DOCUMENT_KEY
    return value


def hashed_value(value: Any) -> int:
    """Return the 64-bit hash used by hashed indexes and hashed shard keys."""
    if isinstance(value, (dict, list, tuple)):
        payload = encode_document({"v": value})
    else:
        payload = repr(value).encode("utf-8")
    digest = hashlib.md5(payload).digest()
    return int.from_bytes(digest[:8], "big", signed=False)


# The index key arrays reuse the shared total-order wrapper so bisect, sort,
# and the aggregation layer agree on one value ordering.
_OrderedKey = OrderedValue


def _ordered_tuple(values: Sequence[Any]) -> tuple[_OrderedKey, ...]:
    return tuple(_OrderedKey(value) for value in values)


@dataclass(frozen=True)
class IndexSpec:
    """Declarative description of an index.

    ``keys`` is an ordered sequence of ``(field, direction)`` pairs where
    direction is ``1`` (ascending), ``-1`` (descending), ``"hashed"``, or
    ``"vector"`` (vector indexes only).  ``type`` selects the index family:
    ``"btree"`` (the sorted-array default) or ``"vector"`` (kNN/ANN over a
    single embedding field, configured by ``dims``/``metric``/``nlist``).
    """

    keys: tuple[tuple[str, Any], ...]
    unique: bool = False
    name: str = field(default="")
    type: str = BTREE_TYPE
    dims: int = 0
    metric: str = ""
    nlist: int = 0

    def __post_init__(self) -> None:
        if not self.keys:
            raise OperationFailure("an index requires at least one key")
        if self.type == VECTOR_TYPE:
            self._validate_vector()
        elif self.type == BTREE_TYPE:
            self._validate_btree()
        else:
            raise OperationFailure(
                f"unknown index type {self.type!r} (expected 'btree' or 'vector')"
            )
        if not self.name:
            generated = "_".join(f"{field_}_{direction}" for field_, direction in self.keys)
            object.__setattr__(self, "name", generated)

    def _validate_btree(self) -> None:
        hashed_fields = [f for f, direction in self.keys if direction == HASHED]
        if hashed_fields and len(self.keys) > 1:
            raise OperationFailure("hashed indexes must be single-field")
        if any(direction == VECTOR for _field, direction in self.keys):
            raise OperationFailure(
                "'vector' key direction requires an index of type 'vector'"
            )
        for option in ("dims", "metric", "nlist"):
            if getattr(self, option):
                raise OperationFailure(
                    f"{option!r} only applies to indexes of type 'vector'"
                )

    def _validate_vector(self) -> None:
        if len(self.keys) != 1:
            raise OperationFailure("a vector index covers exactly one field")
        field_path, direction = self.keys[0]
        if direction != VECTOR:
            # Normalize: structured specs may declare the key as a plain
            # field name; canonical form stores ("field", "vector").
            object.__setattr__(self, "keys", ((field_path, VECTOR),))
        if self.unique:
            raise OperationFailure("vector indexes cannot be unique")
        if not isinstance(self.dims, int) or isinstance(self.dims, bool) or self.dims <= 0:
            raise OperationFailure(
                "a vector index requires 'dims': a positive integer dimensionality"
            )
        if not self.metric:
            object.__setattr__(self, "metric", "cosine")
        if self.metric not in VECTOR_METRICS:
            raise OperationFailure(
                f"unknown vector metric {self.metric!r} "
                f"(expected one of {', '.join(VECTOR_METRICS)})"
            )
        if not isinstance(self.nlist, int) or isinstance(self.nlist, bool) or self.nlist < 0:
            raise OperationFailure("'nlist' must be a non-negative integer")

    @classmethod
    def from_key_specification(
        cls,
        keys: str | Sequence[tuple[str, Any]] | Mapping[str, Any],
        *,
        unique: bool = False,
        name: str = "",
    ) -> "IndexSpec":
        """Build a spec from the flexible forms accepted by ``create_index``.

        Accepts the legacy sugar forms — a field name, a ``{field: direction}``
        mapping, or a sequence of ``(field, direction)`` pairs — plus the
        structured spec document ``{"keys": [...], "type": ..., "dims": ...,
        "metric": ..., "unique": ..., "name": ..., "nlist": ...}`` (any mapping
        containing a ``"keys"`` entry).  The structured form is what
        ``list_indexes`` returns, so specs round-trip.
        """
        if isinstance(keys, Mapping) and "keys" in keys:
            return cls._from_structured(keys, unique=unique, name=name)
        if isinstance(keys, str):
            normalized: tuple[tuple[str, Any], ...] = ((keys, ASCENDING),)
        elif isinstance(keys, Mapping):
            normalized = tuple((str(k), v) for k, v in keys.items())
        else:
            normalized = tuple((str(k), v) for k, v in keys)
        return cls(keys=normalized, unique=unique, name=name)

    @classmethod
    def _from_structured(
        cls, spec: Mapping[str, Any], *, unique: bool = False, name: str = ""
    ) -> "IndexSpec":
        unknown = sorted(set(spec) - _STRUCTURED_SPEC_FIELDS)
        if unknown:
            raise OperationFailure(
                f"unknown index spec field(s) {unknown!r}; "
                f"allowed: {sorted(_STRUCTURED_SPEC_FIELDS)!r}"
            )
        raw_keys = spec["keys"]
        if isinstance(raw_keys, str):
            normalized: tuple[tuple[str, Any], ...] = ((raw_keys, ASCENDING),)
        elif isinstance(raw_keys, Mapping):
            normalized = tuple((str(k), v) for k, v in raw_keys.items())
        else:
            try:
                normalized = tuple(
                    (str(pair), ASCENDING)
                    if isinstance(pair, str)
                    else (str(pair[0]), pair[1])
                    for pair in raw_keys
                )
            except (TypeError, IndexError):
                raise OperationFailure(
                    "index spec 'keys' must be a field name, a mapping, or a "
                    "sequence of (field, direction) pairs"
                ) from None
        index_type = str(spec.get("type") or BTREE_TYPE)
        dims = spec.get("dims", 0)
        nlist = spec.get("nlist", 0)
        if index_type == VECTOR_TYPE:
            # Plain field names in a vector spec's keys mean the vector field.
            normalized = tuple(
                (field_path, VECTOR if direction == ASCENDING else direction)
                for field_path, direction in normalized
            )
        return cls(
            keys=normalized,
            unique=bool(spec.get("unique", unique)),
            name=str(spec.get("name") or name or ""),
            type=index_type,
            dims=dims if dims is not None else 0,
            metric=str(spec.get("metric") or ""),
            nlist=nlist if nlist is not None else 0,
        )

    def describe(self) -> dict[str, Any]:
        """The structured spec document for this index (round-trippable).

        The returned mapping is accepted back by :meth:`from_key_specification`
        and is what ``list_indexes``, WAL index-DDL records, and the wire
        protocol's ``createIndexes`` command carry.
        """
        described: dict[str, Any] = {
            "name": self.name,
            "type": self.type,
            "keys": [list(pair) for pair in self.keys],
            "unique": self.unique,
        }
        if self.type == VECTOR_TYPE:
            described["dims"] = self.dims
            described["metric"] = self.metric
            if self.nlist:
                described["nlist"] = self.nlist
        return described

    @property
    def fields(self) -> tuple[str, ...]:
        """The indexed field paths, in declaration order."""
        return tuple(field_ for field_, _direction in self.keys)

    @property
    def is_hashed(self) -> bool:
        """True if this is a hashed (single-field) index."""
        return any(direction == HASHED for _field, direction in self.keys)

    @property
    def is_vector(self) -> bool:
        """True if this is a vector index."""
        return self.type == VECTOR_TYPE


class Index:
    """A sorted-array secondary index over one collection."""

    def __init__(self, spec: IndexSpec) -> None:
        self.spec = spec
        # Parallel arrays: _keys is sorted; _entries[i] is (raw_key, doc_id).
        self._keys: list[tuple[_OrderedKey, ...]] = []
        self._entries: list[tuple[tuple[Any, ...], int]] = []
        # Entries whose key does not order like the underlying document value
        # (embedded documents collapse to a canonical marker, arrays fan out
        # into per-element keys).  The planner must not serve a sort from
        # this index while any such entry exists.
        self._order_unsafe_entries = 0

    # -- key extraction ----------------------------------------------------

    def keys_for_document(self, document: Mapping[str, Any]) -> list[tuple[Any, ...]]:
        """Return every index key produced by *document* (multikey fan-out)."""
        keys, _order_safe = self._expand_keys(document)
        return keys

    def _expand_keys(
        self, document: Mapping[str, Any]
    ) -> tuple[list[tuple[Any, ...]], bool]:
        """Return ``(keys, order_safe)`` for *document*.

        ``order_safe`` is False when any indexed value is an array (multikey
        fan-out indexes elements, not the array the sort comparator sees) or
        an embedded document (collapsed to a canonical marker) — either way
        the stored key order diverges from the document sort order.
        """
        order_safe = True
        per_field_values: list[list[Any]] = []
        for field_path, direction in self.spec.keys:
            values = resolve_path(document, field_path)
            if not values:
                values = [_MISSING_KEY]
            elif len(values) > 1:
                # Dotted path through an array of subdocuments: fan-out.
                order_safe = False
            expanded: list[Any] = []
            for value in values:
                if isinstance(value, (list, tuple)):
                    # Multikey: each array element produces its own key.
                    order_safe = False
                    expanded.extend(value if value else [_MISSING_KEY])
                else:
                    if isinstance(value, Mapping):
                        order_safe = False
                    expanded.append(value)
            if direction == HASHED:
                expanded = [hashed_value(value) for value in expanded]
            else:
                expanded = [_canonical_key_value(value) for value in expanded]
            per_field_values.append(expanded)

        keys: list[tuple[Any, ...]] = [()]
        for values in per_field_values:
            keys = [existing + (value,) for existing in keys for value in values]
        if len(keys) == 1:
            # No fan-out (the overwhelmingly common scalar case): nothing to
            # deduplicate, skip the repr() round trip entirely.
            return keys, order_safe
        # Deduplicate while keeping deterministic order.
        seen: set[str] = set()
        unique_keys = []
        for key in keys:
            marker = repr(key)
            if marker not in seen:
                seen.add(marker)
                unique_keys.append(key)
        return unique_keys, order_safe

    # -- maintenance ---------------------------------------------------------

    def insert(self, document: Mapping[str, Any], doc_id: int) -> None:
        """Index *document* stored under *doc_id*."""
        keys, order_safe = self._expand_keys(document)
        for key in keys:
            ordered = _ordered_tuple(key)
            if self.spec.unique:
                position = bisect.bisect_left(self._keys, ordered)
                if position < len(self._keys) and self._keys[position] == ordered:
                    raise DuplicateKeyError(self.spec.name, key)
            position = bisect.bisect_right(self._keys, ordered)
            self._keys.insert(position, ordered)
            self._entries.insert(position, (key, doc_id))
            if not order_safe:
                self._order_unsafe_entries += 1

    def _prepare_batch(
        self, documents: Iterable[tuple[int, Mapping[str, Any]]]
    ) -> list[tuple[tuple[_OrderedKey, ...], tuple[Any, ...], int, bool]]:
        """Extract and sort every entry a batch of documents produces.

        Returns ``(ordered_key, raw_key, doc_id, order_safe)`` tuples sorted
        by ordered key.  The sort is stable, so entries with equal keys keep
        batch order — the same relative order sequential :meth:`insert`
        (``bisect_right``) produces.
        """
        additions = []
        for doc_id, document in documents:
            keys, order_safe = self._expand_keys(document)
            for key in keys:
                additions.append((_ordered_tuple(key), key, doc_id, order_safe))
        additions.sort(key=lambda entry: entry[0])
        return additions

    def _check_batch_unique(
        self,
        additions: list[tuple[tuple[_OrderedKey, ...], tuple[Any, ...], int, bool]],
    ) -> None:
        """Raise on adjacent duplicate keys in a sorted batch (unique indexes)."""
        if not self.spec.unique:
            return
        previous: tuple[_OrderedKey, ...] | None = None
        for ordered, key, _doc_id, _safe in additions:
            if previous is not None and ordered == previous:
                raise DuplicateKeyError(self.spec.name, key)
            previous = ordered

    def bulk_insert(self, documents: Iterable[tuple[int, Mapping[str, Any]]]) -> "BulkUndo":
        """Index a whole batch in one pass; returns a rollback handle.

        The batch's keys are extracted and sorted once, then merged with the
        existing sorted arrays — O(n + m) for n new keys over m existing
        entries, instead of n binary searches each followed by an O(m)
        ``list.insert``.  Unique violations (within the batch or against
        existing entries) are detected during the merge and raise *before*
        the index is modified, so a failed ``bulk_insert`` leaves the index
        untouched.
        """
        additions = self._prepare_batch(documents)
        if not additions:
            return BulkUndo(self, truncate_to=len(self._entries))
        self._check_batch_unique(additions)
        unsafe = sum(1 for entry in additions if not entry[3])
        if not self._keys or not additions[0][0] < self._keys[-1]:
            # Append fast path: the whole batch sorts at or after the last
            # existing key (sequential loads into the _id index always land
            # here), so no merge — and no array copy — is needed.
            if self.spec.unique and self._keys and self._keys[-1] == additions[0][0]:
                raise DuplicateKeyError(self.spec.name, additions[0][1])
            undo = BulkUndo(self, truncate_to=len(self._entries), unsafe=unsafe)
            self._keys.extend(entry[0] for entry in additions)
            self._entries.extend((entry[1], entry[2]) for entry in additions)
            self._order_unsafe_entries += unsafe
            return undo
        merged_keys, merged_entries = self._merge_sorted(additions)
        undo = BulkUndo(
            self,
            keys=self._keys,
            entries=self._entries,
            unsafe=self._order_unsafe_entries,
        )
        self._keys = merged_keys
        self._entries = merged_entries
        self._order_unsafe_entries += unsafe
        return undo

    def _merge_sorted(
        self,
        additions: list[tuple[tuple[_OrderedKey, ...], tuple[Any, ...], int, bool]],
    ) -> tuple[list[tuple[_OrderedKey, ...]], list[tuple[tuple[Any, ...], int]]]:
        """Two-pointer merge of sorted *additions* into new key/entry arrays."""
        unique = self.spec.unique
        old_keys, old_entries = self._keys, self._entries
        keys: list[tuple[_OrderedKey, ...]] = []
        entries: list[tuple[tuple[Any, ...], int]] = []
        position = 0
        total = len(old_keys)
        for ordered, key, doc_id, _safe in additions:
            # Equal existing keys are copied first (bisect_right semantics).
            while position < total and not ordered < old_keys[position]:
                if unique and old_keys[position] == ordered:
                    raise DuplicateKeyError(self.spec.name, key)
                keys.append(old_keys[position])
                entries.append(old_entries[position])
                position += 1
            keys.append(ordered)
            entries.append((key, doc_id))
        keys.extend(old_keys[position:])
        entries.extend(old_entries[position:])
        return keys, entries

    def rebuild(self, documents: Iterable[tuple[int, Mapping[str, Any]]]) -> None:
        """Rebuild the index from scratch with a single sort.

        Used for deferred index builds (``create_index`` over a populated
        collection and ``bulk_load`` exit): one key extraction pass and one
        sort replace per-document ``list.insert`` maintenance.  Unique
        violations raise before the old entries are replaced.
        """
        additions = self._prepare_batch(documents)
        self._check_batch_unique(additions)
        self._keys = [entry[0] for entry in additions]
        self._entries = [(entry[1], entry[2]) for entry in additions]
        self._order_unsafe_entries = sum(1 for entry in additions if not entry[3])

    def remove(self, document: Mapping[str, Any], doc_id: int) -> None:
        """Remove the entries of *document* stored under *doc_id*."""
        keys, order_safe = self._expand_keys(document)
        for key in keys:
            ordered = _ordered_tuple(key)
            position = bisect.bisect_left(self._keys, ordered)
            while position < len(self._keys) and self._keys[position] == ordered:
                if self._entries[position][1] == doc_id:
                    del self._keys[position]
                    del self._entries[position]
                    if not order_safe:
                        self._order_unsafe_entries -= 1
                    break
                position += 1

    def replace(
        self,
        old_document: Mapping[str, Any],
        new_document: Mapping[str, Any],
        doc_id: int,
    ) -> None:
        """Re-index *doc_id* after an update changed the document."""
        self.remove(old_document, doc_id)
        self.insert(new_document, doc_id)

    def clear(self) -> None:
        """Drop every entry (used when a collection is emptied)."""
        self._keys.clear()
        self._entries.clear()
        self._order_unsafe_entries = 0

    @property
    def order_safe(self) -> bool:
        """True when every stored key orders exactly like its document value."""
        return self._order_unsafe_entries == 0

    # -- lookups -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def point_lookup(self, key: Sequence[Any]) -> list[int]:
        """Return the document ids whose full index key equals *key*."""
        if self.spec.is_hashed:
            key = tuple(hashed_value(value) for value in key)
        else:
            key = tuple(_canonical_key_value(value) for value in key)
        ordered = _ordered_tuple(tuple(key))
        position = bisect.bisect_left(self._keys, ordered)
        matches: list[int] = []
        while position < len(self._keys) and self._keys[position] == ordered:
            matches.append(self._entries[position][1])
            position += 1
        return matches

    def prefix_lookup(self, prefix: Sequence[Any]) -> list[int]:
        """Return document ids whose key starts with *prefix* (index prefix)."""
        ordered_prefix = _ordered_tuple(
            tuple(_canonical_key_value(value) for value in prefix)
        )
        position = bisect.bisect_left(self._keys, ordered_prefix)
        matches: list[int] = []
        while position < len(self._keys):
            key = self._keys[position]
            if key[: len(ordered_prefix)] != ordered_prefix:
                break
            matches.append(self._entries[position][1])
            position += 1
        return matches

    def range_lookup(
        self,
        lower: Any = None,
        upper: Any = None,
        *,
        include_lower: bool = True,
        include_upper: bool = True,
    ) -> list[int]:
        """Range scan over the first indexed field.

        Hashed indexes cannot serve range scans; callers must fall back to a
        collection scan (this mirrors the behaviour the paper notes for
        hash-based partitioning in Section 2.1.3.3).
        """
        if self.spec.is_hashed:
            raise OperationFailure("hashed indexes do not support range scans")
        lower = _canonical_key_value(lower) if lower is not None else None
        upper = _canonical_key_value(upper) if upper is not None else None
        if lower is None:
            start = 0
        else:
            bound = (_OrderedKey(lower),)
            start = (
                bisect.bisect_left(self._keys, bound)
                if include_lower
                else bisect.bisect_right(self._keys, bound + (_OrderedKey(_Max()),))
            )
        matches: list[int] = []
        for position in range(start, len(self._keys)):
            first = self._entries[position][0][0]
            if lower is not None:
                ordering = compare_values(first, lower)
                if ordering < 0 or (ordering == 0 and not include_lower):
                    continue
            if upper is not None:
                ordering = compare_values(first, upper)
                if ordering > 0 or (ordering == 0 and not include_upper):
                    break
            matches.append(self._entries[position][1])
        return matches

    def scan(self, reverse: bool = False) -> Iterator[tuple[tuple[Any, ...], int]]:
        """Iterate over ``(key, doc_id)`` pairs in key order."""
        entries: Iterable[tuple[tuple[Any, ...], int]] = self._entries
        if reverse:
            entries = reversed(self._entries)
        yield from entries

    def ordered_doc_ids(self, reverse: bool = False) -> Iterator[int]:
        """Yield document ids in index-key order (used to serve a sort)."""
        for _key, doc_id in self.scan(reverse=reverse):
            yield doc_id

    def distinct_first_values(self) -> list[Any]:
        """Distinct values of the leading key (used for chunk split points)."""
        distinct: list[Any] = []
        previous: object = object()
        for key, _doc_id in self._entries:
            first = key[0]
            if previous is object() or compare_values(first, previous) != 0:
                distinct.append(first)
                previous = first
        return distinct


class BulkUndo:
    """Rollback handle for one :meth:`Index.bulk_insert` call.

    A bulk insert that took the append fast path is undone by truncating the
    arrays back to their previous length; a merge is undone by restoring the
    previous array objects (the merge builds new lists, so the old ones stay
    valid).  Collections use this to remove a batch from every
    already-updated index when a later index raises a unique violation.
    """

    __slots__ = ("_index", "_keys", "_entries", "_unsafe", "_truncate_to")

    def __init__(
        self,
        index: Index,
        *,
        keys: list | None = None,
        entries: list | None = None,
        unsafe: int = 0,
        truncate_to: int | None = None,
    ) -> None:
        self._index = index
        self._keys = keys
        self._entries = entries
        #: Truncate mode: the unsafe-entry count *added* by the bulk insert.
        #: Swap mode: the unsafe-entry count *before* the bulk insert.
        self._unsafe = unsafe
        self._truncate_to = truncate_to

    def rollback(self) -> None:
        """Restore the index to its state before the bulk insert."""
        index = self._index
        if self._truncate_to is not None:
            del index._keys[self._truncate_to:]
            del index._entries[self._truncate_to:]
            index._order_unsafe_entries -= self._unsafe
        else:
            index._keys = self._keys
            index._entries = self._entries
            index._order_unsafe_entries = self._unsafe


class _Max:
    """Sentinel comparing greater than every other ordered key."""

    def __repr__(self) -> str:  # pragma: no cover
        return "_Max()"
