"""Query-filter matching.

Implements the find()/``$match`` filter language used by the thesis queries
(Appendix B) and by the migration / translation algorithms:

* dotted-path field access (``"ss_cdemo_sk.cd_gender"``), including descent
  into arrays of embedded documents (multikey semantics);
* comparison operators ``$eq``, ``$ne``, ``$gt``, ``$gte``, ``$lt``, ``$lte``;
* set operators ``$in`` and ``$nin``;
* logical operators ``$and``, ``$or``, ``$nor``, ``$not``;
* element operators ``$exists`` and ``$type``;
* evaluation operators ``$regex`` and ``$mod``;
* array operators ``$all``, ``$size``, and ``$elemMatch``.

The matcher is deliberately free of any storage concerns so that both the
stand-alone collection scan and the per-shard scans in the sharded cluster can
share it.
"""

from __future__ import annotations

import datetime as _dt
import re
# Mapping/Sequence come from collections.abc: isinstance() against the
# typing aliases pays a slow __instancecheck__ on every call, and these
# checks sit on the per-document hot path of the matcher and the indexes.
from collections.abc import Mapping, Sequence
from typing import Any, Callable, Iterable

from .errors import InvalidOperator, OperationFailure
from .objectid import ObjectId

__all__ = [
    "resolve_path",
    "resolve_path_single",
    "matches",
    "matches_document",
    "compile_filter",
    "compile_matcher",
    "compile_path",
    "compare_values",
    "values_equal",
]

_MISSING = object()


# ---------------------------------------------------------------------------
# Dotted-path resolution
# ---------------------------------------------------------------------------

def resolve_path(document: Any, path: str) -> list[Any]:
    """Return every value reachable at *path* inside *document*.

    A dotted path descends through embedded documents; when it meets an array
    it fans out across elements (multikey behaviour).  Numeric path components
    additionally index into arrays.  Missing branches produce no values.
    """
    parts = path.split(".") if path else []
    return list(_walk(document, parts))


def _walk(node: Any, parts: Sequence[str]) -> Iterable[Any]:
    if not parts:
        yield node
        return
    head, rest = parts[0], parts[1:]
    if isinstance(node, Mapping):
        if head in node:
            yield from _walk(node[head], rest)
        return
    if isinstance(node, (list, tuple)):
        if head.isdigit():
            index = int(head)
            if 0 <= index < len(node):
                yield from _walk(node[index], rest)
        for item in node:
            if isinstance(item, Mapping) and head in item:
                yield from _walk(item[head], rest)
        return
    # Scalars terminate the walk without producing a value.


def compile_path(path: str) -> Callable[[Any], list[Any]]:
    """Lower a dotted path into a resolver closure.

    The path is split once at compile time instead of once per document, and
    single-segment paths — the overwhelmingly common case in the thesis
    queries — skip the generator-based walk entirely.
    """
    parts = path.split(".") if path else []
    if len(parts) == 1:
        head = parts[0]

        def resolve_single_segment(document: Any) -> list[Any]:
            if isinstance(document, Mapping):
                if head in document:
                    return [document[head]]
                return []
            return list(_walk(document, parts))

        return resolve_single_segment

    def resolve_segments(document: Any) -> list[Any]:
        return list(_walk(document, parts))

    return resolve_segments


def resolve_path_single(document: Any, path: str, default: Any = None) -> Any:
    """Return the first value at *path*, or *default* if the path is missing."""
    values = resolve_path(document, path)
    if not values:
        return default
    return values[0]


def path_exists(document: Any, path: str) -> bool:
    """Return ``True`` if *path* resolves to at least one value (even None)."""
    parts = path.split(".") if path else []
    return _exists(document, parts)


def _exists(node: Any, parts: Sequence[str]) -> bool:
    if not parts:
        return True
    head, rest = parts[0], parts[1:]
    if isinstance(node, Mapping):
        return head in node and _exists(node[head], rest)
    if isinstance(node, (list, tuple)):
        if head.isdigit():
            index = int(head)
            if 0 <= index < len(node) and _exists(node[index], rest):
                return True
        return any(
            isinstance(item, Mapping) and head in item and _exists(item[head], rest)
            for item in node
        )
    return False


# ---------------------------------------------------------------------------
# Value comparison with a BSON-like type order
# ---------------------------------------------------------------------------

_TYPE_ORDER: tuple[tuple[type, ...], ...] = (
    (type(None),),
    (bool,),
    (int, float),
    (str,),
    (dict,),
    (list, tuple),
    (bytes,),
    (ObjectId,),
    (_dt.date, _dt.datetime),
)

# Exact-type fast path: avoids repeated ABC isinstance checks on the hot
# comparison path (index maintenance compares millions of keys).
_EXACT_TYPE_RANK: dict[type, int] = {
    type(None): 0,
    bool: 1,
    int: 2,
    float: 2,
    str: 3,
    dict: 4,
    list: 5,
    tuple: 5,
    bytes: 6,
    ObjectId: 7,
    _dt.date: 8,
    _dt.datetime: 8,
}


def _type_rank(value: Any) -> int:
    rank = _EXACT_TYPE_RANK.get(type(value))
    if rank is not None:
        return rank
    # bool must be checked before int because bool is a subclass of int.
    if isinstance(value, bool):
        return 1
    for position, types in enumerate(_TYPE_ORDER):
        if isinstance(value, types) or (value is None and types[0] is type(None)):
            return position
    return len(_TYPE_ORDER)


def compare_values(left: Any, right: Any) -> int:
    """Three-way comparison of two values using a BSON-like total order.

    Returns a negative number, zero, or a positive number.  Values of
    different types compare by their type rank, which makes every pair of
    values comparable (needed by sort and by range chunk assignment).
    """
    # Fast path for the by-far most common case on the index hot path:
    # two numbers (or two strings) of the same concrete type.
    left_type, right_type = type(left), type(right)
    if left_type is right_type and left_type in (int, float, str):
        return (left > right) - (left < right)
    left_rank, right_rank = _type_rank(left), _type_rank(right)
    if left_rank != right_rank:
        return -1 if left_rank < right_rank else 1
    if left is None and right is None:
        return 0
    if isinstance(left, (list, tuple)) and isinstance(right, (list, tuple)):
        for left_item, right_item in zip(left, right):
            result = compare_values(left_item, right_item)
            if result:
                return result
        return (len(left) > len(right)) - (len(left) < len(right))
    if isinstance(left, Mapping) and isinstance(right, Mapping):
        return compare_values(
            sorted(left.items(), key=lambda kv: kv[0]),
            sorted(right.items(), key=lambda kv: kv[0]),
        )
    if isinstance(left, ObjectId) and isinstance(right, ObjectId):
        return (left.binary > right.binary) - (left.binary < right.binary)
    if isinstance(left, _dt.datetime) != isinstance(right, _dt.datetime):
        # Promote plain dates so dates and datetimes compare cleanly.
        if isinstance(left, _dt.date) and not isinstance(left, _dt.datetime):
            left = _dt.datetime(left.year, left.month, left.day)
        if isinstance(right, _dt.date) and not isinstance(right, _dt.datetime):
            right = _dt.datetime(right.year, right.month, right.day)
    try:
        return (left > right) - (left < right)
    except TypeError as exc:  # pragma: no cover - defensive
        raise OperationFailure(f"cannot compare {left!r} and {right!r}") from exc


def values_equal(left: Any, right: Any) -> bool:
    """Equality that treats ints and floats as interchangeable."""
    if isinstance(left, bool) != isinstance(right, bool):
        return False
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return float(left) == float(right)
    if _type_rank(left) != _type_rank(right):
        return False
    return compare_values(left, right) == 0


# ---------------------------------------------------------------------------
# Operator predicates
# ---------------------------------------------------------------------------

def _cmp_predicate(operand: Any, check: Callable[[int], bool]) -> Callable[[Any], bool]:
    operand_rank = _type_rank(operand)

    def predicate(value: Any) -> bool:
        if value is _MISSING:
            return False
        if _type_rank(value) != operand_rank:
            return False
        return check(compare_values(value, operand))

    return predicate


def _build_operator_predicate(path: str, operator: str, operand: Any) -> Callable[[Any], bool]:
    """Build a predicate over a document for a single ``{path: {op: operand}}``."""
    if operator in ("$eq", "$ne"):
        def eq_values(value: Any) -> bool:
            if value is _MISSING:
                return operand is None
            if isinstance(value, (list, tuple)) and not isinstance(operand, (list, tuple)):
                return any(values_equal(item, operand) for item in value)
            return values_equal(value, operand)

        if operator == "$eq":
            field_predicate = eq_values
        else:
            field_predicate = lambda value: not eq_values(value)  # noqa: E731
    elif operator == "$gt":
        field_predicate = _cmp_predicate(operand, lambda c: c > 0)
    elif operator == "$gte":
        field_predicate = _cmp_predicate(operand, lambda c: c >= 0)
    elif operator == "$lt":
        field_predicate = _cmp_predicate(operand, lambda c: c < 0)
    elif operator == "$lte":
        field_predicate = _cmp_predicate(operand, lambda c: c <= 0)
    elif operator in ("$in", "$nin"):
        if not isinstance(operand, (list, tuple, set, frozenset)):
            raise InvalidOperator(f"{operator} requires a list operand")
        choices = list(operand)
        hashable: set[Any] = set()
        unhashable: list[Any] = []
        for choice in choices:
            try:
                hashable.add(choice)
            except TypeError:
                unhashable.append(choice)

        def in_values(value: Any) -> bool:
            candidates = value if isinstance(value, (list, tuple)) else [value]
            for candidate in candidates:
                if candidate is _MISSING:
                    candidate = None
                try:
                    if candidate in hashable:
                        return True
                except TypeError:
                    pass
                if any(values_equal(candidate, choice) for choice in choices):
                    return True
            return False

        if operator == "$in":
            field_predicate = in_values
        else:
            field_predicate = lambda value: not in_values(value)  # noqa: E731
    elif operator == "$exists":
        expected = bool(operand)

        def exists_predicate(value: Any) -> bool:
            return (value is not _MISSING) == expected

        field_predicate = exists_predicate
    elif operator == "$type":
        type_map = {
            "double": float,
            "string": str,
            "object": dict,
            "array": list,
            "bool": bool,
            "int": int,
            "long": int,
            "number": (int, float),
            "date": (_dt.date, _dt.datetime),
            "objectId": ObjectId,
            "null": type(None),
        }
        if operand not in type_map:
            raise InvalidOperator(f"unknown $type alias {operand!r}")
        expected_types = type_map[operand]

        def type_predicate(value: Any) -> bool:
            if value is _MISSING:
                return False
            if operand == "null":
                return value is None
            if operand in ("int", "long", "number", "double") and isinstance(value, bool):
                return False
            return isinstance(value, expected_types)

        field_predicate = type_predicate
    elif operator == "$regex":
        flags = 0
        pattern = operand
        if isinstance(operand, Mapping):
            pattern = operand.get("pattern", "")
        compiled = re.compile(pattern, flags)

        def regex_predicate(value: Any) -> bool:
            return isinstance(value, str) and bool(compiled.search(value))

        field_predicate = regex_predicate
    elif operator == "$mod":
        if not isinstance(operand, (list, tuple)) or len(operand) != 2:
            raise InvalidOperator("$mod requires [divisor, remainder]")
        divisor, remainder = operand

        def mod_predicate(value: Any) -> bool:
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                return False
            return int(value) % int(divisor) == int(remainder)

        field_predicate = mod_predicate
    elif operator == "$size":
        def size_predicate(value: Any) -> bool:
            return isinstance(value, (list, tuple)) and len(value) == operand

        field_predicate = size_predicate
    elif operator == "$all":
        if not isinstance(operand, (list, tuple)):
            raise InvalidOperator("$all requires a list operand")

        def all_predicate(value: Any) -> bool:
            if not isinstance(value, (list, tuple)):
                value = [value]
            return all(
                any(values_equal(item, wanted) for item in value) for wanted in operand
            )

        field_predicate = all_predicate
    elif operator == "$elemMatch":
        if not isinstance(operand, Mapping):
            raise InvalidOperator("$elemMatch requires a document operand")
        inner = compile_filter(operand)

        def elem_match_predicate(value: Any) -> bool:
            if not isinstance(value, (list, tuple)):
                return False
            return any(isinstance(item, Mapping) and inner(item) for item in value)

        field_predicate = elem_match_predicate
    elif operator == "$not":
        if isinstance(operand, Mapping):
            negated = _compile_field_condition(path, operand)
        else:
            negated = _compile_field_condition(path, {"$eq": operand})
        return lambda document: not negated(document)
    else:
        raise InvalidOperator(f"unknown query operator {operator!r}")

    resolver = compile_path(path)

    if operator == "$exists":
        def exists_document_predicate(document: Any) -> bool:
            values = resolver(document)
            return field_predicate(values[0] if values else _MISSING)

        return exists_document_predicate

    def document_predicate(document: Any) -> bool:
        values = resolver(document)
        if not values:
            return field_predicate(_MISSING)
        return any(field_predicate(value) for value in values)

    return document_predicate


def _is_operator_document(value: Any) -> bool:
    return (
        isinstance(value, Mapping)
        and bool(value)
        and all(isinstance(key, str) and key.startswith("$") for key in value)
    )


def _compile_field_condition(path: str, condition: Any) -> Callable[[Any], bool]:
    """Compile ``{path: condition}`` where condition is a value or op-document."""
    if _is_operator_document(condition):
        predicates = [
            _build_operator_predicate(path, operator, operand)
            for operator, operand in condition.items()
        ]
        if len(predicates) == 1:
            return predicates[0]
        return lambda document: all(predicate(document) for predicate in predicates)
    return _build_operator_predicate(path, "$eq", condition)


def compile_matcher(query: Mapping[str, Any] | None) -> Callable[[Any], bool]:
    """Validate and lower a filter document into a predicate ``doc -> bool``.

    The filter tree is walked exactly once: operator operands are validated,
    dotted paths are pre-split, ``$expr`` expressions are compiled, and the
    result is a tree of closures.  Collection scans, pipeline ``$match``
    stages, and per-shard execution all reuse one compiled predicate instead
    of re-interpreting the raw query ``Mapping`` per document.
    """
    if not query:
        return lambda _document: True
    if not isinstance(query, Mapping):
        raise OperationFailure("query filters must be documents")

    predicates: list[Callable[[Any], bool]] = []
    for key, condition in query.items():
        if key == "$and":
            sub = [compile_matcher(item) for item in condition]
            predicates.append(
                lambda document, sub=sub: all(p(document) for p in sub)
            )
        elif key == "$or":
            sub = [compile_matcher(item) for item in condition]
            predicates.append(
                lambda document, sub=sub: any(p(document) for p in sub)
            )
        elif key == "$nor":
            sub = [compile_matcher(item) for item in condition]
            predicates.append(
                lambda document, sub=sub: not any(p(document) for p in sub)
            )
        elif key == "$expr":
            from .expressions import compile_expression

            evaluator = compile_expression(condition)
            predicates.append(
                lambda document, evaluator=evaluator: bool(evaluator(document))
            )
        elif key.startswith("$"):
            raise InvalidOperator(f"unknown top-level operator {key!r}")
        else:
            predicates.append(_compile_field_condition(key, condition))

    if len(predicates) == 1:
        return predicates[0]
    return lambda document: all(predicate(document) for predicate in predicates)


#: Backwards-compatible name for :func:`compile_matcher`.
compile_filter = compile_matcher


def matches(document: Mapping[str, Any], query: Mapping[str, Any] | None) -> bool:
    """Return ``True`` if *document* satisfies *query*."""
    return compile_matcher(query)(document)


#: One-shot form of the matcher: compiles the query fresh on every call.
#: ``compile_matcher(q)(doc)`` must agree with ``matches_document(doc, q)``
#: for every query/document pair — comparing the two exercises a reused
#: compiled closure against a per-call compilation (catching closure-state
#: leaks), not an independent interpreter.
matches_document = matches
