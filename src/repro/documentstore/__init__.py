"""An in-process document store.

This package is the reproduction's substitute for the document database
benchmarked in the paper.  It provides:

* a BSON-like document model with :class:`ObjectId` primary keys and the
  16 MB document-size limit (``repro.documentstore.bson``);
* collections with CRUD, cursors, secondary indexes (single-field, compound,
  hashed, multikey) and an index-aware query planner;
* an aggregation pipeline with the stages and accumulators used by the
  thesis queries (Appendix B) and more;
* databases and a stand-alone client.

The sharded deployment environment lives in :mod:`repro.sharding` and builds
on the same collection engine.
"""

from .aggregation import run_pipeline, split_pipeline_for_shards
from .bson import (
    MAX_DOCUMENT_SIZE,
    decode_document,
    document_size,
    encode_document,
    validate_document,
)
from .client import DocumentStoreClient
from .collection import Collection, CollectionStats
from .cursor import Cursor, DeleteResult, InsertManyResult, InsertOneResult, UpdateResult
from .database import Database
from .errors import (
    ChunkSplitError,
    CollectionDoesNotExist,
    CollectionInvalid,
    DocumentStoreError,
    DocumentTooLargeError,
    DuplicateKeyError,
    IndexNotFoundError,
    InvalidDocumentError,
    InvalidOperator,
    InvalidPipelineError,
    InvalidUpdateError,
    OperationFailure,
    ShardingError,
    ShardKeyError,
)
from .indexes import ASCENDING, DESCENDING, HASHED, Index, IndexSpec, hashed_value
from .matching import compare_values, matches, resolve_path, resolve_path_single
from .objectid import ObjectId
from .planner import QueryPlan, plan_query
from .storage import dump_collection, dump_database, load_collection, load_database

__all__ = [
    "ASCENDING",
    "DESCENDING",
    "HASHED",
    "MAX_DOCUMENT_SIZE",
    "ChunkSplitError",
    "Collection",
    "CollectionDoesNotExist",
    "CollectionInvalid",
    "CollectionStats",
    "Cursor",
    "Database",
    "DeleteResult",
    "DocumentStoreClient",
    "DocumentStoreError",
    "DocumentTooLargeError",
    "DuplicateKeyError",
    "Index",
    "IndexNotFoundError",
    "IndexSpec",
    "InsertManyResult",
    "InsertOneResult",
    "InvalidDocumentError",
    "InvalidOperator",
    "InvalidPipelineError",
    "InvalidUpdateError",
    "ObjectId",
    "OperationFailure",
    "QueryPlan",
    "ShardKeyError",
    "ShardingError",
    "UpdateResult",
    "compare_values",
    "decode_document",
    "document_size",
    "dump_collection",
    "dump_database",
    "encode_document",
    "hashed_value",
    "load_collection",
    "load_database",
    "matches",
    "plan_query",
    "resolve_path",
    "resolve_path_single",
    "run_pipeline",
    "split_pipeline_for_shards",
    "validate_document",
]
