"""An in-process document store.

This package is the reproduction's substitute for the document database
benchmarked in the paper.  It provides:

* a BSON-like document model with :class:`ObjectId` primary keys and the
  16 MB document-size limit (``repro.documentstore.bson``);
* collections with CRUD, cursors, secondary indexes (single-field, compound,
  hashed, multikey) and an index-aware query planner;
* an aggregation pipeline with the stages and accumulators used by the
  thesis queries (Appendix B) and more;
* databases and a stand-alone client.

The sharded deployment environment lives in :mod:`repro.sharding` and builds
on the same collection engine.
"""

from .aggregation import (
    CompiledPipeline,
    StageStats,
    compile_pipeline,
    optimize_pipeline,
    run_pipeline,
    split_pipeline_for_shards,
)
from .bson import (
    MAX_DOCUMENT_SIZE,
    decode_document,
    document_size,
    encode_document,
    validate_document,
)
from .client import DocumentStoreClient
from .collection import Collection, CollectionStats
from .cursor import Cursor, DeleteResult, InsertManyResult, InsertOneResult, UpdateResult
from .database import Database
from .errors import (
    ChunkSplitError,
    CollectionDoesNotExist,
    CollectionInvalid,
    DocumentStoreError,
    DocumentTooLargeError,
    DuplicateKeyError,
    DurabilityError,
    IndexNotFoundError,
    InvalidDocumentError,
    InvalidOperator,
    InvalidPipelineError,
    InvalidUpdateError,
    OperationFailure,
    RecoveryError,
    ShardingError,
    ShardKeyError,
    SnapshotCorruptError,
)
from .explain import (
    EXECUTION_KEYS,
    EXPLAIN_VERSION,
    PLANNER_KEYS,
    TOP_LEVEL_KEYS,
    VERBOSITIES,
    build_execution_stats,
    build_explain,
    validate_verbosity,
)
from .expressions import compile_expression, evaluate_expression
from .findspec import FindSpec, projection_preserves_fields
from .indexes import ASCENDING, DESCENDING, HASHED, VECTOR, Index, IndexSpec, hashed_value
from .matching import (
    compare_values,
    compile_matcher,
    matches,
    matches_document,
    resolve_path,
    resolve_path_single,
)
from .objectid import ObjectId
from .ordering import document_sort_key, sort_key
from .planner import QueryPlan, plan_find, plan_query
from .recovery import RecoveryReport, recover
from .snapshot import load_snapshot, write_snapshot
from .storage import (
    StorageEngine,
    dump_collection,
    dump_database,
    load_collection,
    load_database,
)
from .vector import VectorIndex, vector_score
from .wal import WriteAheadLog, decode_records, encode_record

__all__ = [
    "ASCENDING",
    "DESCENDING",
    "EXECUTION_KEYS",
    "EXPLAIN_VERSION",
    "HASHED",
    "PLANNER_KEYS",
    "TOP_LEVEL_KEYS",
    "VECTOR",
    "VERBOSITIES",
    "MAX_DOCUMENT_SIZE",
    "ChunkSplitError",
    "Collection",
    "CollectionDoesNotExist",
    "CollectionInvalid",
    "CollectionStats",
    "Cursor",
    "Database",
    "DeleteResult",
    "DocumentStoreClient",
    "DocumentStoreError",
    "DocumentTooLargeError",
    "DuplicateKeyError",
    "DurabilityError",
    "FindSpec",
    "Index",
    "IndexNotFoundError",
    "IndexSpec",
    "InsertManyResult",
    "InsertOneResult",
    "InvalidDocumentError",
    "InvalidOperator",
    "InvalidPipelineError",
    "InvalidUpdateError",
    "ObjectId",
    "OperationFailure",
    "QueryPlan",
    "RecoveryError",
    "RecoveryReport",
    "ShardKeyError",
    "ShardingError",
    "SnapshotCorruptError",
    "CompiledPipeline",
    "StageStats",
    "StorageEngine",
    "UpdateResult",
    "VectorIndex",
    "WriteAheadLog",
    "build_execution_stats",
    "build_explain",
    "compare_values",
    "compile_expression",
    "compile_matcher",
    "compile_pipeline",
    "decode_document",
    "decode_records",
    "document_size",
    "document_sort_key",
    "dump_collection",
    "dump_database",
    "encode_document",
    "encode_record",
    "evaluate_expression",
    "hashed_value",
    "load_collection",
    "load_database",
    "load_snapshot",
    "matches",
    "matches_document",
    "optimize_pipeline",
    "plan_find",
    "plan_query",
    "projection_preserves_fields",
    "recover",
    "resolve_path",
    "resolve_path_single",
    "run_pipeline",
    "sort_key",
    "split_pipeline_for_shards",
    "validate_document",
    "validate_verbosity",
    "vector_score",
    "write_snapshot",
]
