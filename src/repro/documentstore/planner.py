"""Query planner.

The planner decides, per query, whether a collection scan (COLLSCAN) or an
index scan (IXSCAN) serves the filter, using the index-prefix rule described
in Section 2.1.2 of the paper: a compound index on ``(a, b, c)`` can answer
queries on ``a``, ``(a, b)``, or ``(a, b, c)``.

Plans are purely advisory — the matcher is always applied afterwards, so a
plan only has to produce a superset of the matching documents.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from .errors import OperationFailure
from .indexes import Index

__all__ = ["QueryPlan", "plan_query", "plan_find"]


@dataclass(frozen=True)
class QueryPlan:
    """The access path chosen for a query.

    For aggregation explains the plan additionally carries the per-stage
    execution counters of the streaming pipeline executor
    (``pipeline_stages``: one ``{stage, docsExamined, docsReturned}`` entry
    per executed stage, in optimized execution order).
    """

    stage: str  # "COLLSCAN", "IXSCAN", or "VECTOR_SEARCH"
    index_name: str | None = None
    index_fields: tuple[str, ...] = ()
    candidate_ids: tuple[int, ...] | None = None
    documents_examined: int = 0
    pipeline_stages: tuple[Mapping[str, Any], ...] = ()
    #: True when iterating ``candidate_ids`` yields documents already in the
    #: requested sort order (the executor can stream instead of sorting).
    sort_served: bool = False
    #: Index scan direction when ``sort_served`` ("forward" or "backward").
    direction: str = "forward"
    #: VECTOR_SEARCH details: k/metric/mode/nprobe/vectorsScored/filter plan.
    vector: Mapping[str, Any] | None = None

    def describe(self) -> dict[str, Any]:
        """Return an ``explain()``-style description of the plan."""
        description: dict[str, Any] = {"stage": self.stage}
        if self.stage == "IXSCAN":
            description["indexName"] = self.index_name
            description["keyPattern"] = list(self.index_fields)
            description["keysExamined"] = self.documents_examined
            if self.sort_served:
                description["sortServedByIndex"] = True
                description["direction"] = self.direction
        elif self.stage == "VECTOR_SEARCH":
            description["indexName"] = self.index_name
            description["keyPattern"] = list(self.index_fields)
            if self.vector:
                description["vectorSearch"] = dict(self.vector)
        if self.pipeline_stages:
            description["pipelineStages"] = [dict(entry) for entry in self.pipeline_stages]
        return description

    def with_pipeline_stages(
        self, stages: Sequence[Mapping[str, Any]]
    ) -> "QueryPlan":
        """Return a copy of the plan carrying pipeline stage counters."""
        return QueryPlan(
            stage=self.stage,
            index_name=self.index_name,
            index_fields=self.index_fields,
            candidate_ids=self.candidate_ids,
            documents_examined=self.documents_examined,
            pipeline_stages=tuple(dict(entry) for entry in stages),
            sort_served=self.sort_served,
            direction=self.direction,
            vector=dict(self.vector) if self.vector else None,
        )


@dataclass
class _FieldConstraints:
    """Constraints extracted from a filter for a single field path."""

    equalities: list[Any] = field(default_factory=list)
    in_values: list[Any] | None = None
    lower: Any = None
    lower_inclusive: bool = True
    upper: Any = None
    upper_inclusive: bool = True
    has_range: bool = False

    @property
    def has_equality(self) -> bool:
        return bool(self.equalities) or self.in_values is not None


def _extract_constraints(query: Mapping[str, Any] | None) -> dict[str, _FieldConstraints]:
    """Collect per-field constraints from the top level (and ``$and``) of *query*."""
    constraints: dict[str, _FieldConstraints] = {}
    if not query:
        return constraints

    def visit(filter_document: Mapping[str, Any]) -> None:
        for key, condition in filter_document.items():
            if key == "$and":
                for sub_filter in condition:
                    visit(sub_filter)
                continue
            if key.startswith("$"):
                # $or / $nor / $expr cannot be used for index bounds safely.
                continue
            entry = constraints.setdefault(key, _FieldConstraints())
            if isinstance(condition, Mapping) and any(
                op.startswith("$") for op in condition
            ):
                for operator, operand in condition.items():
                    if operator == "$eq":
                        entry.equalities.append(operand)
                    elif operator == "$in":
                        entry.in_values = list(operand)
                    elif operator in ("$gt", "$gte"):
                        entry.lower = operand
                        entry.lower_inclusive = operator == "$gte"
                        entry.has_range = True
                    elif operator in ("$lt", "$lte"):
                        entry.upper = operand
                        entry.upper_inclusive = operator == "$lte"
                        entry.has_range = True
            else:
                entry.equalities.append(condition)

    visit(query)
    return constraints


def plan_query(
    query: Mapping[str, Any] | None,
    indexes: Mapping[str, Index],
    collection_size: int,
) -> QueryPlan:
    """Choose an access path for *query* given the available *indexes*.

    Selection strategy (simplified but faithful to the original behaviour):

    1. Prefer an index whose leading field has an equality or ``$in``
       constraint; longer usable prefixes win ties.
    2. Otherwise use an index whose leading field has a range constraint
       (hashed indexes are skipped for ranges).
    3. Fall back to a collection scan.
    """
    constraints = _extract_constraints(query)
    if not constraints or not indexes:
        return QueryPlan(stage="COLLSCAN", documents_examined=collection_size)

    best: tuple[int, str, Index] | None = None
    for name, index in indexes.items():
        if getattr(index.spec, "is_vector", False):
            continue  # vector indexes cannot serve filters or sorts
        leading_field = index.spec.fields[0]
        leading = constraints.get(leading_field)
        if leading is None:
            continue
        if index.spec.is_hashed and not leading.has_equality:
            continue
        if not leading.has_equality and not leading.has_range:
            continue
        # Count how many leading index fields carry an equality constraint —
        # the usable prefix length, which scores the index.
        prefix_length = 0
        for field_path in index.spec.fields:
            entry = constraints.get(field_path)
            if entry is not None and entry.has_equality and entry.in_values is None:
                prefix_length += 1
            else:
                break
        score = prefix_length * 10 + (5 if leading.has_equality else 1)
        if best is None or score > best[0]:
            best = (score, name, index)

    if best is None:
        return QueryPlan(stage="COLLSCAN", documents_examined=collection_size)

    _score, name, index = best
    candidate_ids = _candidates_from_index(index, constraints)
    if candidate_ids is None:
        return QueryPlan(stage="COLLSCAN", documents_examined=collection_size)
    return QueryPlan(
        stage="IXSCAN",
        index_name=name,
        index_fields=index.spec.fields,
        candidate_ids=tuple(candidate_ids),
        documents_examined=len(candidate_ids),
    )


def plan_find(
    query: Mapping[str, Any] | None,
    sort: Sequence[tuple[str, int]] | None,
    indexes: Mapping[str, Index],
    collection_size: int,
    *,
    hint: str | None = None,
    fetch_bound: int | None = None,
) -> QueryPlan:
    """Choose an access path for a complete find spec (filter *and* sort).

    Extends :func:`plan_query` with sort awareness: when the filter cannot
    use an index but an index's key order reproduces the requested sort, the
    plan scans that index in order (forward or backward) and marks
    ``sort_served`` so the executor can stream — and stop at ``skip+limit`` —
    instead of materializing and sorting every match.

    With an empty filter every scanned key is a match, so a known
    *fetch_bound* (``skip + limit``) caps the candidate snapshot itself —
    ``find_one(sort=...)`` touches one index entry, not the whole index.
    """
    usable = indexes
    if hint is not None:
        if hint not in indexes:
            raise OperationFailure(f"hint {hint!r} does not match an index")
        usable = {hint: indexes[hint]}
    plan = plan_query(query, usable, collection_size)
    if not sort:
        return plan
    if plan.stage == "IXSCAN" and not hint:
        return plan
    for name, index in usable.items():
        direction = _index_sort_direction(index, sort, collection_size)
        if direction is None:
            continue
        ordered = index.ordered_doc_ids(reverse=direction == "backward")
        if not query and fetch_bound is not None:
            ordered = itertools.islice(ordered, fetch_bound)
        candidate_ids = tuple(ordered)
        return QueryPlan(
            stage="IXSCAN",
            index_name=name,
            index_fields=index.spec.fields,
            candidate_ids=candidate_ids,
            documents_examined=len(candidate_ids),
            sort_served=True,
            direction=direction,
        )
    return plan


def _index_sort_direction(
    index: Index,
    sort: Sequence[tuple[str, int]],
    collection_size: int,
) -> str | None:
    """Scan direction if *index* can serve *sort*, else ``None``.

    The index qualifies when the sort fields are a prefix of its key fields
    with one uniform direction, it is not hashed, every document contributes
    exactly one entry (no multikey fan-out, so every document appears once),
    and every stored key orders exactly like the document value it came from.
    """
    if index.spec.is_hashed or not index.order_safe:
        return None
    if len(index) != collection_size:
        return None
    fields = tuple(field_path for field_path, _direction in sort)
    if index.spec.fields[: len(fields)] != fields:
        return None
    directions = {direction for _field_path, direction in sort}
    if directions == {1}:
        return "forward"
    if directions == {-1}:
        return "backward"
    return None


def _candidates_from_index(
    index: Index,
    constraints: Mapping[str, _FieldConstraints],
) -> list[int] | None:
    """Fetch candidate doc ids from *index* for the extracted constraints."""
    fields = index.spec.fields
    leading = constraints[fields[0]]

    # Determine how long an equality prefix we can use.
    prefix_values: list[list[Any]] = []
    for field_path in fields:
        entry = constraints.get(field_path)
        if entry is None or not entry.has_equality:
            break
        if entry.equalities:
            prefix_values.append([entry.equalities[0]])
        elif entry.in_values is not None:
            prefix_values.append(list(entry.in_values))
        else:  # pragma: no cover - unreachable
            break

    if prefix_values:
        # Expand $in fan-out into several prefix lookups.
        prefixes: list[tuple[Any, ...]] = [()]
        for values in prefix_values:
            prefixes = [existing + (value,) for existing in prefixes for value in values]
        candidate_ids: list[int] = []
        seen: set[int] = set()
        full_key = len(prefix_values) == len(fields)
        for prefix in prefixes:
            if index.spec.is_hashed or full_key:
                ids: Iterable[int] = index.point_lookup(prefix)
            else:
                ids = index.prefix_lookup(prefix)
            for doc_id in ids:
                if doc_id not in seen:
                    seen.add(doc_id)
                    candidate_ids.append(doc_id)
        return candidate_ids

    if leading.has_range and not index.spec.is_hashed:
        return index.range_lookup(
            lower=leading.lower,
            upper=leading.upper,
            include_lower=leading.lower_inclusive,
            include_upper=leading.upper_inclusive,
        )

    return None
