"""The read-path specification shared by every backend.

A :class:`FindSpec` is the *complete* description of one ``find``: filter,
projection, sort, skip, limit, batch size, and index hint.  Cursors collect
chained options into a spec and hand the finished spec to their executor in
one piece, so the executor — a stand-alone :class:`Collection` or the
sharded :class:`QueryRouter` — sees every option before it touches a single
document and can plan accordingly (serve the sort from an index, run a
bounded top-k, or push projection/sort/``skip+limit`` to the shards).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Mapping, Sequence

from .errors import OperationFailure
from .ordering import normalize_sort_specification

__all__ = ["FindSpec", "projection_preserves_fields"]


@dataclass(frozen=True)
class FindSpec:
    """Immutable description of a ``find`` operation.

    ``limit=None`` means unbounded; ``sort`` is a normalized tuple of
    ``(field, direction)`` pairs or ``None``; ``hint`` names an index the
    planner must use (or ``None`` for automatic selection).
    """

    filter: Mapping[str, Any] | None = None
    projection: Mapping[str, Any] | None = None
    sort: tuple[tuple[str, int], ...] | None = None
    skip: int = 0
    limit: int | None = None
    batch_size: int | None = None
    hint: str | None = None

    @classmethod
    def create(
        cls,
        filter: Mapping[str, Any] | None = None,
        projection: Mapping[str, Any] | None = None,
        sort: str | Sequence[tuple[str, int]] | Mapping[str, int] | None = None,
        skip: int = 0,
        limit: int | None = None,
        batch_size: int | None = None,
        hint: str | None = None,
    ) -> "FindSpec":
        """Build a validated spec from the flexible forms ``find()`` accepts."""
        spec = cls(filter=filter, projection=projection)
        if sort is not None:
            spec = spec.with_sort(sort)
        if skip:
            spec = spec.with_skip(skip)
        if limit:
            spec = spec.with_limit(limit)
        if batch_size is not None:
            spec = spec.with_batch_size(batch_size)
        if hint is not None:
            spec = spec.with_hint(hint)
        return spec

    # -- chaining (used by Cursor) ------------------------------------------

    def with_sort(
        self, key_or_list: str | Sequence[tuple[str, int]] | Mapping[str, int], direction: int = 1
    ) -> "FindSpec":
        """Return a copy with the sort replaced (field name or pair list)."""
        if isinstance(key_or_list, str):
            key_or_list = [(key_or_list, direction)]
        return replace(self, sort=tuple(normalize_sort_specification(key_or_list)))

    def with_skip(self, count: int) -> "FindSpec":
        """Return a copy skipping the first *count* results."""
        if count < 0:
            raise OperationFailure("skip must be non-negative")
        return replace(self, skip=count)

    def with_limit(self, count: int) -> "FindSpec":
        """Return a copy returning at most *count* results (0 = unbounded)."""
        if count < 0:
            raise OperationFailure("limit must be non-negative")
        return replace(self, limit=count or None)

    def with_batch_size(self, count: int) -> "FindSpec":
        """Return a copy with the response batch size set."""
        if count <= 0:
            raise OperationFailure("batch_size must be positive")
        return replace(self, batch_size=count)

    def with_hint(self, index_name: str) -> "FindSpec":
        """Return a copy forcing the planner to use *index_name*."""
        return replace(self, hint=index_name)

    # -- derived specs -------------------------------------------------------

    @property
    def fetch_bound(self) -> int | None:
        """Documents any executor must produce to answer the spec, or ``None``."""
        if self.limit is None:
            return None
        return self.skip + self.limit

    def shard_spec(self) -> "FindSpec":
        """The spec the router pushes to each shard.

        Each shard evaluates the same filter and sort but returns at most
        ``skip + limit`` documents (the router cannot know how the skipped
        prefix distributes across shards, so every shard must return the
        full ``skip + limit`` head of its local order).  The projection is
        pushed only when it preserves the sort fields — otherwise the router
        could not recompute merge keys — and skip itself always happens at
        the router.
        """
        pushed_projection = self.projection
        if self.sort and not projection_preserves_fields(
            self.projection, [field for field, _direction in self.sort]
        ):
            pushed_projection = None
        return FindSpec(
            filter=self.filter,
            projection=pushed_projection,
            sort=self.sort,
            skip=0,
            limit=self.fetch_bound,
            batch_size=self.batch_size,
            hint=self.hint,
        )

    def describe(self) -> dict[str, Any]:
        """Return the spec as a plain dictionary (used by ``explain()``)."""
        return {
            "filter": dict(self.filter) if self.filter else {},
            "projection": dict(self.projection) if self.projection else None,
            "sort": [list(pair) for pair in self.sort] if self.sort else None,
            "skip": self.skip,
            "limit": self.limit,
            "batchSize": self.batch_size,
            "hint": self.hint,
        }


def projection_preserves_fields(
    projection: Mapping[str, Any] | None,
    fields: Sequence[str],
) -> bool:
    """True when projecting a document leaves every *fields* value intact.

    The router k-way merge recomputes sort keys on shard-projected documents,
    so a projection may only be pushed shard-side when none of the sort
    fields is dropped or partially reconstructed by it.
    """
    if not projection:
        return True
    inclusions = [k for k, v in projection.items() if k != "_id" and v]
    exclusions = [k for k, v in projection.items() if k != "_id" and not v]
    include_id = bool(projection.get("_id", True))
    for field in fields:
        if field == "_id":
            if not include_id:
                return False
            continue
        if inclusions:
            # The full value survives only under a path at or above the field.
            if not any(
                path == field or field.startswith(path + ".") for path in inclusions
            ):
                return False
        for path in exclusions:
            if path == field or field.startswith(path + ".") or path.startswith(field + "."):
                return False
    return True
