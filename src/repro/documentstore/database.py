"""Databases: named groups of collections.

The thesis stores each TPC-DS scale in its own database (``Dataset_1GB`` and
``Dataset_5GB``, Section 4.1.2); a :class:`Database` provides the collection
namespace, creation/dropping, and aggregate statistics used by the load-time
benchmarks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator

from .collection import Collection
from .errors import CollectionInvalid

if TYPE_CHECKING:  # pragma: no cover
    from .client import DocumentStoreClient

__all__ = ["Database"]


class Database:
    """A named collection namespace."""

    def __init__(self, client: "DocumentStoreClient | None", name: str) -> None:
        self._client = client
        self.name = name
        self._collections: dict[str, Collection] = {}

    @property
    def client(self) -> "DocumentStoreClient | None":
        """The owning client (``None`` for free-standing databases)."""
        return self._client

    @property
    def storage_engine(self):
        """The owning client's durable storage engine, if one is attached."""
        client = self._client
        if client is None:
            return None
        return client.engine

    # ----------------------------------------------------------- collections

    def __getitem__(self, name: str) -> Collection:
        """Return the collection called *name*, creating it lazily."""
        if name not in self._collections:
            self._collections[name] = Collection(self, name)
        return self._collections[name]

    def __getattr__(self, name: str) -> Collection:
        if name.startswith("_"):
            raise AttributeError(name)
        return self[name]

    def __contains__(self, name: str) -> bool:
        return name in self._collections

    def __iter__(self) -> Iterator[Collection]:
        return iter(list(self._collections.values()))

    def get_collection(self, name: str) -> Collection:
        """Return (and lazily create) the collection called *name*."""
        return self[name]

    def create_collection(self, name: str) -> Collection:
        """Explicitly create a collection; fails if it already exists."""
        if name in self._collections:
            raise CollectionInvalid(f"collection {name!r} already exists")
        collection = Collection(self, name)
        self._collections[name] = collection
        return collection

    def drop_collection(self, name: str) -> None:
        """Drop the collection called *name* (a no-op if absent)."""
        collection = self._collections.pop(name, None)
        if collection is not None:
            collection.drop()

    def list_collection_names(self) -> list[str]:
        """Names of every collection in the database, sorted."""
        return sorted(self._collections)

    # ----------------------------------------------------------------- stats

    def command(self, command: dict[str, Any] | str) -> dict[str, Any]:
        """Support the small set of database commands used by the harness."""
        if isinstance(command, str):
            command = {command: 1}
        if "dbStats" in command or "dbstats" in command:
            return self.stats()
        if "collStats" in command:
            return self[command["collStats"]].stats().as_dict()
        if "ping" in command:
            return {"ok": 1.0}
        raise CollectionInvalid(f"unknown command {command!r}")

    def stats(self) -> dict[str, Any]:
        """Database-wide size statistics (``dbStats`` analogue)."""
        collections = list(self._collections.values())
        data_size = sum(collection.data_size() for collection in collections)
        index_size = sum(collection.index_size() for collection in collections)
        return {
            "db": self.name,
            "collections": len(collections),
            "objects": sum(len(collection) for collection in collections),
            "dataSize": data_size,
            "indexSize": index_size,
            "storageSize": data_size,
            "totalSize": data_size + index_size,
        }

    def working_set_size(self) -> int:
        """Indexes + data size: the working-set notion of Section 2.1.3.2."""
        stats = self.stats()
        return int(stats["dataSize"] + stats["indexSize"])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Database({self.name!r}, collections={len(self._collections)})"
