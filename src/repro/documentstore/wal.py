"""The write-ahead log: the durability primitive of the storage engine.

Every acknowledged write batch becomes exactly one *record* appended to an
append-only log file.  A record is self-describing and self-verifying::

    +-------+----------+---------+------------------+
    | magic | length   | crc32   | payload          |
    | 2 B   | 4 B (LE) | 4 B(LE) | ``length`` bytes |
    +-------+----------+---------+------------------+

The payload is an extended-JSON document (the store's wire encoding), so a
WAL record is byte-comparable to what the same batch costs on the simulated
network.  The CRC covers the payload; the header is protected by the magic
and by the fact that a truncated header can never parse as a record.

Torn-tail semantics (the property the fault-injection suite enumerates):
decoding any *prefix* of a valid log yields exactly the records whose bytes
are fully present, followed by a clean tail signal — ``"clean"`` when the
prefix ends on a record boundary, ``"torn"`` when it ends mid-record, and
``"corrupt"`` when the bytes present fail the magic or CRC check (a bit
flip, not a truncation).  Decoding never raises and never yields a record
that was not written.

Three fsync policies trade durability for throughput:

* ``"always"`` — fsync after every append; an acknowledged batch is durable.
* ``"batch"``  — group commit: fsync every ``batch_fsync_every`` records and
  on :meth:`~WriteAheadLog.flush`; a crash can lose the last unsynced group.
* ``"off"``    — never fsync (except explicit :meth:`~WriteAheadLog.flush` /
  :meth:`~WriteAheadLog.close`); durability is whatever the OS page cache
  survives.

All file operations go through a tiny :class:`FileSystem` indirection so the
fault-injection harness can interpose crashes at every interesting point
without monkey-patching the interpreter.
"""

from __future__ import annotations

import os
import pathlib
import struct
import threading
import zlib
from typing import Any, BinaryIO

__all__ = [
    "FSYNC_POLICIES",
    "TAIL_CLEAN",
    "TAIL_TORN",
    "TAIL_CORRUPT",
    "FileSystem",
    "REAL_FS",
    "WalCounters",
    "WriteAheadLog",
    "encode_record",
    "decode_records",
    "read_log",
    "truncate_log",
]

#: Per-record magic; also guards against replaying a non-WAL file.
RECORD_MAGIC = b"WL"
_HEADER = struct.Struct("<2sII")  # magic, payload length, crc32(payload)

#: Valid ``fsync`` policy names.
FSYNC_POLICIES = ("always", "batch", "off")

#: Tail states reported by :func:`decode_records`.
TAIL_CLEAN = "clean"
TAIL_TORN = "torn"
TAIL_CORRUPT = "corrupt"

#: Default group-commit size for the ``"batch"`` policy.
DEFAULT_BATCH_FSYNC_EVERY = 32


class FileSystem:
    """The file operations the durability layer performs, made injectable.

    The production implementation delegates straight to ``os``/``open``;
    the fault harness substitutes an instance that counts operations,
    models what is durable, and crashes on schedule.
    """

    def open_append(self, path: str | os.PathLike) -> BinaryIO:
        """Open *path* for appending, creating it if missing."""
        return open(path, "ab")

    def open_write(self, path: str | os.PathLike) -> BinaryIO:
        """Open *path* for writing from scratch (snapshot temp files)."""
        return open(path, "wb")

    def write(self, handle: BinaryIO, data: bytes) -> None:
        """Write *data* to an open handle."""
        handle.write(data)

    def fsync(self, handle: BinaryIO) -> None:
        """Flush user-space buffers and force the bytes to stable storage."""
        handle.flush()
        os.fsync(handle.fileno())

    def close(self, handle: BinaryIO) -> None:
        """Flush and close an open handle (no fsync)."""
        handle.close()

    def replace(self, source: str | os.PathLike, target: str | os.PathLike) -> None:
        """Atomically rename *source* over *target*."""
        os.replace(source, target)

    def fsync_dir(self, path: str | os.PathLike) -> None:
        """fsync a directory so renames/creations inside it are durable."""
        fd = os.open(path, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def remove(self, path: str | os.PathLike) -> None:
        """Delete a file, ignoring a missing one."""
        try:
            os.remove(path)
        except FileNotFoundError:
            pass

    def truncate(self, path: str | os.PathLike, length: int) -> None:
        """Truncate *path* to *length* bytes and fsync the result."""
        with open(path, "r+b") as handle:
            handle.truncate(length)
            handle.flush()
            os.fsync(handle.fileno())


#: The default, real filesystem.
REAL_FS = FileSystem()


def encode_record(payload: bytes) -> bytes:
    """Frame *payload* as one WAL record (header + checksummed body)."""
    return _HEADER.pack(RECORD_MAGIC, len(payload), zlib.crc32(payload) & 0xFFFFFFFF) + payload


def decode_records(data: bytes) -> tuple[list[bytes], int, str]:
    """Parse *data* into WAL record payloads.

    Returns ``(payloads, clean_length, tail_state)`` where *clean_length* is
    the number of leading bytes forming complete, verified records and
    *tail_state* is one of :data:`TAIL_CLEAN` (the data ends exactly on a
    record boundary), :data:`TAIL_TORN` (the data ends mid-record — the
    normal shape of a crash during an append), or :data:`TAIL_CORRUPT` (the
    bytes present fail the magic or checksum — bit rot or a misdirected
    write).  Never raises; never returns a payload that fails its checksum.
    """
    payloads: list[bytes] = []
    offset = 0
    total = len(data)
    while True:
        if offset == total:
            return payloads, offset, TAIL_CLEAN
        if total - offset < _HEADER.size:
            return payloads, offset, TAIL_TORN
        magic, length, crc = _HEADER.unpack_from(data, offset)
        if magic != RECORD_MAGIC:
            return payloads, offset, TAIL_CORRUPT
        start = offset + _HEADER.size
        end = start + length
        if end > total:
            return payloads, offset, TAIL_TORN
        payload = data[start:end]
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            return payloads, offset, TAIL_CORRUPT
        payloads.append(payload)
        offset = end


def read_log(path: str | os.PathLike) -> tuple[list[bytes], int, str]:
    """Read and parse an entire WAL file (missing file = empty, clean log)."""
    try:
        data = pathlib.Path(path).read_bytes()
    except FileNotFoundError:
        return [], 0, TAIL_CLEAN
    return decode_records(data)


def truncate_log(path: str | os.PathLike, clean_length: int, *, fs: FileSystem = REAL_FS) -> int:
    """Truncate a torn/corrupt tail off a WAL file; returns bytes removed."""
    size = pathlib.Path(path).stat().st_size
    removed = size - clean_length
    if removed > 0:
        fs.truncate(path, clean_length)
    return removed


class WalCounters:
    """Durability counters shared between a WAL and its owning engine."""

    def __init__(self) -> None:
        self.records_appended = 0
        self.bytes_appended = 0
        self.fsync_calls = 0
        self.bytes_fsynced = 0

    def snapshot(self) -> dict[str, int]:
        """The counters as a plain dictionary (``serverStatus`` surface)."""
        return {
            "records_appended": self.records_appended,
            "bytes_appended": self.bytes_appended,
            "fsync_calls": self.fsync_calls,
            "bytes_fsynced": self.bytes_fsynced,
        }


class WriteAheadLog:
    """One append-only log file with a configurable fsync policy.

    Appends are serialized by an internal lock: the server handles sessions
    on independent threads and a record must hit the file in one contiguous
    write.  The append returns only after the record is as durable as the
    policy promises — with ``"always"`` that means fsynced.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        *,
        fsync: str = "batch",
        batch_fsync_every: int = DEFAULT_BATCH_FSYNC_EVERY,
        fs: FileSystem = REAL_FS,
        counters: WalCounters | None = None,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValueError(f"fsync policy must be one of {FSYNC_POLICIES}, got {fsync!r}")
        if batch_fsync_every <= 0:
            raise ValueError("batch_fsync_every must be positive")
        self.path = pathlib.Path(path)
        self.fsync_policy = fsync
        self.batch_fsync_every = batch_fsync_every
        self.counters = counters if counters is not None else WalCounters()
        self._fs = fs
        self._lock = threading.Lock()
        self._handle: BinaryIO | None = fs.open_append(self.path)
        self._size = self.path.stat().st_size if self.path.exists() else 0
        self._unsynced_records = 0
        self._unsynced_bytes = 0

    # ------------------------------------------------------------------ append

    def append(self, payload: bytes) -> int:
        """Append one record; returns the record's end offset in the file."""
        record = encode_record(payload)
        with self._lock:
            handle = self._require_handle()
            self._fs.write(handle, record)
            self._size += len(record)
            self.counters.records_appended += 1
            self.counters.bytes_appended += len(record)
            self._unsynced_records += 1
            self._unsynced_bytes += len(record)
            if self.fsync_policy == "always" or (
                self.fsync_policy == "batch"
                and self._unsynced_records >= self.batch_fsync_every
            ):
                self._fsync_locked(handle)
            return self._size

    def flush(self) -> None:
        """Force everything appended so far to stable storage (any policy)."""
        with self._lock:
            handle = self._handle
            if handle is None:
                return
            self._fsync_locked(handle)

    def _fsync_locked(self, handle: BinaryIO) -> None:
        self._fs.fsync(handle)
        self.counters.fsync_calls += 1
        self.counters.bytes_fsynced += self._unsynced_bytes
        self._unsynced_records = 0
        self._unsynced_bytes = 0

    def _require_handle(self) -> BinaryIO:
        if self._handle is None:
            raise ValueError(f"write-ahead log {self.path} is closed")
        return self._handle

    # --------------------------------------------------------------- lifecycle

    @property
    def size(self) -> int:
        """Current log size in bytes (header + payload of every record)."""
        return self._size

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run."""
        return self._handle is None

    def close(self) -> None:
        """Flush (fsync) and close the log file."""
        with self._lock:
            handle = self._handle
            if handle is None:
                return
            try:
                self._fsync_locked(handle)
            finally:
                self._handle = None
                self._fs.close(handle)


def wal_status(log: "WriteAheadLog | None") -> dict[str, Any]:
    """A small status dictionary for an (optional) live WAL."""
    if log is None:
        return {"active": False}
    return {
        "active": True,
        "path": str(log.path),
        "size_bytes": log.size,
        "fsync_policy": log.fsync_policy,
        **log.counters.snapshot(),
    }
