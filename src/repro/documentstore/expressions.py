"""Aggregation expression language.

Expressions appear inside ``$project``, ``$group`` ``_id``/accumulator
arguments, ``$match``'s ``$expr``, and the conditional constructs used by the
thesis queries (``$cond``, ``$divide``, ``$subtract`` in Queries 21 and 50).

Supported forms:

* field paths: ``"$ss_quantity"``, ``"$ss_item_sk.i_item_id"``;
* the root document: ``"$$ROOT"`` and the current value ``"$$CURRENT"``;
* literals: numbers, strings, booleans, ``None``, ``{"$literal": ...}``;
* operator documents: ``{"$add": [...]}, {"$cond": [...]}, ...``;
* nested document expressions: ``{"a": "$x", "b": {"$add": [1, 2]}}``.
"""

from __future__ import annotations

import datetime as _dt
import math
from typing import Any, Callable, Mapping, Sequence

from .errors import InvalidOperator, OperationFailure
from .matching import compare_values, compile_path, resolve_path_single, values_equal

__all__ = [
    "evaluate_expression",
    "compile_expression",
    "is_field_path",
    "field_path_of",
]


def is_field_path(expression: Any) -> bool:
    """Return ``True`` if *expression* is a ``"$field"`` reference."""
    return isinstance(expression, str) and expression.startswith("$") and not expression.startswith("$$")


def field_path_of(expression: str) -> str:
    """Return the dotted path referenced by a ``"$field"`` expression."""
    return expression[1:]


def _as_number(value: Any, *, operator: str) -> float | int | None:
    if value is None:
        return None
    if isinstance(value, bool):
        raise OperationFailure(f"{operator} only supports numeric types, got bool")
    if isinstance(value, (int, float)):
        return value
    if isinstance(value, (_dt.date, _dt.datetime)):
        # Dates participate in arithmetic as ordinal days, which is how the
        # thesis phrases "sr_returned_date_sk - ss_sold_date_sk <= 30 days".
        if isinstance(value, _dt.datetime):
            return value.timestamp() / 86400.0
        return float(value.toordinal())
    raise OperationFailure(
        f"{operator} only supports numeric types, got {type(value).__name__}"
    )


def _numeric_operands(values: Sequence[Any], operator: str) -> list[float | int] | None:
    numbers = []
    for value in values:
        number = _as_number(value, operator=operator)
        if number is None:
            return None
        numbers.append(number)
    return numbers


def _evaluate_many(expressions: Any, document: Mapping[str, Any]) -> list[Any]:
    if not isinstance(expressions, (list, tuple)):
        expressions = [expressions]
    return [evaluate_expression(item, document) for item in expressions]


def _op_add(args: list[Any]) -> Any:
    numbers = _numeric_operands(args, "$add")
    if numbers is None:
        return None
    return sum(numbers)


def _op_subtract(args: list[Any]) -> Any:
    if len(args) != 2:
        raise OperationFailure("$subtract requires exactly two operands")
    numbers = _numeric_operands(args, "$subtract")
    if numbers is None:
        return None
    return numbers[0] - numbers[1]


def _op_multiply(args: list[Any]) -> Any:
    numbers = _numeric_operands(args, "$multiply")
    if numbers is None:
        return None
    product: float | int = 1
    for number in numbers:
        product *= number
    return product


def _op_divide(args: list[Any]) -> Any:
    if len(args) != 2:
        raise OperationFailure("$divide requires exactly two operands")
    numbers = _numeric_operands(args, "$divide")
    if numbers is None:
        return None
    numerator, denominator = numbers
    if denominator == 0:
        raise OperationFailure("$divide by zero")
    return numerator / denominator


def _op_mod(args: list[Any]) -> Any:
    if len(args) != 2:
        raise OperationFailure("$mod requires exactly two operands")
    numbers = _numeric_operands(args, "$mod")
    if numbers is None:
        return None
    return numbers[0] % numbers[1]


def _op_abs(args: list[Any]) -> Any:
    number = _as_number(args[0], operator="$abs")
    return None if number is None else abs(number)


def _op_floor(args: list[Any]) -> Any:
    number = _as_number(args[0], operator="$floor")
    return None if number is None else math.floor(number)


def _op_ceil(args: list[Any]) -> Any:
    number = _as_number(args[0], operator="$ceil")
    return None if number is None else math.ceil(number)


def _op_round(args: list[Any]) -> Any:
    number = _as_number(args[0], operator="$round")
    if number is None:
        return None
    places = int(args[1]) if len(args) > 1 else 0
    return round(number, places)


def _op_concat(args: list[Any]) -> Any:
    if any(arg is None for arg in args):
        return None
    if not all(isinstance(arg, str) for arg in args):
        raise OperationFailure("$concat only supports strings")
    return "".join(args)


def _op_to_lower(args: list[Any]) -> Any:
    value = args[0]
    return "" if value is None else str(value).lower()


def _op_to_upper(args: list[Any]) -> Any:
    value = args[0]
    return "" if value is None else str(value).upper()


def _op_str_len(args: list[Any]) -> Any:
    value = args[0]
    if not isinstance(value, str):
        raise OperationFailure("$strLenCP requires a string")
    return len(value)


def _op_substr(args: list[Any]) -> Any:
    value, start, length = args[0], int(args[1]), int(args[2])
    if value is None:
        return ""
    text = str(value)
    if length < 0:
        return text[start:]
    return text[start:start + length]


_COMPARISONS: dict[str, Callable[[int], bool]] = {
    "$gt": lambda c: c > 0,
    "$gte": lambda c: c >= 0,
    "$lt": lambda c: c < 0,
    "$lte": lambda c: c <= 0,
}


_SIMPLE_OPERATORS: dict[str, Callable[[list[Any]], Any]] = {
    "$add": _op_add,
    "$subtract": _op_subtract,
    "$multiply": _op_multiply,
    "$divide": _op_divide,
    "$mod": _op_mod,
    "$abs": _op_abs,
    "$floor": _op_floor,
    "$ceil": _op_ceil,
    "$round": _op_round,
    "$concat": _op_concat,
    "$toLower": _op_to_lower,
    "$toUpper": _op_to_upper,
    "$strLenCP": _op_str_len,
    "$substrCP": _op_substr,
    "$substr": _op_substr,
}


def evaluate_expression(expression: Any, document: Mapping[str, Any]) -> Any:
    """Evaluate an aggregation expression against *document*."""
    if isinstance(expression, str):
        if expression.startswith("$$"):
            variable = expression[2:].split(".", 1)
            if variable[0] in ("ROOT", "CURRENT"):
                if len(variable) == 1:
                    return document
                return resolve_path_single(document, variable[1])
            raise InvalidOperator(f"unknown aggregation variable {expression!r}")
        if expression.startswith("$"):
            return resolve_path_single(document, field_path_of(expression))
        return expression
    if expression is None or isinstance(expression, (bool, int, float, bytes)):
        return expression
    if isinstance(expression, (_dt.date, _dt.datetime)):
        return expression
    if isinstance(expression, (list, tuple)):
        return [evaluate_expression(item, document) for item in expression]
    if isinstance(expression, Mapping):
        operator_keys = [key for key in expression if key.startswith("$")]
        if operator_keys:
            if len(expression) != 1:
                raise InvalidOperator(
                    "an expression document may hold exactly one operator, "
                    f"got {sorted(expression)}"
                )
            operator = operator_keys[0]
            return _evaluate_operator(operator, expression[operator], document)
        return {
            key: evaluate_expression(value, document)
            for key, value in expression.items()
        }
    # ObjectId and other scalar leaf values evaluate to themselves.
    return expression


def _evaluate_operator(operator: str, argument: Any, document: Mapping[str, Any]) -> Any:
    if operator == "$literal":
        return argument

    if operator == "$cond":
        if isinstance(argument, Mapping):
            condition = argument.get("if")
            then_branch = argument.get("then")
            else_branch = argument.get("else")
        else:
            if len(argument) != 3:
                raise OperationFailure("$cond array form requires [if, then, else]")
            condition, then_branch, else_branch = argument
        if evaluate_expression(condition, document):
            return evaluate_expression(then_branch, document)
        return evaluate_expression(else_branch, document)

    if operator == "$ifNull":
        for candidate in argument[:-1]:
            value = evaluate_expression(candidate, document)
            if value is not None:
                return value
        return evaluate_expression(argument[-1], document)

    if operator == "$switch":
        for branch in argument.get("branches", []):
            if evaluate_expression(branch["case"], document):
                return evaluate_expression(branch["then"], document)
        if "default" in argument:
            return evaluate_expression(argument["default"], document)
        raise OperationFailure("$switch found no matching branch and no default")

    if operator in ("$and", "$or", "$not"):
        values = _evaluate_many(argument, document)
        if operator == "$and":
            return all(bool(value) for value in values)
        if operator == "$or":
            return any(bool(value) for value in values)
        return not bool(values[0])

    if operator in ("$eq", "$ne"):
        left, right = _evaluate_many(argument, document)
        equal = values_equal(left, right)
        return equal if operator == "$eq" else not equal

    if operator in _COMPARISONS:
        left, right = _evaluate_many(argument, document)
        if left is None or right is None:
            # Null ordering: missing/None sorts lowest, like the type order.
            return _COMPARISONS[operator](compare_values(left, right))
        return _COMPARISONS[operator](compare_values(left, right))

    if operator == "$cmp":
        left, right = _evaluate_many(argument, document)
        return compare_values(left, right)

    if operator == "$in":
        needle, haystack = _evaluate_many(argument, document)
        if not isinstance(haystack, (list, tuple)):
            raise OperationFailure("$in expression requires an array operand")
        return any(values_equal(needle, item) for item in haystack)

    if operator in ("$min", "$max"):
        return _combine_min_max(operator, _evaluate_many(argument, document))

    if operator == "$sum":
        return _combine_sum(_evaluate_many(argument, document))

    if operator == "$avg":
        return _combine_avg(_evaluate_many(argument, document))

    if operator == "$size":
        value = evaluate_expression(argument, document)
        if not isinstance(value, (list, tuple)):
            raise OperationFailure("$size requires an array operand")
        return len(value)

    if operator == "$arrayElemAt":
        array, index = _evaluate_many(argument, document)
        if array is None:
            return None
        if not isinstance(array, (list, tuple)):
            raise OperationFailure("$arrayElemAt requires an array operand")
        index = int(index)
        if -len(array) <= index < len(array):
            return array[index]
        return None

    if operator == "$concatArrays":
        arrays = _evaluate_many(argument, document)
        result: list[Any] = []
        for array in arrays:
            if array is None:
                return None
            result.extend(array)
        return result

    if operator == "$filter":
        source = evaluate_expression(argument["input"], document)
        variable = argument.get("as", "this")
        condition = argument["cond"]
        if source is None:
            return None
        kept = []
        for item in source:
            scope = dict(document)
            scope[f"__var_{variable}"] = item
            rewritten = _bind_variable(condition, variable)
            if evaluate_expression(rewritten, scope):
                kept.append(item)
        return kept

    if operator == "$map":
        source = evaluate_expression(argument["input"], document)
        variable = argument.get("as", "this")
        body = argument["in"]
        if source is None:
            return None
        mapped = []
        for item in source:
            scope = dict(document)
            scope[f"__var_{variable}"] = item
            mapped.append(evaluate_expression(_bind_variable(body, variable), scope))
        return mapped

    if operator in ("$year", "$month", "$dayOfMonth", "$dayOfWeek"):
        value = evaluate_expression(argument, document)
        if value is None:
            return None
        if not isinstance(value, (_dt.date, _dt.datetime)):
            raise OperationFailure(f"{operator} requires a date operand")
        if operator == "$year":
            return value.year
        if operator == "$month":
            return value.month
        if operator == "$dayOfMonth":
            return value.day
        return value.isoweekday() % 7 + 1  # 1 = Sunday, as in the original system

    if operator == "$toString":
        value = evaluate_expression(argument, document)
        return None if value is None else str(value)

    if operator in ("$toInt", "$toLong"):
        value = evaluate_expression(argument, document)
        return None if value is None else int(value)

    if operator in ("$toDouble", "$toDecimal"):
        value = evaluate_expression(argument, document)
        return None if value is None else float(value)

    if operator in _SIMPLE_OPERATORS:
        return _SIMPLE_OPERATORS[operator](_evaluate_many(argument, document))

    raise InvalidOperator(f"unknown expression operator {operator!r}")


def _combine_min_max(operator: str, evaluated: list[Any]) -> Any:
    """Shared ``$min``/``$max`` combination over already-evaluated operands."""
    # A single array operand means "min/max of the array elements".
    if len(evaluated) == 1 and isinstance(evaluated[0], (list, tuple)):
        evaluated = list(evaluated[0])
    values = [v for v in evaluated if v is not None]
    if not values:
        return None
    picked = values[0]
    for value in values[1:]:
        ordering = compare_values(value, picked)
        if (operator == "$min" and ordering < 0) or (operator == "$max" and ordering > 0):
            picked = value
    return picked


def _combine_sum(values: list[Any]) -> float | int:
    """Shared ``$sum`` combination over already-evaluated operands."""
    total: float | int = 0
    for value in values:
        flattened = value if isinstance(value, (list, tuple)) else [value]
        for item in flattened:
            if isinstance(item, (int, float)) and not isinstance(item, bool):
                total += item
    return total


def _combine_avg(values: list[Any]) -> Any:
    """Shared ``$avg`` combination over already-evaluated operands."""
    numbers: list[float] = []
    for value in values:
        flattened = value if isinstance(value, (list, tuple)) else [value]
        numbers.extend(
            item for item in flattened
            if isinstance(item, (int, float)) and not isinstance(item, bool)
        )
    if not numbers:
        return None
    return sum(numbers) / len(numbers)


def _bind_variable(expression: Any, variable: str) -> Any:
    """Rewrite ``$$variable`` references so they resolve inside the scope."""
    if isinstance(expression, str):
        prefix = f"$${variable}"
        if expression == prefix:
            return f"$__var_{variable}"
        if expression.startswith(prefix + "."):
            return f"$__var_{variable}." + expression[len(prefix) + 1:]
        return expression
    if isinstance(expression, Mapping):
        return {key: _bind_variable(value, variable) for key, value in expression.items()}
    if isinstance(expression, (list, tuple)):
        return [_bind_variable(item, variable) for item in expression]
    return expression


# ---------------------------------------------------------------------------
# Expression compilation
# ---------------------------------------------------------------------------

#: Operators whose compiled form falls back to the interpreter per document
#: (they carry variable bindings or rarely sit on hot paths).  Compilation
#: still validates them up front so unknown operators fail once per query.
_FALLBACK_OPERATORS = frozenset(
    {
        "$switch",
        "$filter",
        "$map",
        "$size",
        "$arrayElemAt",
        "$concatArrays",
        "$year",
        "$month",
        "$dayOfMonth",
        "$dayOfWeek",
        "$toString",
        "$toInt",
        "$toLong",
        "$toDouble",
        "$toDecimal",
    }
)


def _compile_field_reference(path: str) -> Callable[[Mapping[str, Any]], Any]:
    resolver = compile_path(path)

    def resolve(document: Mapping[str, Any]) -> Any:
        values = resolver(document)
        return values[0] if values else None

    return resolve


def _compile_many(argument: Any) -> Callable[[Mapping[str, Any]], list[Any]]:
    """Compile the (single-or-list) operand form accepted by most operators."""
    if isinstance(argument, (list, tuple)):
        evaluators = [compile_expression(item) for item in argument]
    else:
        evaluators = [compile_expression(argument)]

    def evaluate(document: Mapping[str, Any]) -> list[Any]:
        return [evaluator(document) for evaluator in evaluators]

    return evaluate


def compile_expression(expression: Any) -> Callable[[Mapping[str, Any]], Any]:
    """Validate and lower an aggregation expression into a closure.

    The expression tree is interpreted exactly once: field paths are
    pre-split, operator names are validated, and operand sub-expressions are
    compiled recursively.  ``compile_expression(e)(doc)`` agrees with
    ``evaluate_expression(e, doc)`` for every supported expression; pipeline
    stages and ``$expr`` compile once per query instead of re-walking the
    expression ``Mapping`` per document.
    """
    if isinstance(expression, str):
        if expression.startswith("$$"):
            variable = expression[2:].split(".", 1)
            if variable[0] in ("ROOT", "CURRENT"):
                if len(variable) == 1:
                    return lambda document: document
                return _compile_field_reference(variable[1])
            raise InvalidOperator(f"unknown aggregation variable {expression!r}")
        if expression.startswith("$"):
            return _compile_field_reference(field_path_of(expression))
        return lambda _document, constant=expression: constant
    if expression is None or isinstance(
        expression, (bool, int, float, bytes, _dt.date, _dt.datetime)
    ):
        return lambda _document, constant=expression: constant
    if isinstance(expression, (list, tuple)):
        items = [compile_expression(item) for item in expression]
        return lambda document: [item(document) for item in items]
    if isinstance(expression, Mapping):
        operator_keys = [key for key in expression if key.startswith("$")]
        if operator_keys:
            if len(expression) != 1:
                raise InvalidOperator(
                    "an expression document may hold exactly one operator, "
                    f"got {sorted(expression)}"
                )
            return _compile_operator(operator_keys[0], expression[operator_keys[0]])
        fields = {key: compile_expression(value) for key, value in expression.items()}
        return lambda document: {
            key: evaluator(document) for key, evaluator in fields.items()
        }
    # ObjectId and other scalar leaf values evaluate to themselves.
    return lambda _document, constant=expression: constant


def _compile_operator(operator: str, argument: Any) -> Callable[[Mapping[str, Any]], Any]:
    if operator == "$literal":
        return lambda _document: argument

    if operator == "$cond":
        if isinstance(argument, Mapping):
            condition = compile_expression(argument.get("if"))
            then_branch = compile_expression(argument.get("then"))
            else_branch = compile_expression(argument.get("else"))
        else:
            if len(argument) != 3:
                raise OperationFailure("$cond array form requires [if, then, else]")
            condition = compile_expression(argument[0])
            then_branch = compile_expression(argument[1])
            else_branch = compile_expression(argument[2])

        def cond(document: Mapping[str, Any]) -> Any:
            if condition(document):
                return then_branch(document)
            return else_branch(document)

        return cond

    if operator == "$ifNull":
        candidates = [compile_expression(item) for item in argument[:-1]]
        default = compile_expression(argument[-1])

        def if_null(document: Mapping[str, Any]) -> Any:
            for candidate in candidates:
                value = candidate(document)
                if value is not None:
                    return value
            return default(document)

        return if_null

    if operator in ("$and", "$or", "$not"):
        many = _compile_many(argument)
        if operator == "$and":
            return lambda document: all(bool(value) for value in many(document))
        if operator == "$or":
            return lambda document: any(bool(value) for value in many(document))
        return lambda document: not bool(many(document)[0])

    if operator in ("$eq", "$ne"):
        many = _compile_many(argument)
        if operator == "$eq":
            def eq(document: Mapping[str, Any]) -> bool:
                left, right = many(document)
                return values_equal(left, right)

            return eq

        def ne(document: Mapping[str, Any]) -> bool:
            left, right = many(document)
            return not values_equal(left, right)

        return ne

    if operator in _COMPARISONS:
        many = _compile_many(argument)
        check = _COMPARISONS[operator]

        def compare(document: Mapping[str, Any]) -> bool:
            left, right = many(document)
            return check(compare_values(left, right))

        return compare

    if operator == "$cmp":
        many = _compile_many(argument)

        def cmp(document: Mapping[str, Any]) -> int:
            left, right = many(document)
            return compare_values(left, right)

        return cmp

    if operator == "$in":
        many = _compile_many(argument)

        def in_array(document: Mapping[str, Any]) -> bool:
            needle, haystack = many(document)
            if not isinstance(haystack, (list, tuple)):
                raise OperationFailure("$in expression requires an array operand")
            return any(values_equal(needle, item) for item in haystack)

        return in_array

    if operator in ("$min", "$max"):
        many = _compile_many(argument)
        return lambda document, op=operator: _combine_min_max(op, many(document))

    if operator == "$sum":
        many = _compile_many(argument)
        return lambda document: _combine_sum(many(document))

    if operator == "$avg":
        many = _compile_many(argument)
        return lambda document: _combine_avg(many(document))

    if operator in _SIMPLE_OPERATORS:
        many = _compile_many(argument)
        apply_operator = _SIMPLE_OPERATORS[operator]
        return lambda document: apply_operator(many(document))

    if operator in _FALLBACK_OPERATORS:
        return lambda document: _evaluate_operator(operator, argument, document)

    raise InvalidOperator(f"unknown expression operator {operator!r}")
