"""Shared sort-key construction for cursors, ``$sort``, and accumulators.

Every component that orders documents — cursor ``sort()``, the aggregation
``$sort`` stage (including its top-k fast path), the ``$min``/``$max``
accumulators, and the index key arrays — needs the same BSON-like total
order implemented by :func:`repro.documentstore.matching.compare_values`.
This module provides the one wrapper type and the one composite-key builder
they all share, replacing the previous per-call ``cmp_to_key`` lambdas and
ad-hoc ``total_ordering`` classes.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

from .errors import OperationFailure
from .matching import compare_values, resolve_path_single

__all__ = ["OrderedValue", "sort_key", "document_sort_key", "normalize_sort_specification"]


class OrderedValue:
    """Wrap an arbitrary BSON-ish value so it sorts by ``compare_values``."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, OrderedValue):
            return NotImplemented
        left, right = self.value, other.value
        if type(left) is type(right) and type(left) in (int, float, str):
            return left == right
        return compare_values(left, right) == 0

    def __lt__(self, other: "OrderedValue") -> bool:
        # Exact-type fast path: index keys are overwhelmingly same-typed
        # ints/strings, and sorting 100k-entry batches calls this millions
        # of times (bool is excluded — type() is exact).
        left, right = self.value, other.value
        if type(left) is type(right) and type(left) in (int, float, str):
            return left < right
        return compare_values(left, right) < 0

    def __le__(self, other: "OrderedValue") -> bool:
        return compare_values(self.value, other.value) <= 0

    def __gt__(self, other: "OrderedValue") -> bool:
        return compare_values(self.value, other.value) > 0

    def __ge__(self, other: "OrderedValue") -> bool:
        return compare_values(self.value, other.value) >= 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OrderedValue({self.value!r})"


class _ReversedValue(OrderedValue):
    """An :class:`OrderedValue` with inverted order (descending sort keys)."""

    __slots__ = ()

    def __lt__(self, other: "OrderedValue") -> bool:
        left, right = self.value, other.value
        if type(left) is type(right) and type(left) in (int, float, str):
            return right < left
        return compare_values(left, right) > 0

    def __le__(self, other: "OrderedValue") -> bool:
        return compare_values(self.value, other.value) >= 0

    def __gt__(self, other: "OrderedValue") -> bool:
        return compare_values(self.value, other.value) < 0

    def __ge__(self, other: "OrderedValue") -> bool:
        return compare_values(self.value, other.value) <= 0


def sort_key(value: Any) -> OrderedValue:
    """Return a sort key for a single value (``$min``/``$max``, index keys)."""
    return OrderedValue(value)


def normalize_sort_specification(
    specification: Sequence[tuple[str, int]] | Mapping[str, int],
) -> list[tuple[str, int]]:
    """Normalize a sort spec to ``(field, direction)`` pairs and validate it."""
    if isinstance(specification, Mapping):
        pairs = list(specification.items())
    else:
        pairs = [(field_path, direction) for field_path, direction in specification]
    for _field_path, direction in pairs:
        if direction not in (1, -1):
            raise OperationFailure(
                f"sort direction must be 1 or -1, got {direction!r}"
            )
    return pairs


def document_sort_key(
    specification: Sequence[tuple[str, int]] | Mapping[str, int],
) -> Callable[[Mapping[str, Any]], tuple[OrderedValue, ...]]:
    """Compile a sort specification into a composite-key function.

    The returned function maps a document to a tuple of wrapped values, one
    per sort field, with descending fields inverted — so a single stable
    ``sorted()`` (or ``heapq.nsmallest``) pass reproduces the multi-field
    semantics that previously required one ``cmp_to_key`` pass per field.
    """
    pairs = normalize_sort_specification(specification)
    wrapped = [
        (field_path, OrderedValue if direction == 1 else _ReversedValue)
        for field_path, direction in pairs
    ]

    def key(document: Mapping[str, Any]) -> tuple[OrderedValue, ...]:
        return tuple(
            wrapper(resolve_path_single(document, field_path))
            for field_path, wrapper in wrapped
        )

    return key
