"""Error hierarchy for the document store.

The exception names deliberately mirror the driver-facing errors of the
document database benchmarked in the paper (duplicate keys, oversized
documents, bad pipelines, ...), so that user code and tests read naturally.
"""

from __future__ import annotations


class DocumentStoreError(Exception):
    """Base class for every error raised by :mod:`repro.documentstore`."""


class InvalidDocumentError(DocumentStoreError):
    """A document is malformed (non-string keys, unsupported value types)."""


class DocumentTooLargeError(InvalidDocumentError):
    """A document exceeds the maximum BSON document size (16 MB)."""

    def __init__(self, size: int, limit: int) -> None:
        super().__init__(
            f"document size {size} bytes exceeds the maximum of {limit} bytes"
        )
        self.size = size
        self.limit = limit


class DuplicateKeyError(DocumentStoreError):
    """An insert or update would violate a unique index."""

    def __init__(self, index_name: str, key: object) -> None:
        super().__init__(f"duplicate key {key!r} for unique index {index_name!r}")
        self.index_name = index_name
        self.key = key


class CollectionInvalid(DocumentStoreError):
    """A collection cannot be created (for example, it already exists)."""


class CollectionDoesNotExist(DocumentStoreError):
    """An operation referenced a collection that does not exist."""


class OperationFailure(DocumentStoreError):
    """A query, update, or aggregation could not be executed."""


class InvalidOperator(OperationFailure):
    """A query filter or pipeline used an unknown operator."""


class InvalidPipelineError(OperationFailure):
    """An aggregation pipeline is structurally invalid."""


class InvalidUpdateError(OperationFailure):
    """An update document mixes operators and plain fields, or is empty."""


class IndexNotFoundError(DocumentStoreError):
    """An index name was referenced that does not exist on the collection."""


class DurabilityError(DocumentStoreError):
    """Base class for storage-engine (WAL/snapshot/recovery) errors."""


class SnapshotCorruptError(DurabilityError):
    """A snapshot file is unreadable, truncated, or missing its footer."""


class RecoveryError(DurabilityError):
    """A data directory could not be recovered into a consistent state."""


class ShardingError(DocumentStoreError):
    """Base class for sharded-cluster errors."""


class ChunkSplitError(ShardingError):
    """A chunk could not be split (for example, a jumbo chunk)."""


class ShardKeyError(ShardingError):
    """A document is missing its shard key, or the key is invalid."""
