"""Vector indexes: exact brute-force kNN and IVF-style approximate search.

The RAG-era data-layer workload (ROADMAP open item 2) is a document store
answering *metadata-filtered* nearest-neighbour queries: "the top-k most
similar embeddings among the documents this tenant may see".  This module
provides the index side of that workload as a drop-in member of the
existing secondary-index machinery:

* :class:`VectorIndex` speaks the same maintenance protocol as the
  sorted-array :class:`~repro.documentstore.indexes.Index` —
  ``insert``/``remove``/``replace``/``clear``/``bulk_insert`` (with
  rollback handles)/``rebuild`` — so collections, deferred builds
  (``bulk_load()``), WAL replay, and snapshot restores treat it exactly
  like a b-tree index; only the lookup surface differs (``search`` instead
  of ``point_lookup``/``range_lookup``).
* Search is **exact by default**: a full scan scoring every stored vector,
  with a bounded heap keeping the top ``k``.  Results are deterministic —
  ties broken by document ``_id`` order — which is what makes
  standalone/sharded/served parity exactly testable.
* ``rebuild`` over a large enough collection also trains an **IVF**
  (inverted-file) structure: coarse centroids fitted with a seeded k-means,
  every vector assigned to its nearest centroid's posting list.  A search
  then probes only the ``nprobe`` nearest lists — the classic
  recall-for-latency trade: higher ``nprobe`` → higher recall, more
  vectors scored.
* Pre-filtered search (``allowed_ids``) always runs exact over the allowed
  subset: once a metadata filter has cut the candidates down, scanning
  them exactly is both cheaper and better-recall than probing lists.

Scores are "higher is better" on every metric so the merge order is
uniform across the stack (the sharded gather sorts descending):

* ``cosine`` → ``(1 + cos θ) / 2`` mapped into [0, 1] (zero-norm vectors
  score 0.5 against everything);
* ``l2`` → ``1 / (1 + distance)`` mapped into (0, 1].

Everything is pure Python — no NumPy — matching the repository's
no-new-dependencies constraint; the benchmark family measures the IVF
speedup against this same pure-Python exact scan.
"""

from __future__ import annotations

import heapq
import math
import operator
from collections.abc import Mapping, Sequence
from typing import Any, Iterable

from .errors import OperationFailure
from .indexes import IndexSpec
from .matching import resolve_path_single
from .ordering import sort_key

__all__ = ["VectorIndex", "VectorBulkUndo", "vector_score"]

#: Deterministic seed for k-means training (results must be reproducible).
_TRAIN_SEED = 0x5EED1D

#: Train IVF lists only when at least this many vectors are indexed;
#: below it a full exact scan is already fast and lists would hurt recall.
_MIN_TRAIN_SIZE = 256

#: Lloyd iterations for centroid refinement (diminishing returns after ~6).
_KMEANS_ITERATIONS = 6


def _as_vector(value: Any, dims: int, field_path: str) -> tuple[float, ...] | None:
    """Validate and convert a document value into a float tuple, or None.

    Missing values (``None``) are skipped — documents without the embedding
    simply do not participate in vector search, mirroring how a b-tree
    index treats a missing field as un-matchable by ``$gt``-style ops.
    Present-but-malformed values raise: silently dropping a corrupt
    embedding would make recall bugs undetectable.
    """
    if value is None:
        return None
    if isinstance(value, (str, bytes, Mapping)) or not isinstance(value, Sequence):
        raise OperationFailure(
            f"field {field_path!r} must hold a numeric array to be vector-indexed"
        )
    if len(value) != dims:
        raise OperationFailure(
            f"field {field_path!r} has {len(value)} dimensions; index expects {dims}"
        )
    try:
        vector = tuple(float(component) for component in value)
    except (TypeError, ValueError):
        raise OperationFailure(
            f"field {field_path!r} contains non-numeric components"
        ) from None
    if any(math.isnan(component) or math.isinf(component) for component in vector):
        raise OperationFailure(f"field {field_path!r} contains NaN/Inf components")
    return vector


def _dot(a: Sequence[float], b: Sequence[float]) -> float:
    return sum(map(operator.mul, a, b))


def _norm(a: Sequence[float]) -> float:
    return math.sqrt(sum(component * component for component in a))


def _l2_distance(a: Sequence[float], b: Sequence[float]) -> float:
    return math.sqrt(sum((x - y) ** 2 for x, y in zip(a, b)))


def vector_score(
    metric: str,
    query: Sequence[float],
    query_norm: float,
    vector: Sequence[float],
    vector_norm: float,
) -> float:
    """Similarity score in [0, 1], higher is better, for one stored vector."""
    if metric == "cosine":
        denominator = query_norm * vector_norm
        if denominator == 0.0:
            return 0.5
        cosine = _dot(query, vector) / denominator
        # Clamp: float error can push |cos| infinitesimally past 1.
        cosine = max(-1.0, min(1.0, cosine))
        return (1.0 + cosine) / 2.0
    return 1.0 / (1.0 + _l2_distance(query, vector))


class _DeterministicRNG:
    """Tiny xorshift64* generator — seeded, dependency-free, stable forever.

    ``random.Random`` would also be deterministic, but its algorithm is
    documented as an implementation detail; centroid training must produce
    identical lists on every platform the tests run on.
    """

    __slots__ = ("_state",)

    def __init__(self, seed: int) -> None:
        self._state = (seed or 1) & 0xFFFFFFFFFFFFFFFF

    def next(self) -> int:
        x = self._state
        x ^= (x >> 12) & 0xFFFFFFFFFFFFFFFF
        x ^= (x << 25) & 0xFFFFFFFFFFFFFFFF
        x ^= (x >> 27) & 0xFFFFFFFFFFFFFFFF
        self._state = x
        return (x * 0x2545F4914F6CDD1D) & 0xFFFFFFFFFFFFFFFF

    def randrange(self, n: int) -> int:
        return self.next() % n


class VectorBulkUndo:
    """Rollback handle for one :meth:`VectorIndex.bulk_insert` call."""

    __slots__ = ("_index", "_doc_ids")

    def __init__(self, index: "VectorIndex", doc_ids: list[int]) -> None:
        self._index = index
        self._doc_ids = doc_ids

    def rollback(self) -> None:
        """Remove the batch's vectors (mirrors ``BulkUndo.rollback``)."""
        for doc_id in self._doc_ids:
            self._index._discard(doc_id)


class VectorIndex:
    """A kNN/ANN index over one embedding field of a collection.

    Maintains ``doc_id -> vector`` plus IVF posting lists once trained.
    ``order_safe`` is always False: a vector index can never serve a
    b-tree-style sort, so the planner skips it for finds.
    """

    def __init__(self, spec: IndexSpec) -> None:
        if not spec.is_vector:
            raise OperationFailure("VectorIndex requires a spec of type 'vector'")
        self.spec = spec
        self._field = spec.fields[0]
        self._vectors: dict[int, tuple[float, ...]] = {}
        self._norms: dict[int, float] = {}
        #: Deterministic tiebreak key per doc: sort_key of the document _id.
        self._tiebreaks: dict[int, Any] = {}
        # IVF state (populated by rebuild() when the collection is big enough).
        self._centroids: list[tuple[float, ...]] = []
        self._centroid_norms: list[float] = []
        self._lists: list[list[int]] = []
        self._assignments: dict[int, int] = {}

    # -- maintenance (same protocol as Index) -------------------------------

    def _extract(self, document: Mapping[str, Any]) -> tuple[float, ...] | None:
        value = resolve_path_single(document, self._field)
        return _as_vector(value, self.spec.dims, self._field)

    def _add(self, doc_id: int, document: Mapping[str, Any], vector: tuple[float, ...]) -> None:
        self._vectors[doc_id] = vector
        self._norms[doc_id] = _norm(vector)
        self._tiebreaks[doc_id] = sort_key(document.get("_id"))
        if self._centroids:
            assignment = self._nearest_centroid(vector)
            self._assignments[doc_id] = assignment
            self._lists[assignment].append(doc_id)

    def _discard(self, doc_id: int) -> None:
        if self._vectors.pop(doc_id, None) is None:
            return
        self._norms.pop(doc_id, None)
        self._tiebreaks.pop(doc_id, None)
        assignment = self._assignments.pop(doc_id, None)
        if assignment is not None:
            try:
                self._lists[assignment].remove(doc_id)
            except ValueError:  # pragma: no cover - defensive
                pass

    def insert(self, document: Mapping[str, Any], doc_id: int) -> None:
        """Index *document* stored under *doc_id* (missing field → no-op)."""
        vector = self._extract(document)
        if vector is not None:
            self._add(doc_id, document, vector)

    def remove(self, document: Mapping[str, Any], doc_id: int) -> None:
        """Remove *doc_id* from the index."""
        self._discard(doc_id)

    def replace(
        self,
        old_document: Mapping[str, Any],
        new_document: Mapping[str, Any],
        doc_id: int,
    ) -> None:
        """Re-index *doc_id* after an update changed the document."""
        # Validate the new embedding *before* discarding the old entry so a
        # malformed update leaves the index unchanged.
        vector = self._extract(new_document)
        self._discard(doc_id)
        if vector is not None:
            self._add(doc_id, new_document, vector)

    def clear(self) -> None:
        """Drop every entry and the trained IVF structure."""
        self._vectors.clear()
        self._norms.clear()
        self._tiebreaks.clear()
        self._centroids = []
        self._centroid_norms = []
        self._lists = []
        self._assignments.clear()

    def bulk_insert(
        self, documents: Iterable[tuple[int, Mapping[str, Any]]]
    ) -> VectorBulkUndo:
        """Index a whole batch; returns a rollback handle.

        The entire batch is validated *before* any vector is stored, so a
        malformed embedding mid-batch raises without mutating the index —
        the same no-partial-effect contract ``Index.bulk_insert`` gives for
        unique violations.
        """
        prepared: list[tuple[int, Mapping[str, Any], tuple[float, ...]]] = []
        for doc_id, document in documents:
            vector = self._extract(document)
            if vector is not None:
                prepared.append((doc_id, document, vector))
        added: list[int] = []
        for doc_id, document, vector in prepared:
            self._add(doc_id, document, vector)
            added.append(doc_id)
        return VectorBulkUndo(self, added)

    def rebuild(self, documents: Iterable[tuple[int, Mapping[str, Any]]]) -> None:
        """Rebuild from scratch and (re)train the IVF structure.

        Used by deferred builds (``create_index`` over a populated
        collection, ``bulk_load()`` exit, snapshot restore, WAL replay).
        Validation happens before the old entries are discarded.
        """
        prepared: list[tuple[int, Mapping[str, Any], tuple[float, ...]]] = []
        for doc_id, document in documents:
            vector = self._extract(document)
            if vector is not None:
                prepared.append((doc_id, document, vector))
        self.clear()
        for doc_id, document, vector in prepared:
            self._add(doc_id, document, vector)
        self.train()

    def __len__(self) -> int:
        return len(self._vectors)

    @property
    def order_safe(self) -> bool:
        """Vector indexes never order like a b-tree; sorts cannot use them."""
        return False

    # -- IVF training -------------------------------------------------------

    @property
    def trained(self) -> bool:
        """True once IVF centroids exist and approximate search is available."""
        return bool(self._centroids)

    @property
    def nlist(self) -> int:
        """Number of trained coarse centroids (0 when untrained)."""
        return len(self._centroids)

    def default_nlist(self) -> int:
        """The list count used when the spec does not pin one: ~sqrt(n)."""
        if self.spec.nlist:
            return self.spec.nlist
        return max(8, min(256, int(math.sqrt(len(self._vectors)))))

    def train(self, *, force: bool = False) -> bool:
        """Fit coarse centroids with seeded k-means; returns True if trained.

        Skipped (returns False) when fewer than ``_MIN_TRAIN_SIZE`` vectors
        are indexed unless *force* — tiny collections search exactly anyway
        and per-shard training on toy fixtures would make parity tests
        non-deterministic.
        """
        population = len(self._vectors)
        if population == 0:
            return False
        if population < _MIN_TRAIN_SIZE and not force:
            return False
        nlist = min(self.default_nlist(), population)
        doc_ids = sorted(self._vectors, key=lambda d: (self._tiebreaks[d], d))
        rng = _DeterministicRNG(_TRAIN_SEED)

        # Seed centroids by sampling distinct vectors deterministically.
        chosen: list[int] = []
        seen_positions: set[int] = set()
        while len(chosen) < nlist and len(seen_positions) < population:
            position = rng.randrange(population)
            if position in seen_positions:
                continue
            seen_positions.add(position)
            chosen.append(doc_ids[position])
        centroids = [self._vectors[doc_id] for doc_id in chosen]

        # Lloyd refinement over a bounded deterministic sample: k-means only
        # needs representative centroids, not a full-data fit.
        sample_cap = max(nlist * 64, 4096)
        if population > sample_cap:
            step = population / sample_cap
            sample = [doc_ids[int(i * step)] for i in range(sample_cap)]
        else:
            sample = doc_ids
        dims = self.spec.dims
        for _ in range(_KMEANS_ITERATIONS):
            sums = [[0.0] * dims for _ in centroids]
            counts = [0] * len(centroids)
            for doc_id in sample:
                vector = self._vectors[doc_id]
                best = self._nearest_of(vector, centroids)
                counts[best] += 1
                accumulator = sums[best]
                for axis in range(dims):
                    accumulator[axis] += vector[axis]
            moved = False
            for i, count in enumerate(counts):
                if count == 0:
                    continue  # empty list keeps its previous centroid
                updated = tuple(component / count for component in sums[i])
                if updated != centroids[i]:
                    moved = True
                centroids[i] = updated
            if not moved:
                break

        self._centroids = centroids
        self._centroid_norms = [_norm(centroid) for centroid in centroids]
        self._lists = [[] for _ in centroids]
        self._assignments = {}
        for doc_id in doc_ids:
            assignment = self._nearest_centroid(self._vectors[doc_id])
            self._assignments[doc_id] = assignment
            self._lists[assignment].append(doc_id)
        return True

    def _nearest_of(
        self, vector: Sequence[float], centroids: list[tuple[float, ...]]
    ) -> int:
        best = 0
        best_distance = math.inf
        for i, centroid in enumerate(centroids):
            distance = sum((x - y) ** 2 for x, y in zip(vector, centroid))
            if distance < best_distance:
                best_distance = distance
                best = i
        return best

    def _nearest_centroid(self, vector: Sequence[float]) -> int:
        return self._nearest_of(vector, self._centroids)

    # -- search -------------------------------------------------------------

    def default_nprobe(self) -> int:
        """Probe ~1/8th of the lists by default (recall/latency middle ground)."""
        if not self._centroids:
            return 1
        return max(1, len(self._centroids) // 8)

    def search(
        self,
        query: Sequence[Any],
        k: int,
        *,
        nprobe: int | None = None,
        exact: bool = False,
        allowed_ids: set[int] | None = None,
    ) -> tuple[list[tuple[int, float]], int]:
        """Top-*k* most similar stored vectors; returns (ranked, scored_count).

        ``ranked`` is ``[(doc_id, score), ...]`` best-first with ties broken
        deterministically by document ``_id`` order; ``scored_count`` is the
        number of vectors actually scored (the explain/benchmark honesty
        number).  Exact scan when *exact*, when untrained, or when
        *allowed_ids* pre-filters the candidates; otherwise IVF probes the
        *nprobe* nearest posting lists.
        """
        query_vector = _as_vector(list(query), self.spec.dims, "queryVector")
        if query_vector is None:
            raise OperationFailure("queryVector must be a numeric array")
        if k <= 0:
            raise OperationFailure("vector search requires k >= 1")
        if allowed_ids is not None:
            candidates: Iterable[int] = (
                doc_id for doc_id in allowed_ids if doc_id in self._vectors
            )
        elif exact or not self._centroids:
            candidates = self._vectors
        else:
            candidates = self._probe(query_vector, nprobe)
        query_norm = _norm(query_vector)
        metric = self.spec.metric
        vectors = self._vectors
        norms = self._norms
        tiebreaks = self._tiebreaks
        scored = 0
        entries: list[tuple[float, Any, int]] = []
        for doc_id in candidates:
            score = vector_score(
                metric, query_vector, query_norm, vectors[doc_id], norms[doc_id]
            )
            scored += 1
            entries.append((-score, tiebreaks[doc_id], doc_id))
        top = heapq.nsmallest(k, entries)
        return [(doc_id, -negated) for negated, _tiebreak, doc_id in top], scored

    def _probe(self, query_vector: tuple[float, ...], nprobe: int | None) -> list[int]:
        """Document ids in the *nprobe* posting lists nearest the query."""
        probes = nprobe if nprobe and nprobe > 0 else self.default_nprobe()
        probes = min(probes, len(self._centroids))
        ranked = heapq.nsmallest(
            probes,
            range(len(self._centroids)),
            key=lambda i: sum(
                (x - y) ** 2 for x, y in zip(query_vector, self._centroids[i])
            ),
        )
        candidates: list[int] = []
        for i in ranked:
            candidates.extend(self._lists[i])
        return candidates
