"""Aggregation pipeline.

Section 4.1.3.1 of the thesis translates the SQL constructs of the TPC-DS
queries to the aggregation framework using the operator analogy of Table 4.2:

==================  =======================
pipeline stage      SQL construct
==================  =======================
``$project``        select
``$match``          where / having
``$limit``          limit
``$group``          group by
``$sort``           order by
``$sum`` / ``$avg`` aggregate functions
==================  =======================

This module executes a pipeline over an iterable of documents.  The same
executor runs on a stand-alone collection and, in the sharded cluster, on each
shard followed by a merge stage on the router (see
:mod:`repro.sharding.router`).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping, Sequence

from .bson import deep_copy_document
from .cursor import sort_documents
from .errors import InvalidPipelineError, OperationFailure
from .expressions import evaluate_expression
from .matching import compile_filter, resolve_path, values_equal
from .objectid import ObjectId

__all__ = [
    "run_pipeline",
    "split_pipeline_for_shards",
    "GROUP_ACCUMULATORS",
]


# ---------------------------------------------------------------------------
# $group accumulators
# ---------------------------------------------------------------------------

class _Accumulator:
    """Incremental accumulator for one group field."""

    def __init__(self, operator: str, expression: Any) -> None:
        self.operator = operator
        self.expression = expression
        self.values: list[Any] = []

    def add(self, document: Mapping[str, Any]) -> None:
        self.values.append(evaluate_expression(self.expression, document))

    def result(self) -> Any:
        numeric = [
            value
            for value in self.values
            if isinstance(value, (int, float)) and not isinstance(value, bool)
        ]
        if self.operator == "$sum":
            return sum(numeric) if numeric else 0
        if self.operator == "$avg":
            return sum(numeric) / len(numeric) if numeric else None
        if self.operator == "$min":
            present = [value for value in self.values if value is not None]
            return min(present, default=None, key=_sort_key)
        if self.operator == "$max":
            present = [value for value in self.values if value is not None]
            return max(present, default=None, key=_sort_key)
        if self.operator == "$first":
            return self.values[0] if self.values else None
        if self.operator == "$last":
            return self.values[-1] if self.values else None
        if self.operator == "$push":
            return list(self.values)
        if self.operator == "$addToSet":
            unique: list[Any] = []
            for value in self.values:
                if not any(values_equal(value, existing) for existing in unique):
                    unique.append(value)
            return unique
        if self.operator == "$count":
            return len(self.values)
        if self.operator == "$stdDevPop":
            if not numeric:
                return None
            mean = sum(numeric) / len(numeric)
            return (sum((x - mean) ** 2 for x in numeric) / len(numeric)) ** 0.5
        raise InvalidPipelineError(f"unknown accumulator {self.operator!r}")


def _sort_key(value: Any) -> Any:
    from .matching import compare_values
    import functools

    @functools.total_ordering
    class _Wrapped:
        def __init__(self, inner: Any) -> None:
            self.inner = inner

        def __eq__(self, other: object) -> bool:
            return compare_values(self.inner, other.inner) == 0  # type: ignore[attr-defined]

        def __lt__(self, other: "_Wrapped") -> bool:
            return compare_values(self.inner, other.inner) < 0

    return _Wrapped(value)


GROUP_ACCUMULATORS = (
    "$sum",
    "$avg",
    "$min",
    "$max",
    "$first",
    "$last",
    "$push",
    "$addToSet",
    "$count",
    "$stdDevPop",
)


# ---------------------------------------------------------------------------
# Stage implementations
# ---------------------------------------------------------------------------

def _stage_match(documents: list[dict[str, Any]], specification: Mapping[str, Any]) -> list[dict[str, Any]]:
    predicate = compile_filter(specification)
    return [document for document in documents if predicate(document)]


def _stage_project(documents: list[dict[str, Any]], specification: Mapping[str, Any]) -> list[dict[str, Any]]:
    if not specification:
        raise InvalidPipelineError("$project requires at least one field")
    include_id = bool(specification.get("_id", 1))
    has_inclusion = any(
        value not in (0, False)
        for key, value in specification.items()
        if key != "_id"
    )
    projected_documents: list[dict[str, Any]] = []
    for document in documents:
        if has_inclusion:
            projected: dict[str, Any] = {}
            if include_id and "_id" in document:
                projected["_id"] = document["_id"]
            for key, value in specification.items():
                if key == "_id":
                    if value not in (0, False, 1, True):
                        projected["_id"] = evaluate_expression(value, document)
                    continue
                if value in (0, False):
                    continue
                if value in (1, True):
                    resolved = resolve_path(document, key)
                    if resolved:
                        _assign_path(projected, key, deep_copy_document(resolved[0]))
                else:
                    _assign_path(projected, key, evaluate_expression(value, document))
        else:
            projected = deep_copy_document(dict(document))
            for key, value in specification.items():
                if value in (0, False):
                    _delete_path(projected, key)
            if not include_id:
                projected.pop("_id", None)
        projected_documents.append(projected)
    return projected_documents


def _stage_add_fields(documents: list[dict[str, Any]], specification: Mapping[str, Any]) -> list[dict[str, Any]]:
    enriched = []
    for document in documents:
        copy = deep_copy_document(dict(document))
        for key, expression in specification.items():
            _assign_path(copy, key, evaluate_expression(expression, document))
        enriched.append(copy)
    return enriched


def _stage_group(documents: list[dict[str, Any]], specification: Mapping[str, Any]) -> list[dict[str, Any]]:
    if "_id" not in specification:
        raise InvalidPipelineError("$group requires an _id expression")
    id_expression = specification["_id"]
    accumulator_specs: dict[str, tuple[str, Any]] = {}
    for key, value in specification.items():
        if key == "_id":
            continue
        if not isinstance(value, Mapping) or len(value) != 1:
            raise InvalidPipelineError(
                f"group field {key!r} must be a single-accumulator document"
            )
        operator, expression = next(iter(value.items()))
        if operator not in GROUP_ACCUMULATORS:
            raise InvalidPipelineError(f"unknown accumulator {operator!r}")
        accumulator_specs[key] = (operator, expression)

    groups: dict[str, dict[str, Any]] = {}
    for document in documents:
        group_id = evaluate_expression(id_expression, document)
        marker = repr(group_id)
        if marker not in groups:
            groups[marker] = {
                "_id": group_id,
                "accumulators": {
                    key: _Accumulator(operator, expression)
                    for key, (operator, expression) in accumulator_specs.items()
                },
            }
        for accumulator in groups[marker]["accumulators"].values():
            accumulator.add(document)

    results = []
    for group in groups.values():
        row = {"_id": group["_id"]}
        for key, accumulator in group["accumulators"].items():
            row[key] = accumulator.result()
        results.append(row)
    return results


def _stage_unwind(documents: list[dict[str, Any]], specification: Any) -> list[dict[str, Any]]:
    if isinstance(specification, Mapping):
        path = specification["path"]
        preserve_empty = bool(specification.get("preserveNullAndEmptyArrays", False))
    else:
        path = specification
        preserve_empty = False
    if not isinstance(path, str) or not path.startswith("$"):
        raise InvalidPipelineError("$unwind path must start with '$'")
    field_path = path[1:]

    unwound: list[dict[str, Any]] = []
    for document in documents:
        values = resolve_path(document, field_path)
        value = values[0] if values else None
        if isinstance(value, (list, tuple)):
            if not value and preserve_empty:
                unwound.append(deep_copy_document(dict(document)))
            for item in value:
                copy = deep_copy_document(dict(document))
                _assign_path(copy, field_path, item)
                unwound.append(copy)
        elif value is None:
            if preserve_empty:
                unwound.append(deep_copy_document(dict(document)))
        else:
            unwound.append(deep_copy_document(dict(document)))
    return unwound


def _stage_lookup(
    documents: list[dict[str, Any]],
    specification: Mapping[str, Any],
    collection_resolver: Callable[[str], Iterable[Mapping[str, Any]]] | None,
) -> list[dict[str, Any]]:
    if collection_resolver is None:
        raise OperationFailure("$lookup is not available in this context")
    foreign = list(collection_resolver(specification["from"]))
    local_field = specification["localField"]
    foreign_field = specification["foreignField"]
    output_field = specification["as"]

    # Build a hash map over the foreign field for linear-time lookups.
    foreign_by_key: dict[str, list[dict[str, Any]]] = {}
    for foreign_document in foreign:
        for key in resolve_path(foreign_document, foreign_field) or [None]:
            foreign_by_key.setdefault(repr(key), []).append(dict(foreign_document))

    joined = []
    for document in documents:
        copy = deep_copy_document(dict(document))
        local_values = resolve_path(document, local_field) or [None]
        matches: list[dict[str, Any]] = []
        for value in local_values:
            matches.extend(foreign_by_key.get(repr(value), []))
        _assign_path(copy, output_field, deep_copy_document(matches))
        joined.append(copy)
    return joined


def _assign_path(document: dict[str, Any], path: str, value: Any) -> None:
    parts = path.split(".")
    node = document
    for part in parts[:-1]:
        if part not in node or not isinstance(node[part], dict):
            node[part] = {}
        node = node[part]
    node[parts[-1]] = value


def _delete_path(document: dict[str, Any], path: str) -> None:
    parts = path.split(".")
    node: Any = document
    for part in parts[:-1]:
        if not isinstance(node, dict) or part not in node:
            return
        node = node[part]
    if isinstance(node, dict):
        node.pop(parts[-1], None)


# ---------------------------------------------------------------------------
# Pipeline driver
# ---------------------------------------------------------------------------

def run_pipeline(
    documents: Iterable[Mapping[str, Any]],
    pipeline: Sequence[Mapping[str, Any]],
    *,
    collection_resolver: Callable[[str], Iterable[Mapping[str, Any]]] | None = None,
    output_writer: Callable[[str, list[dict[str, Any]]], None] | None = None,
) -> list[dict[str, Any]]:
    """Execute *pipeline* over *documents* and return the resulting documents.

    ``collection_resolver`` provides access to sibling collections for
    ``$lookup``; ``output_writer`` receives ``($out target, documents)`` when
    the pipeline ends with an ``$out`` stage (in which case an empty list is
    returned, mirroring driver behaviour).
    """
    current: list[dict[str, Any]] = [dict(document) for document in documents]
    for position, stage in enumerate(pipeline):
        if not isinstance(stage, Mapping) or len(stage) != 1:
            raise InvalidPipelineError(
                f"pipeline stage #{position} must be a single-key document: {stage!r}"
            )
        operator, specification = next(iter(stage.items()))
        if operator == "$match":
            current = _stage_match(current, specification)
        elif operator == "$project":
            current = _stage_project(current, specification)
        elif operator in ("$addFields", "$set"):
            current = _stage_add_fields(current, specification)
        elif operator == "$group":
            current = _stage_group(current, specification)
        elif operator == "$sort":
            current = sort_documents(current, list(specification.items()))
        elif operator == "$limit":
            current = current[: int(specification)]
        elif operator == "$skip":
            current = current[int(specification):]
        elif operator == "$unwind":
            current = _stage_unwind(current, specification)
        elif operator == "$count":
            current = [{str(specification): len(current)}]
        elif operator == "$lookup":
            current = _stage_lookup(current, specification, collection_resolver)
        elif operator == "$sample":
            size = int(specification.get("size", 1))
            current = current[:size]
        elif operator == "$replaceRoot":
            new_root = specification.get("newRoot")
            current = [
                root
                for document in current
                if isinstance(root := evaluate_expression(new_root, document), dict)
            ]
        elif operator == "$out":
            if position != len(pipeline) - 1:
                raise InvalidPipelineError("$out must be the final pipeline stage")
            if output_writer is None:
                raise OperationFailure("$out is not available in this context")
            for document in current:
                document.setdefault("_id", ObjectId())
            output_writer(str(specification), current)
            return []
        else:
            raise InvalidPipelineError(f"unknown pipeline stage {operator!r}")
    return current


def split_pipeline_for_shards(
    pipeline: Sequence[Mapping[str, Any]],
) -> tuple[list[Mapping[str, Any]], list[Mapping[str, Any]]]:
    """Split a pipeline into a per-shard part and a router merge part.

    The leading ``$match`` stages (and any following ``$project`` /
    ``$addFields`` / ``$unwind``) can run on each shard independently; the
    first ``$group`` / ``$sort`` / ``$limit`` and everything after it must run
    on the router over the merged results, because those stages need a global
    view of the data.  This is the scatter–gather behaviour whose cost the
    paper measures for the broadcast queries (Section 4.3, observation ii).
    """
    shard_stages: list[Mapping[str, Any]] = []
    merge_stages: list[Mapping[str, Any]] = []
    splitting = True
    for stage in pipeline:
        operator = next(iter(stage))
        if splitting and operator in ("$match", "$project", "$addFields", "$set", "$unwind"):
            shard_stages.append(stage)
        else:
            splitting = False
            merge_stages.append(stage)
    return shard_stages, merge_stages
