"""Compiled, streaming aggregation pipeline.

Section 4.1.3.1 of the thesis translates the SQL constructs of the TPC-DS
queries to the aggregation framework using the operator analogy of Table 4.2:

==================  =======================
pipeline stage      SQL construct
==================  =======================
``$project``        select
``$match``          where / having
``$limit``          limit
``$group``          group by
``$sort``           order by
``$sum`` / ``$avg`` aggregate functions
==================  =======================

This module **compiles** a pipeline once — validating stage shapes, lowering
filters through :func:`~repro.documentstore.matching.compile_matcher` and
expressions through
:func:`~repro.documentstore.expressions.compile_expression` — and then
**streams** documents through the compiled stages:

* every stage is an ``Iterator -> Iterator`` transform, so ``$match`` /
  ``$project`` / ``$unwind`` / ``$limit`` never materialize intermediate
  lists (``$group``, ``$sort``, ``$count``, and ``$out`` are inherent
  barriers);
* a logical optimizer merges adjacent ``$match`` stages and pushes
  ``$match`` (and inclusion-only ``$project``) ahead of ``$sort`` /
  ``$unwind`` / ``$lookup`` when that provably cannot change the result;
* ``$sort`` immediately followed by ``$limit`` (optionally with a ``$skip``
  in between) runs as a bounded ``heapq`` top-k selection instead of a full
  sort of a fully materialized intermediate list;
* per-stage counters (documents examined / returned) can be collected for
  ``explain()``.

The same executor runs on a stand-alone collection and, in the sharded
cluster, on each shard followed by a merge stage on the router (see
:mod:`repro.sharding.router`).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from itertools import islice
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from .bson import deep_copy_document
from .errors import InvalidPipelineError, OperationFailure
from .expressions import compile_expression
from .matching import compile_matcher, compile_path, values_equal
from .objectid import ObjectId
from .ordering import document_sort_key, sort_key

__all__ = [
    "run_pipeline",
    "compile_pipeline",
    "optimize_pipeline",
    "split_pipeline_for_shards",
    "CompiledPipeline",
    "StageStats",
    "GROUP_ACCUMULATORS",
]


# ---------------------------------------------------------------------------
# Per-stage execution statistics (explain counters)
# ---------------------------------------------------------------------------

@dataclass
class StageStats:
    """Documents examined / returned by one executed pipeline stage."""

    stage: str
    docs_examined: int = 0
    docs_returned: int = 0

    def as_dict(self) -> dict[str, Any]:
        """Return the ``explain()``-style description of the stage."""
        return {
            "stage": self.stage,
            "docsExamined": self.docs_examined,
            "docsReturned": self.docs_returned,
        }


def _count_input(iterator: Iterator[Any], stats: StageStats) -> Iterator[Any]:
    for item in iterator:
        stats.docs_examined += 1
        yield item


def _count_output(iterator: Iterator[Any], stats: StageStats) -> Iterator[Any]:
    for item in iterator:
        stats.docs_returned += 1
        yield item


# ---------------------------------------------------------------------------
# $group accumulators
# ---------------------------------------------------------------------------

class _Accumulator:
    """Incremental accumulator for one group field (compiled expression)."""

    __slots__ = ("operator", "evaluate", "values")

    def __init__(self, operator: str, evaluate: Callable[[Mapping[str, Any]], Any]) -> None:
        self.operator = operator
        self.evaluate = evaluate
        self.values: list[Any] = []

    def add(self, document: Mapping[str, Any]) -> None:
        self.values.append(self.evaluate(document))

    def result(self) -> Any:
        numeric = [
            value
            for value in self.values
            if isinstance(value, (int, float)) and not isinstance(value, bool)
        ]
        if self.operator == "$sum":
            return sum(numeric) if numeric else 0
        if self.operator == "$avg":
            return sum(numeric) / len(numeric) if numeric else None
        if self.operator == "$min":
            present = [value for value in self.values if value is not None]
            return min(present, default=None, key=sort_key)
        if self.operator == "$max":
            present = [value for value in self.values if value is not None]
            return max(present, default=None, key=sort_key)
        if self.operator == "$first":
            return self.values[0] if self.values else None
        if self.operator == "$last":
            return self.values[-1] if self.values else None
        if self.operator == "$push":
            return list(self.values)
        if self.operator == "$addToSet":
            unique: list[Any] = []
            for value in self.values:
                if not any(values_equal(value, existing) for existing in unique):
                    unique.append(value)
            return unique
        if self.operator == "$count":
            return len(self.values)
        if self.operator == "$stdDevPop":
            if not numeric:
                return None
            mean = sum(numeric) / len(numeric)
            return (sum((x - mean) ** 2 for x in numeric) / len(numeric)) ** 0.5
        raise InvalidPipelineError(f"unknown accumulator {self.operator!r}")


GROUP_ACCUMULATORS = (
    "$sum",
    "$avg",
    "$min",
    "$max",
    "$first",
    "$last",
    "$push",
    "$addToSet",
    "$count",
    "$stdDevPop",
)


# ---------------------------------------------------------------------------
# Path helpers shared by $project / $addFields / $unwind / $lookup
# ---------------------------------------------------------------------------

def _assign_path(document: dict[str, Any], path: str, value: Any) -> None:
    parts = path.split(".")
    node = document
    for part in parts[:-1]:
        if part not in node or not isinstance(node[part], dict):
            node[part] = {}
        node = node[part]
    node[parts[-1]] = value


def _delete_path(document: dict[str, Any], path: str) -> None:
    parts = path.split(".")
    node: Any = document
    for part in parts[:-1]:
        if not isinstance(node, dict) or part not in node:
            return
        node = node[part]
    if isinstance(node, dict):
        node.pop(parts[-1], None)


# ---------------------------------------------------------------------------
# Stage compilers: specification -> (Iterator -> Iterator) transform
# ---------------------------------------------------------------------------

_Transform = Callable[[Iterator[dict[str, Any]]], Iterator[dict[str, Any]]]


class CompiledStage:
    """One lowered pipeline stage: a display label plus a stream transform."""

    __slots__ = ("label", "transform")

    def __init__(self, label: str, transform: _Transform) -> None:
        self.label = label
        self.transform = transform


def _compile_match(specification: Mapping[str, Any]) -> _Transform:
    predicate = compile_matcher(specification)

    def transform(documents: Iterator[dict[str, Any]]) -> Iterator[dict[str, Any]]:
        return (document for document in documents if predicate(document))

    return transform


def _compile_project(specification: Mapping[str, Any]) -> _Transform:
    if not specification:
        raise InvalidPipelineError("$project requires at least one field")
    include_id = bool(specification.get("_id", 1))
    has_inclusion = any(
        value not in (0, False)
        for key, value in specification.items()
        if key != "_id"
    )

    if has_inclusion:
        id_value = specification.get("_id", 1)
        id_evaluator = (
            compile_expression(id_value)
            if "_id" in specification and id_value not in (0, False, 1, True)
            else None
        )
        included: list[tuple[str, Callable[[Any], list[Any]] | None, Any]] = []
        for key, value in specification.items():
            if key == "_id" or value in (0, False):
                continue
            if value in (1, True):
                included.append((key, compile_path(key), None))
            else:
                included.append((key, None, compile_expression(value)))

        def project_inclusion(documents: Iterator[dict[str, Any]]) -> Iterator[dict[str, Any]]:
            for document in documents:
                projected: dict[str, Any] = {}
                if include_id and "_id" in document:
                    projected["_id"] = document["_id"]
                if id_evaluator is not None:
                    projected["_id"] = id_evaluator(document)
                for key, resolver, evaluator in included:
                    if resolver is not None:
                        resolved = resolver(document)
                        if resolved:
                            _assign_path(projected, key, deep_copy_document(resolved[0]))
                    else:
                        _assign_path(projected, key, evaluator(document))
                yield projected

        return project_inclusion

    exclusions = [key for key, value in specification.items() if value in (0, False)]

    def project_exclusion(documents: Iterator[dict[str, Any]]) -> Iterator[dict[str, Any]]:
        for document in documents:
            projected = deep_copy_document(dict(document))
            for key in exclusions:
                _delete_path(projected, key)
            if not include_id:
                projected.pop("_id", None)
            yield projected

    return project_exclusion


def _compile_add_fields(specification: Mapping[str, Any]) -> _Transform:
    fields = [(key, compile_expression(expression)) for key, expression in specification.items()]

    def transform(documents: Iterator[dict[str, Any]]) -> Iterator[dict[str, Any]]:
        for document in documents:
            copy = deep_copy_document(dict(document))
            for key, evaluator in fields:
                _assign_path(copy, key, evaluator(document))
            yield copy

    return transform


def _compile_group(specification: Mapping[str, Any]) -> _Transform:
    if "_id" not in specification:
        raise InvalidPipelineError("$group requires an _id expression")
    id_evaluator = compile_expression(specification["_id"])
    accumulator_specs: dict[str, tuple[str, Callable[[Mapping[str, Any]], Any]]] = {}
    for key, value in specification.items():
        if key == "_id":
            continue
        if not isinstance(value, Mapping) or len(value) != 1:
            raise InvalidPipelineError(
                f"group field {key!r} must be a single-accumulator document"
            )
        operator, expression = next(iter(value.items()))
        if operator not in GROUP_ACCUMULATORS:
            raise InvalidPipelineError(f"unknown accumulator {operator!r}")
        accumulator_specs[key] = (operator, compile_expression(expression))

    def transform(documents: Iterator[dict[str, Any]]) -> Iterator[dict[str, Any]]:
        groups: dict[str, tuple[Any, dict[str, _Accumulator]]] = {}
        for document in documents:
            group_id = id_evaluator(document)
            marker = repr(group_id)
            entry = groups.get(marker)
            if entry is None:
                entry = groups[marker] = (
                    group_id,
                    {
                        key: _Accumulator(operator, evaluate)
                        for key, (operator, evaluate) in accumulator_specs.items()
                    },
                )
            for accumulator in entry[1].values():
                accumulator.add(document)
        for group_id, accumulators in groups.values():
            row = {"_id": group_id}
            for key, accumulator in accumulators.items():
                row[key] = accumulator.result()
            yield row

    return transform


def _unwind_specification(specification: Any) -> tuple[str, bool]:
    if isinstance(specification, Mapping):
        path = specification["path"]
        preserve_empty = bool(specification.get("preserveNullAndEmptyArrays", False))
    else:
        path = specification
        preserve_empty = False
    if not isinstance(path, str) or not path.startswith("$"):
        raise InvalidPipelineError("$unwind path must start with '$'")
    return path[1:], preserve_empty


def _compile_unwind(specification: Any) -> _Transform:
    field_path, preserve_empty = _unwind_specification(specification)
    resolver = compile_path(field_path)

    def transform(documents: Iterator[dict[str, Any]]) -> Iterator[dict[str, Any]]:
        for document in documents:
            values = resolver(document)
            value = values[0] if values else None
            if isinstance(value, (list, tuple)):
                if not value and preserve_empty:
                    yield deep_copy_document(dict(document))
                for item in value:
                    copy = deep_copy_document(dict(document))
                    _assign_path(copy, field_path, item)
                    yield copy
            elif value is None:
                if preserve_empty:
                    yield deep_copy_document(dict(document))
            else:
                yield deep_copy_document(dict(document))

    return transform


def _compile_lookup(
    specification: Mapping[str, Any],
    collection_resolver: Callable[[str], Iterable[Mapping[str, Any]]] | None,
) -> _Transform:
    if collection_resolver is None:
        raise OperationFailure("$lookup is not available in this context")
    foreign_name = specification["from"]
    local_resolver = compile_path(specification["localField"])
    foreign_resolver = compile_path(specification["foreignField"])
    output_field = specification["as"]

    def transform(documents: Iterator[dict[str, Any]]) -> Iterator[dict[str, Any]]:
        # Build a hash map over the foreign field for linear-time lookups.
        foreign_by_key: dict[str, list[dict[str, Any]]] = {}
        for foreign_document in collection_resolver(foreign_name):
            for key in foreign_resolver(foreign_document) or [None]:
                foreign_by_key.setdefault(repr(key), []).append(dict(foreign_document))
        for document in documents:
            copy = deep_copy_document(dict(document))
            local_values = local_resolver(document) or [None]
            joined: list[dict[str, Any]] = []
            for value in local_values:
                joined.extend(foreign_by_key.get(repr(value), []))
            _assign_path(copy, output_field, deep_copy_document(joined))
            yield copy

    return transform


def _compile_sort(specification: Mapping[str, Any]) -> _Transform:
    key = document_sort_key(list(specification.items()))

    def transform(documents: Iterator[dict[str, Any]]) -> Iterator[dict[str, Any]]:
        return iter(sorted(documents, key=key))

    return transform


def _compile_top_k(
    specification: Mapping[str, Any], count: int, offset: int = 0
) -> _Transform:
    """Fused ``$sort`` + ``$limit`` (+ ``$skip``): bounded heap selection.

    ``heapq.nsmallest`` keeps at most ``count`` documents in memory and is
    stable for equal keys, so the observable result is identical to a full
    sort followed by slicing — without materializing the sorted intermediate
    list.
    """
    key = document_sort_key(list(specification.items()))

    def transform(documents: Iterator[dict[str, Any]]) -> Iterator[dict[str, Any]]:
        top = heapq.nsmallest(count, documents, key=key)
        return iter(top[offset:])

    return transform


def _compile_replace_root(specification: Mapping[str, Any]) -> _Transform:
    evaluator = compile_expression(specification.get("newRoot"))

    def transform(documents: Iterator[dict[str, Any]]) -> Iterator[dict[str, Any]]:
        for document in documents:
            root = evaluator(document)
            if isinstance(root, dict):
                yield root

    return transform


def _compile_count(specification: Any) -> _Transform:
    field_name = str(specification)

    def transform(documents: Iterator[dict[str, Any]]) -> Iterator[dict[str, Any]]:
        total = sum(1 for _ in documents)
        yield {field_name: total}

    return transform


def _compile_out(
    specification: Any,
    output_writer: Callable[[str, list[dict[str, Any]]], None] | None,
) -> _Transform:
    if output_writer is None:
        raise OperationFailure("$out is not available in this context")
    target = str(specification)

    def transform(documents: Iterator[dict[str, Any]]) -> Iterator[dict[str, Any]]:
        batch: list[dict[str, Any]] = []
        for document in documents:
            document.setdefault("_id", ObjectId())
            batch.append(document)
        output_writer(target, batch)
        return
        yield  # pragma: no cover - makes this function a generator

    return transform


def _slice_transform(start: int, stop: int | None) -> _Transform:
    def transform(documents: Iterator[dict[str, Any]]) -> Iterator[dict[str, Any]]:
        return islice(documents, start, stop)

    return transform


# ---------------------------------------------------------------------------
# Pipeline validation and logical optimization
# ---------------------------------------------------------------------------

def _validate_pipeline(
    pipeline: Sequence[Mapping[str, Any]],
) -> list[Mapping[str, Any]]:
    validated: list[Mapping[str, Any]] = []
    for position, stage in enumerate(pipeline):
        if not isinstance(stage, Mapping) or len(stage) != 1:
            raise InvalidPipelineError(
                f"pipeline stage #{position} must be a single-key document: {stage!r}"
            )
        validated.append(stage)
    return validated


def _paths_overlap(path_a: str, path_b: str) -> bool:
    return (
        path_a == path_b
        or path_a.startswith(path_b + ".")
        or path_b.startswith(path_a + ".")
    )


def _match_referenced_paths(query: Any) -> set[str] | None:
    """Field paths a ``$match`` filter reads, or ``None`` when unanalyzable."""
    if not isinstance(query, Mapping):
        return None
    paths: set[str] = set()
    for key, condition in query.items():
        if key in ("$and", "$or", "$nor"):
            if not isinstance(condition, (list, tuple)):
                return None
            for sub_query in condition:
                sub_paths = _match_referenced_paths(sub_query)
                if sub_paths is None:
                    return None
                paths |= sub_paths
        elif key.startswith("$"):
            # $expr (and any future top-level operator) may read any field.
            return None
        else:
            paths.add(key)
    return paths


def _match_can_move_before_unwind(match_spec: Any, unwind_spec: Any) -> bool:
    try:
        unwind_path, _preserve = _unwind_specification(unwind_spec)
    except InvalidPipelineError:
        return False
    paths = _match_referenced_paths(match_spec)
    if paths is None:
        return False
    return not any(_paths_overlap(path, unwind_path) for path in paths)


def _match_can_move_before_lookup(match_spec: Any, lookup_spec: Any) -> bool:
    if not isinstance(lookup_spec, Mapping) or "as" not in lookup_spec:
        return False
    output_field = str(lookup_spec["as"])
    paths = _match_referenced_paths(match_spec)
    if paths is None:
        return False
    return not any(_paths_overlap(path, output_field) for path in paths)


def _project_can_move_before_unwind(project_spec: Any, unwind_spec: Any) -> bool:
    """True for inclusion-only top-level projections that keep the unwind path.

    Such a projection copies whole top-level fields verbatim, so projecting
    first and unwinding one of the kept fields afterwards yields exactly the
    documents of the original order — while narrowing every document before
    the per-element deep copies of ``$unwind``.
    """
    try:
        unwind_path, _preserve = _unwind_specification(unwind_spec)
    except InvalidPipelineError:
        return False
    if "." in unwind_path or not isinstance(project_spec, Mapping) or not project_spec:
        return False
    keeps_unwind_path = False
    for key, value in project_spec.items():
        if key == "_id":
            if value not in (0, False, 1, True):
                return False
            continue
        if "." in key or key.startswith("$") or value not in (1, True):
            return False
        if key == unwind_path:
            keeps_unwind_path = True
    return keeps_unwind_path


def _merge_match_specs(first: Any, second: Any) -> Mapping[str, Any]:
    if not first:
        return second or {}
    if not second:
        return first
    return {"$and": [first, second]}


def _vector_limit_cap(stages: Sequence[Mapping[str, Any]]) -> int | None:
    """The ``skip + limit`` bound directly after a leading ``$vectorSearch``.

    Only a *directly* adjacent ``$limit`` (optionally behind one ``$skip``)
    caps the stage's ``k`` — an intervening ``$match`` may discard results,
    so lowering ``k`` across it would under-return.
    """
    if len(stages) < 2:
        return None
    following = stages[1]
    if "$limit" in following:
        return max(int(following["$limit"]), 0)
    if "$skip" in following and len(stages) >= 3 and "$limit" in stages[2]:
        return max(int(following["$skip"]), 0) + max(int(stages[2]["$limit"]), 0)
    return None


def optimize_pipeline(
    pipeline: Sequence[Mapping[str, Any]],
) -> list[Mapping[str, Any]]:
    """Return a semantically equivalent, cheaper-to-execute stage list.

    Rewrites applied (all result-preserving):

    * adjacent ``$match`` stages merge into one ``$and`` filter;
    * ``$match`` moves ahead of ``$sort`` (stable sort keeps the order);
    * ``$match`` moves ahead of ``$unwind`` / ``$lookup`` when the filter
      does not read the unwound path / the joined output field;
    * inclusion-only top-level ``$project`` moves ahead of ``$unwind`` when
      it keeps the unwound field;
    * a leading ``$vectorSearch`` directly followed by ``$limit`` (optionally
      with one ``$skip`` in between) lowers its internal ``k`` to
      ``skip + limit`` — the vector-index analogue of the ``$sort``+``$limit``
      top-k fusion, so whole-input-consuming downstream stages never force
      the index to rank more candidates than the pipeline keeps.

    ``$match`` never moves ahead of ``$vectorSearch`` (or any other unknown
    stage): a post-search filter and a pre-search filter select different
    top-k sets by design.
    """
    stages = _validate_pipeline(pipeline)
    changed = True
    while changed:
        changed = False
        # Lower a leading $vectorSearch's k under a directly-adjacent $limit.
        if stages and "$vectorSearch" in stages[0]:
            cap = _vector_limit_cap(stages)
            specification = stages[0]["$vectorSearch"]
            if cap is not None and isinstance(specification, Mapping):
                current = specification.get("k", specification.get("limit"))
                if current is None or int(current) > cap:
                    lowered = dict(specification)
                    lowered.pop("limit", None)
                    lowered["k"] = cap
                    stages[0] = {"$vectorSearch": lowered}
                    changed = True
        # Merge adjacent $match stages.
        merged: list[Mapping[str, Any]] = []
        for stage in stages:
            if merged and "$match" in merged[-1] and "$match" in stage:
                merged[-1] = {
                    "$match": _merge_match_specs(merged[-1]["$match"], stage["$match"])
                }
                changed = True
            else:
                merged.append(stage)
        stages = merged
        # Push $match / $project toward the source.
        for index in range(1, len(stages)):
            stage, previous = stages[index], stages[index - 1]
            if "$match" in stage:
                movable = (
                    "$sort" in previous
                    or (
                        "$unwind" in previous
                        and _match_can_move_before_unwind(
                            stage["$match"], previous["$unwind"]
                        )
                    )
                    or (
                        "$lookup" in previous
                        and _match_can_move_before_lookup(
                            stage["$match"], previous["$lookup"]
                        )
                    )
                )
                if movable:
                    stages[index - 1], stages[index] = stage, previous
                    changed = True
                    break
            elif "$project" in stage:
                if "$unwind" in previous and _project_can_move_before_unwind(
                    stage["$project"], previous["$unwind"]
                ):
                    stages[index - 1], stages[index] = stage, previous
                    changed = True
                    break
    return stages


# ---------------------------------------------------------------------------
# Pipeline compilation and execution
# ---------------------------------------------------------------------------

class CompiledPipeline:
    """A validated pipeline lowered into streaming stage transforms."""

    def __init__(self, stages: list[CompiledStage]) -> None:
        self.stages = stages

    def stage_labels(self) -> list[str]:
        """The (optimized) stage labels, in execution order."""
        return [stage.label for stage in self.stages]

    def stream(
        self,
        documents: Iterable[dict[str, Any]],
        counters: list[StageStats] | None = None,
    ) -> Iterator[dict[str, Any]]:
        """Lazily stream *documents* through the compiled stages."""
        iterator = iter(documents)
        for stage in self.stages:
            if counters is not None:
                stats = StageStats(stage.label)
                counters.append(stats)
                iterator = _count_output(
                    stage.transform(_count_input(iterator, stats)), stats
                )
            else:
                iterator = stage.transform(iterator)
        return iterator

    def run(
        self,
        documents: Iterable[Mapping[str, Any]],
        counters: list[StageStats] | None = None,
    ) -> list[dict[str, Any]]:
        """Execute the pipeline over *documents* and return the results."""
        source = (dict(document) for document in documents)
        return list(self.stream(source, counters=counters))


def compile_pipeline(
    pipeline: Sequence[Mapping[str, Any]],
    *,
    collection_resolver: Callable[[str], Iterable[Mapping[str, Any]]] | None = None,
    output_writer: Callable[[str, list[dict[str, Any]]], None] | None = None,
    optimize: bool = True,
    fuse: bool | None = None,
) -> CompiledPipeline:
    """Validate, optimize, and lower *pipeline* into a :class:`CompiledPipeline`.

    ``collection_resolver`` provides access to sibling collections for
    ``$lookup``; ``output_writer`` receives ``($out target, documents)`` for a
    trailing ``$out`` stage.  ``optimize=False`` skips the logical rewrites
    and — unless ``fuse`` overrides it — the top-k fusion (used by tests that
    compare both execution modes, and by callers that already ran
    :func:`optimize_pipeline` and only need lowering plus fusion).
    """
    if fuse is None:
        fuse = optimize
    stages_spec = (
        optimize_pipeline(pipeline) if optimize else _validate_pipeline(pipeline)
    )
    compiled: list[CompiledStage] = []
    index = 0
    total = len(stages_spec)
    while index < total:
        stage = stages_spec[index]
        operator, specification = next(iter(stage.items()))
        if operator == "$match":
            compiled.append(CompiledStage("$match", _compile_match(specification)))
        elif operator == "$project":
            compiled.append(CompiledStage("$project", _compile_project(specification)))
        elif operator in ("$addFields", "$set"):
            compiled.append(CompiledStage(operator, _compile_add_fields(specification)))
        elif operator == "$group":
            compiled.append(CompiledStage("$group", _compile_group(specification)))
        elif operator == "$sort":
            fused = None
            if fuse and index + 1 < total:
                following = stages_spec[index + 1]
                if "$limit" in following:
                    limit = int(following["$limit"])
                    fused = (_compile_top_k(specification, max(limit, 0)), 2)
                elif (
                    "$skip" in following
                    and index + 2 < total
                    and "$limit" in stages_spec[index + 2]
                ):
                    skip = max(int(following["$skip"]), 0)
                    limit = max(int(stages_spec[index + 2]["$limit"]), 0)
                    fused = (_compile_top_k(specification, skip + limit, skip), 3)
            if fused is not None:
                transform, consumed = fused
                compiled.append(CompiledStage("$sort+$limit", transform))
                index += consumed
                continue
            compiled.append(CompiledStage("$sort", _compile_sort(specification)))
        elif operator == "$limit":
            compiled.append(
                CompiledStage("$limit", _slice_transform(0, max(int(specification), 0)))
            )
        elif operator == "$skip":
            compiled.append(
                CompiledStage("$skip", _slice_transform(max(int(specification), 0), None))
            )
        elif operator == "$unwind":
            compiled.append(CompiledStage("$unwind", _compile_unwind(specification)))
        elif operator == "$count":
            compiled.append(CompiledStage("$count", _compile_count(specification)))
        elif operator == "$lookup":
            compiled.append(
                CompiledStage(
                    "$lookup", _compile_lookup(specification, collection_resolver)
                )
            )
        elif operator == "$sample":
            size = int(specification.get("size", 1))
            compiled.append(
                CompiledStage("$sample", _slice_transform(0, max(size, 0)))
            )
        elif operator == "$replaceRoot":
            compiled.append(
                CompiledStage("$replaceRoot", _compile_replace_root(specification))
            )
        elif operator == "$out":
            if index != total - 1:
                raise InvalidPipelineError("$out must be the final pipeline stage")
            compiled.append(
                CompiledStage("$out", _compile_out(specification, output_writer))
            )
        elif operator == "$vectorSearch":
            # Collections peel a *leading* $vectorSearch off and run it
            # against the vector index before the compiled stages; one that
            # reaches the compiler is mid-pipeline or in a context with no
            # vector indexes (e.g. bare run_pipeline).
            raise InvalidPipelineError(
                "$vectorSearch must be the first stage of a collection pipeline"
            )
        else:
            raise InvalidPipelineError(f"unknown pipeline stage {operator!r}")
        index += 1
    return CompiledPipeline(compiled)


def run_pipeline(
    documents: Iterable[Mapping[str, Any]],
    pipeline: Sequence[Mapping[str, Any]],
    *,
    collection_resolver: Callable[[str], Iterable[Mapping[str, Any]]] | None = None,
    output_writer: Callable[[str, list[dict[str, Any]]], None] | None = None,
    counters: list[StageStats] | None = None,
    optimize: bool = True,
    fuse: bool | None = None,
) -> list[dict[str, Any]]:
    """Execute *pipeline* over *documents* and return the resulting documents.

    ``collection_resolver`` provides access to sibling collections for
    ``$lookup``; ``output_writer`` receives ``($out target, documents)`` when
    the pipeline ends with an ``$out`` stage (in which case an empty list is
    returned, mirroring driver behaviour).  When *counters* is a list, one
    :class:`StageStats` per executed stage is appended to it.
    """
    compiled = compile_pipeline(
        pipeline,
        collection_resolver=collection_resolver,
        output_writer=output_writer,
        optimize=optimize,
        fuse=fuse,
    )
    return compiled.run(documents, counters=counters)


def split_pipeline_for_shards(
    pipeline: Sequence[Mapping[str, Any]],
) -> tuple[list[Mapping[str, Any]], list[Mapping[str, Any]]]:
    """Split a pipeline into a per-shard part and a router merge part.

    The leading ``$match`` stages (and any following ``$project`` /
    ``$addFields`` / ``$unwind``) can run on each shard independently; the
    first ``$group`` / ``$sort`` / ``$limit`` and everything after it must run
    on the router over the merged results, because those stages need a global
    view of the data.  This is the scatter–gather behaviour whose cost the
    paper measures for the broadcast queries (Section 4.3, observation ii).
    """
    if pipeline and "$vectorSearch" in pipeline[0]:
        # Each shard runs the full vector search with the *global* k over its
        # slice; every later stage must see the globally merged, re-ranked
        # top-k, so only the search stage itself runs shard-side.
        return [pipeline[0]], list(pipeline[1:])
    shard_stages: list[Mapping[str, Any]] = []
    merge_stages: list[Mapping[str, Any]] = []
    splitting = True
    for stage in pipeline:
        operator = next(iter(stage))
        if splitting and operator in ("$match", "$project", "$addFields", "$set", "$unwind"):
            shard_stages.append(stage)
        else:
            splitting = False
            merge_stages.append(stage)
    return shard_stages, merge_stages
