"""BSON-style document validation, size accounting, and (de)serialization.

The store keeps documents as ordinary Python dictionaries, but it enforces the
same structural rules the paper relies on:

* keys are strings and may not start with ``$`` or contain ``.`` (those are
  reserved for operators and dotted paths);
* values are limited to the BSON-representable types used by the thesis
  workloads (null, bool, int, float, str, datetime/date, ObjectId, list,
  embedded document);
* a single document may not exceed :data:`MAX_DOCUMENT_SIZE` (16 MB), the
  limit that motivates the referenced data model in Section 2.1.1.

Size accounting follows the BSON wire layout closely enough that relative
sizes (and therefore the "dataset grows ~9x when keys are repeated per
document" observation of Section 4.1.2) are reproduced.
"""

from __future__ import annotations

import datetime as _dt
import json
from collections.abc import Mapping  # fast isinstance on the copy/validate hot path
from typing import Any, Iterable

from .errors import DocumentTooLargeError, InvalidDocumentError
from .objectid import ObjectId

__all__ = [
    "MAX_DOCUMENT_SIZE",
    "validate_document",
    "document_size",
    "deep_copy_document",
    "encode_document",
    "decode_document",
]

#: Maximum size of a single document, in bytes (16 MB, as in the paper).
MAX_DOCUMENT_SIZE = 16 * 1024 * 1024

_SCALAR_TYPES = (bool, int, float, str, bytes, ObjectId, _dt.datetime, _dt.date)


def validate_document(document: Mapping[str, Any], *, check_size: bool = True) -> None:
    """Validate *document* for insertion.

    Raises
    ------
    InvalidDocumentError
        If the document is not a mapping, has non-string keys, has keys that
        start with ``$`` or contain ``.``, or contains unsupported values.
    DocumentTooLargeError
        If the document exceeds :data:`MAX_DOCUMENT_SIZE`.
    """
    if not isinstance(document, Mapping):
        raise InvalidDocumentError(
            f"documents must be mappings, got {type(document).__name__}"
        )
    _validate_value(document, top_level=True)
    if check_size:
        size = document_size(document)
        if size > MAX_DOCUMENT_SIZE:
            raise DocumentTooLargeError(size, MAX_DOCUMENT_SIZE)


def ensure_document_size(document: Mapping[str, Any]) -> None:
    """Raise :class:`DocumentTooLargeError` if *document* exceeds 16 MB.

    Used by the update path, which validates the update payload once and then
    only needs the size guard per modified document.
    """
    size = document_size(document)
    if size > MAX_DOCUMENT_SIZE:
        raise DocumentTooLargeError(size, MAX_DOCUMENT_SIZE)


def validate_update_values(values: Any) -> None:
    """Validate the values carried by an update operator payload."""
    _validate_value(values)


def _validate_value(value: Any, *, top_level: bool = False) -> None:
    if value is None or isinstance(value, _SCALAR_TYPES):
        return
    if isinstance(value, Mapping):
        for key, nested in value.items():
            if not isinstance(key, str):
                raise InvalidDocumentError(
                    f"document keys must be strings, got {type(key).__name__}"
                )
            if key.startswith("$"):
                raise InvalidDocumentError(
                    f"document keys may not start with '$': {key!r}"
                )
            if "." in key:
                raise InvalidDocumentError(
                    f"document keys may not contain '.': {key!r}"
                )
            _validate_value(nested)
        return
    if isinstance(value, (list, tuple)):
        for item in value:
            _validate_value(item)
        return
    raise InvalidDocumentError(
        f"unsupported value type {type(value).__name__}: {value!r}"
    )


def document_size(document: Mapping[str, Any]) -> int:
    """Return the approximate serialized size of *document*, in bytes.

    The estimate follows the BSON layout: 4-byte document length + 1-byte
    terminator, and per element 1 type byte + key bytes + NUL + value bytes.
    """
    return _mapping_size(document)


def _mapping_size(mapping: Mapping[str, Any]) -> int:
    size = 5  # int32 length prefix + trailing NUL
    for key, value in mapping.items():
        size += 2 + len(str(key).encode("utf-8"))  # type byte + key + NUL
        size += _value_size(value)
    return size


def _value_size(value: Any) -> int:
    if value is None:
        return 0
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return 8
    if isinstance(value, float):
        return 8
    if isinstance(value, str):
        return 5 + len(value.encode("utf-8"))
    if isinstance(value, bytes):
        return 5 + len(value)
    if isinstance(value, ObjectId):
        return 12
    if isinstance(value, (_dt.datetime, _dt.date)):
        return 8
    if isinstance(value, Mapping):
        return _mapping_size(value)
    if isinstance(value, (list, tuple)):
        # Arrays are encoded as documents keyed by the stringified index.
        size = 5
        for index, item in enumerate(value):
            size += 2 + len(str(index)) + _value_size(item)
        return size
    raise InvalidDocumentError(
        f"cannot compute size of unsupported type {type(value).__name__}"
    )


def deep_copy_document(document: Any) -> Any:
    """Deep-copy a document without copying immutable scalars.

    Collections hand out copies of stored documents so callers cannot mutate
    the store through returned references, mirroring driver behaviour.
    """
    if isinstance(document, Mapping):
        return {key: deep_copy_document(value) for key, value in document.items()}
    if isinstance(document, (list, tuple)):
        return [deep_copy_document(item) for item in document]
    return document


# --------------------------------------------------------------------------
# Wire serialization.
#
# The sharding layer serializes documents whenever they cross the simulated
# network boundary between a shard and the query router.  JSON with a small
# extended-type envelope plays the role of the BSON wire format.
# --------------------------------------------------------------------------

_TYPE_KEY = "$__type"


def _encode_value(value: Any) -> Any:
    if isinstance(value, ObjectId):
        return {_TYPE_KEY: "oid", "v": str(value)}
    if isinstance(value, _dt.datetime):
        return {_TYPE_KEY: "datetime", "v": value.isoformat()}
    if isinstance(value, _dt.date):
        return {_TYPE_KEY: "date", "v": value.isoformat()}
    if isinstance(value, bytes):
        return {_TYPE_KEY: "bytes", "v": value.hex()}
    if isinstance(value, Mapping):
        return {key: _encode_value(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_encode_value(item) for item in value]
    return value


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict):
        type_tag = value.get(_TYPE_KEY)
        if type_tag == "oid":
            return ObjectId(value["v"])
        if type_tag == "datetime":
            return _dt.datetime.fromisoformat(value["v"])
        if type_tag == "date":
            return _dt.date.fromisoformat(value["v"])
        if type_tag == "bytes":
            return bytes.fromhex(value["v"])
        return {key: _decode_value(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_decode_value(item) for item in value]
    return value


def encode_document(document: Mapping[str, Any]) -> bytes:
    """Serialize *document* to the simulated wire format."""
    return json.dumps(_encode_value(document), separators=(",", ":")).encode("utf-8")


def decode_document(payload: bytes) -> dict[str, Any]:
    """Deserialize a document previously produced by :func:`encode_document`."""
    return _decode_value(json.loads(payload.decode("utf-8")))


def encode_batch(documents: Iterable[Mapping[str, Any]]) -> bytes:
    """Serialize a batch of documents for a single simulated network message."""
    return json.dumps(
        [_encode_value(doc) for doc in documents], separators=(",", ":")
    ).encode("utf-8")


def decode_batch(payload: bytes) -> list[dict[str, Any]]:
    """Deserialize a batch previously produced by :func:`encode_batch`."""
    return [_decode_value(doc) for doc in json.loads(payload.decode("utf-8"))]
