"""Crash recovery: rebuild a client from its data directory.

The data directory of one node holds at most one *generation* of durable
state once the engine is healthy::

    <data_dir>/
        snapshot-00000003.snap   # point-in-time image (atomic rename)
        wal-00000003.log         # records appended since that snapshot

A checkpoint writes ``snapshot-<g+1>`` (atomically), starts ``wal-<g+1>``,
and only then deletes generation ``g`` — so a crash at *any* step leaves a
directory from which this module restores exactly the acknowledged state:

* leftover ``*.tmp`` files (crash mid-snapshot-write or mid-rename) are
  swept and ignored;
* the highest-generation complete snapshot wins; WAL segments of *older*
  generations describe writes the snapshot already contains and are
  discarded, never replayed;
* the surviving WAL segments are replayed in generation order, and a torn
  or corrupt tail — the signature of a crash mid-append — is truncated so
  the log is clean for new appends;
* replay is *physical redo* (full documents by ``_id``), which makes it
  idempotent: a record whose effect is already present (possible when a
  crash raced a checkpoint) re-applies harmlessly.

Index definitions travel inside the snapshot manifest and as WAL DDL
records; data indexes are rebuilt with one sort each through the bulk-load
machinery rather than replayed insert-by-insert.
"""

from __future__ import annotations

import pathlib
import re
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping

from .bson import decode_document
from .errors import DuplicateKeyError, IndexNotFoundError, RecoveryError
from .snapshot import load_snapshot, read_manifest
from .wal import (
    REAL_FS,
    TAIL_CLEAN,
    FileSystem,
    read_log,
    truncate_log,
)

if TYPE_CHECKING:  # pragma: no cover
    from .client import DocumentStoreClient

__all__ = ["RecoveryReport", "recover", "snapshot_path", "wal_path", "apply_record"]

_SNAPSHOT_RE = re.compile(r"^snapshot-(\d{8})\.snap$")
_WAL_RE = re.compile(r"^wal-(\d{8})\.log$")


def snapshot_path(data_dir: pathlib.Path, generation: int) -> pathlib.Path:
    """The snapshot file for *generation*."""
    return data_dir / f"snapshot-{generation:08d}.snap"


def wal_path(data_dir: pathlib.Path, generation: int) -> pathlib.Path:
    """The WAL segment for *generation*."""
    return data_dir / f"wal-{generation:08d}.log"


@dataclass
class RecoveryReport:
    """What recovery found and did — the observable cost of a restart."""

    data_dir: str
    generation: int = 0
    snapshot_loaded: str | None = None
    snapshot_documents: int = 0
    wal_segments_replayed: int = 0
    records_replayed: int = 0
    documents_replayed: int = 0
    tail_state: str = TAIL_CLEAN
    torn_bytes_truncated: int = 0
    stale_files_removed: int = 0
    replay_seconds: float = 0.0
    operations: dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        """The report as a plain dictionary (``serverStatus`` surface)."""
        return {
            "data_dir": self.data_dir,
            "generation": self.generation,
            "snapshot_loaded": self.snapshot_loaded,
            "snapshot_documents": self.snapshot_documents,
            "wal_segments_replayed": self.wal_segments_replayed,
            "records_replayed": self.records_replayed,
            "documents_replayed": self.documents_replayed,
            "tail_state": self.tail_state,
            "torn_bytes_truncated": self.torn_bytes_truncated,
            "stale_files_removed": self.stale_files_removed,
            "replay_seconds": self.replay_seconds,
            "operations": dict(self.operations),
        }


def _scan(data_dir: pathlib.Path) -> tuple[dict[int, pathlib.Path], dict[int, pathlib.Path], list[pathlib.Path]]:
    snapshots: dict[int, pathlib.Path] = {}
    wals: dict[int, pathlib.Path] = {}
    temps: list[pathlib.Path] = []
    for entry in data_dir.iterdir():
        if not entry.is_file():
            continue
        if entry.name.endswith(".tmp"):
            temps.append(entry)
            continue
        match = _SNAPSHOT_RE.match(entry.name)
        if match:
            snapshots[int(match.group(1))] = entry
            continue
        match = _WAL_RE.match(entry.name)
        if match:
            wals[int(match.group(1))] = entry
    return snapshots, wals, temps


def apply_record(client: "DocumentStoreClient", record: dict[str, Any]) -> int:
    """Redo one WAL record against *client*; returns documents touched.

    Every branch is idempotent: replaying a record whose effect is already
    present (a checkpoint raced the original write) leaves the store in the
    same state instead of erroring or double-applying.
    """
    op = record.get("op")
    database_name = record.get("db")
    collection_name = record.get("coll")
    if op == "drop_database":
        client.drop_database(str(database_name))
        return 0
    if database_name is None or collection_name is None:
        raise RecoveryError(f"WAL record missing namespace: {sorted(record)!r}")
    database = client.get_database(str(database_name))
    if op == "drop_collection":
        database.drop_collection(str(collection_name))
        return 0
    collection = database[str(collection_name)]
    if op == "insert":
        documents = record.get("docs") or []
        try:
            collection.insert_many(documents)
        except DuplicateKeyError:
            # The snapshot already held part of this batch (checkpoint race):
            # insert only the missing documents.
            for document in documents:
                if collection.find_one({"_id": document["_id"]}, {"_id": 1}) is None:
                    collection.insert_one(document)
        return len(documents)
    if op == "apply":
        documents = record.get("docs") or []
        for document in documents:
            result = collection.replace_one({"_id": document["_id"]}, document)
            if result.matched_count == 0:
                collection.insert_one(document)
        return len(documents)
    if op == "delete":
        ids = record.get("ids") or []
        if ids:
            collection.delete_many({"_id": {"$in": list(ids)}})
        return len(ids)
    if op == "create_index":
        spec = record.get("spec")
        if isinstance(spec, Mapping):
            # Structured spec (current WAL format): round-trips btree and
            # vector indexes alike through IndexSpec.from_key_specification.
            collection.create_index(spec)
        else:
            # Legacy record written before structured index specs existed.
            collection.create_index(
                [tuple(pair) for pair in record.get("keys") or []],
                unique=bool(record.get("unique")),
                name=str(record.get("name") or ""),
            )
        return 0
    if op == "drop_index":
        try:
            collection.drop_index(str(record.get("name")))
        except IndexNotFoundError:
            pass
        return 0
    raise RecoveryError(f"unknown WAL record op {op!r}")


def recover(
    client: "DocumentStoreClient",
    data_dir: str | pathlib.Path,
    *,
    fs: FileSystem = REAL_FS,
) -> RecoveryReport:
    """Restore *client* from *data_dir* and return a :class:`RecoveryReport`.

    After this returns, ``wal_path(data_dir, report.generation)`` is clean
    (torn tail truncated) and ready for appends, and every stale file from a
    crashed checkpoint has been removed.

    Raises :class:`RecoveryError` if the newest snapshot is corrupt — that
    cannot result from a crash (snapshots appear atomically), only from bit
    rot or operator error, and silently dropping the dataset would be worse.
    """
    directory = pathlib.Path(data_dir)
    directory.mkdir(parents=True, exist_ok=True)
    report = RecoveryReport(data_dir=str(directory))
    started = time.perf_counter()

    snapshots, wals, temps = _scan(directory)
    for leftover in temps:
        fs.remove(leftover)
        report.stale_files_removed += 1

    base_generation = 0
    if snapshots:
        base_generation = max(snapshots)
        snapshot_file = snapshots[base_generation]
        try:
            read_manifest(snapshot_file)
        except Exception as exc:
            raise RecoveryError(
                f"newest snapshot {snapshot_file} is corrupt: {exc}"
            ) from exc
        manifest = load_snapshot(client, snapshot_file)
        report.snapshot_loaded = str(snapshot_file)
        report.snapshot_documents = sum(
            int(info.get("count") or 0)
            for collections in manifest["databases"].values()
            for info in collections.values()
        )

    # WAL segments older than the snapshot describe state the snapshot
    # already contains; they survive only when a crash interrupted the
    # checkpoint's cleanup step.  Discard, never replay.
    for generation in sorted(wals):
        if generation < base_generation:
            fs.remove(wals[generation])
            report.stale_files_removed += 1
    for generation in sorted(snapshots):
        if generation < base_generation:
            fs.remove(snapshots[generation])
            report.stale_files_removed += 1

    live_generations = sorted(g for g in wals if g >= base_generation)
    report.generation = max([base_generation, *live_generations])
    for generation in live_generations:
        segment = wals[generation]
        payloads, clean_length, tail_state = read_log(segment)
        for payload in payloads:
            record = decode_document(payload)
            report.documents_replayed += apply_record(client, record)
            report.records_replayed += 1
            report.operations[record.get("op", "?")] = (
                report.operations.get(record.get("op", "?"), 0) + 1
            )
        if tail_state != TAIL_CLEAN:
            report.tail_state = tail_state
            report.torn_bytes_truncated += truncate_log(segment, clean_length, fs=fs)
            if generation != live_generations[-1]:
                # A torn *non-final* segment means everything after it
                # post-dates the tear; stop rather than replay across a gap.
                break
        report.wal_segments_replayed += 1

    report.replay_seconds = time.perf_counter() - started
    return report
