"""Snapshots: point-in-time images of a whole client, written atomically.

A snapshot is one file of extended-JSON lines::

    {"type":"manifest","format":1,"generation":G,"databases":{...}}
    {"type":"collection","db":"d","coll":"c","count":N}
    <N raw document lines>
    ... more collection sections ...
    {"type":"end","documents":TOTAL}

Parsing is *count-driven*: a collection header announces exactly how many
document lines follow, so document content can never be confused with
framing.  The trailing ``end`` line is the completeness proof — a snapshot
without it is rejected as corrupt.

Snapshots are crash-safe by construction: the writer streams to
``<name>.tmp``, fsyncs the file, atomically renames it over the target, and
fsyncs the directory.  A crash at any point leaves either the previous
snapshot or the new one — never a partial file at the target path.  The same
:func:`atomic_writer` helper backs ``dump_collection``/``dump_database``.

Restores ride the PR 4 bulk-load machinery: documents are inserted inside a
``bulk_load()`` block with every secondary index registered as deferred, so
the entire restore costs one insert pass plus one sort per index.
"""

from __future__ import annotations

import pathlib
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, BinaryIO, Iterator

from .bson import decode_document, encode_document
from .errors import SnapshotCorruptError
from .wal import REAL_FS, FileSystem

if TYPE_CHECKING:  # pragma: no cover
    from .client import DocumentStoreClient

__all__ = [
    "SNAPSHOT_FORMAT",
    "atomic_writer",
    "write_snapshot",
    "load_snapshot",
    "read_manifest",
]

#: Version tag written into every snapshot manifest.
SNAPSHOT_FORMAT = 1

#: Batch size used when feeding restored documents to ``insert_many``.
RESTORE_BATCH_SIZE = 2000


class _AtomicFile:
    """Write facade routing bytes through the injectable filesystem."""

    __slots__ = ("_fs", "_handle")

    def __init__(self, fs: FileSystem, handle: BinaryIO) -> None:
        self._fs = fs
        self._handle = handle

    def write(self, data: bytes) -> None:
        self._fs.write(self._handle, data)


@contextmanager
def atomic_writer(
    path: str | pathlib.Path, *, fs: FileSystem = REAL_FS
) -> Iterator[_AtomicFile]:
    """Write a file crash-safely: temp file → fsync → atomic rename.

    The target path never holds a partial file: a crash before the rename
    leaves (at most) a ``*.tmp`` leftover, which readers ignore and the
    engine sweeps on recovery.
    """
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    temp = target.with_name(target.name + ".tmp")
    handle = fs.open_write(temp)
    try:
        yield _AtomicFile(fs, handle)
    except BaseException:
        try:
            fs.close(handle)
        finally:
            fs.remove(temp)
        raise
    fs.fsync(handle)
    fs.close(handle)
    fs.replace(temp, target)
    fs.fsync_dir(target.parent)


def _collection_manifest(collection: Any) -> dict[str, Any]:
    # Structured specs (type/dims/metric/...) so vector indexes round-trip;
    # load_snapshot also accepts the legacy {"keys", "unique"} entries that
    # older snapshots recorded.
    indexes = {
        spec["name"]: spec
        for spec in collection.list_indexes()
        if spec["name"] != "_id_"
    }
    return {"count": len(collection), "indexes": indexes}


def write_snapshot(
    client: "DocumentStoreClient",
    path: str | pathlib.Path,
    *,
    generation: int = 0,
    fs: FileSystem = REAL_FS,
) -> dict[str, Any]:
    """Write a point-in-time snapshot of every database of *client*.

    Returns the manifest that was written.  The caller is responsible for
    quiescing writers (the storage engine snapshots under its commit lock).
    """
    databases: dict[str, dict[str, Any]] = {}
    sections: list[tuple[str, str, list[bytes]]] = []
    total = 0
    for database_name in client.list_database_names():
        database = client.get_database(database_name)
        databases[database_name] = {}
        for collection_name in database.list_collection_names():
            collection = database[collection_name]
            databases[database_name][collection_name] = _collection_manifest(collection)
            # Materialize the encoded documents before any byte is written:
            # the snapshot must be one consistent image even if an encoding
            # error aborts it halfway through a collection.
            encoded = [
                encode_document(document) for document in list(collection.raw_documents())
            ]
            databases[database_name][collection_name]["count"] = len(encoded)
            sections.append((database_name, collection_name, encoded))
            total += len(encoded)
    manifest = {
        "type": "manifest",
        "format": SNAPSHOT_FORMAT,
        "generation": generation,
        "databases": databases,
    }
    with atomic_writer(path, fs=fs) as handle:
        handle.write(encode_document(manifest))
        handle.write(b"\n")
        for database_name, collection_name, encoded in sections:
            header = {
                "type": "collection",
                "db": database_name,
                "coll": collection_name,
                "count": len(encoded),
            }
            handle.write(encode_document(header))
            handle.write(b"\n")
            for line in encoded:
                handle.write(line)
                handle.write(b"\n")
        handle.write(encode_document({"type": "end", "documents": total}))
        handle.write(b"\n")
    return manifest


def _parse_lines(path: pathlib.Path) -> Iterator[bytes]:
    with path.open("rb") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield line


def read_manifest(path: str | pathlib.Path) -> dict[str, Any]:
    """Read and validate a snapshot's manifest *and* completeness footer.

    Raises :class:`SnapshotCorruptError` when the file is not a snapshot,
    uses an unknown format, or is missing its ``end`` footer (which cannot
    happen through the atomic writer, but can through bit rot or a copy of a
    ``*.tmp`` leftover).
    """
    source = pathlib.Path(path)
    lines = _parse_lines(source)
    try:
        manifest = decode_document(next(lines))
    except StopIteration:
        raise SnapshotCorruptError(f"snapshot {source} is empty") from None
    except Exception as exc:
        raise SnapshotCorruptError(f"snapshot {source} has an unreadable manifest: {exc}") from exc
    if not isinstance(manifest, dict) or manifest.get("type") != "manifest":
        raise SnapshotCorruptError(f"snapshot {source} does not start with a manifest")
    if manifest.get("format") != SNAPSHOT_FORMAT:
        raise SnapshotCorruptError(
            f"snapshot {source} has unsupported format {manifest.get('format')!r}"
        )
    # Count-driven walk to the footer; any shortfall means corruption.
    expected_documents = 0
    seen_documents = 0
    footer: dict[str, Any] | None = None
    for raw in lines:
        try:
            record = decode_document(raw)
        except Exception as exc:
            raise SnapshotCorruptError(f"snapshot {source} has an unreadable line: {exc}") from exc
        if not isinstance(record, dict):
            raise SnapshotCorruptError(f"snapshot {source} has a non-document line")
        if record.get("type") == "collection":
            count = int(record.get("count") or 0)
            expected_documents += count
            for _ in range(count):
                try:
                    next(lines)
                    seen_documents += 1
                except StopIteration:
                    raise SnapshotCorruptError(
                        f"snapshot {source} ends inside collection "
                        f"{record.get('db')}.{record.get('coll')}"
                    ) from None
        elif record.get("type") == "end":
            footer = record
            break
        else:
            raise SnapshotCorruptError(
                f"snapshot {source} has an unexpected section {record.get('type')!r}"
            )
    if footer is None:
        raise SnapshotCorruptError(f"snapshot {source} is missing its end footer")
    if int(footer.get("documents") or 0) != seen_documents or expected_documents != seen_documents:
        raise SnapshotCorruptError(
            f"snapshot {source} footer documents={footer.get('documents')} "
            f"but {seen_documents} were present"
        )
    return manifest


def load_snapshot(
    client: "DocumentStoreClient", path: str | pathlib.Path
) -> dict[str, Any]:
    """Restore a snapshot into *client* (which should be empty).

    Every collection is rebuilt through ``bulk_load()`` with its secondary
    indexes deferred, so the restore pays one insert pass plus a single sort
    per index — the fast shape measured by the PR 4 load benchmarks.
    Returns the snapshot manifest.
    """
    manifest = read_manifest(path)
    source = pathlib.Path(path)
    lines = _parse_lines(source)
    next(lines)  # manifest, already validated
    for raw in lines:
        record = decode_document(raw)
        if record.get("type") == "end":
            break
        database_name = record["db"]
        collection_name = record["coll"]
        count = int(record.get("count") or 0)
        collection = client.get_database(database_name)[collection_name]
        index_specs = (
            manifest["databases"].get(database_name, {}).get(collection_name, {}).get("indexes", {})
        )
        with collection.bulk_load():
            for name, info in index_specs.items():
                if "type" in info:
                    # Structured spec (current manifests) — pass it through
                    # unchanged so vector indexes rebuild with dims/metric.
                    collection.create_index(info, defer=True)
                else:
                    # Legacy manifest entry: bare keys + unique flag.
                    collection.create_index(
                        [tuple(pair) for pair in info["keys"]],
                        unique=bool(info.get("unique")),
                        name=str(name),
                        defer=True,
                    )
            batch: list[dict[str, Any]] = []
            for _ in range(count):
                batch.append(decode_document(next(lines)))
                if len(batch) >= RESTORE_BATCH_SIZE:
                    collection.insert_many(batch)
                    batch = []
            if batch:
                collection.insert_many(batch)
    return manifest
