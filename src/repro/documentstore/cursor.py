"""Cursors and operation results.

``find()`` returns a :class:`Cursor` (Section 4.1.3.1 of the thesis iterates
such cursors in the EmbedDocuments algorithm).  A cursor is *lazy*: chained
``sort``/``skip``/``limit``/``batch_size``/``hint`` calls only refine the
cursor's :class:`~repro.documentstore.findspec.FindSpec`; nothing executes
until the first document is requested, at which point the complete spec is
handed to the executor in one piece.  The same cursor type fronts both the
stand-alone collection engine and the sharded query router.

Write operations return small result objects mirroring the driver API the
thesis code was written against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from .errors import OperationFailure
from .findspec import FindSpec
from .matching import resolve_path_single

__all__ = [
    "Cursor",
    "InsertOneResult",
    "InsertManyResult",
    "UpdateResult",
    "DeleteResult",
    "project_document",
]


#: Sentinel distinguishing a legitimately-``None`` value from a missing path
#: during projection (a dotted inclusion path must not materialize ``None``
#: for fields the document never had).
_MISSING = object()


def project_document(
    document: Mapping[str, Any],
    projection: Mapping[str, Any] | None,
) -> dict[str, Any]:
    """Apply a find()-style inclusion/exclusion projection."""
    if not projection:
        return dict(document)
    inclusions = {k: v for k, v in projection.items() if k != "_id" and v}
    exclusions = {k: v for k, v in projection.items() if k != "_id" and not v}
    if inclusions and exclusions:
        raise OperationFailure("cannot mix inclusion and exclusion in a projection")
    include_id = bool(projection.get("_id", True))

    if inclusions:
        projected: dict[str, Any] = {}
        for path in inclusions:
            value = resolve_path_single(document, path, default=_MISSING)
            if value is _MISSING:
                continue
            _set_nested(projected, path, value)
        if include_id and "_id" in document:
            projected["_id"] = document["_id"]
        return projected

    projected = {k: v for k, v in document.items()}
    for path in exclusions:
        _remove_nested(projected, path)
    if not include_id:
        projected.pop("_id", None)
    return projected


def _set_nested(target: dict[str, Any], path: str, value: Any) -> None:
    parts = path.split(".")
    node = target
    for part in parts[:-1]:
        node = node.setdefault(part, {})
    node[parts[-1]] = value


def _remove_nested(target: dict[str, Any], path: str) -> None:
    parts = path.split(".")
    node: Any = target
    for part in parts[:-1]:
        if not isinstance(node, dict) or part not in node:
            return
        node = node[part]
    if isinstance(node, dict):
        node.pop(parts[-1], None)


class Cursor:
    """Lazy, chainable result iterator for ``find()``.

    The cursor owns a :class:`FindSpec` and two executor callables.
    ``execute(spec)`` must return an iterable of final result documents
    (already filtered, sorted, sliced, and projected); ``explain(spec)``
    must return the executor's plan for the spec.  Execution is deferred
    until the first document is requested; consumed documents are cached so
    a cursor can be iterated more than once without re-executing.
    """

    def __init__(
        self,
        execute: Callable[[FindSpec], Iterable[dict[str, Any]]],
        spec: FindSpec | None = None,
        explain: Callable[[FindSpec], dict[str, Any]] | None = None,
    ) -> None:
        self._execute = execute
        self._explain = explain
        self._spec = spec or FindSpec()
        self._source: Iterator[dict[str, Any]] | None = None
        self._consumed: list[dict[str, Any]] = []
        self._exhausted = False
        self._position = 0

    # -- the spec ----------------------------------------------------------

    @property
    def spec(self) -> FindSpec:
        """The (immutable) find specification this cursor will execute."""
        return self._spec

    # -- chaining ----------------------------------------------------------

    def sort(self, key_or_list: str | Sequence[tuple[str, int]], direction: int = 1) -> "Cursor":
        """Sort the results; accepts a field name or a list of pairs."""
        self._chain(self._spec.with_sort(key_or_list, direction))
        return self

    def skip(self, count: int) -> "Cursor":
        """Skip the first *count* results."""
        self._chain(self._spec.with_skip(count))
        return self

    def limit(self, count: int) -> "Cursor":
        """Limit the number of returned results."""
        self._chain(self._spec.with_limit(count))
        return self

    def batch_size(self, count: int) -> "Cursor":
        """Set the response batch size (per network message on a cluster)."""
        self._chain(self._spec.with_batch_size(count))
        return self

    def hint(self, index_name: str) -> "Cursor":
        """Force the planner to use the index called *index_name*."""
        self._chain(self._spec.with_hint(index_name))
        return self

    def _chain(self, spec: FindSpec) -> None:
        if self._source is not None:
            raise OperationFailure("cannot modify a cursor after iteration started")
        self._spec = spec

    # -- execution ----------------------------------------------------------

    def _ensure_started(self) -> None:
        if self._source is None:
            self._source = iter(self._execute(self._spec))

    def _pull(self) -> dict[str, Any] | None:
        """Fetch one more document from the executor into the cache."""
        self._ensure_started()
        if self._exhausted:
            return None
        assert self._source is not None
        try:
            document = next(self._source)
        except StopIteration:
            self._exhausted = True
            return None
        self._consumed.append(document)
        return document

    def _materialize(self) -> list[dict[str, Any]]:
        while self._pull() is not None:
            pass
        return self._consumed

    def __iter__(self) -> Iterator[dict[str, Any]]:
        index = 0
        while True:
            if index < len(self._consumed):
                yield self._consumed[index]
                index += 1
                continue
            if self._pull() is None:
                return

    def __len__(self) -> int:
        return len(self._materialize())

    def __getitem__(self, index: int) -> dict[str, Any]:
        return self._materialize()[index]

    @property
    def alive(self) -> bool:
        """True while there are unread results (``cursor.hasNext()``)."""
        if self._position < len(self._consumed):
            return True
        return self._pull() is not None

    def next(self) -> dict[str, Any]:
        """Return the next unread document (``cursor.next()``)."""
        if self._position >= len(self._consumed) and self._pull() is None:
            raise StopIteration("cursor exhausted")
        document = self._consumed[self._position]
        self._position += 1
        return document

    def to_list(self) -> list[dict[str, Any]]:
        """Materialize and return every result as a list."""
        return list(self._materialize())

    def count(self) -> int:
        """Return the number of results."""
        return len(self._materialize())

    def explain(self) -> dict[str, Any]:
        """Return the executor's plan for this cursor's spec."""
        if self._explain is None:
            raise OperationFailure("this cursor's executor does not support explain")
        return self._explain(self._spec)


@dataclass(frozen=True)
class InsertOneResult:
    """Result of ``insert_one``."""

    inserted_id: Any
    acknowledged: bool = True


@dataclass(frozen=True)
class InsertManyResult:
    """Result of ``insert_many``."""

    inserted_ids: list[Any] = field(default_factory=list)
    acknowledged: bool = True


@dataclass(frozen=True)
class UpdateResult:
    """Result of ``update_one`` / ``update_many``."""

    matched_count: int
    modified_count: int
    upserted_id: Any | None = None
    acknowledged: bool = True


@dataclass(frozen=True)
class DeleteResult:
    """Result of ``delete_one`` / ``delete_many``."""

    deleted_count: int
    acknowledged: bool = True
