"""Cursors and operation results.

``find()`` returns a :class:`Cursor` (Section 4.1.3.1 of the thesis iterates
such cursors in the EmbedDocuments algorithm).  Write operations return small
result objects mirroring the driver API the thesis code was written against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from .errors import OperationFailure
from .matching import resolve_path_single
from .ordering import document_sort_key

__all__ = [
    "Cursor",
    "InsertOneResult",
    "InsertManyResult",
    "UpdateResult",
    "DeleteResult",
    "sort_documents",
    "project_document",
]


def sort_documents(
    documents: list[dict[str, Any]],
    sort_specification: Sequence[tuple[str, int]] | Mapping[str, int],
) -> list[dict[str, Any]]:
    """Return *documents* sorted by the given ``(field, direction)`` pairs.

    One stable pass over a composite key (shared with ``$sort`` and the
    top-k fast path via :mod:`repro.documentstore.ordering`) replaces the
    previous one-``cmp_to_key``-pass-per-field implementation.
    """
    return sorted(documents, key=document_sort_key(sort_specification))


def project_document(
    document: Mapping[str, Any],
    projection: Mapping[str, Any] | None,
) -> dict[str, Any]:
    """Apply a find()-style inclusion/exclusion projection."""
    if not projection:
        return dict(document)
    inclusions = {k: v for k, v in projection.items() if k != "_id" and v}
    exclusions = {k: v for k, v in projection.items() if k != "_id" and not v}
    if inclusions and exclusions:
        raise OperationFailure("cannot mix inclusion and exclusion in a projection")
    include_id = bool(projection.get("_id", True))

    if inclusions:
        projected: dict[str, Any] = {}
        for path in inclusions:
            value = resolve_path_single(document, path, default=None)
            if value is None and "." not in path and path not in document:
                continue
            _set_nested(projected, path, value)
        if include_id and "_id" in document:
            projected["_id"] = document["_id"]
        return projected

    projected = {k: v for k, v in document.items()}
    for path in exclusions:
        _remove_nested(projected, path)
    if not include_id:
        projected.pop("_id", None)
    return projected


def _set_nested(target: dict[str, Any], path: str, value: Any) -> None:
    parts = path.split(".")
    node = target
    for part in parts[:-1]:
        node = node.setdefault(part, {})
    node[parts[-1]] = value


def _remove_nested(target: dict[str, Any], path: str) -> None:
    parts = path.split(".")
    node: Any = target
    for part in parts[:-1]:
        if not isinstance(node, dict) or part not in node:
            return
        node = node[part]
    if isinstance(node, dict):
        node.pop(parts[-1], None)


class Cursor:
    """Lazy, chainable result iterator for ``find()``.

    ``sort``, ``skip``, and ``limit`` may be chained before iteration starts;
    iteration materializes the results once and then behaves like a plain
    iterator (``hasNext``/``next`` style access is available via ``alive`` and
    ``next``).
    """

    def __init__(
        self,
        fetch: Callable[[], Iterable[dict[str, Any]]],
        projection: Mapping[str, Any] | None = None,
    ) -> None:
        self._fetch = fetch
        self._projection = projection
        self._sort: list[tuple[str, int]] | None = None
        self._skip = 0
        self._limit: int | None = None
        self._materialized: list[dict[str, Any]] | None = None
        self._position = 0

    # -- chaining ----------------------------------------------------------

    def sort(self, key_or_list: str | Sequence[tuple[str, int]], direction: int = 1) -> "Cursor":
        """Sort the results; accepts a field name or a list of pairs."""
        self._assert_not_started()
        if isinstance(key_or_list, str):
            self._sort = [(key_or_list, direction)]
        else:
            self._sort = [(field_path, dir_) for field_path, dir_ in key_or_list]
        return self

    def skip(self, count: int) -> "Cursor":
        """Skip the first *count* results."""
        self._assert_not_started()
        if count < 0:
            raise OperationFailure("skip must be non-negative")
        self._skip = count
        return self

    def limit(self, count: int) -> "Cursor":
        """Limit the number of returned results."""
        self._assert_not_started()
        if count < 0:
            raise OperationFailure("limit must be non-negative")
        self._limit = count or None
        return self

    def _assert_not_started(self) -> None:
        if self._materialized is not None:
            raise OperationFailure("cannot modify a cursor after iteration started")

    # -- iteration ----------------------------------------------------------

    def _materialize(self) -> list[dict[str, Any]]:
        if self._materialized is None:
            documents = list(self._fetch())
            if self._sort:
                documents = sort_documents(documents, self._sort)
            if self._skip:
                documents = documents[self._skip:]
            if self._limit is not None:
                documents = documents[: self._limit]
            if self._projection:
                documents = [project_document(doc, self._projection) for doc in documents]
            self._materialized = documents
        return self._materialized

    def __iter__(self) -> Iterator[dict[str, Any]]:
        for document in self._materialize():
            yield document

    def __len__(self) -> int:
        return len(self._materialize())

    def __getitem__(self, index: int) -> dict[str, Any]:
        return self._materialize()[index]

    @property
    def alive(self) -> bool:
        """True while there are unread results (``cursor.hasNext()``)."""
        return self._position < len(self._materialize())

    def next(self) -> dict[str, Any]:
        """Return the next unread document (``cursor.next()``)."""
        documents = self._materialize()
        if self._position >= len(documents):
            raise StopIteration("cursor exhausted")
        document = documents[self._position]
        self._position += 1
        return document

    def to_list(self) -> list[dict[str, Any]]:
        """Materialize and return every result as a list."""
        return list(self._materialize())

    def count(self) -> int:
        """Return the number of results."""
        return len(self._materialize())


@dataclass(frozen=True)
class InsertOneResult:
    """Result of ``insert_one``."""

    inserted_id: Any
    acknowledged: bool = True


@dataclass(frozen=True)
class InsertManyResult:
    """Result of ``insert_many``."""

    inserted_ids: list[Any] = field(default_factory=list)
    acknowledged: bool = True


@dataclass(frozen=True)
class UpdateResult:
    """Result of ``update_one`` / ``update_many``."""

    matched_count: int
    modified_count: int
    upserted_id: Any | None = None
    acknowledged: bool = True


@dataclass(frozen=True)
class DeleteResult:
    """Result of ``delete_one`` / ``delete_many``."""

    deleted_count: int
    acknowledged: bool = True
