"""On-disk persistence: dumps, and the durable storage engine facade.

Two persistence layers live here:

* **Dumps** — ``dump_collection``/``dump_database`` write JSON-lines images
  of collections for the benchmark harness and examples.  Dumps are written
  crash-safely (temp file → fsync → atomic rename), and loads tolerate a
  trailing torn/corrupt line the way WAL recovery tolerates a torn tail.

* **The engine** — :class:`StorageEngine` gives one
  :class:`~repro.documentstore.client.DocumentStoreClient` real durability:
  every acknowledged write batch appends one checksummed record to a
  write-ahead log (:mod:`repro.documentstore.wal`), periodic checkpoints
  write an atomic snapshot and truncate the log
  (:mod:`repro.documentstore.snapshot`), and construction over an existing
  data directory replays the store back to exactly the acknowledged state
  (:mod:`repro.documentstore.recovery`).

The engine logs *after* the in-memory apply and acknowledges only after the
record is as durable as its fsync policy promises — ``always`` makes every
acknowledged batch crash-proof, ``batch`` group-commits, ``off`` defers to
the page cache.  Records are physical redo (full documents by ``_id``), so
replay is deterministic and idempotent regardless of query-plan or
``$currentDate``-style nondeterminism in the original operation.
"""

from __future__ import annotations

import json
import pathlib
import threading
import warnings
from typing import Any, Iterable

from .bson import decode_document, encode_document
from .collection import Collection, bulk_load_or_noop
from .database import Database
from .errors import OperationFailure
from .recovery import RecoveryReport, recover, snapshot_path, wal_path
from .snapshot import atomic_writer, write_snapshot
from .wal import (
    DEFAULT_BATCH_FSYNC_EVERY,
    REAL_FS,
    FileSystem,
    WalCounters,
    WriteAheadLog,
    wal_status,
)

__all__ = [
    "StorageEngine",
    "dump_collection",
    "load_collection",
    "dump_database",
    "load_database",
]

#: Checkpoint (snapshot + WAL truncation) once the log grows past this size.
DEFAULT_AUTO_CHECKPOINT_BYTES = 64 * 1024 * 1024


def dump_collection(collection: Collection, path: str | pathlib.Path) -> int:
    """Write every document of *collection* to *path* as JSON lines.

    The dump is crash-safe: bytes stream to ``<path>.tmp``, are fsynced, and
    the temp file is atomically renamed over *path* — a crash mid-dump leaves
    the previous dump (or nothing), never a partial file at the target.
    Returns the number of documents written.
    """
    target = pathlib.Path(path)
    count = 0
    with atomic_writer(target) as handle:
        for document in collection.raw_documents():
            handle.write(encode_document(document))
            handle.write(b"\n")
            count += 1
    return count


def load_collection(
    collection: Collection,
    path: str | pathlib.Path,
    *,
    batch_size: int = 2000,
) -> int:
    """Load JSON-lines documents from *path* into *collection*.

    Batches ride the collection's bulk insert path, and secondary-index
    maintenance is deferred for the whole load (``bulk_load``) when the
    target supports it — routed collections simply take batched inserts.

    A *trailing* partial or corrupt line — the shape a crash mid-append
    leaves behind — is skipped with a warning, matching the WAL's torn-tail
    semantics.  A corrupt line *followed by valid data* is not a torn tail
    and raises, because silently dropping interior documents would corrupt
    the dataset.  Returns the number of documents inserted.
    """
    source = pathlib.Path(path)
    count = 0
    with bulk_load_or_noop(collection), source.open("rb") as handle:
        batch: list[dict[str, Any]] = []
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                document = decode_document(line)
            except Exception as exc:
                if any(rest.strip() for rest in handle):
                    raise OperationFailure(
                        f"{source}:{line_number}: corrupt document mid-file "
                        f"(not a torn tail): {exc}"
                    ) from exc
                warnings.warn(
                    f"{source}:{line_number}: skipped 1 trailing partial/corrupt "
                    f"line (torn tail): {exc}",
                    stacklevel=2,
                )
                break
            batch.append(document)
            count += 1
            if len(batch) >= batch_size:
                collection.insert_many(batch)
                batch = []
        if batch:
            collection.insert_many(batch)
    return count


def dump_database(database: Database, directory: str | pathlib.Path) -> dict[str, int]:
    """Dump every collection of *database* into *directory*.

    Also writes a small ``__manifest__.json`` describing the dump; every
    file (collections and manifest) is written with the atomic
    temp-fsync-rename pattern.  Returns a mapping of collection name to
    document count.
    """
    target = pathlib.Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    manifest: dict[str, Any] = {"database": database.name, "collections": {}}
    counts: dict[str, int] = {}
    for name in database.list_collection_names():
        collection = database[name]
        counts[name] = dump_collection(collection, target / f"{name}.jsonl")
        manifest["collections"][name] = {
            "count": counts[name],
            "indexes": {
                spec["name"]: spec
                for spec in collection.list_indexes()
                if spec["name"] != "_id_"
            },
        }
    with atomic_writer(target / "__manifest__.json") as handle:
        handle.write(json.dumps(manifest, indent=2).encode("utf-8"))
    return counts


def load_database(database: Database, directory: str | pathlib.Path) -> dict[str, int]:
    """Load a dump produced by :func:`dump_database` into *database*."""
    source = pathlib.Path(directory)
    manifest_path = source / "__manifest__.json"
    manifest = json.loads(manifest_path.read_text()) if manifest_path.exists() else None
    counts: dict[str, int] = {}
    for path in sorted(source.glob("*.jsonl")):
        name = path.stem
        collection = database[name]
        counts[name] = load_collection(collection, path)
        if manifest is not None:
            index_specs = manifest["collections"].get(name, {}).get("indexes", {})
            for entry in index_specs.values():
                if isinstance(entry, dict):
                    # Structured spec written by current dumps.
                    collection.create_index(entry)
                else:
                    # Legacy dump: bare key list, non-unique.
                    collection.create_index([(field, direction) for field, direction in entry])
    return counts


def iter_jsonl(path: str | pathlib.Path) -> Iterable[dict[str, Any]]:
    """Stream documents from a JSON-lines file without loading them all."""
    with pathlib.Path(path).open("rb") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield decode_document(line)


# ---------------------------------------------------------------------------
# The durable storage engine.
# ---------------------------------------------------------------------------


class StorageEngine:
    """WAL + snapshot + recovery for one client's data directory.

    Lifecycle::

        engine = StorageEngine(data_dir, fsync="always")
        engine.attach(client)   # recovers existing state, then starts logging

    ``attach`` is what ``DocumentStoreClient(data_dir=...)`` performs during
    construction.  After it returns, every write batch the client
    acknowledges has been appended to the active WAL segment;
    :meth:`checkpoint` compacts the log behind an atomic snapshot, and
    :meth:`flush` forces group-committed records to disk (the server calls
    it on graceful drain).

    The engine is thread-safe: appends serialize on the WAL's lock and
    checkpoints take the engine lock, so a snapshot is always consistent
    with a log position.  Replay being idempotent makes the
    mutate-then-log window harmless across a checkpoint.
    """

    def __init__(
        self,
        data_dir: str | pathlib.Path,
        *,
        fsync: str = "batch",
        batch_fsync_every: int = DEFAULT_BATCH_FSYNC_EVERY,
        auto_checkpoint_bytes: int | None = DEFAULT_AUTO_CHECKPOINT_BYTES,
        fs: FileSystem = REAL_FS,
    ) -> None:
        self.data_dir = pathlib.Path(data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self.fsync_policy = fsync
        self.batch_fsync_every = batch_fsync_every
        self.auto_checkpoint_bytes = auto_checkpoint_bytes
        self.counters = WalCounters()
        self.checkpoints = 0
        self.recovery_report: RecoveryReport | None = None
        self._fs = fs
        self._lock = threading.RLock()
        self._wal: WriteAheadLog | None = None
        self._client: Any = None
        self._generation = 0
        self._enabled = False

    # ------------------------------------------------------------- lifecycle

    def attach(self, client: Any) -> RecoveryReport:
        """Recover *client* from the data directory and start logging."""
        with self._lock:
            if self._client is not None:
                raise OperationFailure("storage engine is already attached")
            self._client = client
            # Replay must not re-log: logging stays disabled until the
            # store matches the acknowledged on-disk state.
            report = recover(client, self.data_dir, fs=self._fs)
            self.recovery_report = report
            self._generation = report.generation
            self._wal = self._open_wal(report.generation)
            self._enabled = True
            return report

    def _open_wal(self, generation: int) -> WriteAheadLog:
        return WriteAheadLog(
            wal_path(self.data_dir, generation),
            fsync=self.fsync_policy,
            batch_fsync_every=self.batch_fsync_every,
            fs=self._fs,
            counters=self.counters,
        )

    @property
    def enabled(self) -> bool:
        """True while the engine is attached and accepting records."""
        return self._enabled

    @property
    def generation(self) -> int:
        """The current snapshot/WAL generation."""
        return self._generation

    @property
    def wal(self) -> WriteAheadLog | None:
        """The active WAL segment (``None`` before attach / after close)."""
        return self._wal

    def flush(self) -> None:
        """Force every appended record to stable storage (any fsync policy)."""
        with self._lock:
            if self._wal is not None:
                self._wal.flush()

    def close(self) -> None:
        """Flush and stop logging; the data directory stays recoverable."""
        with self._lock:
            self._enabled = False
            if self._wal is not None:
                self._wal.close()
                self._wal = None

    # ---------------------------------------------------------------- logging

    def log(self, database_name: str, collection_name: str | None, record: dict[str, Any]) -> None:
        """Append one write record; returns once it meets the fsync policy."""
        if not self._enabled:
            return
        payload = encode_document(
            {"db": database_name, "coll": collection_name, **record}
        )
        with self._lock:
            wal = self._wal
            if not self._enabled or wal is None:
                return
            wal.append(payload)
            if (
                self.auto_checkpoint_bytes is not None
                and wal.size >= self.auto_checkpoint_bytes
            ):
                self._checkpoint_locked()

    # ------------------------------------------------------------- checkpoint

    def checkpoint(self) -> int:
        """Snapshot the store and truncate the WAL; returns the new generation.

        Crash-safe at every step (the fault-injection suite enumerates
        them): the snapshot appears atomically, a new WAL generation starts
        before the old one is deleted, and recovery resolves any
        intermediate state to exactly the acknowledged data.
        """
        with self._lock:
            if self._client is None or self._wal is None:
                raise OperationFailure("storage engine is not attached")
            return self._checkpoint_locked()

    def _checkpoint_locked(self) -> int:
        old_generation = self._generation
        new_generation = old_generation + 1
        write_snapshot(
            self._client,
            snapshot_path(self.data_dir, new_generation),
            generation=new_generation,
            fs=self._fs,
        )
        old_wal = self._wal
        self._wal = self._open_wal(new_generation)
        self._fs.fsync_dir(self.data_dir)
        self._generation = new_generation
        if old_wal is not None:
            old_wal.close()
            self._fs.remove(old_wal.path)
        self._fs.remove(snapshot_path(self.data_dir, old_generation))
        self.checkpoints += 1
        return new_generation

    # ------------------------------------------------------------------ stats

    def status(self) -> dict[str, Any]:
        """Durability counters and recovery cost (``serverStatus`` surface)."""
        with self._lock:
            status: dict[str, Any] = {
                "active": self._enabled,
                "data_dir": str(self.data_dir),
                "fsync_policy": self.fsync_policy,
                "generation": self._generation,
                "checkpoints": self.checkpoints,
                **self.counters.snapshot(),
                "wal": wal_status(self._wal),
            }
            if self.recovery_report is not None:
                status["recovery"] = self.recovery_report.as_dict()
            return status
