"""On-disk persistence for databases and collections.

The in-memory store can be dumped to and restored from a directory of
JSON-lines files (one file per collection).  The harness uses this to cache
generated datasets between benchmark runs, and the examples use it to show a
complete load / persist / reload cycle.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Iterable

from .bson import decode_document, encode_document
from .collection import Collection, bulk_load_or_noop
from .database import Database

__all__ = [
    "dump_collection",
    "load_collection",
    "dump_database",
    "load_database",
]


def dump_collection(collection: Collection, path: str | pathlib.Path) -> int:
    """Write every document of *collection* to *path* as JSON lines.

    Returns the number of documents written.
    """
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with target.open("wb") as handle:
        for document in collection.raw_documents():
            handle.write(encode_document(document))
            handle.write(b"\n")
            count += 1
    return count


def load_collection(
    collection: Collection,
    path: str | pathlib.Path,
    *,
    batch_size: int = 2000,
) -> int:
    """Load JSON-lines documents from *path* into *collection*.

    Batches ride the collection's bulk insert path, and secondary-index
    maintenance is deferred for the whole load (``bulk_load``) when the
    target supports it — routed collections simply take batched inserts.
    Returns the number of documents inserted.
    """
    source = pathlib.Path(path)
    count = 0
    with bulk_load_or_noop(collection), source.open("rb") as handle:
        batch: list[dict[str, Any]] = []
        for line in handle:
            line = line.strip()
            if not line:
                continue
            batch.append(decode_document(line))
            count += 1
            if len(batch) >= batch_size:
                collection.insert_many(batch)
                batch = []
        if batch:
            collection.insert_many(batch)
    return count


def dump_database(database: Database, directory: str | pathlib.Path) -> dict[str, int]:
    """Dump every collection of *database* into *directory*.

    Also writes a small ``__manifest__.json`` describing the dump.  Returns a
    mapping of collection name to document count.
    """
    target = pathlib.Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    manifest: dict[str, Any] = {"database": database.name, "collections": {}}
    counts: dict[str, int] = {}
    for name in database.list_collection_names():
        collection = database[name]
        counts[name] = dump_collection(collection, target / f"{name}.jsonl")
        manifest["collections"][name] = {
            "count": counts[name],
            "indexes": {
                index_name: info["key"]
                for index_name, info in collection.index_information().items()
                if index_name != "_id_"
            },
        }
    (target / "__manifest__.json").write_text(json.dumps(manifest, indent=2))
    return counts


def load_database(database: Database, directory: str | pathlib.Path) -> dict[str, int]:
    """Load a dump produced by :func:`dump_database` into *database*."""
    source = pathlib.Path(directory)
    manifest_path = source / "__manifest__.json"
    manifest = json.loads(manifest_path.read_text()) if manifest_path.exists() else None
    counts: dict[str, int] = {}
    for path in sorted(source.glob("*.jsonl")):
        name = path.stem
        collection = database[name]
        counts[name] = load_collection(collection, path)
        if manifest is not None:
            index_specs = manifest["collections"].get(name, {}).get("indexes", {})
            for keys in index_specs.values():
                collection.create_index([(field, direction) for field, direction in keys])
    return counts


def iter_jsonl(path: str | pathlib.Path) -> Iterable[dict[str, Any]]:
    """Stream documents from a JSON-lines file without loading them all."""
    with pathlib.Path(path).open("rb") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield decode_document(line)
