"""Update-operator application.

The migration and embedding algorithms of the thesis (Figures 4.3 and 4.7)
use ``update`` with ``$set`` plus the ``multi`` and ``upsert`` options; the
full operator set implemented here also covers ``$unset``, ``$inc``, ``$mul``,
``$rename``, ``$min``/``$max``, ``$push``, ``$addToSet``, ``$pull``, and
``$pop`` so the store is usable beyond the thesis workloads.
"""

from __future__ import annotations

from typing import Any, Mapping, MutableMapping

from .bson import deep_copy_document
from .errors import InvalidUpdateError
from .matching import compare_values, compile_matcher, values_equal

__all__ = [
    "is_update_document",
    "apply_update",
    "build_upsert_document",
]

_UPDATE_OPERATORS = {
    "$set",
    "$unset",
    "$inc",
    "$mul",
    "$rename",
    "$min",
    "$max",
    "$push",
    "$addToSet",
    "$pull",
    "$pop",
    "$setOnInsert",
    "$currentDate",
}


def is_update_document(update: Mapping[str, Any]) -> bool:
    """Return True if *update* uses operators (vs. a full replacement doc)."""
    if not update:
        return False
    uses_operators = any(key.startswith("$") for key in update)
    uses_fields = any(not key.startswith("$") for key in update)
    if uses_operators and uses_fields:
        raise InvalidUpdateError(
            "update documents may not mix update operators and plain fields"
        )
    return uses_operators


def _split_path(path: str) -> list[str]:
    return path.split(".")


def _ensure_parent(document: MutableMapping[str, Any], path: str) -> tuple[Any, str]:
    """Walk to the parent container of *path*, creating documents as needed."""
    parts = _split_path(path)
    node: Any = document
    for part in parts[:-1]:
        if isinstance(node, list):
            index = int(part)
            while len(node) <= index:
                node.append({})
            node = node[index]
        else:
            if part not in node or not isinstance(node[part], (dict, list)):
                node[part] = {}
            node = node[part]
    return node, parts[-1]


def _get_leaf(document: Mapping[str, Any], path: str) -> tuple[Any, str, bool]:
    parts = _split_path(path)
    node: Any = document
    for part in parts[:-1]:
        if isinstance(node, list):
            index = int(part)
            if index >= len(node):
                return None, parts[-1], False
            node = node[index]
        elif isinstance(node, Mapping) and part in node:
            node = node[part]
        else:
            return None, parts[-1], False
    leaf = parts[-1]
    if isinstance(node, list):
        index = int(leaf)
        return node, leaf, index < len(node)
    if isinstance(node, Mapping):
        return node, leaf, leaf in node
    return None, leaf, False


def _set_value(document: MutableMapping[str, Any], path: str, value: Any) -> None:
    parent, leaf = _ensure_parent(document, path)
    if isinstance(parent, list):
        index = int(leaf)
        while len(parent) <= index:
            parent.append(None)
        parent[index] = value
    else:
        parent[leaf] = value


def _unset_value(document: MutableMapping[str, Any], path: str) -> None:
    parent, leaf, present = _get_leaf(document, path)
    if not present:
        return
    if isinstance(parent, list):
        parent[int(leaf)] = None
    else:
        del parent[leaf]


def _current_value(document: Mapping[str, Any], path: str, default: Any = None) -> Any:
    parent, leaf, present = _get_leaf(document, path)
    if not present:
        return default
    if isinstance(parent, list):
        return parent[int(leaf)]
    return parent[leaf]


def apply_update(
    document: Mapping[str, Any],
    update: Mapping[str, Any],
    *,
    on_insert: bool = False,
) -> dict[str, Any]:
    """Return a new document with *update* applied to *document*.

    The input document is never mutated; collections replace the stored
    version atomically, which is what makes single-document writes atomic
    (Table 2.2 of the paper).
    """
    if not is_update_document(update):
        # Full-document replacement keeps the original _id.
        replacement = deep_copy_document(dict(update))
        if "_id" in document:
            replacement.setdefault("_id", document["_id"])
        return replacement

    updated = deep_copy_document(dict(document))
    for operator, changes in update.items():
        if operator not in _UPDATE_OPERATORS:
            raise InvalidUpdateError(f"unknown update operator {operator!r}")
        if operator == "$setOnInsert" and not on_insert:
            continue
        if not isinstance(changes, Mapping):
            raise InvalidUpdateError(f"{operator} expects a document of field updates")
        for path, argument in changes.items():
            _apply_single(updated, operator, path, argument)
    return updated


def _apply_single(document: MutableMapping[str, Any], operator: str, path: str, argument: Any) -> None:
    if operator in ("$set", "$setOnInsert"):
        _set_value(document, path, deep_copy_document(argument))
    elif operator == "$unset":
        _unset_value(document, path)
    elif operator == "$inc":
        current = _current_value(document, path, 0)
        if current is None:
            current = 0
        if not isinstance(current, (int, float)) or isinstance(current, bool):
            raise InvalidUpdateError(f"$inc target {path!r} is not numeric")
        _set_value(document, path, current + argument)
    elif operator == "$mul":
        current = _current_value(document, path, 0)
        if current is None:
            current = 0
        if not isinstance(current, (int, float)) or isinstance(current, bool):
            raise InvalidUpdateError(f"$mul target {path!r} is not numeric")
        _set_value(document, path, current * argument)
    elif operator == "$rename":
        current = _current_value(document, path, None)
        parent, leaf, present = _get_leaf(document, path)
        if present and not isinstance(parent, list):
            del parent[leaf]
            _set_value(document, str(argument), current)
    elif operator == "$min":
        current = _current_value(document, path, None)
        if current is None or compare_values(argument, current) < 0:
            _set_value(document, path, argument)
    elif operator == "$max":
        current = _current_value(document, path, None)
        if current is None or compare_values(argument, current) > 0:
            _set_value(document, path, argument)
    elif operator == "$push":
        current = _current_value(document, path, None)
        if current is None:
            current = []
        if not isinstance(current, list):
            raise InvalidUpdateError(f"$push target {path!r} is not an array")
        if isinstance(argument, Mapping) and "$each" in argument:
            current = current + [deep_copy_document(item) for item in argument["$each"]]
        else:
            current = current + [deep_copy_document(argument)]
        _set_value(document, path, current)
    elif operator == "$addToSet":
        current = _current_value(document, path, None)
        if current is None:
            current = []
        if not isinstance(current, list):
            raise InvalidUpdateError(f"$addToSet target {path!r} is not an array")
        additions = (
            argument["$each"] if isinstance(argument, Mapping) and "$each" in argument else [argument]
        )
        new_values = list(current)
        for item in additions:
            if not any(values_equal(item, existing) for existing in new_values):
                new_values.append(deep_copy_document(item))
        _set_value(document, path, new_values)
    elif operator == "$pull":
        current = _current_value(document, path, None)
        if current is None:
            return
        if not isinstance(current, list):
            raise InvalidUpdateError(f"$pull target {path!r} is not an array")
        if isinstance(argument, Mapping) and any(k.startswith("$") for k in argument):
            predicate = compile_matcher({"v": argument})
            remaining = [item for item in current if not predicate({"v": item})]
        elif isinstance(argument, Mapping):
            predicate = compile_matcher(argument)
            remaining = [
                item
                for item in current
                if not (isinstance(item, Mapping) and predicate(item))
            ]
        else:
            remaining = [item for item in current if not values_equal(item, argument)]
        _set_value(document, path, remaining)
    elif operator == "$pop":
        current = _current_value(document, path, None)
        if not isinstance(current, list) or not current:
            return
        if argument == -1:
            _set_value(document, path, current[1:])
        else:
            _set_value(document, path, current[:-1])
    elif operator == "$currentDate":
        import datetime

        _set_value(document, path, datetime.datetime.now())


def build_upsert_document(
    query: Mapping[str, Any],
    update: Mapping[str, Any],
) -> dict[str, Any]:
    """Build the document inserted by an upsert that matched nothing.

    Equality conditions from the query seed the new document, then the update
    is applied (including ``$setOnInsert``).
    """
    seed: dict[str, Any] = {}
    for key, condition in (query or {}).items():
        if key.startswith("$"):
            continue
        if isinstance(condition, Mapping) and any(k.startswith("$") for k in condition):
            if "$eq" in condition:
                _set_value(seed, key, deep_copy_document(condition["$eq"]))
            continue
        _set_value(seed, key, deep_copy_document(condition))
    return apply_update(seed, update, on_insert=True)
