"""Shard nodes.

A shard is a ``mongod`` instance that stores a horizontal slice of each
sharded collection plus, for the *primary* shard of a database, every
unsharded collection (Table 3.4 of the paper lists one ``mongod`` process per
shard node).  In the reproduction a shard wraps its own
:class:`~repro.documentstore.client.DocumentStoreClient`, so per-shard
execution cost is real work measured on real data structures.
"""

from __future__ import annotations

import pathlib
import threading
import time
from dataclasses import dataclass
from typing import Any

from ..documentstore.client import DocumentStoreClient
from ..documentstore.collection import Collection

__all__ = ["Shard", "ShardDescription"]


@dataclass(frozen=True)
class ShardDescription:
    """Static description of a shard node (the Table 3.1 hardware row).

    ``cpu_factor`` models the per-node hardware asymmetry of the paper's
    deployment: the stand-alone system is an m4.4xlarge (16 vCPU, 64 GB RAM)
    while each shard is a t2.large / m4.xlarge (2–4 vCPU, 8–16 GB RAM).  The
    simulated elapsed time of work executed on a shard is the measured wall
    time multiplied by this factor (1.0 = identical hardware).
    """

    shard_id: str
    ram_bytes: int = 8 * 1024 ** 3
    disk_bytes: int = 256 * 1024 ** 3
    vcpus: int = 2
    cpu_factor: float = 1.0


class Shard:
    """One data-bearing cluster node."""

    def __init__(
        self,
        shard_id: str,
        description: ShardDescription | None = None,
        *,
        data_dir: str | pathlib.Path | None = None,
        fsync: str = "batch",
    ) -> None:
        self.shard_id = shard_id
        self.description = description or ShardDescription(shard_id=shard_id)
        # With a data directory the shard's store is durable: it keeps its
        # own per-shard WAL/snapshot generation and recovers on construction,
        # exactly like a stand-alone node.
        self._client = DocumentStoreClient(name=shard_id, data_dir=data_dir, fsync=fsync)
        # Cumulative busy time, used to derive the parallel (simulated) elapsed
        # time of scatter-gather operations.  Guarded by a lock: concurrent
        # scatters from multiple client threads may account against the same
        # shard simultaneously.
        self.busy_seconds = 0.0
        self.operations = 0
        self._accounting_lock = threading.Lock()
        # Serializes storage operations on this node: a shard is one mongod
        # process, and two scatter branches from concurrent client threads
        # must not interleave structural mutations on its collections.
        self.op_lock = threading.RLock()

    # -- storage access --------------------------------------------------------

    def collection(self, database_name: str, collection_name: str) -> Collection:
        """Return the local slice of ``database.collection``."""
        return self._client[database_name][collection_name]

    def database(self, database_name: str):
        """Return the local database object called *database_name*."""
        return self._client[database_name]

    def database_names(self) -> list[str]:
        """Names of the databases present on this shard."""
        return self._client.list_database_names()

    def drop_database(self, database_name: str) -> None:
        """Drop a database from this shard."""
        self._client.drop_database(database_name)

    # -- durability ------------------------------------------------------------

    @property
    def engine(self):
        """The shard's storage engine (``None`` when in-memory)."""
        return self._client.engine

    def flush_durability(self) -> None:
        """Force this shard's WAL to stable storage (no-op when in-memory)."""
        self._client.flush_durability()

    def checkpoint(self) -> int | None:
        """Checkpoint this shard's store (no-op when in-memory)."""
        with self.op_lock:
            return self._client.checkpoint()

    def durability_status(self) -> dict[str, Any]:
        """This shard's durability counters."""
        return self._client.durability_status()

    def close(self) -> None:
        """Flush and close the shard's storage engine."""
        self._client.close()

    # -- timed execution -------------------------------------------------------

    def timed(self, operation, *args, **kwargs):
        """Run *operation* and account its wall time as shard busy time."""
        started = time.perf_counter()
        try:
            with self.op_lock:
                return operation(*args, **kwargs)
        finally:
            self.record_busy(time.perf_counter() - started)

    def run(self, operation, *args, **kwargs):
        """Run *operation* under the shard's op lock, returning (result, seconds).

        Unlike :meth:`timed` this does *not* record busy time — the scatter
        gather records it at merge time so that cancelled/timed-out branches
        leave the accounting untouched.
        """
        started = time.perf_counter()
        with self.op_lock:
            result = operation(*args, **kwargs)
        return result, time.perf_counter() - started

    def record_busy(self, seconds: float, operations: int = 1) -> None:
        """Account *seconds* of storage work performed on this shard."""
        with self._accounting_lock:
            self.busy_seconds += seconds
            self.operations += operations

    def reset_accounting(self) -> None:
        """Clear busy-time counters (between experiments)."""
        with self._accounting_lock:
            self.busy_seconds = 0.0
            self.operations = 0

    # -- statistics ------------------------------------------------------------

    def data_size(self) -> int:
        """Total bytes stored on this shard."""
        return self._client.total_data_size()

    def document_count(self, database_name: str | None = None) -> int:
        """Number of documents stored on this shard (optionally one database)."""
        total = 0
        for database in self._client:
            if database_name is not None and database.name != database_name:
                continue
            total += int(database.stats()["objects"])
        return total

    def stats(self) -> dict[str, Any]:
        """Shard statistics (size, busy time, operation count)."""
        return {
            "shard": self.shard_id,
            "dataSize": self.data_size(),
            "documents": self.document_count(),
            "busySeconds": self.busy_seconds,
            "operations": self.operations,
            "ram": self.description.ram_bytes,
            "disk": self.description.disk_bytes,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Shard({self.shard_id!r}, documents={self.document_count()})"
