"""Config server.

The config server stores the cluster metadata: which shards exist, which
databases are sharding-enabled and where their unsharded collections live
(the *primary shard*), and — for every sharded collection — the shard key and
the chunk table mapping key ranges to shards (Section 2.1.3.1).
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from ..documentstore.errors import ShardingError, ShardKeyError
from .chunks import ChunkManager, ShardKeyPattern

__all__ = ["ConfigServer"]


class ConfigServer:
    """Cluster metadata catalogue."""

    def __init__(self) -> None:
        self._shard_ids: list[str] = []
        self._databases: dict[str, dict[str, Any]] = {}
        self._collections: dict[str, ChunkManager] = {}

    # -- shard registry ---------------------------------------------------------

    def add_shard(self, shard_id: str) -> None:
        """Register a shard with the cluster."""
        if shard_id in self._shard_ids:
            raise ShardingError(f"shard {shard_id!r} is already registered")
        self._shard_ids.append(shard_id)

    @property
    def shard_ids(self) -> list[str]:
        """Every registered shard id, in registration order."""
        return list(self._shard_ids)

    # -- databases --------------------------------------------------------------

    def enable_sharding(self, database_name: str, primary_shard: str | None = None) -> None:
        """Enable sharding for a database and pick its primary shard."""
        if not self._shard_ids:
            raise ShardingError("cannot enable sharding before adding shards")
        if primary_shard is None:
            primary_shard = self._shard_ids[0]
        if primary_shard not in self._shard_ids:
            raise ShardingError(f"unknown primary shard {primary_shard!r}")
        self._databases[database_name] = {"primary": primary_shard, "partitioned": True}

    def is_sharding_enabled(self, database_name: str) -> bool:
        """True if ``enable_sharding`` was called for *database_name*."""
        return database_name in self._databases

    def primary_shard(self, database_name: str) -> str:
        """The shard holding the unsharded collections of *database_name*."""
        if database_name in self._databases:
            return self._databases[database_name]["primary"]
        if not self._shard_ids:
            raise ShardingError("the cluster has no shards")
        return self._shard_ids[0]

    # -- sharded collections ------------------------------------------------------

    @staticmethod
    def namespace(database_name: str, collection_name: str) -> str:
        """Build the namespaced collection name ``database.collection``."""
        return f"{database_name}.{collection_name}"

    def shard_collection(
        self,
        database_name: str,
        collection_name: str,
        shard_key: str | Sequence[str] | Mapping[str, Any],
        *,
        chunk_size_bytes: int | None = None,
        initial_chunks_per_shard: int = 2,
    ) -> ChunkManager:
        """Shard a collection with *shard_key* and create its chunk table."""
        if database_name not in self._databases:
            raise ShardingError(
                f"sharding is not enabled for database {database_name!r}"
            )
        namespace = self.namespace(database_name, collection_name)
        if namespace in self._collections:
            raise ShardingError(f"collection {namespace!r} is already sharded")
        pattern = ShardKeyPattern.create(shard_key)
        kwargs: dict[str, Any] = {"initial_chunks_per_shard": initial_chunks_per_shard}
        if chunk_size_bytes is not None:
            kwargs["chunk_size_bytes"] = chunk_size_bytes
        manager = ChunkManager(namespace, pattern, self._shard_ids, **kwargs)
        self._collections[namespace] = manager
        return manager

    def is_sharded(self, database_name: str, collection_name: str) -> bool:
        """True if the collection has a chunk table."""
        return self.namespace(database_name, collection_name) in self._collections

    def chunk_manager(self, database_name: str, collection_name: str) -> ChunkManager:
        """Return the chunk table of a sharded collection."""
        namespace = self.namespace(database_name, collection_name)
        try:
            return self._collections[namespace]
        except KeyError:
            raise ShardKeyError(f"collection {namespace!r} is not sharded") from None

    def sharded_namespaces(self) -> list[str]:
        """Every sharded collection namespace."""
        return sorted(self._collections)

    def drop_collection_metadata(self, database_name: str, collection_name: str) -> None:
        """Forget the sharding metadata of a collection (used by drop)."""
        self._collections.pop(self.namespace(database_name, collection_name), None)

    # -- persistence -------------------------------------------------------------

    def to_metadata(self) -> dict[str, Any]:
        """The whole catalogue as one serializable document."""
        return {
            "shards": list(self._shard_ids),
            "databases": {name: dict(info) for name, info in self._databases.items()},
            "collections": {
                namespace: manager.to_metadata()
                for namespace, manager in self._collections.items()
            },
        }

    def restore_metadata(self, data: Mapping[str, Any]) -> None:
        """Restore the catalogue from :meth:`to_metadata` output.

        The shard registry must already contain every shard the metadata
        references — the cluster registers its shards before restoring, and
        metadata naming an unknown shard means the topology changed under
        the data directory.
        """
        known = set(self._shard_ids)
        missing = [shard_id for shard_id in data.get("shards", []) if shard_id not in known]
        if missing:
            raise ShardingError(
                f"persisted metadata references unknown shards {missing!r}; "
                "reopen the data directory with the original topology"
            )
        self._databases = {
            str(name): dict(info) for name, info in (data.get("databases") or {}).items()
        }
        self._collections = {
            str(namespace): ChunkManager.from_metadata(manager)
            for namespace, manager in (data.get("collections") or {}).items()
        }

    # -- reporting ---------------------------------------------------------------

    def describe(self) -> dict[str, Any]:
        """Cluster metadata summary (``sh.status()`` analogue)."""
        return {
            "shards": list(self._shard_ids),
            "databases": {
                name: dict(info) for name, info in sorted(self._databases.items())
            },
            "collections": {
                namespace: manager.describe()
                for namespace, manager in sorted(self._collections.items())
            },
        }

    def chunk_distribution(self) -> dict[str, dict[str, int]]:
        """Chunk counts per shard per namespace (balancer input)."""
        distribution: dict[str, dict[str, int]] = {}
        for namespace, manager in self._collections.items():
            counts: dict[str, int] = {shard_id: 0 for shard_id in self._shard_ids}
            for chunk in manager.chunks:
                counts[chunk.shard_id] = counts.get(chunk.shard_id, 0) + 1
            distribution[namespace] = counts
        return distribution
