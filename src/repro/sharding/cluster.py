"""Sharded cluster facade.

Wires together the pieces of Figure 3.1: data-bearing shards, one config
server, and one query router, all connected by a simulated network.  The
default topology matches the paper's deployment (3 shards, 1 config server,
1 ``mongos``) but every knob — shard count, per-shard RAM description, chunk
size, network model — is configurable so the ablation benchmarks can vary
them.
"""

from __future__ import annotations

import pathlib
from typing import Any, Mapping, Sequence

from ..documentstore.bson import decode_document, encode_document
from ..documentstore.snapshot import atomic_writer
from .balancer import Balancer
from .chunks import ChunkManager
from .config_server import ConfigServer
from .executor import ScatterPolicy
from .network import NetworkModel, SimulatedNetwork
from .router import QueryRouter, RoutedDatabase
from .shard import Shard, ShardDescription

__all__ = ["ShardedCluster", "CLUSTER_METADATA_FILE"]

#: File inside a cluster data directory holding the config-server catalogue.
CLUSTER_METADATA_FILE = "cluster_metadata.json"


class ShardedCluster:
    """A complete sharded deployment (shards + config server + router).

    ``executor_mode`` selects how the router executes scatter fan-outs:
    ``"thread"`` (default) dispatches every target shard concurrently on a
    worker-thread pool, ``"serial"`` keeps the sequential one-shard-at-a-time
    baseline, and ``"process"`` additionally runs eligible read scans in a
    forked process pool (see :mod:`repro.sharding.executor`).
    ``scatter_policy`` sets the default per-operation deadline and timeout
    policy for every routed operation.

    With a ``data_dir`` the cluster is durable: each shard keeps its own
    WAL/snapshot generation under ``<data_dir>/<shard_id>/`` (recovered when
    the shard is constructed), and the config-server catalogue — shard
    registry, database primaries, chunk tables — is persisted atomically to
    ``<data_dir>/cluster_metadata.json`` at every metadata-changing step
    (``enable_sharding``, ``shard_collection``, ``balance``) and on
    ``close``.  Reopening the same directory with the same topology restores
    routing and per-shard data to the acknowledged state.  A crash *during*
    a balancer round can leave metadata one round behind; that is safe for
    routing (chunk splits never move documents, and migrations re-run from
    the previous metadata), just not for balance evenness.
    """

    def __init__(
        self,
        shard_count: int = 3,
        *,
        shard_descriptions: Sequence[ShardDescription] | None = None,
        network_model: NetworkModel | None = None,
        name: str = "cluster",
        executor_mode: str = "thread",
        max_workers: int | None = None,
        scatter_policy: ScatterPolicy | None = None,
        data_dir: str | pathlib.Path | None = None,
        fsync: str = "batch",
    ) -> None:
        if shard_descriptions is not None:
            descriptions = list(shard_descriptions)
        else:
            descriptions = [
                ShardDescription(shard_id=f"shard{i + 1}") for i in range(shard_count)
            ]
        if not descriptions:
            raise ValueError("a cluster needs at least one shard")

        self.name = name
        self.data_dir = pathlib.Path(data_dir) if data_dir is not None else None
        if self.data_dir is not None:
            self.data_dir.mkdir(parents=True, exist_ok=True)
        self.network = SimulatedNetwork(network_model)
        self.config_server = ConfigServer()
        self.shards: list[Shard] = []
        for description in descriptions:
            shard_dir = self.data_dir / description.shard_id if self.data_dir else None
            shard = Shard(description.shard_id, description, data_dir=shard_dir, fsync=fsync)
            self.shards.append(shard)
            self.config_server.add_shard(shard.shard_id)
        self._restore_metadata()
        self.router = QueryRouter(
            self.config_server,
            self.shards,
            self.network,
            executor_mode=executor_mode,
            max_workers=max_workers,
            scatter_policy=scatter_policy,
        )
        self.balancer = Balancer(
            self.config_server,
            {shard.shard_id: shard for shard in self.shards},
            self.network,
        )

    # ---------------------------------------------------------------- durability

    @property
    def metadata_path(self) -> pathlib.Path | None:
        """Where the config-server catalogue is persisted (``None`` in-memory)."""
        if self.data_dir is None:
            return None
        return self.data_dir / CLUSTER_METADATA_FILE

    def _restore_metadata(self) -> None:
        path = self.metadata_path
        if path is None or not path.exists():
            return
        metadata = decode_document(path.read_bytes())
        self.config_server.restore_metadata(metadata)

    def save_metadata(self) -> None:
        """Persist the config-server catalogue atomically (no-op in-memory)."""
        path = self.metadata_path
        if path is None:
            return
        with atomic_writer(path) as handle:
            handle.write(encode_document(self.config_server.to_metadata()))

    def flush_durability(self) -> None:
        """Flush every shard's WAL and the cluster metadata."""
        for shard in self.shards:
            shard.flush_durability()
        self.save_metadata()

    def checkpoint(self) -> dict[str, int | None]:
        """Checkpoint every shard's store; returns shard id → new generation."""
        generations = {shard.shard_id: shard.checkpoint() for shard in self.shards}
        self.save_metadata()
        return generations

    def durability_status(self) -> dict[str, Any]:
        """Durability counters for the whole cluster, per shard."""
        return {
            "active": self.data_dir is not None,
            "data_dir": str(self.data_dir) if self.data_dir is not None else None,
            "shards": {
                shard.shard_id: shard.durability_status() for shard in self.shards
            },
        }

    # ------------------------------------------------------------------ topology

    @property
    def shard_count(self) -> int:
        """Number of data-bearing shards."""
        return len(self.shards)

    def shard(self, shard_id: str) -> Shard:
        """Return a shard by id."""
        return self.router.shard(shard_id)

    # -------------------------------------------------------------------- admin

    def enable_sharding(self, database_name: str, primary_shard: str | None = None) -> None:
        """Enable sharding for a database (``sh.enableSharding`` analogue)."""
        self.config_server.enable_sharding(database_name, primary_shard)
        self.save_metadata()

    def shard_collection(
        self,
        database_name: str,
        collection_name: str,
        shard_key: str | Sequence[str] | Mapping[str, Any],
        *,
        chunk_size_bytes: int | None = None,
        initial_chunks_per_shard: int = 2,
    ) -> ChunkManager:
        """Shard a collection (``sh.shardCollection`` analogue).

        A supporting index on the shard key is created on every shard, as the
        original system requires the shard key to be indexed.
        """
        if not self.config_server.is_sharding_enabled(database_name):
            self.enable_sharding(database_name)
        manager = self.config_server.shard_collection(
            database_name,
            collection_name,
            shard_key,
            chunk_size_bytes=chunk_size_bytes,
            initial_chunks_per_shard=initial_chunks_per_shard,
        )
        index_keys = [
            (field, "hashed" if manager.shard_key.hashed else 1)
            for field in manager.shard_key.fields
        ]
        self.router.create_index(database_name, collection_name, index_keys)
        self.save_metadata()
        return manager

    def get_database(self, name: str) -> RoutedDatabase:
        """Return a routed database handle (what the application connects to)."""
        return self.router.get_database(name)

    def __getitem__(self, name: str) -> RoutedDatabase:
        return self.get_database(name)

    def balance(self) -> None:
        """Run the balancer until every sharded collection is even."""
        self.balancer.balance_all()
        self.save_metadata()

    def reset_metrics(self) -> None:
        """Clear router/network/shard accounting before a measurement."""
        self.router.reset_metrics()

    def close(self) -> None:
        """Shut down the scatter pool and flush/close every shard's storage."""
        self.router.close()
        self.save_metadata()
        for shard in self.shards:
            shard.close()

    def __enter__(self) -> "ShardedCluster":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------- reports

    def status(self) -> dict[str, Any]:
        """``sh.status()`` analogue: topology, chunks, per-shard data sizes."""
        return {
            "cluster": self.name,
            "shard_count": self.shard_count,
            "config": self.config_server.describe(),
            "shards": [shard.stats() for shard in self.shards],
            "network": self.network.stats.snapshot(),
            "router": self.router.metrics.snapshot(),
        }

    def data_distribution(self, database_name: str, collection_name: str) -> dict[str, int]:
        """Documents per shard for one collection (even-distribution checks)."""
        distribution = {}
        for shard in self.shards:
            distribution[shard.shard_id] = len(shard.collection(database_name, collection_name))
        return distribution

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShardedCluster({self.name!r}, shards={self.shard_count})"
