"""Query router (``mongos``).

The router is the only component an application talks to in the sharded
deployment (Figure 3.1).  For every operation it:

1. consults the config server to find the target shards — one shard when the
   query contains the shard key (*targeted*), every shard otherwise
   (*broadcast*, the expensive case called out in Section 4.3);
2. dispatches the command to **every target shard simultaneously** through
   the cluster's :class:`~repro.sharding.executor.ScatterRunner` (worker
   threads by default, an opt-in forked process pool for CPU-bound read
   scans, or an inline serial mode kept as the measurable baseline);
3. gathers the per-shard results — streaming them for ``find``, so the
   k-way merge starts before the slowest shard finishes — and merges them
   (and, for aggregation, runs the merge part of the pipeline) before
   answering the client.

Every scatter is subject to the router's :class:`ScatterPolicy`: per-shard
deadlines with cooperative cancellation, raising a structured
:class:`ShardTimeoutError` or returning partial results from the responsive
shards.  Per-branch traffic is accounted on private network channels merged
back in deterministic target order, so metric totals are identical to a
sequential execution — and ``RouterMetrics.parallel_shard_seconds`` is the
*observed* wall-clock makespan of each fan-out, not an estimate.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from ..documentstore.aggregation import (
    optimize_pipeline,
    run_pipeline,
    split_pipeline_for_shards,
)
from ..documentstore.bson import document_size
from ..documentstore.cursor import (
    Cursor,
    DeleteResult,
    InsertManyResult,
    InsertOneResult,
    UpdateResult,
    project_document,
)
from ..documentstore.explain import build_execution_stats, build_explain, validate_verbosity
from ..documentstore.findspec import FindSpec
from ..documentstore.objectid import ObjectId
from ..documentstore.ordering import document_sort_key
from .chunks import Chunk, ChunkManager
from .config_server import ConfigServer
from .executor import (
    FirstMatchClaim,
    RemoteOperation,
    ScatterOutcome,
    ScatterPending,
    ScatterPolicy,
    ScatterRunner,
    ShardTimeoutError,
    StreamGather,
)
from .network import SimulatedNetwork
from .shard import Shard

__all__ = [
    "QueryRouter",
    "RoutedDatabase",
    "RoutedCollection",
    "RouterMetrics",
    "ScatterPolicy",
    "ShardTimeoutError",
]


@dataclass
class RouterMetrics:
    """Cost accounting for routed operations.

    Two of these counters are independent *real measurements* of every
    scatter fan-out (they were estimates before the concurrent execution
    engine):

    * ``shard_seconds_total`` — **sum of work**: per-shard execution seconds
      added up across all branches of all operations.  This is the total
      storage-engine busy time the cluster spent, regardless of overlap.
    * ``parallel_shard_seconds`` — **observed makespan**: wall-clock seconds
      from the first dispatch of each fan-out to its last branch completion,
      summed over operations.  With truly concurrent branches this
      approaches the per-operation *maximum* instead of the sum; the gap to
      ``shard_seconds_total`` is the parallelism actually realized.
    * ``modelled_parallel_seconds`` — the hardware model of the paper's
      cluster: per-operation maximum of execution time scaled by each
      shard's ``cpu_factor`` (weaker cluster nodes).  Used to translate
      in-process measurements onto the paper's heterogeneous deployment.

    The experiment harness converts measured wall time into the elapsed time
    the paper's cluster would observe via::

        simulated elapsed = wall time - parallel_shard_seconds
                          + modelled_parallel_seconds + network_seconds

    i.e. the observed concurrent execution window is replaced by the
    modelled one, and every routed message adds simulated round-trip latency
    and transfer time.
    """

    operations: int = 0
    targeted_operations: int = 0
    broadcast_operations: int = 0
    router_seconds: float = 0.0
    #: Sum-of-work: total per-shard execution seconds (see class docstring).
    shard_seconds_total: float = 0.0
    #: Observed makespan: measured wall clock of the concurrent fan-outs.
    parallel_shard_seconds: float = 0.0
    #: Modelled makespan: per-operation max of execution x ``cpu_factor``.
    modelled_parallel_seconds: float = 0.0
    network_seconds: float = 0.0
    shards_contacted: int = 0
    #: Result items (documents or distinct values) shipped shard → router.
    documents_shipped: int = 0
    #: Serialized bytes of those shard → router result payloads.
    bytes_shipped: int = 0
    #: Shard branches that missed their scatter deadline.
    shards_timed_out: int = 0
    #: Operations answered from a subset of shards (``"partial"`` policy).
    partial_operations: int = 0

    def simulated_overhead_seconds(self) -> float:
        """Adjustment to add to measured wall time to get simulated elapsed time.

        Replaces the observed concurrent execution window
        (``parallel_shard_seconds``) with the modelled cluster makespan plus
        network costs.  Negative values mean the modelled cluster is *faster*
        than the in-process execution (parallel scan gains exceeded the
        network and per-node slowdown costs) — the situation the paper
        observes for the shard-key-targeted Query 50.
        """
        return (
            self.modelled_parallel_seconds
            + self.network_seconds
            - self.parallel_shard_seconds
        )

    def snapshot(self) -> dict[str, Any]:
        """Return the metrics as a plain dictionary.

        ``shard_seconds_total`` is sum-of-work across branches;
        ``parallel_shard_seconds`` is the observed wall-clock makespan of the
        concurrent fan-outs; ``modelled_parallel_seconds`` is the
        cpu-factor-scaled per-operation maximum used by the cost model.
        """
        return {
            "operations": self.operations,
            "targeted_operations": self.targeted_operations,
            "broadcast_operations": self.broadcast_operations,
            "router_seconds": self.router_seconds,
            "shard_seconds_total": self.shard_seconds_total,
            "parallel_shard_seconds": self.parallel_shard_seconds,
            "modelled_parallel_seconds": self.modelled_parallel_seconds,
            "network_seconds": self.network_seconds,
            "simulated_overhead_seconds": self.simulated_overhead_seconds(),
            "shards_contacted": self.shards_contacted,
            "documents_shipped": self.documents_shipped,
            "bytes_shipped": self.bytes_shipped,
            "shards_timed_out": self.shards_timed_out,
            "partial_operations": self.partial_operations,
        }


class QueryRouter:
    """The ``mongos`` process of the sharded cluster."""

    def __init__(
        self,
        config_server: ConfigServer,
        shards: Sequence[Shard],
        network: SimulatedNetwork | None = None,
        name: str = "mongos",
        *,
        executor_mode: str = "thread",
        max_workers: int | None = None,
        scatter_policy: ScatterPolicy | None = None,
    ) -> None:
        self.name = name
        self.config = config_server
        self.network = network or SimulatedNetwork()
        self._shards = {shard.shard_id: shard for shard in shards}
        self.metrics = RouterMetrics()
        self.scatter_policy = scatter_policy or ScatterPolicy()
        self._runner = ScatterRunner(executor_mode, max_workers, shards=self._shards)
        self._metrics_lock = threading.Lock()
        #: Per-shard timing breakdown of the most recent scatter (see
        #: ``explain_find(execution_stats=True)``).  Debugging aid only —
        #: concurrent client threads overwrite it.
        self.last_scatter_report: dict[str, Any] | None = None

    # ------------------------------------------------------------ infrastructure

    @property
    def executor_mode(self) -> str:
        """The scatter execution mode ("serial", "thread", or "process")."""
        return self._runner.mode

    def shard(self, shard_id: str) -> Shard:
        """Return the shard object registered under *shard_id*."""
        return self._shards[shard_id]

    @property
    def shards(self) -> list[Shard]:
        """Every shard known to the router."""
        return list(self._shards.values())

    def get_database(self, name: str) -> "RoutedDatabase":
        """Return a database handle that routes operations through this router."""
        return RoutedDatabase(self, name)

    def __getitem__(self, name: str) -> "RoutedDatabase":
        return self.get_database(name)

    def reset_metrics(self) -> None:
        """Clear router metrics and network statistics."""
        with self._metrics_lock:
            self.metrics = RouterMetrics()
        self.network.reset()
        for shard in self.shards:
            shard.reset_accounting()

    def close(self) -> None:
        """Shut down the scatter worker pool (and any forked snapshot pool)."""
        self._runner.close()

    # --------------------------------------------------------------- target choice

    def _target_shards(
        self,
        database_name: str,
        collection_name: str,
        query: Mapping[str, Any] | None,
    ) -> tuple[list[str], bool]:
        """Return (target shard ids, targeted?) for a query.

        ``targeted`` is True when the shard key restricted the query to a
        proper subset of the shards (the favourable Q50 situation).
        """
        if not self.config.is_sharded(database_name, collection_name):
            return [self.config.primary_shard(database_name)], True
        manager = self.config.chunk_manager(database_name, collection_name)
        all_shards = self.config.shard_ids
        targets = self._shards_from_query(manager, query)
        if targets is None:
            return list(all_shards), False
        target_list = sorted(targets)
        return target_list, len(target_list) < len(all_shards)

    @staticmethod
    def _shards_from_query(
        manager: ChunkManager,
        query: Mapping[str, Any] | None,
    ) -> set[str] | None:
        """Derive target shards from the shard-key constraints of *query*.

        Returns ``None`` when the query does not constrain the shard key
        (broadcast).  Only single-field shard keys are analysed, which covers
        every collection in the reproduction.
        """
        if not query:
            return None
        key_field = manager.shard_key.fields[0]
        condition = _find_condition(query, key_field)
        if condition is None:
            return None
        if isinstance(condition, Mapping) and any(k.startswith("$") for k in condition):
            if "$eq" in condition:
                return {manager.shard_for_value(condition["$eq"])}
            if "$in" in condition:
                return manager.shards_for_values(condition["$in"])
            lower = condition.get("$gte", condition.get("$gt"))
            upper = condition.get("$lte", condition.get("$lt"))
            if lower is not None or upper is not None:
                if manager.shard_key.hashed:
                    return None
                from .chunks import MAX_KEY, MIN_KEY

                return manager.shards_for_range(
                    lower if lower is not None else MIN_KEY,
                    upper if upper is not None else MAX_KEY,
                )
            return None
        if isinstance(condition, Mapping):
            return None
        return {manager.shard_for_value(condition)}

    # ------------------------------------------------------------- scatter/gather

    #: Documents per response batch.  Large result sets are shipped back to
    #: the router in multiple getMore-style batches, each paying one network
    #: round trip — the mechanism that makes result-heavy broadcast queries
    #: expensive on the cluster (Section 4.3, observation ii).
    RESPONSE_BATCH_SIZE = 101

    def _launch_scatter(
        self,
        targets: Sequence[str],
        command: Mapping[str, Any] | None,
        purpose: str,
        shard_operation: Callable[[Shard], Any],
        *,
        ship_results: bool = True,
        response_batch_size: int | None = None,
        remote: Callable[[str], RemoteOperation] | None = None,
        policy: ScatterPolicy | None = None,
        stream: StreamGather | None = None,
        is_write: bool = False,
    ) -> ScatterPending:
        """Dispatch *shard_operation* to every target simultaneously.

        Each branch runs on a pool worker: it ships the request command,
        executes the shard-local work (optionally in the forked process pool
        for eligible reads), then serializes the result back in batches of
        *response_batch_size* — pushing every decoded batch into *stream* as
        it crosses the wire, when streaming.  All traffic lands on the
        branch's private network channel; nothing shared is touched until
        :meth:`_absorb_outcome`.
        """
        policy = policy or self.scatter_policy
        if self._runner.mode == "process":
            if is_write:
                self._runner.invalidate_snapshot()
            elif remote is not None:
                self._runner.prepare_process_pool()
        batch_size = response_batch_size or self.RESPONSE_BATCH_SIZE

        def make_branch(shard_id: str) -> Callable[[Any], Any]:
            shard = self._shards[shard_id]

            def run(branch: Any) -> Any:
                channel = self.network.channel()
                branch.report.channel = channel
                try:
                    started = time.perf_counter()
                    channel.ship_command(
                        command,
                        source=self.name,
                        destination=shard_id,
                        purpose=f"{purpose}:request",
                    )
                    branch.report.timing.dispatch_seconds = time.perf_counter() - started
                    value, execute_seconds = self._runner.execute(
                        shard_id,
                        remote(shard_id) if remote is not None else None,
                        lambda: shard.run(shard_operation, shard)[0],
                    )
                    branch.report.timing.execute_seconds = execute_seconds
                    shipping_started = time.perf_counter()
                    shipped_any = False
                    if ship_results and isinstance(value, list) and value:
                        unwrap = not all(isinstance(item, Mapping) for item in value)
                        payload_docs: list[Mapping[str, Any]] = (
                            [{"v": item} for item in value] if unwrap else value
                        )
                        received: list[dict[str, Any]] = []
                        bytes_before = channel.stats.bytes_transferred
                        for start in range(0, len(payload_docs), batch_size):
                            if branch.cancelled.is_set():
                                # Cooperative cancellation (deadline hit or
                                # global limit satisfied): stop shipping.
                                break
                            decoded = channel.ship_documents(
                                payload_docs[start:start + batch_size],
                                source=shard_id,
                                destination=self.name,
                                purpose=f"{purpose}:response",
                            )
                            received.extend(decoded)
                            if stream is not None:
                                stream.put(shard_id, decoded)
                        branch.report.items_shipped = len(received)
                        branch.report.bytes_shipped = (
                            channel.stats.bytes_transferred - bytes_before
                        )
                        shipped_any = True
                        value = [doc["v"] for doc in received] if unwrap else received
                    if not shipped_any:
                        channel.ship_command(
                            {"ok": 1},
                            source=shard_id,
                            destination=self.name,
                            purpose=f"{purpose}:ack",
                        )
                    branch.report.timing.ship_seconds = (
                        time.perf_counter() - shipping_started
                    )
                    return value
                finally:
                    if stream is not None:
                        stream.finish(shard_id)

            return run

        return self._runner.launch(
            purpose, [(shard_id, make_branch(shard_id)) for shard_id in targets], policy
        )

    def _absorb_outcome(self, outcome: ScatterOutcome, *, targeted: bool) -> None:
        """Merge one gathered scatter into the shared accounting.

        Channels are absorbed in deterministic target order under the metrics
        lock, so totals (and the message log) are identical to a sequential
        execution — exact even under concurrent client threads.  Timed-out
        branches contribute nothing: their traffic and busy time stay on
        their private channel, mirroring a response the router never read.
        """
        timings: dict[str, dict[str, float]] = {}
        with self._metrics_lock:
            metrics = self.metrics
            modelled = 0.0
            for report in outcome.reports:
                shard = self._shards[report.shard_id]
                if report.channel is not None:
                    self.network.absorb(report.channel)
                    metrics.network_seconds += report.channel.stats.simulated_seconds
                shard.record_busy(report.timing.execute_seconds)
                metrics.shard_seconds_total += report.timing.execute_seconds
                metrics.documents_shipped += report.items_shipped
                metrics.bytes_shipped += report.bytes_shipped
                modelled = max(
                    modelled,
                    report.timing.execute_seconds * shard.description.cpu_factor,
                )
                timings[report.shard_id] = report.timing.snapshot()
            metrics.operations += 1
            metrics.shards_contacted += len(outcome.reports) + len(outcome.timed_out)
            if targeted:
                metrics.targeted_operations += 1
            else:
                metrics.broadcast_operations += 1
            metrics.parallel_shard_seconds += outcome.makespan_seconds
            metrics.modelled_parallel_seconds += max(modelled, 0.0)
            if outcome.timed_out:
                metrics.shards_timed_out += len(outcome.timed_out)
                metrics.partial_operations += 1
            self.last_scatter_report = {
                "purpose": outcome.purpose,
                "makespanSeconds": outcome.makespan_seconds,
                "timedOutShards": list(outcome.timed_out),
                "shards": timings,
            }

    def _scatter(
        self,
        database_name: str,
        collection_name: str,
        targets: Sequence[str],
        command: Mapping[str, Any] | None,
        purpose: str,
        shard_operation: Callable[[Shard], Any],
        *,
        ship_results: bool = True,
        targeted: bool = False,
        response_batch_size: int | None = None,
        remote: Callable[[str], RemoteOperation] | None = None,
        policy: ScatterPolicy | None = None,
        is_write: bool = False,
    ) -> dict[str, Any]:
        """Concurrent scatter + blocking gather; returns per-shard results.

        Raises :class:`ShardTimeoutError` under the ``"raise"`` deadline
        policy; under ``"partial"`` the returned mapping simply omits the
        timed-out shards.
        """
        pending = self._launch_scatter(
            targets,
            command,
            purpose,
            shard_operation,
            ship_results=ship_results,
            response_batch_size=response_batch_size,
            remote=remote,
            policy=policy,
            is_write=is_write,
        )
        outcome = pending.gather()
        self._absorb_outcome(outcome, targeted=targeted)
        return outcome.results()

    def _account_router_work(self, started: float) -> None:
        with self._metrics_lock:
            self.metrics.router_seconds += time.perf_counter() - started

    # ------------------------------------------------------------------- inserts

    def insert_many(
        self,
        database_name: str,
        collection_name: str,
        documents: Iterable[Mapping[str, Any]],
    ) -> InsertManyResult:
        """Route a whole insert batch in a single pass and one fan-out.

        The batch is routed against pre-sorted chunk boundaries (one bisect
        per document instead of a linear chunk scan), shipped with one
        message per owning shard, and executed through the scatter machinery
        in a single concurrent fan-out.  Chunk statistics are recorded only
        after every target shard acknowledged its insert, so a failed insert
        cannot permanently skew the chunk table (and through it the balancer).
        """
        prepared: list[dict[str, Any]] = []
        for document in documents:
            doc = dict(document)
            doc.setdefault("_id", ObjectId())
            prepared.append(doc)
        if not prepared:
            return InsertManyResult(inserted_ids=[])

        sharded = self.config.is_sharded(database_name, collection_name)
        batches: dict[str, list[dict[str, Any]]] = {}
        chunk_by_id: dict[int, Chunk] = {}
        values_by_chunk: dict[int, list[Any]] = {}
        bytes_by_chunk: dict[int, int] = {}
        manager = None
        if sharded:
            manager = self.config.chunk_manager(database_name, collection_name)
            routing_values = [manager.shard_key.extract(doc) for doc in prepared]
            for doc, value, chunk in zip(
                prepared, routing_values, manager.route_batch(routing_values)
            ):
                batches.setdefault(chunk.shard_id, []).append(doc)
                key = id(chunk)
                chunk_by_id[key] = chunk
                values_by_chunk.setdefault(key, []).append(value)
                bytes_by_chunk[key] = bytes_by_chunk.get(key, 0) + document_size(doc)
        else:
            primary = self.config.primary_shard(database_name)
            batches[primary] = prepared

        # Ship each shard's slice on a private channel (thread-safe totals).
        shipped: dict[str, list[dict[str, Any]]] = {}
        channel = self.network.channel()
        for shard_id, batch in batches.items():
            shipped[shard_id] = channel.ship_documents(
                batch,
                source=self.name,
                destination=shard_id,
                purpose="insert:request",
            )
        with self._metrics_lock:
            self.network.absorb(channel)
            self.metrics.network_seconds += channel.stats.simulated_seconds

        def do_insert(shard: Shard) -> Any:
            return shard.collection(database_name, collection_name).insert_many(
                shipped[shard.shard_id]
            )

        targets = sorted(batches)
        self._scatter(
            database_name,
            collection_name,
            targets,
            {"insert": collection_name, "documents": len(prepared)},
            "insert",
            do_insert,
            ship_results=False,
            targeted=not sharded or len(targets) < len(self.config.shard_ids),
            is_write=True,
        )
        if manager is not None:
            for key, chunk in chunk_by_id.items():
                manager.record_inserts(chunk, values_by_chunk[key], bytes_by_chunk[key])
        return InsertManyResult(inserted_ids=[doc["_id"] for doc in prepared])

    def insert_one(
        self,
        database_name: str,
        collection_name: str,
        document: Mapping[str, Any],
    ) -> InsertOneResult:
        """Route a single-document insert."""
        result = self.insert_many(database_name, collection_name, [document])
        return InsertOneResult(inserted_id=result.inserted_ids[0])

    # --------------------------------------------------------------------- reads

    def execute_find(
        self,
        database_name: str,
        collection_name: str,
        spec: FindSpec,
    ) -> list[dict[str, Any]]:
        """Execute a complete find spec with shard-side pushdown.

        Projection, sort, and ``skip + limit`` are pushed to every target
        shard (each returns at most ``skip + limit`` pre-sorted, pre-projected
        documents).  All targets execute **concurrently**, and each shard's
        response batches land on a gather queue as they cross the wire: the
        router's streaming k-way heap merge (sorted) or arrival-order merge
        (unsorted) starts consuming before the slowest shard finishes.  When
        the global ``skip + limit`` is satisfied early, still-running shards
        are cooperatively cancelled and stop shipping.
        """
        targets, targeted = self._target_shards(database_name, collection_name, spec.filter)
        shard_spec = spec.shard_spec()
        projection_pushed = spec.projection is None or shard_spec.projection is not None

        def do_find(shard: Shard) -> list[dict[str, Any]]:
            return shard.collection(database_name, collection_name).execute_find(shard_spec)

        stream = StreamGather(targets, per_shard=spec.sort is not None)
        pending = self._launch_scatter(
            targets,
            {
                "find": collection_name,
                "filter": spec.filter,
                "sort": list(spec.sort) if spec.sort else None,
                "limit": shard_spec.limit,
                "projection": shard_spec.projection,
            },
            "find",
            do_find,
            ship_results=True,
            response_batch_size=spec.batch_size,
            remote=lambda shard_id: RemoteOperation(
                "find", database_name, collection_name, (shard_spec,)
            ),
            stream=stream,
        )
        started = time.perf_counter()
        if spec.sort:
            # Every shard stream is already sorted: streaming k-way heap merge.
            merged: Iterator[dict[str, Any]] = heapq.merge(
                *stream.iterators(pending), key=document_sort_key(spec.sort)
            )
        else:
            merged = itertools.chain.from_iterable(stream.iterators(pending))
        results: list[dict[str, Any]] = []
        remaining_skip = spec.skip
        try:
            for document in merged:
                if remaining_skip:
                    remaining_skip -= 1
                    continue
                results.append(document)
                if spec.limit is not None and len(results) >= spec.limit:
                    # Satisfied: tell still-shipping shards to stop early.
                    pending.cancel()
                    break
        finally:
            self._account_router_work(started)
        outcome = pending.gather()
        self._absorb_outcome(outcome, targeted=targeted)
        if not projection_pushed and spec.projection:
            results = [project_document(doc, spec.projection) for doc in results]
        return results

    def find(
        self,
        database_name: str,
        collection_name: str,
        query: Mapping[str, Any] | None = None,
        projection: Mapping[str, Any] | None = None,
    ) -> list[dict[str, Any]]:
        """Scatter a find to the target shards and merge the results."""
        return self.execute_find(
            database_name,
            collection_name,
            FindSpec(filter=query, projection=projection),
        )

    def explain_find(
        self,
        database_name: str,
        collection_name: str,
        spec: FindSpec,
        *,
        execution_stats: bool = False,
    ) -> dict[str, Any]:
        """Explain a routed find: routing decision, pushdown, per-shard plans.

        With ``execution_stats=True`` the find is actually executed through
        the concurrent scatter and the explain gains an ``executionStats``
        section: the observed fan-out makespan plus each shard branch's
        queue / dispatch / execute / ship timing breakdown.
        """
        targets, targeted = self._target_shards(database_name, collection_name, spec.filter)
        shard_spec = spec.shard_spec()
        shards = {
            shard_id: self._shards[shard_id]
            .collection(database_name, collection_name)
            .explain_find(shard_spec)["queryPlanner"]
            for shard_id in targets
        }
        winning_plan = {
            "stage": "SINGLE_SHARD" if len(targets) == 1 else "SHARD_MERGE",
            "targeted": targeted,
            "shardsContacted": list(targets),
            "pushdown": {
                "projection": spec.projection is not None
                and shard_spec.projection is not None,
                "sort": spec.sort is not None,
                "limit": shard_spec.limit,
            },
            "shards": shards,
        }
        explain = {
            "queryPlanner": {
                "winningPlan": winning_plan,
                "sortMode": "streamingKWayMerge" if spec.sort else None,
                "findSpec": spec.describe(),
            }
        }
        if execution_stats:
            self.execute_find(database_name, collection_name, spec)
            explain["executionStats"] = self._execution_stats_section()
        return explain

    def _execution_stats_section(self) -> dict[str, Any]:
        report = self.last_scatter_report or {}
        return {
            "executorMode": self.executor_mode,
            "parallelSeconds": report.get("makespanSeconds", 0.0),
            "timedOutShards": report.get("timedOutShards", []),
            "shards": report.get("shards", {}),
        }

    def count_documents(
        self,
        database_name: str,
        collection_name: str,
        query: Mapping[str, Any] | None = None,
    ) -> int:
        """Scatter a count and sum the per-shard counts."""
        targets, targeted = self._target_shards(database_name, collection_name, query)

        def do_count(shard: Shard) -> int:
            return shard.collection(database_name, collection_name).count_documents(query)

        per_shard = self._scatter(
            database_name,
            collection_name,
            targets,
            {"count": collection_name, "filter": query},
            "count",
            do_count,
            ship_results=False,
            targeted=targeted,
            remote=lambda shard_id: RemoteOperation(
                "count", database_name, collection_name, (query,)
            ),
        )
        return sum(per_shard.values())

    def distinct(
        self,
        database_name: str,
        collection_name: str,
        key: str,
        query: Mapping[str, Any] | None = None,
    ) -> list[Any]:
        """Scatter a distinct and merge the per-shard value sets.

        Deduplication happens shard-side (each shard ships its *unique*
        values, not one value per matching document), so the response
        payload — accounted in ``RouterMetrics.bytes_shipped`` — is bounded
        by the value cardinality rather than the match count.
        """
        targets, targeted = self._target_shards(database_name, collection_name, query)

        def do_distinct(shard: Shard) -> list[Any]:
            return shard.collection(database_name, collection_name).distinct(key, query)

        per_shard = self._scatter(
            database_name,
            collection_name,
            targets,
            {"distinct": collection_name, "key": key},
            "distinct",
            do_distinct,
            ship_results=True,
            targeted=targeted,
            remote=lambda shard_id: RemoteOperation(
                "distinct", database_name, collection_name, (key, query)
            ),
        )
        started = time.perf_counter()
        merged: list[Any] = []
        seen: set[str] = set()
        for shard_id in targets:
            if shard_id not in per_shard:
                continue  # timed out under the partial policy
            for value in per_shard[shard_id]:
                marker = repr(value)
                if marker not in seen:
                    seen.add(marker)
                    merged.append(value)
        self._account_router_work(started)
        return merged

    # ------------------------------------------------------------------- updates

    def update_many(
        self,
        database_name: str,
        collection_name: str,
        query: Mapping[str, Any] | None,
        update: Mapping[str, Any],
        *,
        upsert: bool = False,
    ) -> UpdateResult:
        """Route a multi-document update."""
        targets, targeted = self._target_shards(database_name, collection_name, query)

        def do_update(shard: Shard) -> UpdateResult:
            return shard.collection(database_name, collection_name).update_many(
                query, update, upsert=False
            )

        per_shard = self._scatter(
            database_name,
            collection_name,
            targets,
            {"update": collection_name, "filter": query, "u": update},
            "update",
            do_update,
            ship_results=False,
            targeted=targeted,
            is_write=True,
        )
        matched = sum(result.matched_count for result in per_shard.values())
        modified = sum(result.modified_count for result in per_shard.values())
        upserted_id = None
        if matched == 0 and upsert:
            from ..documentstore.update import build_upsert_document

            document = build_upsert_document(query or {}, update)
            insert_result = self.insert_one(database_name, collection_name, document)
            upserted_id = insert_result.inserted_id
        return UpdateResult(matched_count=matched, modified_count=modified, upserted_id=upserted_id)

    def update_one(
        self,
        database_name: str,
        collection_name: str,
        query: Mapping[str, Any] | None,
        update: Mapping[str, Any],
        *,
        upsert: bool = False,
    ) -> UpdateResult:
        """Route a single-document update through one concurrent fan-out.

        Every target shard probes for a local match simultaneously; the
        first branch to find one claims the operation (a one-shot
        :class:`FirstMatchClaim`) and applies the update to exactly that
        document, while the claim doubles as a cancellation signal so
        still-probing branches bail out early.  Exactly one document is ever
        modified — the previous implementation probed shards one at a time,
        paying a serial round trip per shard.
        """
        targets, targeted = self._target_shards(database_name, collection_name, query)
        claim = FirstMatchClaim()

        def do_update(shard: Shard) -> UpdateResult:
            collection = shard.collection(database_name, collection_name)
            if claim.decided:
                return UpdateResult(matched_count=0, modified_count=0)
            matched = collection.find_one(query, {"_id": 1})
            if matched is None or not claim.claim(shard.shard_id):
                return UpdateResult(matched_count=0, modified_count=0)
            return collection.update_one({"_id": matched["_id"]}, update, upsert=False)

        per_shard = self._scatter(
            database_name,
            collection_name,
            targets,
            {"update": collection_name, "filter": query, "u": update, "multi": False},
            "update",
            do_update,
            ship_results=False,
            targeted=targeted,
            is_write=True,
        )
        for shard_id in targets:
            result = per_shard.get(shard_id)
            if result is not None and result.matched_count:
                return result
        if upsert:
            from ..documentstore.update import build_upsert_document

            document = build_upsert_document(query or {}, update)
            insert_result = self.insert_one(database_name, collection_name, document)
            return UpdateResult(matched_count=0, modified_count=0, upserted_id=insert_result.inserted_id)
        return UpdateResult(matched_count=0, modified_count=0)

    def delete_many(
        self,
        database_name: str,
        collection_name: str,
        query: Mapping[str, Any] | None,
    ) -> DeleteResult:
        """Route a multi-document delete."""
        targets, targeted = self._target_shards(database_name, collection_name, query)

        def do_delete(shard: Shard) -> DeleteResult:
            return shard.collection(database_name, collection_name).delete_many(query)

        per_shard = self._scatter(
            database_name,
            collection_name,
            targets,
            {"delete": collection_name, "filter": query},
            "delete",
            do_delete,
            ship_results=False,
            targeted=targeted,
            is_write=True,
        )
        return DeleteResult(deleted_count=sum(result.deleted_count for result in per_shard.values()))

    # --------------------------------------------------------------------- DDL

    def create_index(
        self,
        database_name: str,
        collection_name: str,
        keys: Any,
        *,
        unique: bool = False,
        name: str = "",
    ) -> str:
        """Create an index on every shard holding the collection (concurrently)."""
        if self.config.is_sharded(database_name, collection_name):
            targets = self.config.shard_ids
        else:
            targets = [self.config.primary_shard(database_name)]

        def do_create(shard: Shard) -> str:
            return shard.collection(database_name, collection_name).create_index(
                keys, unique=unique, name=name
            )

        per_shard = self._scatter(
            database_name,
            collection_name,
            targets,
            {"createIndexes": collection_name, "keys": str(keys)},
            "createIndex",
            do_create,
            ship_results=False,
            targeted=False,
            is_write=True,
        )
        return next(iter(per_shard.values()))

    def list_indexes(
        self, database_name: str, collection_name: str
    ) -> list[dict[str, Any]]:
        """Structured index specs for the collection (identical on every shard).

        DDL runs on every owning shard, so any one shard's catalog answers
        the question — the primary (or first) shard is consulted without a
        fan-out.
        """
        if self.config.is_sharded(database_name, collection_name):
            target = self.config.shard_ids[0]
        else:
            target = self.config.primary_shard(database_name)
        return self._shards[target].collection(database_name, collection_name).list_indexes()

    def drop_index(self, database_name: str, collection_name: str, index_name: str) -> None:
        """Drop an index from every shard holding the collection."""
        if self.config.is_sharded(database_name, collection_name):
            targets = self.config.shard_ids
        else:
            targets = [self.config.primary_shard(database_name)]

        def do_drop(shard: Shard) -> None:
            collection = shard.collection(database_name, collection_name)
            if index_name in collection.index_information():
                collection.drop_index(index_name)

        self._scatter(
            database_name,
            collection_name,
            targets,
            {"dropIndexes": collection_name, "index": index_name},
            "dropIndex",
            do_drop,
            ship_results=False,
            targeted=False,
            is_write=True,
        )

    def drop_collection(self, database_name: str, collection_name: str) -> None:
        """Drop a collection from every shard and forget its metadata."""
        targets = self.config.shard_ids or []

        def do_drop(shard: Shard) -> None:
            shard.collection(database_name, collection_name).drop()

        if targets:
            self._scatter(
                database_name,
                collection_name,
                targets,
                {"drop": collection_name},
                "drop",
                do_drop,
                ship_results=False,
                targeted=False,
                is_write=True,
            )
        self.config.drop_collection_metadata(database_name, collection_name)

    # -------------------------------------------------------------- aggregation

    def aggregate(
        self,
        database_name: str,
        collection_name: str,
        pipeline: Sequence[Mapping[str, Any]],
    ) -> list[dict[str, Any]]:
        """Run an aggregation: shard stages on the shards, merge on the router.

        The routing decision uses the leading ``$match`` stage: when it
        constrains the shard key the shard stages only run on the owning
        shards, otherwise the pipeline is broadcast (Section 4.3's expensive
        case for the analytical queries).  All shard-side pipelines execute
        concurrently through the scatter pool.

        A leading ``$vectorSearch`` runs on every owning shard with the
        *global* ``k`` (its metadata ``filter`` still targets when it
        constrains the shard key); the router then re-ranks the union of the
        per-shard top-k by score and keeps the global top-k, so the merged
        ranking is exactly what a stand-alone collection would return.
        """
        pipeline = list(pipeline)
        vector_stage = None
        if pipeline and "$vectorSearch" in pipeline[0]:
            # Apply the $vectorSearch+$limit k-lowering before splitting so
            # every shard scans the lowered k, not the stage's original one.
            pipeline = optimize_pipeline(pipeline)
            vector_stage = pipeline[0]["$vectorSearch"]
        shard_stages, merge_stages = split_pipeline_for_shards(pipeline)
        leading_match = None
        if shard_stages and "$match" in shard_stages[0]:
            leading_match = shard_stages[0]["$match"]
        elif vector_stage is not None and isinstance(vector_stage, Mapping):
            leading_match = vector_stage.get("filter")
        targets, targeted = self._target_shards(database_name, collection_name, leading_match)

        def do_aggregate(shard: Shard) -> list[dict[str, Any]]:
            # Reuse the collection engine's entry point so shard-local
            # execution gets the same leading-$match IXSCAN pushdown (and
            # $lookup collection resolution) as a stand-alone deployment.
            collection = shard.collection(database_name, collection_name)
            return collection.aggregate(shard_stages)

        per_shard = self._scatter(
            database_name,
            collection_name,
            targets,
            {"aggregate": collection_name, "pipeline": len(pipeline)},
            "aggregate",
            do_aggregate,
            targeted=targeted,
            remote=lambda shard_id: RemoteOperation(
                "aggregate", database_name, collection_name, (tuple(shard_stages),)
            ),
        )

        started = time.perf_counter()
        merged: list[dict[str, Any]] = []
        for shard_id in targets:
            merged.extend(per_shard.get(shard_id, []))

        if vector_stage is not None and isinstance(vector_stage, Mapping):
            # Each shard returned its local top-k; keep the global top-k,
            # re-ranked by score (desc) with the same _id tiebreak the
            # stand-alone engine uses, so sharded results match exactly.
            k = int(vector_stage.get("k", vector_stage.get("limit") or 0) or 0)
            score_field = str(vector_stage.get("scoreField") or "_score")
            id_key = document_sort_key([("_id", 1)])
            merged.sort(
                key=lambda doc: (-float(doc.get(score_field, 0.0)), id_key(doc))
            )
            if k > 0:
                merged = merged[:k]

        out_target: str | None = None
        if merge_stages and "$out" in merge_stages[-1]:
            out_target = str(merge_stages[-1]["$out"])
            merge_stages = merge_stages[:-1]
        if merge_stages:
            # $lookup in the merge part joins against the cluster-wide
            # collection, exactly as a stand-alone database would resolve it.
            # The nested find accounts its own router work, so exclude it
            # from this operation's window to avoid double counting.
            router_seconds_before = self.metrics.router_seconds
            results = run_pipeline(
                merged,
                merge_stages,
                collection_resolver=lambda name: self.find(database_name, name),
            )
            started += self.metrics.router_seconds - router_seconds_before
        else:
            results = merged
        self._account_router_work(started)

        if out_target is not None:
            self.drop_collection(database_name, out_target)
            if results:
                self.insert_many(database_name, out_target, results)
            return []
        return results

    def explain_aggregate(
        self,
        database_name: str,
        collection_name: str,
        pipeline: Sequence[Mapping[str, Any]],
        *,
        execution_stats: bool = False,
    ) -> dict[str, Any]:
        """Explain a routed aggregation without network/metric accounting.

        Returns the routing decision (targeted vs broadcast, the shards
        contacted) plus each shard's local plan — including the IXSCAN /
        COLLSCAN choice for the leading ``$match`` and per-stage documents
        examined / returned counters — and the merge stages the router would
        run over the combined results.  With ``execution_stats=True`` the
        pipeline is actually executed through the concurrent scatter and the
        result gains an ``executionStats`` section with the observed fan-out
        makespan and per-shard queue / dispatch / execute / ship timings.
        """
        pipeline = list(pipeline)
        if pipeline and "$vectorSearch" in pipeline[0]:
            pipeline = optimize_pipeline(pipeline)
        shard_stages, merge_stages = split_pipeline_for_shards(pipeline)
        leading_match = None
        if shard_stages and "$match" in shard_stages[0]:
            leading_match = shard_stages[0]["$match"]
        elif shard_stages and "$vectorSearch" in shard_stages[0]:
            specification = shard_stages[0]["$vectorSearch"]
            if isinstance(specification, Mapping):
                leading_match = specification.get("filter")
        targets, targeted = self._target_shards(database_name, collection_name, leading_match)
        shards = {
            shard_id: self._shards[shard_id]
            .collection(database_name, collection_name)
            .explain_aggregate(shard_stages)
            for shard_id in targets
        }
        explain = {
            "targeted": targeted,
            "shardsContacted": list(targets),
            "shards": shards,
            "mergeStages": [next(iter(stage)) for stage in merge_stages],
        }
        if execution_stats:
            self.aggregate(database_name, collection_name, pipeline)
            explain["executionStats"] = self._execution_stats_section()
        return explain

    # --------------------------------------------------------------------- stats

    def cluster_stats(self) -> dict[str, Any]:
        """Aggregate shard statistics plus router metrics."""
        return {
            "router": self.metrics.snapshot(),
            "network": self.network.stats.snapshot(),
            "shards": [shard.stats() for shard in self.shards],
            "config": self.config.describe(),
        }


def _find_condition(query: Mapping[str, Any], field_path: str) -> Any:
    """Find the condition on *field_path* at the top level or inside ``$and``."""
    if field_path in query:
        return query[field_path]
    for sub_query in query.get("$and", []):
        condition = _find_condition(sub_query, field_path)
        if condition is not None:
            return condition
    return None


class RoutedDatabase:
    """Database handle whose collections route operations through a router."""

    def __init__(self, router: QueryRouter, name: str) -> None:
        self._router = router
        self.name = name

    def __getitem__(self, collection_name: str) -> "RoutedCollection":
        return RoutedCollection(self._router, self.name, collection_name)

    def __getattr__(self, collection_name: str) -> "RoutedCollection":
        if collection_name.startswith("_"):
            raise AttributeError(collection_name)
        return self[collection_name]

    @property
    def router(self) -> QueryRouter:
        """The router backing this handle."""
        return self._router

    def get_collection(self, collection_name: str) -> "RoutedCollection":
        """Return a routed collection handle."""
        return self[collection_name]

    def drop_collection(self, collection_name: str) -> None:
        """Drop a collection across the cluster."""
        self._router.drop_collection(self.name, collection_name)

    def list_collection_names(self) -> list[str]:
        """Collection names present on any shard for this database."""
        names: set[str] = set()
        for shard in self._router.shards:
            names.update(shard.database(self.name).list_collection_names())
        return sorted(names)

    def stats(self) -> dict[str, Any]:
        """Database statistics aggregated across shards."""
        totals = {"db": self.name, "objects": 0, "dataSize": 0, "indexSize": 0}
        for shard in self._router.shards:
            stats = shard.database(self.name).stats()
            totals["objects"] += stats["objects"]
            totals["dataSize"] += stats["dataSize"]
            totals["indexSize"] += stats["indexSize"]
        return totals


class RoutedCollection:
    """Collection handle with the same surface as a stand-alone collection."""

    def __init__(self, router: QueryRouter, database_name: str, name: str) -> None:
        self._router = router
        self._database_name = database_name
        self.name = name

    @property
    def full_name(self) -> str:
        """The namespaced collection name."""
        return f"{self._database_name}.{self.name}"

    # The method bodies below simply forward to the router, which owns all
    # routing and cost-accounting logic.

    def insert_one(self, document: Mapping[str, Any]) -> InsertOneResult:
        return self._router.insert_one(self._database_name, self.name, document)

    def insert_many(self, documents: Iterable[Mapping[str, Any]]) -> InsertManyResult:
        return self._router.insert_many(self._database_name, self.name, documents)

    def find(
        self,
        query: Mapping[str, Any] | None = None,
        projection: Mapping[str, Any] | None = None,
        *,
        sort: str | Sequence[tuple[str, int]] | Mapping[str, int] | None = None,
        skip: int = 0,
        limit: int = 0,
        batch_size: int | None = None,
        hint: str | None = None,
    ) -> Cursor:
        """Return a lazy cursor whose spec is pushed down to the shards.

        The same :class:`Cursor` type as the stand-alone collection: chained
        options refine the spec, and only the first iteration sends the
        complete spec through the router.
        """
        spec = FindSpec.create(
            filter=query,
            projection=projection,
            sort=sort,
            skip=skip,
            limit=limit,
            batch_size=batch_size,
            hint=hint,
        )
        return Cursor(
            lambda final_spec: self._router.execute_find(
                self._database_name, self.name, final_spec
            ),
            spec=spec,
            explain=lambda final_spec: self._router.explain_find(
                self._database_name, self.name, final_spec
            ),
        )

    def find_one(
        self,
        query: Mapping[str, Any] | None = None,
        projection: Mapping[str, Any] | None = None,
        *,
        sort: str | Sequence[tuple[str, int]] | Mapping[str, int] | None = None,
    ) -> dict[str, Any] | None:
        for document in self.find(query, projection, sort=sort, limit=1):
            return document
        return None

    def explain(
        self,
        query_or_pipeline: Mapping[str, Any] | Sequence[Mapping[str, Any]] | FindSpec | None = None,
        *,
        verbosity: str = "queryPlanner",
    ) -> dict[str, Any]:
        """The unified explain entry point (schema v1, ``surface="sharded"``).

        Same signature and document shape as ``Collection.explain`` on a
        stand-alone deployment: a mapping (or ``None``) explains a find, a
        sequence of stages explains an aggregation.  ``explain_find`` /
        ``explain_aggregate`` remain as deprecated aliases returning their
        historical shapes.
        """
        validate_verbosity(verbosity)
        if isinstance(query_or_pipeline, Sequence) and not isinstance(
            query_or_pipeline, (str, bytes)
        ):
            return self._explain_pipeline(list(query_or_pipeline), verbosity)
        if isinstance(query_or_pipeline, FindSpec):
            return self._explain_spec(query_or_pipeline, verbosity)
        return self._explain_spec(FindSpec(filter=query_or_pipeline), verbosity)

    def _explain_spec(self, spec: FindSpec, verbosity: str) -> dict[str, Any]:
        legacy = self._router.explain_find(self._database_name, self.name, spec)
        planner = legacy["queryPlanner"]
        execution = None
        if verbosity == "executionStats":
            results = self._router.execute_find(self._database_name, self.name, spec)
            execution = build_execution_stats(
                n_returned=len(results),
                shards=self._router._execution_stats_section()["shards"],
            )
        return build_explain(
            surface="sharded",
            operation="find",
            verbosity=verbosity,
            namespace=self.full_name,
            winning_plan=planner["winningPlan"],
            sort_mode=planner["sortMode"],
            spec=planner["findSpec"],
            shards=planner["winningPlan"].get("shards", {}),
            execution_stats=execution,
        )

    def _explain_pipeline(
        self, pipeline: list[Mapping[str, Any]], verbosity: str
    ) -> dict[str, Any]:
        legacy = self._router.explain_aggregate(self._database_name, self.name, pipeline)
        winning_plan = {
            "stage": "SINGLE_SHARD" if len(legacy["shardsContacted"]) == 1 else "SHARD_MERGE",
            "targeted": legacy["targeted"],
            "shardsContacted": list(legacy["shardsContacted"]),
            "mergeStages": list(legacy["mergeStages"]),
        }
        execution = None
        if verbosity == "executionStats":
            executed = list(pipeline)
            if executed and "$out" in executed[-1]:
                # Explain must not write the $out target.
                executed = executed[:-1]
            results = self._router.aggregate(self._database_name, self.name, executed)
            execution = build_execution_stats(
                n_returned=len(results),
                shards=self._router._execution_stats_section()["shards"],
            )
        return build_explain(
            surface="sharded",
            operation="aggregate",
            verbosity=verbosity,
            namespace=self.full_name,
            winning_plan=winning_plan,
            sort_mode=None,
            spec={"pipeline": [dict(stage) for stage in pipeline]},
            shards=legacy["shards"],
            execution_stats=execution,
        )

    def count_documents(self, query: Mapping[str, Any] | None = None) -> int:
        return self._router.count_documents(self._database_name, self.name, query)

    def distinct(self, key: str, query: Mapping[str, Any] | None = None) -> list[Any]:
        return self._router.distinct(self._database_name, self.name, key, query)

    def update_one(
        self,
        query: Mapping[str, Any] | None,
        update: Mapping[str, Any],
        *,
        upsert: bool = False,
    ) -> UpdateResult:
        return self._router.update_one(self._database_name, self.name, query, update, upsert=upsert)

    def update_many(
        self,
        query: Mapping[str, Any] | None,
        update: Mapping[str, Any],
        *,
        upsert: bool = False,
    ) -> UpdateResult:
        return self._router.update_many(self._database_name, self.name, query, update, upsert=upsert)

    def delete_many(self, query: Mapping[str, Any] | None) -> DeleteResult:
        return self._router.delete_many(self._database_name, self.name, query)

    def delete_one(self, query: Mapping[str, Any] | None) -> DeleteResult:
        # Routed deletes are idempotent per shard; emulate delete_one by
        # deleting the first match found across the targeted shards.
        document = self.find_one(query)
        if document is None:
            return DeleteResult(deleted_count=0)
        return self._router.delete_many(self._database_name, self.name, {"_id": document["_id"]})

    def aggregate(self, pipeline: Sequence[Mapping[str, Any]]) -> list[dict[str, Any]]:
        return self._router.aggregate(self._database_name, self.name, pipeline)

    def explain_aggregate(
        self, pipeline: Sequence[Mapping[str, Any]], *, execution_stats: bool = False
    ) -> dict[str, Any]:
        """Explain how the cluster would execute *pipeline* (per-shard plans)."""
        return self._router.explain_aggregate(
            self._database_name, self.name, pipeline, execution_stats=execution_stats
        )

    def create_index(self, keys: Any, *, unique: bool = False, name: str = "") -> str:
        """Create an index cluster-wide; accepts structured specs like
        ``{"keys": ["embedding"], "type": "vector", "dims": 8}``."""
        return self._router.create_index(self._database_name, self.name, keys, unique=unique, name=name)

    def list_indexes(self) -> list[dict[str, Any]]:
        """Structured index specs (``Collection.list_indexes`` analogue)."""
        return self._router.list_indexes(self._database_name, self.name)

    def drop_index(self, index_name: str) -> None:
        self._router.drop_index(self._database_name, self.name, index_name)

    def drop(self) -> None:
        self._router.drop_collection(self._database_name, self.name)

    def find_with_options(
        self,
        query: Mapping[str, Any] | None = None,
        projection: Mapping[str, Any] | None = None,
        sort: Sequence[tuple[str, int]] | None = None,
        skip: int = 0,
        limit: int = 0,
    ) -> list[dict[str, Any]]:
        """One-shot find mirroring :meth:`Collection.find_with_options`."""
        return self.find(
            query, projection, sort=sort, skip=skip, limit=limit
        ).to_list()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RoutedCollection({self.full_name!r})"
