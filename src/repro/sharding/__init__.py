"""Sharded-cluster components.

Reproduces the deployment of Section 3.3: shards (``mongod``), a config
server holding chunk metadata, and a query router (``mongos``) that targets
or broadcasts operations, plus the chunk manager, balancer, simulated
network, and the cluster-sizing formulas of Section 2.1.3.2.
"""

from .balancer import Balancer, MigrationRecord
from .chunks import (
    DEFAULT_CHUNK_SIZE_BYTES,
    MAX_KEY,
    MIN_KEY,
    Chunk,
    ChunkManager,
    MaxKey,
    MinKey,
    ShardKeyPattern,
    decode_boundary,
    encode_boundary,
)
from .cluster import CLUSTER_METADATA_FILE, ShardedCluster
from .config_server import ConfigServer
from .executor import (
    EXECUTOR_MODES,
    ScatterPolicy,
    ScatterRunner,
    ShardTimeoutError,
)
from .network import NetworkChannel, NetworkModel, NetworkStats, SimulatedNetwork
from .planning import (
    ClusterSizingInputs,
    SHARDING_OVERHEAD,
    recommend_shard_count,
    shards_for_disk_storage,
    shards_for_iops,
    shards_for_ops,
    shards_for_ram,
    working_set_size,
)
from .router import QueryRouter, RoutedCollection, RoutedDatabase, RouterMetrics
from .shard import Shard, ShardDescription

__all__ = [
    "Balancer",
    "CLUSTER_METADATA_FILE",
    "Chunk",
    "ChunkManager",
    "ClusterSizingInputs",
    "ConfigServer",
    "DEFAULT_CHUNK_SIZE_BYTES",
    "EXECUTOR_MODES",
    "MAX_KEY",
    "MIN_KEY",
    "MaxKey",
    "MigrationRecord",
    "MinKey",
    "NetworkChannel",
    "NetworkModel",
    "NetworkStats",
    "QueryRouter",
    "RoutedCollection",
    "RoutedDatabase",
    "RouterMetrics",
    "SHARDING_OVERHEAD",
    "ScatterPolicy",
    "ScatterRunner",
    "Shard",
    "ShardDescription",
    "ShardKeyPattern",
    "ShardTimeoutError",
    "ShardedCluster",
    "SimulatedNetwork",
    "decode_boundary",
    "encode_boundary",
    "recommend_shard_count",
    "shards_for_disk_storage",
    "shards_for_iops",
    "shards_for_ops",
    "shards_for_ram",
    "working_set_size",
]
