"""Concurrent scatter-gather execution core for the sharded cluster.

The paper's shards are separate machines that genuinely work in parallel; a
3-shard broadcast costs roughly the *maximum* of its per-shard times, not
the sum.  This module gives the reproduction's router the same shape:

* a per-cluster :class:`ScatterRunner` — a pool of daemon worker threads
  that dispatches every scatter target simultaneously (``mode="thread"``,
  the default), runs them inline for the sequential baseline
  (``mode="serial"``), or, opt-in, executes CPU-bound read scans in a pool
  of forked worker processes to beat the GIL (``mode="process"``);
* per-shard deadlines with cooperative cancellation and a structured
  :class:`ShardTimeoutError` / partial-results policy (:class:`ScatterPolicy`);
* a queue-backed :class:`StreamGather` so the router's k-way merge consumes
  per-shard result batches *as they arrive* — merging starts before the
  slowest shard finishes;
* per-branch :class:`BranchTiming` (queue / dispatch / execute / ship) and
  an observed wall-clock makespan per operation, which is what makes
  ``RouterMetrics.parallel_shard_seconds`` an honest measurement.

Process mode and the GIL
------------------------
Worker *threads* overlap network waits and any GIL-releasing work, but pure
Python collection scans serialize on the GIL.  ``mode="process"`` forks a
pool of worker processes on first use; with the ``fork`` start method the
children inherit a copy-on-write snapshot of every shard's in-memory data,
so read-only operations (find / count / distinct / shard-side aggregation)
can run in true parallel on multi-core hosts without shipping the dataset.
Any routed write invalidates the snapshot (the pool is discarded and
re-forked lazily), and writes themselves always execute in-process.  Hosts
without ``fork`` (or single-core containers) transparently fall back to the
thread path.
"""

from __future__ import annotations

import multiprocessing
import queue
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping, Sequence

__all__ = [
    "EXECUTOR_MODES",
    "BranchTiming",
    "BranchReport",
    "FirstMatchClaim",
    "RemoteOperation",
    "ScatterOutcome",
    "ScatterPending",
    "ScatterPolicy",
    "ScatterRunner",
    "ShardTimeoutError",
    "StreamGather",
]

#: Supported execution modes for the scatter worker pool.
EXECUTOR_MODES = ("serial", "thread", "process")

#: Upper bound on pool threads (branches queue once it is reached).
DEFAULT_MAX_WORKERS = 32


class ShardTimeoutError(Exception):
    """One or more shards missed the scatter deadline.

    Structured so callers can react per shard: ``shard_ids`` lists the
    branches that missed the deadline, ``completed`` the ones that answered
    in time (whose results were discarded under the ``"raise"`` policy).
    """

    def __init__(
        self,
        purpose: str,
        shard_ids: Sequence[str],
        completed: Sequence[str],
        deadline_seconds: float,
    ) -> None:
        self.purpose = purpose
        self.shard_ids = list(shard_ids)
        self.completed = list(completed)
        self.deadline_seconds = deadline_seconds
        super().__init__(
            f"{purpose}: shard(s) {', '.join(self.shard_ids)} missed the "
            f"{deadline_seconds:.3f}s deadline"
            + (f" (completed in time: {', '.join(self.completed)})" if self.completed else "")
        )


@dataclass(frozen=True)
class ScatterPolicy:
    """Deadline and partial-results policy for scatter-gather operations.

    ``deadline_seconds`` is the per-operation budget measured from scatter
    start; every shard branch must complete within it (``None`` waits
    indefinitely).  On a miss, ``on_timeout`` decides the outcome:

    * ``"raise"`` (default) — abort the operation with a structured
      :class:`ShardTimeoutError`; results of responsive shards are discarded.
    * ``"partial"`` — return the merged results of the responsive shards and
      record the laggards in ``RouterMetrics.shards_timed_out``.

    Either way the lagging branch is cooperatively cancelled: it stops
    shipping result batches at the next check and its traffic/busy-time is
    *not* merged into the shared accounting (its shard keeps executing the
    already-issued storage operation to completion, as a real distributed
    ``killOp`` also cannot interrupt an in-flight scan instantaneously).
    """

    deadline_seconds: float | None = None
    on_timeout: str = "raise"

    def __post_init__(self) -> None:
        if self.on_timeout not in ("raise", "partial"):
            raise ValueError(f"on_timeout must be 'raise' or 'partial', got {self.on_timeout!r}")
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ValueError("deadline_seconds must be positive")

    def remaining(self, started: float) -> float | None:
        """Seconds left in the budget that began at *started* (``None`` = no deadline)."""
        if self.deadline_seconds is None:
            return None
        return self.deadline_seconds - (time.perf_counter() - started)


@dataclass
class BranchTiming:
    """Wall-clock breakdown of one shard branch of a scatter.

    ``queue_seconds`` — scatter start until a pool worker picked the branch
    up; ``dispatch_seconds`` — request serialization and send;
    ``execute_seconds`` — shard-local storage work, measured as the branch
    thread's *CPU time* so concurrent branches sharing one interpreter do
    not charge each other's GIL slices; ``ship_seconds`` — response
    serialization and transfer back to the router.
    """

    queue_seconds: float = 0.0
    dispatch_seconds: float = 0.0
    execute_seconds: float = 0.0
    ship_seconds: float = 0.0

    def total_seconds(self) -> float:
        return self.queue_seconds + self.dispatch_seconds + self.execute_seconds + self.ship_seconds

    def snapshot(self) -> dict[str, float]:
        return {
            "queueSeconds": self.queue_seconds,
            "dispatchSeconds": self.dispatch_seconds,
            "executeSeconds": self.execute_seconds,
            "shipSeconds": self.ship_seconds,
            "totalSeconds": self.total_seconds(),
        }


@dataclass
class BranchReport:
    """Everything one completed branch hands back to the gather."""

    shard_id: str
    value: Any = None
    timing: BranchTiming = field(default_factory=BranchTiming)
    #: Private :class:`~repro.sharding.network.NetworkChannel` of the branch.
    channel: Any = None
    #: Result items (documents or distinct values) shipped shard → router.
    items_shipped: int = 0
    #: Serialized bytes of those result payloads.
    bytes_shipped: int = 0


@dataclass
class ScatterOutcome:
    """Gathered result of one scatter: completed branches plus laggards."""

    purpose: str
    #: Completed branch reports, in deterministic target order.
    reports: list[BranchReport]
    #: Shards that missed the deadline (``"partial"`` policy only).
    timed_out: list[str]
    #: Observed wall clock from first dispatch to last branch completion.
    makespan_seconds: float

    def results(self) -> dict[str, Any]:
        return {report.shard_id: report.value for report in self.reports}


class _Branch:
    """Internal per-target state shared between worker and gather."""

    __slots__ = (
        "shard_id",
        "run",
        "report",
        "error",
        "done",
        "done_at",
        "cancelled",
        "submitted_at",
    )

    def __init__(self, shard_id: str, run: Callable[["_Branch"], Any], cancelled: threading.Event) -> None:
        self.shard_id = shard_id
        self.run = run
        self.report = BranchReport(shard_id=shard_id)
        self.error: BaseException | None = None
        self.done = threading.Event()
        self.done_at = 0.0
        self.cancelled = cancelled
        self.submitted_at = 0.0

    def execute(self) -> None:
        self.report.timing.queue_seconds = time.perf_counter() - self.submitted_at
        try:
            self.report.value = self.run(self)
        except BaseException as error:  # noqa: BLE001 - surfaced at gather
            self.error = error
        finally:
            self.done_at = time.perf_counter()
            self.done.set()


class ScatterPending:
    """A launched scatter: branches are executing; gather when ready.

    Streaming consumers (:class:`StreamGather`) read result batches while
    branches run; :meth:`gather` then waits for every branch (bounded by the
    policy deadline), applies the timeout policy, and returns the
    :class:`ScatterOutcome` whose channels the router merges into the shared
    accounting.
    """

    def __init__(self, purpose: str, branches: list[_Branch], policy: ScatterPolicy) -> None:
        self.purpose = purpose
        self.branches = branches
        self.policy = policy
        self.started = time.perf_counter()
        self.cancelled = branches[0].cancelled if branches else threading.Event()
        self._stream_timed_out: set[str] = set()

    # -- cooperative cancellation ---------------------------------------------

    def cancel(self) -> None:
        """Ask still-running branches to stop shipping (e.g. limit satisfied)."""
        self.cancelled.set()

    def remaining(self) -> float | None:
        """Seconds left in the policy deadline (``None`` = unbounded)."""
        return self.policy.remaining(self.started)

    def note_stream_timeout(self, shard_id: str) -> None:
        """A streaming consumer gave up on *shard_id* at the deadline."""
        self._stream_timed_out.add(shard_id)

    # -- gather ----------------------------------------------------------------

    def gather(self) -> ScatterOutcome:
        """Wait for every branch, apply the timeout policy, collect reports.

        Raises the first branch error (in target order) after all branches
        settled, and :class:`ShardTimeoutError` under the ``"raise"`` policy.
        """
        timed_out: list[str] = []
        for branch in self.branches:
            remaining = self.policy.remaining(self.started)
            if remaining is None:
                branch.done.wait()
            elif not branch.done.wait(timeout=max(0.0, remaining)):
                timed_out.append(branch.shard_id)
        timed_out.extend(
            shard_id
            for shard_id in sorted(self._stream_timed_out)
            if shard_id not in timed_out
        )
        if timed_out:
            # Stop laggards from shipping further batches or merging state.
            self.cancelled.set()
            if self.policy.on_timeout == "raise":
                completed = [b.shard_id for b in self.branches if b.done.is_set()]
                raise ShardTimeoutError(
                    self.purpose,
                    timed_out,
                    [s for s in completed if s not in timed_out],
                    float(self.policy.deadline_seconds or 0.0),
                )
        reports: list[BranchReport] = []
        last_done = self.started
        for branch in self.branches:
            if branch.shard_id in timed_out or not branch.done.is_set():
                continue
            if branch.error is not None:
                self.cancelled.set()
                raise branch.error
            reports.append(branch.report)
            last_done = max(last_done, branch.done_at)
        if timed_out:
            # The gather waited out the full deadline for the laggards.
            makespan = float(self.policy.deadline_seconds or 0.0)
        else:
            makespan = last_done - self.started
        return ScatterOutcome(
            purpose=self.purpose,
            reports=reports,
            timed_out=timed_out,
            makespan_seconds=makespan,
        )


# --------------------------------------------------------------------------- #
# process-mode plumbing                                                       #
# --------------------------------------------------------------------------- #

@dataclass(frozen=True)
class RemoteOperation:
    """Picklable description of a read-only shard operation.

    Process mode cannot ship closures to the forked workers, so the router
    describes each eligible operation as data; :func:`_run_remote` replays
    it against the forked copy-on-write shard snapshot.
    """

    kind: str  # "find" | "count" | "distinct" | "aggregate"
    database: str
    collection: str
    payload: tuple[Any, ...] = ()


#: Shard registry inherited by forked pool workers (set right before fork).
_FORK_SHARDS: dict[str, Any] = {}
_FORK_LOCK = threading.Lock()


def _run_remote(shard_id: str, operation: RemoteOperation) -> tuple[Any, float]:
    """Execute *operation* in a forked worker; returns (result, exec seconds)."""
    shard = _FORK_SHARDS[shard_id]
    collection = shard.collection(operation.database, operation.collection)
    # CPU time, mirroring the in-process path: forked siblings contending
    # for cores must not charge each other's scheduler slices.
    started = time.thread_time()
    if operation.kind == "find":
        result = collection.execute_find(operation.payload[0])
    elif operation.kind == "count":
        result = collection.count_documents(operation.payload[0])
    elif operation.kind == "distinct":
        result = collection.distinct(*operation.payload)
    elif operation.kind == "aggregate":
        result = collection.aggregate(list(operation.payload[0]))
    else:  # pragma: no cover - guarded by the router
        raise ValueError(f"unsupported remote operation {operation.kind!r}")
    return result, time.perf_counter() - started


class ScatterRunner:
    """Per-cluster worker pool that executes scatter branches.

    ``mode="thread"`` (default) dispatches every branch to a pool of daemon
    threads; ``mode="serial"`` runs branches inline in target order (the
    pre-concurrency behavior, kept as the measurable baseline);
    ``mode="process"`` additionally executes eligible read operations in a
    forked process pool (see the module docstring).
    """

    def __init__(
        self,
        mode: str = "thread",
        max_workers: int | None = None,
        *,
        shards: Mapping[str, Any] | None = None,
    ) -> None:
        if mode not in EXECUTOR_MODES:
            raise ValueError(f"executor mode must be one of {EXECUTOR_MODES}, got {mode!r}")
        self.mode = mode
        self._max_workers = max_workers or DEFAULT_MAX_WORKERS
        self._shards = dict(shards or {})
        self._tasks: queue.SimpleQueue[_Branch | None] = queue.SimpleQueue()
        self._threads: list[threading.Thread] = []
        self._outstanding = 0
        self._lock = threading.Lock()
        self._process_pool: ProcessPoolExecutor | None = None
        self._closed = False

    # -- thread pool -----------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            branch = self._tasks.get()
            if branch is None:
                return
            branch.execute()
            with self._lock:
                self._outstanding -= 1

    def _ensure_threads(self, incoming: int) -> None:
        with self._lock:
            self._outstanding += incoming
            wanted = min(self._outstanding, self._max_workers)
            while len(self._threads) < wanted:
                thread = threading.Thread(
                    target=self._worker_loop,
                    name=f"scatter-worker-{len(self._threads)}",
                    daemon=True,
                )
                self._threads.append(thread)
                thread.start()

    # -- launching -------------------------------------------------------------

    def launch(
        self,
        purpose: str,
        branch_runs: Sequence[tuple[str, Callable[[_Branch], Any]]],
        policy: ScatterPolicy,
    ) -> ScatterPending:
        """Dispatch one branch per target; returns immediately (thread mode).

        In serial mode the branches execute inline, in target order, before
        this method returns — streaming consumers then simply drain already
        filled queues, and the deadline is checked between branches.
        """
        if self._closed:
            raise RuntimeError("ScatterRunner is closed")
        cancelled = threading.Event()
        branches = [_Branch(shard_id, run, cancelled) for shard_id, run in branch_runs]
        pending = ScatterPending(purpose, branches, policy)
        if self.mode == "serial":
            for branch in branches:
                branch.submitted_at = time.perf_counter()
                remaining = policy.remaining(pending.started)
                if remaining is not None and remaining <= 0:
                    # Out of budget: leave the branch unexecuted; gather()
                    # will classify it as timed out under the policy.
                    continue
                branch.execute()
            return pending
        for branch in branches:
            branch.submitted_at = time.perf_counter()
        self._ensure_threads(len(branches))
        for branch in branches:
            self._tasks.put(branch)
        return pending

    # -- process snapshot pool -------------------------------------------------

    def prepare_process_pool(self) -> ProcessPoolExecutor | None:
        """Fork the read-snapshot pool if needed (call from the router thread).

        Forking from the dispatching thread — before the scatter's worker
        threads start — keeps the fork point quiescent.  Returns ``None``
        when ``fork`` is unavailable, in which case reads use the thread path.
        """
        if self.mode != "process":
            return None
        with _FORK_LOCK:
            if self._process_pool is None:
                if "fork" not in multiprocessing.get_all_start_methods():
                    return None
                _FORK_SHARDS.clear()
                _FORK_SHARDS.update(self._shards)
                self._process_pool = ProcessPoolExecutor(
                    max_workers=max(1, len(self._shards)),
                    mp_context=multiprocessing.get_context("fork"),
                )
            return self._process_pool

    def invalidate_snapshot(self) -> None:
        """Discard the forked snapshot after a routed write (stale COW data)."""
        with _FORK_LOCK:
            if self._process_pool is not None:
                self._process_pool.shutdown(wait=False, cancel_futures=True)
                self._process_pool = None

    def execute(
        self,
        shard_id: str,
        remote: RemoteOperation | None,
        local: Callable[[], Any],
    ) -> tuple[Any, float]:
        """Run the shard-local step of a branch; returns (result, exec seconds).

        Eligible reads go to the forked pool in process mode; everything else
        (writes, DDL, thread/serial modes, fork-less hosts) runs *local*.
        """
        pool = self._process_pool if (self.mode == "process" and remote is not None) else None
        if pool is not None:
            try:
                return pool.submit(_run_remote, shard_id, remote).result()
            except RuntimeError:
                # Pool shut down by a concurrent write: fall through to local.
                pass
        # Execution time is the branch thread's CPU time, not wall clock:
        # concurrent branches time-slice one interpreter (GIL), and wall
        # clock would charge each branch for the others' slices — the
        # paper's shards are separate machines that pay only their own work.
        started = time.thread_time()
        value = local()
        return value, time.thread_time() - started

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Stop pool threads and discard any forked snapshot pool."""
        if self._closed:
            return
        self._closed = True
        self.invalidate_snapshot()
        for _ in self._threads:
            self._tasks.put(None)


# --------------------------------------------------------------------------- #
# streaming gather                                                            #
# --------------------------------------------------------------------------- #

_END = object()


class StreamGather:
    """Queue-backed streaming gather for scatter branches that ship batches.

    Workers push each decoded response batch as soon as it crosses the
    (simulated) wire; the router-side iterators consume them while slower
    shards are still executing.  ``per_shard=True`` keeps one queue per
    target (required by the sorted k-way merge, which needs an ordered
    stream per shard); ``per_shard=False`` multiplexes every branch into a
    single arrival-order queue, so an unsorted merge can short-circuit on
    whichever shard answers first.
    """

    def __init__(self, targets: Sequence[str], *, per_shard: bool) -> None:
        self._targets = list(targets)
        self._per_shard = per_shard
        if per_shard:
            self._queues = {shard_id: queue.SimpleQueue() for shard_id in self._targets}
        else:
            shared: queue.SimpleQueue = queue.SimpleQueue()
            self._queues = {shard_id: shared for shard_id in self._targets}

    # -- worker side -----------------------------------------------------------

    def put(self, shard_id: str, batch: list[dict[str, Any]]) -> None:
        self._queues[shard_id].put(batch)

    def finish(self, shard_id: str) -> None:
        """Mark *shard_id*'s stream complete (always called, even on error)."""
        self._queues[shard_id].put(_END)

    # -- router side -----------------------------------------------------------

    def _drain(
        self,
        source: queue.SimpleQueue,
        ends_expected: int,
        pending: ScatterPending,
        shard_id: str | None,
    ) -> Iterator[dict[str, Any]]:
        ends = 0
        while ends < ends_expected:
            remaining = pending.remaining()
            try:
                if remaining is None:
                    item = source.get()
                else:
                    item = source.get(timeout=max(0.0, remaining))
            except queue.Empty:
                # Deadline exhausted while a shard still owes batches.
                late = (
                    [shard_id]
                    if shard_id is not None
                    else [b.shard_id for b in pending.branches if not b.done.is_set()]
                )
                for laggard in late:
                    pending.note_stream_timeout(laggard)
                if pending.policy.on_timeout == "raise":
                    pending.cancel()
                    done = [b.shard_id for b in pending.branches if b.done.is_set()]
                    raise ShardTimeoutError(
                        pending.purpose,
                        late,
                        [s for s in done if s not in late],
                        float(pending.policy.deadline_seconds or 0.0),
                    ) from None
                return
            if item is _END:
                ends += 1
                continue
            yield from item

    def iterators(self, pending: ScatterPending) -> list[Iterator[dict[str, Any]]]:
        """Per-shard document iterators (sorted merge) or one multiplexed one."""
        if self._per_shard:
            return [
                self._drain(self._queues[shard_id], 1, pending, shard_id)
                for shard_id in self._targets
            ]
        shared = self._queues[self._targets[0]] if self._targets else queue.SimpleQueue()
        return [self._drain(shared, len(self._targets), pending, None)]


class FirstMatchClaim:
    """One-shot claim deciding which shard branch wins ``update_one``.

    Every branch probes its shard for a local match concurrently; the first
    branch to find one claims the operation and applies the update, and the
    claim doubles as a cancellation signal so still-probing branches stop
    early.  Exactly one shard ever applies the write.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.winner: str | None = None

    @property
    def decided(self) -> bool:
        return self.winner is not None

    def claim(self, shard_id: str) -> bool:
        """Try to win the operation for *shard_id*; True iff this call won."""
        with self._lock:
            if self.winner is not None:
                return False
            self.winner = shard_id
            return True
