"""Simulated network between the query router and the cluster nodes.

The paper's sharded environment runs the query router (``mongos``), the
config server, and three shards on separate EC2 machines, so every routed
operation pays (a) a per-message round-trip latency and (b) a transfer cost
proportional to the payload size.  The reproduction runs everything in one
process; this module makes the cost of crossing a node boundary explicit:

* payloads are really serialized/deserialized at the boundary (CPU work that
  exists in the real system too);
* every message is recorded with its direction, purpose, and size;
* a :class:`NetworkModel` converts the message log into *simulated* elapsed
  seconds, so experiment results can separate computation from communication
  the same way the paper's observations do (Section 4.3, observation ii/iii).

Concurrency
-----------
The router's scatter-gather executes every shard branch on its own worker
(:mod:`repro.sharding.executor`).  Workers never touch the shared
:class:`SimulatedNetwork` directly: each branch opens a private, lock-free
:class:`NetworkChannel`, accumulates its messages there, and the router
merges the channels back into the shared network at gather time — in
deterministic target order, so traffic totals and the message log are
identical to a sequential execution.  The shared object itself is also
thread-safe (a lock guards ``send``/``absorb``) for direct users such as the
balancer.

``NetworkModel(realtime=True)`` additionally makes every message *really*
wait for its simulated duration.  This emulates the paper's machine
boundaries in real time: per-shard network waits become genuine wall-clock
waits that concurrent shard branches overlap, which is how the parallel
scatter benchmark demonstrates makespan ≈ max-of-shards on a single host.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from ..documentstore.bson import decode_batch, encode_batch

__all__ = [
    "NetworkModel",
    "NetworkMessage",
    "NetworkStats",
    "NetworkChannel",
    "SimulatedNetwork",
]


@dataclass(frozen=True)
class NetworkModel:
    """Latency/bandwidth parameters of the simulated interconnect.

    The defaults approximate a same-availability-zone cloud network: 0.5 ms
    round-trip latency per message and 1 Gbit/s of usable bandwidth.

    ``realtime=True`` turns the model from pure accounting into real-time
    emulation: every message sleeps for its simulated duration, so routed
    operations pay their network cost in wall-clock time (and concurrent
    shard branches can genuinely overlap those waits).
    """

    latency_seconds: float = 0.0005
    bandwidth_bytes_per_second: float = 125_000_000.0
    realtime: bool = False

    def transfer_seconds(self, payload_bytes: int) -> float:
        """Simulated seconds needed to move *payload_bytes* over the wire."""
        if payload_bytes <= 0:
            return 0.0
        return payload_bytes / self.bandwidth_bytes_per_second

    def message_seconds(self, payload_bytes: int) -> float:
        """Latency plus transfer time for one message."""
        return self.latency_seconds + self.transfer_seconds(payload_bytes)


@dataclass(frozen=True)
class NetworkMessage:
    """One message crossing the simulated network."""

    source: str
    destination: str
    purpose: str
    payload_bytes: int


@dataclass
class NetworkStats:
    """Aggregated traffic statistics."""

    messages: int = 0
    bytes_transferred: int = 0
    simulated_seconds: float = 0.0
    by_purpose: dict[str, int] = field(default_factory=dict)

    def record(self, message: NetworkMessage, seconds: float) -> None:
        self.messages += 1
        self.bytes_transferred += message.payload_bytes
        self.simulated_seconds += seconds
        self.by_purpose[message.purpose] = self.by_purpose.get(message.purpose, 0) + 1

    def merge(self, other: "NetworkStats") -> None:
        """Fold another accumulator into this one (used at gather time)."""
        self.messages += other.messages
        self.bytes_transferred += other.bytes_transferred
        self.simulated_seconds += other.simulated_seconds
        for purpose, count in other.by_purpose.items():
            self.by_purpose[purpose] = self.by_purpose.get(purpose, 0) + count

    def snapshot(self) -> dict[str, Any]:
        """Return the statistics as a plain dictionary."""
        return {
            "messages": self.messages,
            "bytes_transferred": self.bytes_transferred,
            "simulated_seconds": self.simulated_seconds,
            "by_purpose": dict(self.by_purpose),
        }


class _Endpoint:
    """Shared message API of the network and its per-worker channels."""

    model: NetworkModel

    def _record(self, message: NetworkMessage, seconds: float) -> None:
        raise NotImplementedError

    # -- raw accounting ------------------------------------------------------

    def send(self, source: str, destination: str, purpose: str, payload_bytes: int) -> float:
        """Account for one message and return its simulated duration."""
        message = NetworkMessage(source, destination, purpose, payload_bytes)
        seconds = self.model.message_seconds(payload_bytes)
        if self.model.realtime:
            time.sleep(seconds)
        self._record(message, seconds)
        return seconds

    # -- document transfer ----------------------------------------------------

    def ship_documents(
        self,
        documents: Iterable[Mapping[str, Any]],
        *,
        source: str,
        destination: str,
        purpose: str,
    ) -> list[dict[str, Any]]:
        """Serialize *documents*, account the transfer, and return copies.

        The encode/decode round trip both models the wire format cost and
        guarantees that the receiving side cannot share mutable state with
        the sender — exactly the isolation a real network provides.
        """
        payload = encode_batch(documents)
        self.send(source, destination, purpose, len(payload))
        return decode_batch(payload)

    def ship_command(
        self,
        command: Mapping[str, Any] | None,
        *,
        source: str,
        destination: str,
        purpose: str,
    ) -> float:
        """Account for a small command message (query, update, getmore)."""
        payload = encode_batch([command or {}])
        return self.send(source, destination, purpose, len(payload))


class NetworkChannel(_Endpoint):
    """Lock-free per-worker traffic accumulator.

    A scatter worker records its branch's messages here without touching any
    shared state; the router absorbs the channel into the shared
    :class:`SimulatedNetwork` at gather time (in deterministic target order),
    so totals match a sequential execution exactly.
    """

    def __init__(self, model: NetworkModel) -> None:
        self.model = model
        self.stats = NetworkStats()
        self.messages: list[NetworkMessage] = []

    def _record(self, message: NetworkMessage, seconds: float) -> None:
        self.stats.record(message, seconds)
        self.messages.append(message)


class SimulatedNetwork(_Endpoint):
    """Message accounting plus real (de)serialization at node boundaries.

    Thread-safe: direct sends and channel absorption are serialized by an
    internal lock, so concurrent scatter branches (and client threads) can
    never corrupt the statistics or the message log.
    """

    def __init__(self, model: NetworkModel | None = None) -> None:
        self.model = model or NetworkModel()
        self.stats = NetworkStats()
        self._log: list[NetworkMessage] = []
        self._lock = threading.Lock()

    def _record(self, message: NetworkMessage, seconds: float) -> None:
        with self._lock:
            self.stats.record(message, seconds)
            self._log.append(message)

    # -- per-worker channels ---------------------------------------------------

    def channel(self) -> NetworkChannel:
        """Open a private accumulator for one scatter branch."""
        return NetworkChannel(self.model)

    def absorb(self, channel: NetworkChannel) -> None:
        """Merge a branch channel's traffic into the shared log and stats."""
        with self._lock:
            self.stats.merge(channel.stats)
            self._log.extend(channel.messages)

    # -- introspection --------------------------------------------------------

    @property
    def log(self) -> list[NetworkMessage]:
        """The full message log (copy)."""
        with self._lock:
            return list(self._log)

    def reset(self) -> None:
        """Clear statistics and the message log."""
        with self._lock:
            self.stats = NetworkStats()
            self._log.clear()
