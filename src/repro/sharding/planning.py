"""Cluster sizing calculators.

Section 2.1.3.2 of the paper derives the number of shards from four factors
— disk storage, RAM (working set), disk throughput (IOPS), and operations per
second — and Section 3.3 applies the RAM rule to pick a 3-shard cluster for
the 9.94 GB dataset.  These helpers reproduce the published formulas (and the
worked examples) exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "shards_for_disk_storage",
    "shards_for_ram",
    "shards_for_iops",
    "shards_for_ops",
    "working_set_size",
    "ClusterSizingInputs",
    "recommend_shard_count",
    "SHARDING_OVERHEAD",
]

#: Per-shard efficiency factor used by the OPS formula (G = N * S * 0.7).
SHARDING_OVERHEAD = 0.7


def _ceil_ratio(required: float, per_shard: float) -> int:
    if per_shard <= 0:
        raise ValueError("per-shard capacity must be positive")
    if required <= 0:
        return 1
    count = max(1, math.ceil(required / per_shard))
    # float division can round the quotient down hard enough that the ceiling
    # no longer covers the requirement (e.g. required ~1e15, per_shard 1.49);
    # top up so count * per_shard >= required always holds.
    while count * per_shard < required:
        count += 1
    return count


def shards_for_disk_storage(storage_bytes: float, shard_disk_bytes: float) -> int:
    """Number of shards so that total disk across shards covers the data.

    Example from the paper: 1.5 TB of data on 256 GB disks needs ~6 shards.
    """
    return _ceil_ratio(storage_bytes, shard_disk_bytes)


def shards_for_ram(working_set_bytes: float, shard_ram_bytes: float, *, reserved_bytes: float = 0) -> int:
    """Number of shards so that the working set fits in aggregate RAM.

    ``reserved_bytes`` models the RAM consumed by the operating system and
    other processes (the paper reserves 2 GB per node in Section 3.3).
    Example from the paper: a 200 GB working set on 64 GB servers needs ~4.
    """
    usable = shard_ram_bytes - reserved_bytes
    return _ceil_ratio(working_set_bytes, usable)


def shards_for_iops(required_iops: float, shard_iops: float) -> int:
    """Number of shards so that aggregate IOPS covers the requirement.

    Example from the paper: 12,000 required IOPS on 5,000-IOPS disks needs 3.
    """
    return _ceil_ratio(required_iops, shard_iops)


def shards_for_ops(required_ops: float, single_server_ops: float, *, overhead: float = SHARDING_OVERHEAD) -> int:
    """Number of shards from the operations-per-second formula.

    The paper gives ``G = N * S * 0.7`` where 0.7 is the sharding overhead,
    hence ``N = G / (S * 0.7)``.
    """
    if single_server_ops <= 0:
        raise ValueError("single-server OPS must be positive")
    return _ceil_ratio(required_ops, single_server_ops * overhead)


def working_set_size(index_bytes: float, hot_document_bytes: float) -> float:
    """Working set = index size of each collection + frequently accessed docs."""
    return index_bytes + hot_document_bytes


@dataclass(frozen=True)
class ClusterSizingInputs:
    """Everything needed to recommend a shard count for a deployment."""

    data_size_bytes: float
    working_set_bytes: float
    shard_ram_bytes: float
    shard_disk_bytes: float
    reserved_ram_bytes: float = 2 * 1024 ** 3
    required_iops: float | None = None
    shard_iops: float | None = None
    required_ops: float | None = None
    single_server_ops: float | None = None


def recommend_shard_count(inputs: ClusterSizingInputs) -> dict[str, int]:
    """Apply every applicable sizing rule and return per-rule shard counts.

    The overall recommendation is the maximum across rules — a cluster must
    satisfy all its bottlenecks — which is how the thesis lands on 3 shards
    for the small dataset (RAM-driven with headroom for indexes and
    intermediate collections).
    """
    recommendations = {
        "disk": shards_for_disk_storage(inputs.data_size_bytes, inputs.shard_disk_bytes),
        "ram": shards_for_ram(
            inputs.working_set_bytes,
            inputs.shard_ram_bytes,
            reserved_bytes=inputs.reserved_ram_bytes,
        ),
    }
    if inputs.required_iops is not None and inputs.shard_iops is not None:
        recommendations["iops"] = shards_for_iops(inputs.required_iops, inputs.shard_iops)
    if inputs.required_ops is not None and inputs.single_server_ops is not None:
        recommendations["ops"] = shards_for_ops(inputs.required_ops, inputs.single_server_ops)
    recommendations["recommended"] = max(recommendations.values())
    return recommendations
