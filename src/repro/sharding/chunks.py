"""Chunks and shard-key space partitioning.

Section 2.1.3.3 of the paper describes how a sharded collection is divided
into non-overlapping ranges of shard-key values called chunks (64 MB by
default), how range-based partitioning keeps nearby keys together (good for
range queries, bad for skewed inserts), how hash-based partitioning spreads
keys evenly, and how a chunk whose keys are all identical cannot be split and
becomes a *jumbo* chunk (Figure 2.7).  This module implements those concepts.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from ..documentstore.errors import ChunkSplitError, ShardKeyError
from ..documentstore.indexes import hashed_value
from ..documentstore.matching import compare_values, resolve_path_single

__all__ = [
    "MinKey",
    "MaxKey",
    "MIN_KEY",
    "MAX_KEY",
    "DEFAULT_CHUNK_SIZE_BYTES",
    "ShardKeyPattern",
    "Chunk",
    "ChunkManager",
    "encode_boundary",
    "decode_boundary",
]

#: Default maximum chunk size (64 MB), as in the paper.
DEFAULT_CHUNK_SIZE_BYTES = 64 * 1024 * 1024


class MinKey:
    """Sentinel smaller than every shard-key value."""

    def __repr__(self) -> str:
        return "MinKey"


class MaxKey:
    """Sentinel larger than every shard-key value."""

    def __repr__(self) -> str:
        return "MaxKey"


MIN_KEY = MinKey()
MAX_KEY = MaxKey()


def encode_boundary(value: Any) -> Any:
    """Encode a chunk-boundary value for the persisted cluster metadata.

    The sentinels and tuple boundaries (compound shard keys) have no JSON
    shape of their own, so they travel under ``$``-prefixed markers; every
    other value rides the store's extended-JSON encoding unchanged.
    """
    if isinstance(value, MinKey):
        return {"$minKey": 1}
    if isinstance(value, MaxKey):
        return {"$maxKey": 1}
    if isinstance(value, tuple):
        return {"$tuple": [encode_boundary(item) for item in value]}
    return value


def decode_boundary(value: Any) -> Any:
    """Invert :func:`encode_boundary`."""
    if isinstance(value, Mapping):
        if "$minKey" in value:
            return MIN_KEY
        if "$maxKey" in value:
            return MAX_KEY
        if "$tuple" in value:
            return tuple(decode_boundary(item) for item in value["$tuple"])
    return value


def compare_boundary(left: Any, right: Any) -> int:
    """Compare chunk-boundary values, honouring the MinKey/MaxKey sentinels."""
    if left is right:
        return 0
    if isinstance(left, MinKey):
        return -1
    if isinstance(right, MinKey):
        return 1
    if isinstance(left, MaxKey):
        return 1
    if isinstance(right, MaxKey):
        return -1
    return compare_values(left, right)


@dataclass(frozen=True)
class ShardKeyPattern:
    """A shard key: an indexed field (or fields) plus the partitioning mode."""

    fields: tuple[str, ...]
    hashed: bool = False

    def __post_init__(self) -> None:
        if not self.fields:
            raise ShardKeyError("a shard key requires at least one field")
        if self.hashed and len(self.fields) > 1:
            raise ShardKeyError("hashed shard keys must be single-field")

    @classmethod
    def create(cls, key: str | Sequence[str] | Mapping[str, Any]) -> "ShardKeyPattern":
        """Build a pattern from ``"field"``, ``["a", "b"]`` or ``{"f": "hashed"}``."""
        if isinstance(key, str):
            return cls(fields=(key,))
        if isinstance(key, Mapping):
            fields = tuple(key.keys())
            hashed = any(value == "hashed" for value in key.values())
            return cls(fields=fields, hashed=hashed)
        return cls(fields=tuple(key))

    def extract(self, document: Mapping[str, Any]) -> Any:
        """Return the routing value of *document* under this shard key.

        Hashed keys return the hash of the field value; compound keys return a
        tuple.  A missing shard-key field raises :class:`ShardKeyError`, as the
        original system refuses such inserts into a sharded collection.
        """
        values = []
        for field_path in self.fields:
            value = resolve_path_single(document, field_path, default=None)
            if value is None:
                raise ShardKeyError(
                    f"document is missing shard key field {field_path!r}"
                )
            values.append(value)
        if self.hashed:
            return hashed_value(values[0])
        if len(values) == 1:
            return values[0]
        return tuple(values)

    def routing_value(self, raw_value: Any) -> Any:
        """Map a raw shard-key value to routing space (hash it if hashed)."""
        return hashed_value(raw_value) if self.hashed else raw_value

    def as_dict(self) -> dict[str, Any]:
        """Describe the pattern like ``shardCollection`` output."""
        return {field_path: ("hashed" if self.hashed else 1) for field_path in self.fields}


@dataclass
class Chunk:
    """A non-overlapping shard-key range assigned to one shard."""

    lower: Any
    upper: Any
    shard_id: str
    document_count: int = 0
    size_bytes: int = 0
    jumbo: bool = False
    key_samples: list[Any] = field(default_factory=list, repr=False)

    _MAX_SAMPLES = 512

    def contains(self, key_value: Any) -> bool:
        """Return True if *key_value* falls inside ``[lower, upper)``."""
        return (
            compare_boundary(key_value, self.lower) >= 0
            and compare_boundary(key_value, self.upper) < 0
        )

    def record_insert(self, key_value: Any, document_bytes: int) -> None:
        """Account for a newly routed document."""
        self.document_count += 1
        self.size_bytes += document_bytes
        if len(self.key_samples) < self._MAX_SAMPLES:
            self.key_samples.append(key_value)

    def record_inserts(self, key_values: Sequence[Any], total_bytes: int) -> None:
        """Batch version of :meth:`record_insert`: one size/count update."""
        self.document_count += len(key_values)
        self.size_bytes += total_bytes
        room = self._MAX_SAMPLES - len(self.key_samples)
        if room > 0:
            self.key_samples.extend(key_values[:room])

    def median_key(self) -> Any:
        """Return a split point candidate (median of sampled keys)."""
        if not self.key_samples:
            raise ChunkSplitError("chunk has no key samples to split on")
        ordered = sorted(
            self.key_samples,
            key=lambda value: _BoundarySortKey(value),
        )
        return ordered[len(ordered) // 2]

    def describe(self) -> dict[str, Any]:
        """Chunk metadata as stored on the config server."""
        return {
            "min": self.lower,
            "max": self.upper,
            "shard": self.shard_id,
            "count": self.document_count,
            "size": self.size_bytes,
            "jumbo": self.jumbo,
        }

    def to_metadata(self) -> dict[str, Any]:
        """Serializable chunk state, including sampled split-point keys."""
        return {
            "min": encode_boundary(self.lower),
            "max": encode_boundary(self.upper),
            "shard": self.shard_id,
            "count": self.document_count,
            "size": self.size_bytes,
            "jumbo": self.jumbo,
            "samples": [encode_boundary(sample) for sample in self.key_samples],
        }

    @classmethod
    def from_metadata(cls, data: Mapping[str, Any]) -> "Chunk":
        """Rebuild a chunk from :meth:`to_metadata` output."""
        return cls(
            lower=decode_boundary(data["min"]),
            upper=decode_boundary(data["max"]),
            shard_id=str(data["shard"]),
            document_count=int(data.get("count") or 0),
            size_bytes=int(data.get("size") or 0),
            jumbo=bool(data.get("jumbo")),
            key_samples=[decode_boundary(sample) for sample in data.get("samples") or []],
        )


class _BoundarySortKey:
    """Sort helper for boundary values (MinKey < values < MaxKey)."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def __lt__(self, other: "_BoundarySortKey") -> bool:
        return compare_boundary(self.value, other.value) < 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, _BoundarySortKey):
            return NotImplemented
        return compare_boundary(self.value, other.value) == 0


class ChunkManager:
    """The chunk table of one sharded collection.

    Splitting behaviour mirrors the paper: a chunk whose size exceeds the
    configured maximum is split at the median sampled key; if every sampled
    key is identical the chunk cannot be split and is marked *jumbo*.
    """

    def __init__(
        self,
        namespace: str,
        shard_key: ShardKeyPattern,
        shard_ids: Sequence[str],
        *,
        chunk_size_bytes: int = DEFAULT_CHUNK_SIZE_BYTES,
        initial_chunks_per_shard: int = 2,
    ) -> None:
        if not shard_ids:
            raise ShardKeyError("cannot create chunks without shards")
        self.namespace = namespace
        self.shard_key = shard_key
        self.chunk_size_bytes = chunk_size_bytes
        self._shard_ids = list(shard_ids)
        self.chunks: list[Chunk] = []
        if shard_key.hashed:
            self._create_initial_hashed_chunks(initial_chunks_per_shard)
        else:
            # Range sharding starts with a single full-range chunk on the
            # first shard; splits and the balancer spread it out as data grows.
            self.chunks.append(Chunk(lower=MIN_KEY, upper=MAX_KEY, shard_id=self._shard_ids[0]))

    def _create_initial_hashed_chunks(self, chunks_per_shard: int) -> None:
        """Pre-split the 64-bit hash space evenly across shards."""
        total_chunks = max(1, chunks_per_shard) * len(self._shard_ids)
        hash_space = 2 ** 64
        step = hash_space // total_chunks
        boundaries: list[Any] = [MIN_KEY]
        boundaries.extend(step * index for index in range(1, total_chunks))
        boundaries.append(MAX_KEY)
        for index in range(total_chunks):
            shard_id = self._shard_ids[index % len(self._shard_ids)]
            self.chunks.append(
                Chunk(lower=boundaries[index], upper=boundaries[index + 1], shard_id=shard_id)
            )

    # -- lookups --------------------------------------------------------------

    def chunk_for(self, routing_value: Any) -> Chunk:
        """Return the chunk owning *routing_value*."""
        for chunk in self.chunks:
            if chunk.contains(routing_value):
                return chunk
        raise ShardKeyError(
            f"no chunk covers shard key value {routing_value!r} in {self.namespace}"
        )

    def route_batch(self, routing_values: Sequence[Any]) -> list[Chunk]:
        """Map every routing value to its owning chunk in a single pass.

        The chunk table is kept sorted by lower bound (splits replace a
        chunk in place, migrations only change ownership), so the lower
        bounds are wrapped as sort keys once and each value is located with
        one ``bisect`` — O(n log c) for a batch of n documents over c
        chunks, instead of the O(n·c) linear :meth:`chunk_for` scans the
        per-document path pays.  Statistics are *not* recorded; callers
        account the batch with :meth:`record_inserts` after the owning
        shards acknowledged the inserts.
        """
        boundaries = [_BoundarySortKey(chunk.lower) for chunk in self.chunks]
        resolved: list[Chunk] = []
        for value in routing_values:
            position = bisect.bisect_right(boundaries, _BoundarySortKey(value)) - 1
            if position < 0:
                raise ShardKeyError(
                    f"no chunk covers shard key value {value!r} in {self.namespace}"
                )
            chunk = self.chunks[position]
            if not chunk.contains(value):  # pragma: no cover - contiguity guard
                chunk = self.chunk_for(value)
            resolved.append(chunk)
        return resolved

    def shard_for_value(self, raw_value: Any) -> str:
        """Return the shard owning the document with shard-key *raw_value*."""
        return self.chunk_for(self.shard_key.routing_value(raw_value)).shard_id

    def shards_for_values(self, raw_values: Iterable[Any]) -> set[str]:
        """Return every shard owning at least one of *raw_values*."""
        return {self.shard_for_value(value) for value in raw_values}

    def shards_for_range(self, lower: Any, upper: Any) -> set[str]:
        """Return the shards owning any chunk overlapping ``[lower, upper]``.

        Only meaningful for range-partitioned collections; hashed collections
        always answer with every shard (range queries broadcast), which is the
        trade-off called out in Section 2.1.3.3.
        """
        if self.shard_key.hashed:
            return set(self.all_shards())
        overlapping = set()
        for chunk in self.chunks:
            if (
                compare_boundary(chunk.upper, lower) > 0
                and compare_boundary(chunk.lower, upper) <= 0
            ):
                overlapping.add(chunk.shard_id)
        return overlapping

    def all_shards(self) -> list[str]:
        """Every shard that currently owns at least one chunk."""
        return sorted({chunk.shard_id for chunk in self.chunks})

    def chunks_by_shard(self) -> dict[str, list[Chunk]]:
        """Group chunks by owning shard."""
        grouped: dict[str, list[Chunk]] = {shard_id: [] for shard_id in self._shard_ids}
        for chunk in self.chunks:
            grouped.setdefault(chunk.shard_id, []).append(chunk)
        return grouped

    # -- maintenance -----------------------------------------------------------

    def record_insert(self, routing_value: Any, document_bytes: int) -> Chunk:
        """Account a routed insert and split the chunk if it grew too large."""
        chunk = self.chunk_for(routing_value)
        chunk.record_insert(routing_value, document_bytes)
        if chunk.size_bytes > self.chunk_size_bytes and not chunk.jumbo:
            try:
                self.split_chunk(chunk)
            except ChunkSplitError:
                chunk.jumbo = True
        return chunk

    def record_inserts(
        self, chunk: Chunk, routing_values: Sequence[Any], total_bytes: int
    ) -> None:
        """Account a batch of inserts routed to *chunk* with one size update.

        A batch can push a chunk far past the split threshold in one go, so
        splitting recurses until every resulting chunk fits (or is jumbo) —
        matching what repeated per-document ``record_insert`` calls produce.
        """
        chunk.record_inserts(routing_values, total_bytes)
        oversized = [chunk]
        while oversized:
            candidate = oversized.pop()
            if candidate.size_bytes > self.chunk_size_bytes and not candidate.jumbo:
                try:
                    oversized.extend(self.split_chunk(candidate))
                except ChunkSplitError:
                    candidate.jumbo = True

    def split_chunk(self, chunk: Chunk, split_point: Any | None = None) -> tuple[Chunk, Chunk]:
        """Split *chunk* at *split_point* (default: median sampled key)."""
        if split_point is None:
            split_point = chunk.median_key()
        if (
            compare_boundary(split_point, chunk.lower) <= 0
            or compare_boundary(split_point, chunk.upper) >= 0
        ):
            raise ChunkSplitError(
                f"split point {split_point!r} does not strictly divide the chunk; "
                "all documents may share one shard key value (jumbo chunk)"
            )
        left_samples = [k for k in chunk.key_samples if compare_boundary(k, split_point) < 0]
        right_samples = [k for k in chunk.key_samples if compare_boundary(k, split_point) >= 0]
        ratio = len(left_samples) / max(1, len(chunk.key_samples))
        left = Chunk(
            lower=chunk.lower,
            upper=split_point,
            shard_id=chunk.shard_id,
            document_count=int(chunk.document_count * ratio),
            size_bytes=int(chunk.size_bytes * ratio),
            key_samples=left_samples,
        )
        right = Chunk(
            lower=split_point,
            upper=chunk.upper,
            shard_id=chunk.shard_id,
            document_count=chunk.document_count - left.document_count,
            size_bytes=chunk.size_bytes - left.size_bytes,
            key_samples=right_samples,
        )
        position = self.chunks.index(chunk)
        self.chunks[position:position + 1] = [left, right]
        return left, right

    def move_chunk(self, chunk: Chunk, destination_shard: str) -> None:
        """Reassign *chunk* to *destination_shard* (balancer migration)."""
        chunk.shard_id = destination_shard

    def describe(self) -> dict[str, Any]:
        """Collection sharding metadata, as the config server stores it."""
        return {
            "ns": self.namespace,
            "key": self.shard_key.as_dict(),
            "unique": False,
            "chunks": [chunk.describe() for chunk in self.chunks],
        }

    # -- persistence -----------------------------------------------------------

    def to_metadata(self) -> dict[str, Any]:
        """The full chunk table as a serializable document."""
        return {
            "ns": self.namespace,
            "key": {"fields": list(self.shard_key.fields), "hashed": self.shard_key.hashed},
            "chunk_size_bytes": self.chunk_size_bytes,
            "shard_ids": list(self._shard_ids),
            "chunks": [chunk.to_metadata() for chunk in self.chunks],
        }

    @classmethod
    def from_metadata(cls, data: Mapping[str, Any]) -> "ChunkManager":
        """Rebuild a chunk table from :meth:`to_metadata` output."""
        key = data["key"]
        manager = cls.__new__(cls)
        manager.namespace = str(data["ns"])
        manager.shard_key = ShardKeyPattern(
            fields=tuple(key["fields"]), hashed=bool(key["hashed"])
        )
        manager.chunk_size_bytes = int(data["chunk_size_bytes"])
        manager._shard_ids = [str(shard_id) for shard_id in data["shard_ids"]]
        manager.chunks = [Chunk.from_metadata(chunk) for chunk in data["chunks"]]
        return manager
