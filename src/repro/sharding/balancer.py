"""Chunk balancer.

The balancer keeps the number of chunks per shard even.  When a migration is
decided, the documents belonging to the chunk really move between the shard
stores (and across the simulated network), so post-balance data distribution
— and therefore per-shard query cost — matches the chunk table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..documentstore.bson import document_size
from ..documentstore.matching import compile_filter
from .chunks import Chunk, ChunkManager, MaxKey, MinKey
from .config_server import ConfigServer
from .network import SimulatedNetwork
from .shard import Shard

__all__ = ["Balancer", "MigrationRecord"]

#: A shard pair is rebalanced when the chunk-count difference reaches this.
DEFAULT_MIGRATION_THRESHOLD = 2


@dataclass(frozen=True)
class MigrationRecord:
    """One chunk migration performed by the balancer."""

    namespace: str
    source_shard: str
    destination_shard: str
    documents_moved: int
    bytes_moved: int


class Balancer:
    """Evens out chunk counts across shards, one migration at a time."""

    def __init__(
        self,
        config_server: ConfigServer,
        shards: dict[str, Shard],
        network: SimulatedNetwork | None = None,
        *,
        migration_threshold: int = DEFAULT_MIGRATION_THRESHOLD,
    ) -> None:
        self.config = config_server
        self._shards = shards
        self.network = network or SimulatedNetwork()
        self.migration_threshold = migration_threshold
        self.history: list[MigrationRecord] = []

    # ------------------------------------------------------------------ policy

    def _imbalance(self, manager: ChunkManager) -> tuple[str, str] | None:
        """Return (overloaded shard, underloaded shard) or None if balanced."""
        counts: dict[str, int] = {shard_id: 0 for shard_id in self.config.shard_ids}
        for chunk in manager.chunks:
            counts[chunk.shard_id] = counts.get(chunk.shard_id, 0) + 1
        most_loaded = max(counts, key=lambda shard_id: counts[shard_id])
        least_loaded = min(counts, key=lambda shard_id: counts[shard_id])
        if counts[most_loaded] - counts[least_loaded] >= self.migration_threshold:
            return most_loaded, least_loaded
        return None

    def needs_balancing(self, database_name: str, collection_name: str) -> bool:
        """True if the collection's chunks are unevenly spread."""
        manager = self.config.chunk_manager(database_name, collection_name)
        return self._imbalance(manager) is not None

    # -------------------------------------------------------------- migrations

    def _chunk_filter(self, manager: ChunkManager, chunk: Chunk) -> dict[str, Any]:
        """Build the query selecting the documents that live in *chunk*."""
        key_field = manager.shard_key.fields[0]
        conditions: dict[str, Any] = {}
        if manager.shard_key.hashed:
            # Hash routing cannot be expressed as a store query; the caller
            # filters documents manually instead.
            return {}
        if not isinstance(chunk.lower, MinKey):
            conditions["$gte"] = chunk.lower
        if not isinstance(chunk.upper, MaxKey):
            conditions["$lt"] = chunk.upper
        return {key_field: conditions} if conditions else {}

    def _documents_in_chunk(
        self,
        manager: ChunkManager,
        chunk: Chunk,
        shard: Shard,
        database_name: str,
        collection_name: str,
    ) -> list[dict[str, Any]]:
        collection = shard.collection(database_name, collection_name)
        if not manager.shard_key.hashed:
            query = self._chunk_filter(manager, chunk)
            return collection.find(query).to_list()
        matching = []
        predicate = compile_filter({})
        for document in collection.find({}):
            if not predicate(document):
                continue
            routing_value = manager.shard_key.extract(document)
            if chunk.contains(routing_value):
                matching.append(document)
        return matching

    def migrate_chunk(
        self,
        database_name: str,
        collection_name: str,
        chunk: Chunk,
        destination_shard_id: str,
    ) -> MigrationRecord:
        """Move *chunk* (metadata and documents) to *destination_shard_id*."""
        manager = self.config.chunk_manager(database_name, collection_name)
        source = self._shards[chunk.shard_id]
        destination = self._shards[destination_shard_id]

        documents = self._documents_in_chunk(
            manager, chunk, source, database_name, collection_name
        )
        shipped = self.network.ship_documents(
            documents,
            source=chunk.shard_id,
            destination=destination_shard_id,
            purpose="moveChunk",
        )
        if shipped:
            destination.collection(database_name, collection_name).insert_many(shipped)
            ids = [document["_id"] for document in documents]
            source.collection(database_name, collection_name).delete_many({"_id": {"$in": ids}})
        record = MigrationRecord(
            namespace=manager.namespace,
            source_shard=chunk.shard_id,
            destination_shard=destination_shard_id,
            documents_moved=len(documents),
            bytes_moved=sum(document_size(document) for document in documents),
        )
        manager.move_chunk(chunk, destination_shard_id)
        self.history.append(record)
        return record

    def balance_collection(
        self,
        database_name: str,
        collection_name: str,
        *,
        max_migrations: int = 100,
    ) -> list[MigrationRecord]:
        """Run balancing rounds for one collection until it is even."""
        manager = self.config.chunk_manager(database_name, collection_name)
        migrations: list[MigrationRecord] = []
        for _round in range(max_migrations):
            imbalance = self._imbalance(manager)
            if imbalance is None:
                break
            overloaded, underloaded = imbalance
            candidate = next(
                (chunk for chunk in manager.chunks if chunk.shard_id == overloaded and not chunk.jumbo),
                None,
            )
            if candidate is None:
                break
            migrations.append(
                self.migrate_chunk(database_name, collection_name, candidate, underloaded)
            )
        return migrations

    def balance_all(self, *, max_migrations: int = 100) -> list[MigrationRecord]:
        """Balance every sharded collection in the cluster."""
        migrations: list[MigrationRecord] = []
        for namespace in self.config.sharded_namespaces():
            database_name, collection_name = namespace.split(".", 1)
            migrations.extend(
                self.balance_collection(
                    database_name, collection_name, max_migrations=max_migrations
                )
            )
        return migrations
