"""Denormalization: the document-embedding algorithms of Figures 4.6 and 4.7.

Before the denormalized-model experiments (Experiments 3 and 6) can run, each
fact collection is denormalized by replacing every foreign-key value with the
referenced dimension document:

* :func:`embed_documents` is the ``EmbedDocuments(F, D)`` algorithm of
  Figure 4.7 — build a hash map from dimension primary key to dimension
  document, then for every entry issue a multi-document ``update`` that
  replaces the foreign-key value with the embedded document;
* :func:`create_denormalized_collection` is the driver of Figure 4.6 — copy a
  fact collection and embed each of its dimension collections in turn;
* :func:`denormalize_store_sales` / ``_store_returns`` / ``_inventory`` apply
  the per-fact-table embedding plans of the thesis (Section 4.1.3.1), with
  one documented addition: the matching ``store_returns`` document (joined on
  ticket number, item, and customer) is embedded into the denormalized
  ``store_sales`` document under ``ss_return`` so Query 50 can run against a
  single collection, exactly as the Appendix B query does.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from .queryspec import DimensionJoin

__all__ = [
    "EmbeddingReport",
    "DenormalizationReport",
    "embed_documents",
    "create_denormalized_collection",
    "create_query_indexes",
    "DENORMALIZED_QUERY_INDEXES",
    "STORE_SALES_EMBEDDING_PLAN",
    "STORE_RETURNS_EMBEDDING_PLAN",
    "INVENTORY_EMBEDDING_PLAN",
    "denormalize_store_sales",
    "denormalize_store_returns",
    "denormalize_inventory",
    "denormalize_all_facts",
]


@dataclass(frozen=True)
class EmbeddingReport:
    """Outcome of embedding one dimension collection into a fact collection."""

    fact_collection: str
    dimension_collection: str
    fact_field: str
    dimension_documents: int
    fact_documents_updated: int
    seconds: float


@dataclass
class DenormalizationReport:
    """Outcome of denormalizing one fact collection."""

    fact_collection: str
    target_collection: str
    documents: int = 0
    embeddings: list[EmbeddingReport] = field(default_factory=list)
    seconds: float = 0.0


def embed_documents(
    fact_collection,
    dimension_collection,
    *,
    fact_field: str,
    dimension_primary_key: str,
    dimension_filter: Mapping[str, Any] | None = None,
) -> EmbeddingReport:
    """Embed *dimension_collection* documents into *fact_collection*.

    This is ``EmbedDocuments(F, D)`` from Figure 4.7:

    1. read every dimension document through a cursor (optionally restricted
       by *dimension_filter*, used by the normalized algorithm when the
       dimension was already filtered by its ``where`` clause);
    2. drop the ``_id`` field from the copy that will be embedded;
    3. build a hash map ``primary key -> document``;
    4. for every entry, run
       ``update(F, {fact_field: key}, {$set: {fact_field: document}},
       upsert=False, multi=True)``.

    The collections may be stand-alone or routed (sharded); in the sharded
    case every update is an individual routed round trip, which is precisely
    the overhead the paper attributes to the normalized/sharded experiments.
    """
    started = time.perf_counter()
    documents_by_key: dict[Any, dict[str, Any]] = {}
    # The unified read protocol projects _id out shard- or engine-side, so
    # the embedded copies never carry (or ship) the primary-key field.
    for document in dimension_collection.find(dimension_filter or {}, {"_id": 0}):
        key = document.get(dimension_primary_key)
        if key is not None:
            documents_by_key[key] = document

    updated = 0
    for key, document in documents_by_key.items():
        result = fact_collection.update_many(
            {fact_field: key},
            {"$set": {fact_field: document}},
            upsert=False,
        )
        updated += result.modified_count
    elapsed = time.perf_counter() - started
    return EmbeddingReport(
        fact_collection=fact_collection.name,
        dimension_collection=dimension_collection.name,
        fact_field=fact_field,
        dimension_documents=len(documents_by_key),
        fact_documents_updated=updated,
        seconds=elapsed,
    )


def _copy_collection(database, source_name: str, target_name: str, *, batch_size: int = 500) -> int:
    """Copy every document of ``database[source_name]`` into a new collection."""
    source = database[source_name]
    target = database[target_name]
    target.drop()
    count = 0
    batch: list[dict[str, Any]] = []
    for document in source.find({}, {"_id": 0}):
        batch.append(document)
        if len(batch) >= batch_size:
            target.insert_many(batch)
            count += len(batch)
            batch = []
    if batch:
        target.insert_many(batch)
        count += len(batch)
    return count


def create_denormalized_collection(
    database,
    fact_name: str,
    dimensions: Sequence[DimensionJoin],
    *,
    target_name: str | None = None,
    create_indexes: bool = True,
) -> DenormalizationReport:
    """Create a denormalized copy of a fact collection (Figure 4.6).

    ``dimensions`` lists the dimension collections to embed, in order.  Joins
    that descend into an already embedded document use a dotted
    ``fact_field`` (for example ``ss_customer_sk.c_current_addr_sk``), which
    is how the nested customer-address embedding of Query 46 is expressed.
    """
    started = time.perf_counter()
    if target_name is None:
        target_name = f"{fact_name}_denormalized"
    report = DenormalizationReport(fact_collection=fact_name, target_collection=target_name)
    report.documents = _copy_collection(database, fact_name, target_name)
    target = database[target_name]
    for dimension in dimensions:
        # A temporary index on the foreign-key field gives the per-key update
        # of EmbedDocuments its O(log m) lookup (Section 4.1.3.1.1); once the
        # field holds embedded documents the index is no longer useful and is
        # dropped so later embedding passes do not have to maintain it.
        index_name = ""
        if create_indexes:
            index_name = target.create_index(dimension.fact_field)
        report.embeddings.append(
            embed_documents(
                target,
                database[dimension.collection],
                fact_field=dimension.fact_field,
                dimension_primary_key=dimension.primary_key,
            )
        )
        if create_indexes and index_name:
            target.drop_index(index_name)
    report.seconds = time.perf_counter() - started
    return report


# ---------------------------------------------------------------------------
# Per-fact-table embedding plans (Section 4.1.3.1)
# ---------------------------------------------------------------------------

STORE_SALES_EMBEDDING_PLAN: tuple[DimensionJoin, ...] = (
    DimensionJoin("date_dim", "d_date_sk", "ss_sold_date_sk"),
    DimensionJoin("item", "i_item_sk", "ss_item_sk"),
    DimensionJoin("customer_demographics", "cd_demo_sk", "ss_cdemo_sk"),
    DimensionJoin("household_demographics", "hd_demo_sk", "ss_hdemo_sk"),
    DimensionJoin("customer_address", "ca_address_sk", "ss_addr_sk"),
    DimensionJoin("store", "s_store_sk", "ss_store_sk"),
    DimensionJoin("promotion", "p_promo_sk", "ss_promo_sk"),
    DimensionJoin("customer", "c_customer_sk", "ss_customer_sk"),
    # Nested embedding: the customer's current address inside the already
    # embedded customer document (Query 46 compares it to the bought city).
    DimensionJoin("customer_address", "ca_address_sk", "ss_customer_sk.c_current_addr_sk"),
)

STORE_RETURNS_EMBEDDING_PLAN: tuple[DimensionJoin, ...] = (
    DimensionJoin("date_dim", "d_date_sk", "sr_returned_date_sk"),
    DimensionJoin("item", "i_item_sk", "sr_item_sk"),
    DimensionJoin("store", "s_store_sk", "sr_store_sk"),
    DimensionJoin("reason", "r_reason_sk", "sr_reason_sk"),
    DimensionJoin("customer", "c_customer_sk", "sr_customer_sk"),
)

INVENTORY_EMBEDDING_PLAN: tuple[DimensionJoin, ...] = (
    DimensionJoin("date_dim", "d_date_sk", "inv_date_sk"),
    DimensionJoin("item", "i_item_sk", "inv_item_sk"),
    DimensionJoin("warehouse", "w_warehouse_sk", "inv_warehouse_sk"),
)

#: Secondary indexes created on each denormalized collection so the leading
#: ``$match`` of the Appendix B pipelines can be served from an index, as on
#: the original system (the thesis sizes the cluster so that "all the
#: collections and indexes related to the query reside in the RAM").
DENORMALIZED_QUERY_INDEXES: dict[str, tuple[Any, ...]] = {
    "store_sales_denormalized": (
        "ss_sold_date_sk.d_year",        # Query 7
        "ss_store_sk.s_city",            # Query 46
        "ss_return.sr_returned_date.d_year",  # Query 50
        "ss_cdemo_sk.cd_education_status",
    ),
    "store_returns_denormalized": (
        "sr_returned_date_sk.d_year",
    ),
    "inventory_denormalized": (
        "inv_item_sk.i_current_price",   # Query 21 price band
        "inv_date_sk.d_date",
    ),
}


def create_query_indexes(database, target_name: str) -> list[str]:
    """Create the per-query secondary indexes for one denormalized collection."""
    created = []
    for keys in DENORMALIZED_QUERY_INDEXES.get(target_name, ()):
        created.append(database[target_name].create_index(keys))
    return created


def _embed_matching_returns(
    database,
    denormalized_sales_name: str,
    *,
    returns_collection_name: str = "store_returns",
) -> EmbeddingReport:
    """Embed the matching ``store_returns`` document into denormalized sales.

    The join keys are ticket number, item, and customer (the Query 50 join
    condition).  The embedded return document keeps its original numeric
    foreign keys and additionally gets its return date replaced by the date
    dimension document, so the aging buckets and the year/month filter of
    Query 50 can both be answered from the sales document alone.
    """
    started = time.perf_counter()
    sales = database[denormalized_sales_name]
    sales.create_index("ss_ticket_number")
    returns = database[returns_collection_name]
    dates = {
        row["d_date_sk"]: row for row in database["date_dim"].find({}, {"_id": 0})
    }

    embedded = 0
    return_documents = returns.find({}, {"_id": 0}).to_list()
    for return_document in return_documents:
        returned_date_sk = return_document.get("sr_returned_date_sk")
        if returned_date_sk in dates:
            return_document["sr_returned_date"] = dates[returned_date_sk]
        result = sales.update_many(
            {
                "ss_ticket_number": return_document.get("sr_ticket_number"),
                "ss_item_sk.i_item_sk": return_document.get("sr_item_sk"),
            },
            {"$set": {"ss_return": return_document}},
            upsert=False,
        )
        embedded += result.modified_count
    return EmbeddingReport(
        fact_collection=denormalized_sales_name,
        dimension_collection=returns_collection_name,
        fact_field="ss_return",
        dimension_documents=len(return_documents),
        fact_documents_updated=embedded,
        seconds=time.perf_counter() - started,
    )


def denormalize_store_sales(
    database,
    *,
    target_name: str = "store_sales_denormalized",
    embed_returns: bool = True,
) -> DenormalizationReport:
    """Denormalize ``store_sales`` (the fact collection of Q7, Q46, and Q50)."""
    report = create_denormalized_collection(
        database, "store_sales", STORE_SALES_EMBEDDING_PLAN, target_name=target_name
    )
    if embed_returns:
        started = time.perf_counter()
        report.embeddings.append(_embed_matching_returns(database, target_name))
        report.seconds += time.perf_counter() - started
    create_query_indexes(database, target_name)
    return report


def denormalize_store_returns(
    database,
    *,
    target_name: str = "store_returns_denormalized",
) -> DenormalizationReport:
    """Denormalize ``store_returns``."""
    report = create_denormalized_collection(
        database, "store_returns", STORE_RETURNS_EMBEDDING_PLAN, target_name=target_name
    )
    create_query_indexes(database, target_name)
    return report


def denormalize_inventory(
    database,
    *,
    target_name: str = "inventory_denormalized",
) -> DenormalizationReport:
    """Denormalize ``inventory`` (the fact collection of Q21)."""
    report = create_denormalized_collection(
        database, "inventory", INVENTORY_EMBEDDING_PLAN, target_name=target_name
    )
    create_query_indexes(database, target_name)
    return report


def denormalize_all_facts(database) -> dict[str, DenormalizationReport]:
    """Denormalize the three fact collections used by the evaluation queries."""
    return {
        "store_sales": denormalize_store_sales(database),
        "store_returns": denormalize_store_returns(database),
        "inventory": denormalize_inventory(database),
    }
