"""The paper's contribution: migration, denormalization, query translation,
and the six experimental setups.

Typical usage::

    from repro.core import ExperimentHarness

    harness = ExperimentHarness()
    result = harness.run_experiment(3)          # denormalized / stand-alone
    for query_id, run in result.query_runs.items():
        print(query_id, run.simulated_seconds)
"""

from .denormalize import (
    DenormalizationReport,
    EmbeddingReport,
    INVENTORY_EMBEDDING_PLAN,
    STORE_RETURNS_EMBEDDING_PLAN,
    STORE_SALES_EMBEDDING_PLAN,
    create_denormalized_collection,
    denormalize_all_facts,
    denormalize_inventory,
    denormalize_store_returns,
    denormalize_store_sales,
    embed_documents,
)
from .experiments import (
    ALL_TABLES,
    DEFAULT_SHARD_CPU_FACTOR,
    EXPERIMENTS,
    ExperimentConfig,
    ExperimentHarness,
    ExperimentResult,
    QueryRunResult,
    SHARD_KEYS,
    tiny_profile,
)
from .migration import (
    DatasetLoadReport,
    MigrationResult,
    migrate_dat_directory,
    migrate_dat_file,
    migrate_generated_dataset,
    migrate_rows,
    row_to_document,
)
from .queryspec import (
    DimensionJoin,
    FactJoin,
    QUERY_SPECS,
    QuerySpec,
    date_sk_for,
    query_spec,
)
from .results import (
    format_seconds,
    paper_reference_table_44,
    paper_reference_table_45,
    render_bar_chart,
    render_table,
)
from .selectivity import QuerySelectivity, measure_selectivity, selectivity_table
from .translate_denormalized import (
    DENORMALIZED_COLLECTIONS,
    denormalized_pipeline,
    run_denormalized_query,
)
from .translate_normalized import (
    NormalizedExecutionReport,
    normalized_final_pipeline,
    run_normalized_query,
)

__all__ = [
    "ALL_TABLES",
    "DEFAULT_SHARD_CPU_FACTOR",
    "DENORMALIZED_COLLECTIONS",
    "DatasetLoadReport",
    "DenormalizationReport",
    "DimensionJoin",
    "EXPERIMENTS",
    "EmbeddingReport",
    "ExperimentConfig",
    "ExperimentHarness",
    "ExperimentResult",
    "FactJoin",
    "INVENTORY_EMBEDDING_PLAN",
    "MigrationResult",
    "NormalizedExecutionReport",
    "QUERY_SPECS",
    "QueryRunResult",
    "QuerySelectivity",
    "QuerySpec",
    "SHARD_KEYS",
    "STORE_RETURNS_EMBEDDING_PLAN",
    "STORE_SALES_EMBEDDING_PLAN",
    "create_denormalized_collection",
    "date_sk_for",
    "denormalize_all_facts",
    "denormalize_inventory",
    "denormalize_store_returns",
    "denormalize_store_sales",
    "denormalized_pipeline",
    "embed_documents",
    "format_seconds",
    "measure_selectivity",
    "migrate_dat_directory",
    "migrate_dat_file",
    "migrate_generated_dataset",
    "migrate_rows",
    "normalized_final_pipeline",
    "paper_reference_table_44",
    "paper_reference_table_45",
    "query_spec",
    "render_bar_chart",
    "render_table",
    "row_to_document",
    "run_denormalized_query",
    "run_normalized_query",
    "selectivity_table",
    "tiny_profile",
]
