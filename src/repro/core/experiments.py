"""The six experimental setups of Table 4.1 and the harness that runs them.

=============  ===========  ============  ============
Experiment     dataset      data model    environment
=============  ===========  ============  ============
Experiment 1   small (1GB)  normalized    sharded
Experiment 2   small (1GB)  normalized    stand-alone
Experiment 3   small (1GB)  denormalized  stand-alone
Experiment 4   large (5GB)  normalized    sharded
Experiment 5   large (5GB)  normalized    stand-alone
Experiment 6   large (5GB)  denormalized  stand-alone
=============  ===========  ============  ============

Two extension experiments (7 and 8) deploy the *denormalized* model on the
sharded cluster — the future-work configuration of Section 5.2.

Timing model
------------
Stand-alone experiments report measured wall time.  Sharded experiments run
in one process with the router's scatter fan-outs executing *concurrently*
(worker threads, see :mod:`repro.sharding.executor`); their measured wall
time is corrected by the router's cost model (see
:class:`repro.sharding.router.RouterMetrics`): the **observed** concurrent
execution window of each fan-out (``parallel_shard_seconds``, a measured
wall-clock makespan) is replaced by the **modelled** cluster makespan —
the per-operation maximum across shards scaled by the shard ``cpu_factor``
(the paper's stand-alone machine is an m4.4xlarge while shard nodes are
t2.large / m4.xlarge) — and every routed message adds simulated network
latency and transfer time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from ..documentstore.client import DocumentStoreClient
from ..sharding.cluster import ShardedCluster
from ..sharding.network import NetworkModel
from ..sharding.shard import ShardDescription
from ..tpcds.generator import TPCDSGenerator
from ..tpcds.queries import QUERY_IDS
from ..tpcds.scaling import SCALE_LARGE, SCALE_SMALL, ScaleProfile
from ..tpcds.schema import TPCDS_TABLES
from .denormalize import denormalize_all_facts
from .migration import DatasetLoadReport, migrate_generated_dataset
from .translate_denormalized import run_denormalized_query
from .translate_normalized import run_normalized_query

__all__ = [
    "ExperimentConfig",
    "EXPERIMENTS",
    "QueryRunResult",
    "ExperimentResult",
    "ExperimentHarness",
    "SHARD_KEYS",
    "tiny_profile",
    "DEFAULT_SHARD_CPU_FACTOR",
]

#: Shard keys used when the collections are sharded (Experiments 1/4).  Data
#: is partitioned at the collection level, as in the paper: every collection
#: the queries touch is sharded.  ``store_returns`` is range-partitioned on
#: its return date, so Query 50's month filter targets a subset of the
#: shards; the other facts use hashed keys that none of the queries
#: constrain, so their scans broadcast (Section 4.3).  Dimensions are hashed
#: on their primary keys for even distribution.
SHARD_KEYS: dict[str, Mapping[str, Any]] = {
    "store_sales": {"ss_item_sk": "hashed"},
    "store_returns": {"sr_returned_date_sk": 1},
    "inventory": {"inv_item_sk": "hashed"},
    "date_dim": {"d_date_sk": "hashed"},
    "item": {"i_item_sk": "hashed"},
    "customer_demographics": {"cd_demo_sk": "hashed"},
    "promotion": {"p_promo_sk": "hashed"},
    "store": {"s_store_sk": "hashed"},
    "household_demographics": {"hd_demo_sk": "hashed"},
    "customer_address": {"ca_address_sk": "hashed"},
    "customer": {"c_customer_sk": "hashed"},
    "warehouse": {"w_warehouse_sk": "hashed"},
}

#: Chunk size used by the sharded experiments.  The paper uses the 64 MB
#: default against multi-GB collections; the reproduction's collections are
#: three orders of magnitude smaller, so the chunk size is reduced by the
#: same ratio to keep range-partitioned collections split across shards.
EXPERIMENT_CHUNK_SIZE_BYTES = 64 * 1024

#: Shard keys for the denormalized-on-sharded extension experiments
#: (Section 5.2 future work).  The embedded dimensions make most original
#: foreign keys documents, so the keys use either the remaining scalar fields
#: or dotted paths into the embedded documents.
DENORMALIZED_SHARD_KEYS: dict[str, Mapping[str, Any]] = {
    "store_sales_denormalized": {"ss_ticket_number": "hashed"},
    "store_returns_denormalized": {"sr_ticket_number": "hashed"},
    "inventory_denormalized": {"inv_item_sk.i_item_sk": "hashed"},
}

#: Modelled slowdown of a cluster node relative to the stand-alone machine.
#: The default models equal per-core speed (a single query is largely
#: single-threaded on both deployments); the paper's hardware asymmetry
#: (m4.4xlarge stand-alone vs t2.large/m4.xlarge shards) can be explored by
#: raising this factor — see the ablation benchmark.
DEFAULT_SHARD_CPU_FACTOR = 1.0


def tiny_profile(reduction: float = 1.0 / 20000.0) -> ScaleProfile:
    """A very small profile used by tests and the quickstart example."""
    return ScaleProfile(name="tiny", paper_gb=1, reduction=reduction)


@dataclass(frozen=True)
class ExperimentConfig:
    """One row of Table 4.1."""

    number: int
    scale: ScaleProfile
    data_model: str  # "normalized" | "denormalized"
    environment: str  # "standalone" | "sharded"

    @property
    def label(self) -> str:
        """Human-readable description used in reports."""
        return (
            f"Experiment {self.number} — {self.scale.name} dataset / "
            f"{self.data_model} data model / {self.environment} system"
        )


#: Table 4.1 (experiments 1-6) plus the Section 5.2 extensions (7-8).
EXPERIMENTS: dict[int, ExperimentConfig] = {
    1: ExperimentConfig(1, SCALE_SMALL, "normalized", "sharded"),
    2: ExperimentConfig(2, SCALE_SMALL, "normalized", "standalone"),
    3: ExperimentConfig(3, SCALE_SMALL, "denormalized", "standalone"),
    4: ExperimentConfig(4, SCALE_LARGE, "normalized", "sharded"),
    5: ExperimentConfig(5, SCALE_LARGE, "normalized", "standalone"),
    6: ExperimentConfig(6, SCALE_LARGE, "denormalized", "standalone"),
    7: ExperimentConfig(7, SCALE_SMALL, "denormalized", "sharded"),
    8: ExperimentConfig(8, SCALE_LARGE, "denormalized", "sharded"),
}


@dataclass
class QueryRunResult:
    """Outcome of running one query in one experiment."""

    experiment: int
    query_id: int
    wall_seconds: float
    simulated_seconds: float
    result_documents: int
    runs: int = 1
    router_metrics: dict[str, Any] | None = None
    network: dict[str, Any] | None = None

    def as_row(self) -> dict[str, Any]:
        """Row for the Table 4.5 report."""
        return {
            "experiment": self.experiment,
            "query": self.query_id,
            "wall_seconds": round(self.wall_seconds, 4),
            "simulated_seconds": round(self.simulated_seconds, 4),
            "results": self.result_documents,
        }


@dataclass
class ExperimentResult:
    """Every query result of one experimental setup."""

    config: ExperimentConfig
    query_runs: dict[int, QueryRunResult] = field(default_factory=dict)
    load_report: DatasetLoadReport | None = None

    def runtime_row(self) -> dict[str, Any]:
        """One Table 4.5 row: experiment number -> per-query runtimes."""
        row: dict[str, Any] = {"experiment": self.config.number}
        for query_id, run in sorted(self.query_runs.items()):
            row[f"query{query_id}"] = round(run.simulated_seconds, 4)
        return row


class ExperimentHarness:
    """Builds the deployments of Table 4.1 and runs queries against them.

    Environments are built lazily and cached, so running all four queries
    against one experiment loads the data exactly once — mirroring the
    paper's procedure of loading each dataset and then executing the query
    set repeatedly (with the data cached in memory).
    """

    def __init__(
        self,
        *,
        seed: int = 20151109,
        shard_count: int = 3,
        shard_cpu_factor: float = DEFAULT_SHARD_CPU_FACTOR,
        network_model: NetworkModel | None = None,
        scale_overrides: Mapping[str, ScaleProfile] | None = None,
        tables: Iterable[str] | None = None,
    ) -> None:
        self.seed = seed
        self.shard_count = shard_count
        self.shard_cpu_factor = shard_cpu_factor
        self.network_model = network_model or NetworkModel()
        self._scales: dict[str, ScaleProfile] = {
            SCALE_SMALL.name: SCALE_SMALL,
            SCALE_LARGE.name: SCALE_LARGE,
        }
        if scale_overrides:
            self._scales.update(scale_overrides)
        # Restricting the loaded tables (default: the 12 query tables) keeps
        # the harness fast; pass ``tables=None`` explicitly via ALL_TABLES to
        # load the complete schema for the load-time benchmarks.
        self._tables = tuple(tables) if tables is not None else None
        self._generators: dict[str, TPCDSGenerator] = {}
        self._standalone: dict[str, tuple[DocumentStoreClient, Any]] = {}
        self._standalone_denormalized: set[str] = set()
        self._sharded: dict[str, tuple[ShardedCluster, Any]] = {}
        self._sharded_denormalized: dict[str, tuple[ShardedCluster, Any]] = {}
        self._load_reports: dict[str, DatasetLoadReport] = {}

    # ----------------------------------------------------------- infrastructure

    def scale(self, config: ExperimentConfig) -> ScaleProfile:
        """The (possibly overridden) scale profile for an experiment."""
        return self._scales.get(config.scale.name, config.scale)

    def generator(self, profile: ScaleProfile) -> TPCDSGenerator:
        """The (cached) data generator for *profile*."""
        if profile.name not in self._generators:
            self._generators[profile.name] = TPCDSGenerator(profile, seed=self.seed)
        return self._generators[profile.name]

    def load_report(self, profile: ScaleProfile) -> DatasetLoadReport | None:
        """The stand-alone load report recorded for *profile*, if loaded."""
        return self._load_reports.get(profile.name)

    def _query_tables(self) -> tuple[str, ...]:
        if self._tables is not None:
            return self._tables
        from ..tpcds.schema import QUERY_TABLES

        return QUERY_TABLES

    # -------------------------------------------------------------- stand-alone

    def standalone_database(self, profile: ScaleProfile):
        """The stand-alone deployment loaded with normalized collections."""
        if profile.name not in self._standalone:
            client = DocumentStoreClient(name=f"standalone-{profile.name}")
            database = client[profile.database_name]
            report = migrate_generated_dataset(
                database, self.generator(profile), tables=self._query_tables()
            )
            self._load_reports[profile.name] = report
            self._standalone[profile.name] = (client, database)
        return self._standalone[profile.name][1]

    def standalone_denormalized_database(self, profile: ScaleProfile):
        """The stand-alone deployment with denormalized fact collections."""
        database = self.standalone_database(profile)
        if profile.name not in self._standalone_denormalized:
            denormalize_all_facts(database)
            self._standalone_denormalized.add(profile.name)
        return database

    # ------------------------------------------------------------------ sharded

    def _build_cluster(self) -> ShardedCluster:
        descriptions = [
            ShardDescription(shard_id=f"shard{i + 1}", cpu_factor=self.shard_cpu_factor)
            for i in range(self.shard_count)
        ]
        return ShardedCluster(
            shard_descriptions=descriptions, network_model=self.network_model
        )

    def sharded_database(self, profile: ScaleProfile):
        """The sharded deployment loaded with normalized collections."""
        if profile.name not in self._sharded:
            cluster = self._build_cluster()
            database_name = profile.database_name
            cluster.enable_sharding(database_name)
            for collection_name, shard_key in SHARD_KEYS.items():
                if collection_name in self._query_tables():
                    cluster.shard_collection(
                        database_name,
                        collection_name,
                        shard_key,
                        chunk_size_bytes=EXPERIMENT_CHUNK_SIZE_BYTES,
                    )
            routed = cluster.get_database(database_name)
            migrate_generated_dataset(
                routed, self.generator(profile), tables=self._query_tables()
            )
            cluster.balance()
            cluster.reset_metrics()
            self._sharded[profile.name] = (cluster, routed)
        return self._sharded[profile.name]

    def sharded_denormalized_database(self, profile: ScaleProfile):
        """The sharded deployment with denormalized collections (extension).

        The denormalized collections are built once on the stand-alone
        deployment (denormalization itself is not what Experiments 7/8
        measure) and then loaded into a fresh cluster, sharded on the keys of
        :data:`DENORMALIZED_SHARD_KEYS`.  Dimension collections are loaded
        too so the ``$out`` result collections and ad-hoc lookups still work.
        """
        if profile.name not in self._sharded_denormalized:
            source = self.standalone_denormalized_database(profile)
            cluster = self._build_cluster()
            database_name = profile.database_name
            cluster.enable_sharding(database_name)
            for collection_name, shard_key in DENORMALIZED_SHARD_KEYS.items():
                cluster.shard_collection(
                    database_name,
                    collection_name,
                    shard_key,
                    chunk_size_bytes=EXPERIMENT_CHUNK_SIZE_BYTES,
                )
            routed = cluster.get_database(database_name)
            for collection_name in source.list_collection_names():
                documents = source[collection_name].find({}, {"_id": 0}).to_list()
                if documents:
                    routed[collection_name].insert_many(documents)
            cluster.balance()
            cluster.reset_metrics()
            self._sharded_denormalized[profile.name] = (cluster, routed)
        return self._sharded_denormalized[profile.name]

    # ------------------------------------------------------------------- running

    def run_query(
        self,
        experiment_number: int,
        query_id: int,
        *,
        repetitions: int = 1,
    ) -> QueryRunResult:
        """Run one query in one experiment and return its best-of-N timing.

        The paper runs every query five times with the data cached and
        reports the best run (Section 4.2); ``repetitions`` reproduces that
        protocol.
        """
        config = EXPERIMENTS[experiment_number]
        profile = self.scale(config)
        best: QueryRunResult | None = None
        for _attempt in range(max(1, repetitions)):
            run = self._run_once(config, profile, query_id)
            if best is None or run.simulated_seconds < best.simulated_seconds:
                best = run
        assert best is not None
        best.runs = max(1, repetitions)
        return best

    def _run_once(
        self, config: ExperimentConfig, profile: ScaleProfile, query_id: int
    ) -> QueryRunResult:
        if config.environment == "standalone":
            if config.data_model == "denormalized":
                database = self.standalone_denormalized_database(profile)
                started = time.perf_counter()
                results = run_denormalized_query(database, query_id)
                wall = time.perf_counter() - started
                return QueryRunResult(
                    experiment=config.number,
                    query_id=query_id,
                    wall_seconds=wall,
                    simulated_seconds=wall,
                    result_documents=len(results),
                )
            database = self.standalone_database(profile)
            started = time.perf_counter()
            report = run_normalized_query(database, query_id)
            wall = time.perf_counter() - started
            return QueryRunResult(
                experiment=config.number,
                query_id=query_id,
                wall_seconds=wall,
                simulated_seconds=wall,
                result_documents=report.result_documents,
            )

        if config.data_model == "denormalized":
            cluster, routed = self.sharded_denormalized_database(profile)
        else:
            cluster, routed = self.sharded_database(profile)
        cluster.reset_metrics()
        started = time.perf_counter()
        if config.data_model == "denormalized":
            results = run_denormalized_query(routed, query_id)
            result_documents = len(results)
        else:
            report = run_normalized_query(routed, query_id)
            result_documents = report.result_documents
        wall = time.perf_counter() - started
        metrics = cluster.router.metrics
        simulated = max(0.0, wall + metrics.simulated_overhead_seconds())
        return QueryRunResult(
            experiment=config.number,
            query_id=query_id,
            wall_seconds=wall,
            simulated_seconds=simulated,
            result_documents=result_documents,
            router_metrics=metrics.snapshot(),
            network=cluster.network.stats.snapshot(),
        )

    def run_experiment(
        self,
        experiment_number: int,
        *,
        query_ids: Iterable[int] = QUERY_IDS,
        repetitions: int = 1,
    ) -> ExperimentResult:
        """Run every query of one experiment (one Table 4.5 row)."""
        config = EXPERIMENTS[experiment_number]
        result = ExperimentResult(config=config)
        for query_id in query_ids:
            result.query_runs[query_id] = self.run_query(
                experiment_number, query_id, repetitions=repetitions
            )
        result.load_report = self.load_report(self.scale(config))
        return result

    def run_all(
        self,
        *,
        experiment_numbers: Iterable[int] = (1, 2, 3, 4, 5, 6),
        query_ids: Iterable[int] = QUERY_IDS,
        repetitions: int = 1,
    ) -> dict[int, ExperimentResult]:
        """Run the full Table 4.5 grid."""
        return {
            number: self.run_experiment(
                number, query_ids=query_ids, repetitions=repetitions
            )
            for number in experiment_numbers
        }


#: Every table name — pass as ``tables=ALL_TABLES`` to load the full schema.
ALL_TABLES: tuple[str, ...] = tuple(sorted(TPCDS_TABLES))
