"""Structured descriptions of the four evaluation queries.

The SQL text of queries 7, 21, 46, and 50 lives in
:mod:`repro.tpcds.queries`.  The translation algorithms need a structured
view of the same queries: which fact collection they read, which dimensions
they join, which dimension carries a ``where`` filter, and which dimensions
contribute attributes to the aggregation (and therefore must be embedded by
the normalized-model algorithm of Figure 4.8, step 8).

The specs are parameterized by the same predicate values as the SQL
templates, so a single spec serves both reproduction scales.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from ..tpcds.queries import query_parameters
from ..tpcds.scaling import DATE_RANGE_START

__all__ = [
    "DimensionJoin",
    "FactJoin",
    "QuerySpec",
    "query_spec",
    "QUERY_SPECS",
    "date_sk_for",
]

#: d_date_sk assigned to the first generated calendar day (1998-01-01).
_BASE_DATE_SK = 2_450_815


def date_sk_for(iso_date: str) -> int:
    """Return the ``d_date_sk`` surrogate key of an ISO calendar date."""
    day = _dt.date.fromisoformat(iso_date)
    return _BASE_DATE_SK + (day - DATE_RANGE_START).days


@dataclass(frozen=True)
class DimensionJoin:
    """One fact-to-dimension join edge of a query."""

    collection: str
    primary_key: str
    fact_field: str
    #: ``where`` conditions on the dimension (empty = no filter, join only).
    filter: Mapping[str, Any] = field(default_factory=dict)
    #: True when the dimension's attributes appear in the aggregation output,
    #: so the normalized algorithm must embed it into the intermediate
    #: collection (Figure 4.8, steps 8-9).
    embed_for_aggregation: bool = False

    @property
    def has_filter(self) -> bool:
        """True when the dimension carries a ``where`` clause."""
        return bool(self.filter)


@dataclass(frozen=True)
class FactJoin:
    """A fact-to-fact equi-join (only Query 50 uses one)."""

    collection: str
    #: pairs of (primary-fact field, secondary-fact field) that must be equal.
    join_fields: tuple[tuple[str, str], ...]
    #: dimension joins hanging off the secondary fact.
    dimensions: tuple[DimensionJoin, ...] = ()
    #: field of the primary fact's denormalized document that holds the
    #: embedded secondary-fact document.
    embed_as: str = "ss_return"


@dataclass(frozen=True)
class QuerySpec:
    """Structured description of one evaluation query."""

    query_id: int
    fact_collection: str
    dimensions: tuple[DimensionJoin, ...]
    fact_join: FactJoin | None = None
    output_collection: str = ""

    def filtered_dimensions(self) -> tuple[DimensionJoin, ...]:
        """Dimensions that carry a ``where`` filter (Figure 4.8, step 4)."""
        return tuple(dim for dim in self.dimensions if dim.has_filter)

    def embedded_dimensions(self) -> tuple[DimensionJoin, ...]:
        """Dimensions whose attributes are needed by the aggregation."""
        return tuple(dim for dim in self.dimensions if dim.embed_for_aggregation)

    def all_tables(self) -> tuple[str, ...]:
        """Every collection the query touches."""
        tables = [self.fact_collection]
        tables.extend(dim.collection for dim in self.dimensions)
        if self.fact_join is not None:
            tables.append(self.fact_join.collection)
            tables.extend(dim.collection for dim in self.fact_join.dimensions)
        return tuple(dict.fromkeys(tables))


def _query7_spec(params: Mapping[str, Any]) -> QuerySpec:
    return QuerySpec(
        query_id=7,
        fact_collection="store_sales",
        output_collection="query7_output",
        dimensions=(
            DimensionJoin(
                collection="customer_demographics",
                primary_key="cd_demo_sk",
                fact_field="ss_cdemo_sk",
                filter={
                    "cd_gender": params["gender"],
                    "cd_marital_status": params["marital_status"],
                    "cd_education_status": params["education_status"],
                },
            ),
            DimensionJoin(
                collection="date_dim",
                primary_key="d_date_sk",
                fact_field="ss_sold_date_sk",
                filter={"d_year": params["year"]},
            ),
            DimensionJoin(
                collection="promotion",
                primary_key="p_promo_sk",
                fact_field="ss_promo_sk",
                filter={"$or": [{"p_channel_email": "N"}, {"p_channel_event": "N"}]},
            ),
            DimensionJoin(
                collection="item",
                primary_key="i_item_sk",
                fact_field="ss_item_sk",
                embed_for_aggregation=True,
            ),
        ),
    )


def _query21_spec(params: Mapping[str, Any]) -> QuerySpec:
    sales_date = params["sales_date"]
    window_start = (_dt.date.fromisoformat(sales_date) - _dt.timedelta(days=30)).isoformat()
    window_end = (_dt.date.fromisoformat(sales_date) + _dt.timedelta(days=30)).isoformat()
    return QuerySpec(
        query_id=21,
        fact_collection="inventory",
        output_collection="query21_output",
        dimensions=(
            DimensionJoin(
                collection="item",
                primary_key="i_item_sk",
                fact_field="inv_item_sk",
                filter={
                    "i_current_price": {"$gte": params["price_min"], "$lte": params["price_max"]}
                },
                embed_for_aggregation=True,
            ),
            DimensionJoin(
                collection="date_dim",
                primary_key="d_date_sk",
                fact_field="inv_date_sk",
                filter={"d_date": {"$gte": window_start, "$lte": window_end}},
                embed_for_aggregation=True,
            ),
            DimensionJoin(
                collection="warehouse",
                primary_key="w_warehouse_sk",
                fact_field="inv_warehouse_sk",
                embed_for_aggregation=True,
            ),
        ),
    )


def _query46_spec(params: Mapping[str, Any]) -> QuerySpec:
    cities = [city.strip().strip("'") for city in str(params["cities"]).split(",")]
    years = [params["year"], params["year"] + 1, params["year"] + 2]
    return QuerySpec(
        query_id=46,
        fact_collection="store_sales",
        output_collection="query46_output",
        dimensions=(
            DimensionJoin(
                collection="store",
                primary_key="s_store_sk",
                fact_field="ss_store_sk",
                filter={"s_city": {"$in": sorted(set(cities))}},
            ),
            DimensionJoin(
                collection="date_dim",
                primary_key="d_date_sk",
                fact_field="ss_sold_date_sk",
                filter={"d_dow": {"$in": [6, 0]}, "d_year": {"$in": years}},
            ),
            DimensionJoin(
                collection="household_demographics",
                primary_key="hd_demo_sk",
                fact_field="ss_hdemo_sk",
                filter={
                    "$or": [
                        {"hd_dep_count": params["dep_count"]},
                        {"hd_vehicle_count": params["vehicle_count"]},
                    ]
                },
            ),
            DimensionJoin(
                collection="customer_address",
                primary_key="ca_address_sk",
                fact_field="ss_addr_sk",
                embed_for_aggregation=True,
            ),
            DimensionJoin(
                collection="customer",
                primary_key="c_customer_sk",
                fact_field="ss_customer_sk",
                embed_for_aggregation=True,
            ),
        ),
    )


def _query50_spec(params: Mapping[str, Any]) -> QuerySpec:
    return QuerySpec(
        query_id=50,
        fact_collection="store_sales",
        output_collection="query50_output",
        dimensions=(
            DimensionJoin(
                collection="store",
                primary_key="s_store_sk",
                fact_field="ss_store_sk",
                embed_for_aggregation=True,
            ),
            DimensionJoin(
                collection="date_dim",
                primary_key="d_date_sk",
                fact_field="ss_sold_date_sk",
            ),
        ),
        fact_join=FactJoin(
            collection="store_returns",
            join_fields=(
                ("ss_ticket_number", "sr_ticket_number"),
                ("ss_item_sk", "sr_item_sk"),
                ("ss_customer_sk", "sr_customer_sk"),
            ),
            dimensions=(
                DimensionJoin(
                    collection="date_dim",
                    primary_key="d_date_sk",
                    fact_field="sr_returned_date_sk",
                    filter={"d_year": params["year"], "d_moy": params["month"]},
                ),
            ),
            embed_as="ss_return",
        ),
    )


_SPEC_BUILDERS: dict[int, Callable[[Mapping[str, Any]], QuerySpec]] = {
    7: _query7_spec,
    21: _query21_spec,
    46: _query46_spec,
    50: _query50_spec,
}


def query_spec(query_id: int, parameters: Mapping[str, Any] | None = None) -> QuerySpec:
    """Return the structured spec of *query_id* with *parameters* applied."""
    if query_id not in _SPEC_BUILDERS:
        raise KeyError(f"no query spec for query {query_id}")
    params = query_parameters(query_id)
    if parameters:
        params.update(parameters)
    return _SPEC_BUILDERS[query_id](params)


#: Specs built with the default parameter values.
QUERY_SPECS: dict[int, QuerySpec] = {query_id: query_spec(query_id) for query_id in _SPEC_BUILDERS}
