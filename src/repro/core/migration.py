"""Data-migration algorithm (thesis Figure 4.3).

The algorithm reads a ``dsdgen`` ``.dat`` file line by line, maps column
positions to column names with a hash map, builds one document per line
(omitting null columns), and inserts the documents into a collection named
after the table.  Loading every table of a scale produces the ``Dataset_1GB``
/ ``Dataset_5GB`` databases whose load times the paper reports in Table 4.3.

The reproduction offers the same algorithm over two inputs:

* :func:`migrate_dat_file` — the literal algorithm over a ``.dat`` file;
* :func:`migrate_rows` — the same document construction over already
  generated in-memory rows (used by the benchmark harness to avoid disk I/O
  noise while measuring exactly the same insert path).
"""

from __future__ import annotations

import pathlib
import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from ..documentstore.collection import bulk_load_or_noop
from ..tpcds.datfiles import read_dat_file
from ..tpcds.generator import TPCDSGenerator
from ..tpcds.schema import TPCDS_TABLES

__all__ = [
    "MigrationResult",
    "DatasetLoadReport",
    "row_to_document",
    "migrate_rows",
    "migrate_dat_file",
    "migrate_generated_dataset",
    "migrate_dat_directory",
]

#: Batch size used for inserts.  The thesis inserts one document per line;
#: batching does not change what is stored, only how many driver round trips
#: the load makes, and the batch size is part of the reported configuration.
DEFAULT_BATCH_SIZE = 500


@dataclass(frozen=True)
class MigrationResult:
    """Outcome of loading one table."""

    table: str
    documents_inserted: int
    seconds: float

    @property
    def documents_per_second(self) -> float:
        """Load throughput."""
        if self.seconds <= 0:
            return float("inf")
        return self.documents_inserted / self.seconds


@dataclass
class DatasetLoadReport:
    """Outcome of loading a complete dataset (all 24 tables)."""

    database_name: str
    results: dict[str, MigrationResult] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        """Total load time across tables (the last row of Table 4.3)."""
        return sum(result.seconds for result in self.results.values())

    @property
    def total_documents(self) -> int:
        """Total number of documents inserted."""
        return sum(result.documents_inserted for result in self.results.values())

    def as_table(self) -> list[dict[str, Any]]:
        """Rows suitable for printing a Table 4.3 style report."""
        return [
            {
                "table": result.table,
                "documents": result.documents_inserted,
                "seconds": round(result.seconds, 4),
            }
            for result in self.results.values()
        ]


def row_to_document(row: Mapping[str, Any]) -> dict[str, Any]:
    """Build the document stored for one table row.

    Following Section 4.1.2, the column names become document keys and null
    column values are omitted entirely (no key/value pair is stored).
    """
    return {key: value for key, value in row.items() if value is not None}


def migrate_rows(
    collection,
    rows: Iterable[Mapping[str, Any]],
    *,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> MigrationResult:
    """Insert *rows* into *collection* and time the load.

    *collection* may be a stand-alone or a routed (sharded) collection; both
    expose ``insert_many``.
    """
    started = time.perf_counter()
    inserted = 0
    # Stand-alone collections defer secondary-index maintenance for the whole
    # load (one rebuild per index on exit); routed collections simply take
    # batched inserts through the router's single-pass batch routing.
    with bulk_load_or_noop(collection):
        batch: list[dict[str, Any]] = []
        for row in rows:
            batch.append(row_to_document(row))
            if len(batch) >= batch_size:
                collection.insert_many(batch)
                inserted += len(batch)
                batch = []
        if batch:
            collection.insert_many(batch)
            inserted += len(batch)
    elapsed = time.perf_counter() - started
    return MigrationResult(table=collection.name, documents_inserted=inserted, seconds=elapsed)


def migrate_dat_file(
    collection,
    table_name: str,
    path: str | pathlib.Path,
    *,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> MigrationResult:
    """Load one ``.dat`` file into *collection* (Figure 4.3, steps 1-13).

    Line parsing is delegated to the one typed ``.dat`` parser
    (:func:`repro.tpcds.datfiles.read_dat_file`, whose schema lookup plays
    the role of the algorithm's HashMap ``H``); :func:`row_to_document`
    drops the null columns, so the stored documents are identical to the
    previous in-module parser's output.
    """
    result = migrate_rows(collection, read_dat_file(table_name, path), batch_size=batch_size)
    return MigrationResult(
        table=table_name, documents_inserted=result.documents_inserted, seconds=result.seconds
    )


def migrate_generated_dataset(
    database,
    generator: TPCDSGenerator,
    *,
    tables: Iterable[str] | None = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> DatasetLoadReport:
    """Load a generated dataset into *database* (one collection per table)."""
    report = DatasetLoadReport(database_name=getattr(database, "name", "dataset"))
    table_names = sorted(tables) if tables is not None else sorted(TPCDS_TABLES)
    for table_name in table_names:
        collection = database[table_name]
        rows = generator.generate_table(table_name)
        result = migrate_rows(collection, rows, batch_size=batch_size)
        report.results[table_name] = MigrationResult(
            table=table_name,
            documents_inserted=result.documents_inserted,
            seconds=result.seconds,
        )
    return report


def migrate_dat_directory(
    database,
    directory: str | pathlib.Path,
    *,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> DatasetLoadReport:
    """Load every ``<table>.dat`` file found in *directory* into *database*."""
    report = DatasetLoadReport(database_name=getattr(database, "name", "dataset"))
    for path in sorted(pathlib.Path(directory).glob("*.dat")):
        table_name = path.stem
        if table_name not in TPCDS_TABLES:
            continue
        collection = database[table_name]
        report.results[table_name] = migrate_dat_file(
            collection, table_name, path, batch_size=batch_size
        )
    return report
