"""Query translation for the denormalized data model (Section 4.1.3.1).

After the fact collections are denormalized (:mod:`repro.core.denormalize`),
every join of the original SQL queries is already materialized as an embedded
document, so each query becomes a single aggregation pipeline — the
JavaScript pipelines of Appendix B.  This module builds those pipelines
programmatically (parameterized by the predicate values that ``dsqgen``
varies per scale) and runs them.

Field-naming conventions of the denormalized documents:

* a foreign-key field holds the embedded dimension document
  (``ss_sold_date_sk`` is the embedded ``date_dim`` document, whose own
  ``d_date_sk`` key still carries the original numeric value);
* the matching ``store_returns`` document is embedded in ``ss_return``; its
  ``sr_returned_date`` field holds the embedded return-date document while
  ``sr_returned_date_sk`` keeps the numeric key (used for day arithmetic).
"""

from __future__ import annotations

import datetime as _dt
from typing import Any, Mapping

from ..tpcds.queries import query_parameters

__all__ = [
    "DENORMALIZED_COLLECTIONS",
    "denormalized_pipeline",
    "query7_pipeline",
    "query21_pipeline",
    "query46_pipeline",
    "query50_pipeline",
    "run_denormalized_query",
]

#: Which denormalized collection each query reads.
DENORMALIZED_COLLECTIONS: dict[int, str] = {
    7: "store_sales_denormalized",
    21: "inventory_denormalized",
    46: "store_sales_denormalized",
    50: "store_sales_denormalized",
}


def query7_pipeline(params: Mapping[str, Any], *, out: str | None = None) -> list[dict[str, Any]]:
    """Appendix B, Query 7: per-item averages for one demographic bucket."""
    pipeline: list[dict[str, Any]] = [
        {
            "$match": {
                "$and": [
                    {"ss_cdemo_sk.cd_gender": params["gender"]},
                    {"ss_cdemo_sk.cd_marital_status": params["marital_status"]},
                    {"ss_cdemo_sk.cd_education_status": params["education_status"]},
                    {
                        "$or": [
                            {"ss_promo_sk.p_channel_email": "N"},
                            {"ss_promo_sk.p_channel_event": "N"},
                        ]
                    },
                    {"ss_sold_date_sk.d_year": params["year"]},
                    {"ss_item_sk.i_item_sk": {"$exists": True}},
                ]
            }
        },
        {
            "$group": {
                "_id": "$ss_item_sk.i_item_id",
                "agg1": {"$avg": "$ss_quantity"},
                "agg2": {"$avg": "$ss_list_price"},
                "agg3": {"$avg": "$ss_coupon_amt"},
                "agg4": {"$avg": "$ss_sales_price"},
            }
        },
        {"$sort": {"_id": 1}},
        {
            "$project": {
                "_id": 0,
                "i_item_id": "$_id",
                "agg1": 1,
                "agg2": 1,
                "agg3": 1,
                "agg4": 1,
            }
        },
    ]
    if out:
        pipeline.append({"$out": out})
    return pipeline


def query21_pipeline(params: Mapping[str, Any], *, out: str | None = None) -> list[dict[str, Any]]:
    """Appendix B, Query 21: inventory before/after a date per warehouse/item."""
    sales_date = params["sales_date"]
    window_start = (_dt.date.fromisoformat(sales_date) - _dt.timedelta(days=30)).isoformat()
    window_end = (_dt.date.fromisoformat(sales_date) + _dt.timedelta(days=30)).isoformat()
    pipeline: list[dict[str, Any]] = [
        {
            "$match": {
                "$and": [
                    {
                        "inv_item_sk.i_current_price": {
                            "$gte": params["price_min"],
                            "$lte": params["price_max"],
                        }
                    },
                    {"inv_warehouse_sk.w_warehouse_sk": {"$exists": True}},
                    {"inv_date_sk.d_date": {"$gte": window_start, "$lte": window_end}},
                ]
            }
        },
        {
            "$group": {
                "_id": {
                    "w_name": "$inv_warehouse_sk.w_warehouse_name",
                    "i_id": "$inv_item_sk.i_item_id",
                },
                "inv_before": {
                    "$sum": {
                        "$cond": [
                            {"$lt": ["$inv_date_sk.d_date", sales_date]},
                            "$inv_quantity_on_hand",
                            0,
                        ]
                    }
                },
                "inv_after": {
                    "$sum": {
                        "$cond": [
                            {"$gte": ["$inv_date_sk.d_date", sales_date]},
                            "$inv_quantity_on_hand",
                            0,
                        ]
                    }
                },
            }
        },
        {
            "$project": {
                "_id": 1,
                "inv_before": 1,
                "inv_after": 1,
                "temp": {
                    "$cond": [
                        {"$gt": ["$inv_before", 0]},
                        {"$divide": ["$inv_after", "$inv_before"]},
                        None,
                    ]
                },
            }
        },
        {"$match": {"temp": {"$gte": 2.0 / 3.0, "$lte": 3.0 / 2.0}}},
        {
            "$project": {
                "_id": 0,
                "w_warehouse_name": "$_id.w_name",
                "i_item_id": "$_id.i_id",
                "inv_before": 1,
                "inv_after": 1,
            }
        },
        {"$sort": {"w_warehouse_name": 1, "i_item_id": 1}},
    ]
    if out:
        pipeline.append({"$out": out})
    return pipeline


def query46_pipeline(params: Mapping[str, Any], *, out: str | None = None) -> list[dict[str, Any]]:
    """Appendix B, Query 46: weekend purchases away from the home city."""
    cities = sorted({city.strip().strip("'") for city in str(params["cities"]).split(",")})
    years = [params["year"], params["year"] + 1, params["year"] + 2]
    pipeline: list[dict[str, Any]] = [
        {
            "$match": {
                "$and": [
                    {"ss_store_sk.s_city": {"$in": cities}},
                    {"ss_sold_date_sk.d_dow": {"$in": [6, 0]}},
                    {"ss_sold_date_sk.d_year": {"$in": years}},
                    {
                        "$or": [
                            {"ss_hdemo_sk.hd_dep_count": params["dep_count"]},
                            {"ss_hdemo_sk.hd_vehicle_count": params["vehicle_count"]},
                        ]
                    },
                    {"ss_addr_sk.ca_address_sk": {"$exists": True}},
                    {"ss_customer_sk.c_customer_sk": {"$exists": True}},
                ]
            }
        },
        {
            "$project": {
                "value": {
                    "$ne": [
                        "$ss_customer_sk.c_current_addr_sk.ca_city",
                        "$ss_addr_sk.ca_city",
                    ]
                },
                "c_last_name": "$ss_customer_sk.c_last_name",
                "c_first_name": "$ss_customer_sk.c_first_name",
                "bought_city": "$ss_addr_sk.ca_city",
                "ca_city": "$ss_customer_sk.c_current_addr_sk.ca_city",
                "ss_ticket_number": "$ss_ticket_number",
                "ss_customer_sk": "$ss_customer_sk.c_customer_sk",
                "ss_addr_sk": "$ss_addr_sk.ca_address_sk",
                "amt": "$ss_coupon_amt",
                "profit": "$ss_net_profit",
            }
        },
        {"$match": {"value": True}},
        {
            "$group": {
                "_id": {
                    "ss_ticket_number": "$ss_ticket_number",
                    "ss_customer_sk": "$ss_customer_sk",
                    "ss_addr_sk": "$ss_addr_sk",
                    "ca_city": "$ca_city",
                    "bought_city": "$bought_city",
                    "c_last_name": "$c_last_name",
                    "c_first_name": "$c_first_name",
                },
                "amt": {"$sum": "$amt"},
                "profit": {"$sum": "$profit"},
            }
        },
        {
            "$project": {
                "_id": 0,
                "c_last_name": "$_id.c_last_name",
                "c_first_name": "$_id.c_first_name",
                "ca_city": "$_id.ca_city",
                "bought_city": "$_id.bought_city",
                "ss_ticket_number": "$_id.ss_ticket_number",
                "amt": 1,
                "profit": 1,
            }
        },
        {
            "$sort": {
                "c_last_name": 1,
                "c_first_name": 1,
                "ca_city": 1,
                "bought_city": 1,
                "ss_ticket_number": 1,
            }
        },
    ]
    if out:
        pipeline.append({"$out": out})
    return pipeline


_Q50_BUCKETS: tuple[tuple[str, int | None, int | None], ...] = (
    ("30 days", None, 30),
    ("31-60 days", 30, 60),
    ("61-90 days", 60, 90),
    ("91-120 days", 90, 120),
    (">120 days", 120, None),
)


def _q50_bucket_expression(lower: int | None, upper: int | None, *, lag_expression: Any) -> dict[str, Any]:
    """Build the ``sum(case when ... then 1 else 0 end)`` accumulator."""
    conditions = []
    if lower is not None:
        conditions.append({"$gt": [lag_expression, lower]})
    if upper is not None:
        conditions.append({"$lte": [lag_expression, upper]})
    condition = conditions[0] if len(conditions) == 1 else {"$and": conditions}
    return {"$sum": {"$cond": [condition, 1, 0]}}


def query50_pipeline(params: Mapping[str, Any], *, out: str | None = None) -> list[dict[str, Any]]:
    """Appendix B, Query 50: return-latency aging buckets per store."""
    lag = {"$subtract": ["$ss_return.sr_returned_date_sk", "$ss_sold_date_sk.d_date_sk"]}
    group_stage: dict[str, Any] = {
        "_id": {
            "store": "$ss_store_sk.s_store_name",
            "company": "$ss_store_sk.s_company_id",
            "str_num": "$ss_store_sk.s_street_number",
            "str_name": "$ss_store_sk.s_street_name",
            "str_type": "$ss_store_sk.s_street_type",
            "suite_num": "$ss_store_sk.s_suite_number",
            "city": "$ss_store_sk.s_city",
            "county": "$ss_store_sk.s_county",
            "state": "$ss_store_sk.s_state",
            "zip": "$ss_store_sk.s_zip",
        }
    }
    for label, lower, upper in _Q50_BUCKETS:
        group_stage[label] = _q50_bucket_expression(lower, upper, lag_expression=lag)

    pipeline: list[dict[str, Any]] = [
        {
            "$match": {
                "$and": [
                    {"ss_return.sr_returned_date.d_year": params["year"]},
                    {"ss_return.sr_returned_date.d_moy": params["month"]},
                    {"ss_return.sr_customer_sk": {"$exists": True}},
                    {"ss_item_sk.i_item_sk": {"$exists": True}},
                    {"ss_sold_date_sk.d_date_sk": {"$exists": True}},
                    {"ss_store_sk.s_store_sk": {"$exists": True}},
                    {"ss_return.sr_item_sk": {"$exists": True}},
                ]
            }
        },
        {"$group": group_stage},
        {
            "$project": {
                "_id": 0,
                "s_store_name": "$_id.store",
                "s_company_id": "$_id.company",
                "s_street_number": "$_id.str_num",
                "s_street_name": "$_id.str_name",
                "s_street_type": "$_id.str_type",
                "s_suite_number": "$_id.suite_num",
                "s_city": "$_id.city",
                "s_county": "$_id.county",
                "s_state": "$_id.state",
                "s_zip": "$_id.zip",
                "30 days": 1,
                "31-60 days": 1,
                "61-90 days": 1,
                "91-120 days": 1,
                ">120 days": 1,
            }
        },
        {
            "$sort": {
                "s_store_name": 1,
                "s_company_id": 1,
                "s_street_number": 1,
                "s_street_name": 1,
                "s_street_type": 1,
                "s_suite_number": 1,
                "s_city": 1,
                "s_county": 1,
                "s_state": 1,
                "s_zip": 1,
            }
        },
    ]
    if out:
        pipeline.append({"$out": out})
    return pipeline


_PIPELINE_BUILDERS = {
    7: query7_pipeline,
    21: query21_pipeline,
    46: query46_pipeline,
    50: query50_pipeline,
}


def denormalized_pipeline(
    query_id: int,
    parameters: Mapping[str, Any] | None = None,
    *,
    out: str | None = None,
) -> list[dict[str, Any]]:
    """Build the Appendix B pipeline for *query_id*."""
    if query_id not in _PIPELINE_BUILDERS:
        raise KeyError(f"no denormalized pipeline for query {query_id}")
    params = query_parameters(query_id)
    if parameters:
        params.update(parameters)
    return _PIPELINE_BUILDERS[query_id](params, out=out)


def run_denormalized_query(
    database,
    query_id: int,
    parameters: Mapping[str, Any] | None = None,
    *,
    write_output: bool = False,
) -> list[dict[str, Any]]:
    """Run *query_id* against its denormalized collection in *database*.

    With ``write_output=True`` the pipeline ends in ``$out`` (as in the
    thesis' JavaScript) and the result collection ``query<N>_output`` is
    populated; the function then returns its contents.
    """
    collection_name = DENORMALIZED_COLLECTIONS[query_id]
    out_name = f"query{query_id}_output" if write_output else None
    pipeline = denormalized_pipeline(query_id, parameters, out=out_name)
    results = database[collection_name].aggregate(pipeline)
    if write_output:
        return database[out_name].find({}).to_list()
    return results
