"""Query translation for the normalized data model (Section 4.1.3.2).

The store does not execute joins, so an analytical query against normalized
collections is simulated client-side by the algorithm of Figure 4.8:

1. query every dimension collection that carries a ``where`` clause and
   collect the primary keys of the matching documents;
2. *semi-join*: fetch the fact documents whose foreign keys appear in those
   key lists (one ``$in`` per filtered dimension) and store them in an
   intermediate collection;
3. embed the dimension collections whose attributes are needed by the
   aggregation into the intermediate collection (``EmbedDocuments``);
4. run the aggregation (group / order / project) over the embedded
   intermediate collection and store the result in an output collection.

Query 50 joins two fact collections; its plan first restricts
``store_returns`` through the return-date dimension, then semi-joins
``store_sales`` on the ticket numbers of the surviving returns, merges the
matching sale/return pairs client-side, and continues with the same
embed-and-aggregate steps.

The same code path serves the stand-alone and the sharded deployments: the
collections passed in are either plain or routed, and in the sharded case
every step above turns into router round trips — which is exactly the
overhead the paper measures for Experiments 1 and 4.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..documentstore.collection import bulk_load_or_noop
from ..tpcds.queries import query_parameters
from .denormalize import embed_documents
from .queryspec import DimensionJoin, QuerySpec, query_spec
from .translate_denormalized import denormalized_pipeline

__all__ = [
    "NormalizedExecutionReport",
    "normalized_final_pipeline",
    "run_normalized_query",
    "EXTRA_INTERMEDIATE_EMBEDDINGS",
]

#: Additional (nested) embeddings required by specific queries after the
#: spec-level dimensions have been embedded into the intermediate collection.
#: Query 46 needs the customer's *current* address inside the embedded
#: customer document in order to compare it with the purchase address.
EXTRA_INTERMEDIATE_EMBEDDINGS: dict[int, tuple[DimensionJoin, ...]] = {
    46: (
        DimensionJoin(
            collection="customer_address",
            primary_key="ca_address_sk",
            fact_field="ss_customer_sk.c_current_addr_sk",
        ),
    ),
}


@dataclass
class NormalizedExecutionReport:
    """Timing and cardinality breakdown of one normalized-model execution."""

    query_id: int
    dimension_keys: dict[str, int] = field(default_factory=dict)
    semi_join_documents: int = 0
    embedded_dimensions: list[str] = field(default_factory=list)
    result_documents: int = 0
    seconds: float = 0.0
    results: list[dict[str, Any]] = field(default_factory=list)


def normalized_final_pipeline(
    query_id: int, parameters: Mapping[str, Any] | None = None
) -> list[dict[str, Any]]:
    """Aggregation pipeline run over the embedded intermediate collection.

    For queries 7, 21, and 46 this is the Appendix B pipeline without its
    leading ``$match`` stage — the semi-join already applied those dimension
    predicates.  Query 50 gets a dedicated pipeline because the intermediate
    documents are merged sale/return pairs that keep their numeric date keys.
    """
    if query_id == 50:
        return _query50_intermediate_pipeline()
    pipeline = denormalized_pipeline(query_id, parameters)
    return pipeline[1:]


def _query50_intermediate_pipeline() -> list[dict[str, Any]]:
    lag = {"$subtract": ["$sr_returned_date_sk", "$ss_sold_date_sk"]}
    buckets = (
        ("30 days", None, 30),
        ("31-60 days", 30, 60),
        ("61-90 days", 60, 90),
        ("91-120 days", 90, 120),
        (">120 days", 120, None),
    )
    group_stage: dict[str, Any] = {
        "_id": {
            "store": "$ss_store_sk.s_store_name",
            "company": "$ss_store_sk.s_company_id",
            "str_num": "$ss_store_sk.s_street_number",
            "str_name": "$ss_store_sk.s_street_name",
            "str_type": "$ss_store_sk.s_street_type",
            "suite_num": "$ss_store_sk.s_suite_number",
            "city": "$ss_store_sk.s_city",
            "county": "$ss_store_sk.s_county",
            "state": "$ss_store_sk.s_state",
            "zip": "$ss_store_sk.s_zip",
        }
    }
    for label, lower, upper in buckets:
        conditions = []
        if lower is not None:
            conditions.append({"$gt": [lag, lower]})
        if upper is not None:
            conditions.append({"$lte": [lag, upper]})
        condition = conditions[0] if len(conditions) == 1 else {"$and": conditions}
        group_stage[label] = {"$sum": {"$cond": [condition, 1, 0]}}
    return [
        {"$group": group_stage},
        {
            "$project": {
                "_id": 0,
                "s_store_name": "$_id.store",
                "s_company_id": "$_id.company",
                "s_street_number": "$_id.str_num",
                "s_street_name": "$_id.str_name",
                "s_street_type": "$_id.str_type",
                "s_suite_number": "$_id.suite_num",
                "s_city": "$_id.city",
                "s_county": "$_id.county",
                "s_state": "$_id.state",
                "s_zip": "$_id.zip",
                "30 days": 1,
                "31-60 days": 1,
                "61-90 days": 1,
                "91-120 days": 1,
                ">120 days": 1,
            }
        },
        {"$sort": {"s_store_name": 1, "s_company_id": 1, "s_street_number": 1}},
    ]


def _filter_dimension_keys(database, dimension: DimensionJoin) -> list[Any]:
    """Step 4-5 of Figure 4.8: filter a dimension and collect primary keys."""
    keys: list[Any] = []
    cursor = database[dimension.collection].find(
        dimension.filter, {dimension.primary_key: 1, "_id": 0}
    )
    for document in cursor:
        value = document.get(dimension.primary_key)
        if value is not None:
            keys.append(value)
    return keys


def _copy_into_intermediate(
    database,
    documents: list[dict[str, Any]],
    intermediate_name: str,
    *,
    batch_size: int = 500,
) -> int:
    """Store the semi-joined fact documents in the intermediate collection.

    Rides the bulk write path: inserts are batched and, on stand-alone
    collections, secondary-index maintenance is deferred for the whole copy.
    """
    intermediate = database[intermediate_name]
    intermediate.drop()
    count = 0
    with bulk_load_or_noop(intermediate):
        for start in range(0, len(documents), batch_size):
            batch = []
            for document in documents[start:start + batch_size]:
                document = dict(document)
                document.pop("_id", None)
                batch.append(document)
            if batch:
                intermediate.insert_many(batch)
                count += len(batch)
    return count


def _embed_into_intermediate(
    database,
    spec: QuerySpec,
    intermediate_name: str,
    report: NormalizedExecutionReport,
) -> None:
    """Steps 8-10 of Figure 4.8 plus the query-specific nested embeddings."""
    intermediate = database[intermediate_name]
    embeddings = list(spec.embedded_dimensions())
    embeddings.extend(EXTRA_INTERMEDIATE_EMBEDDINGS.get(spec.query_id, ()))
    for dimension in embeddings:
        intermediate.create_index(dimension.fact_field)
        embed_documents(
            intermediate,
            database[dimension.collection],
            fact_field=dimension.fact_field,
            dimension_primary_key=dimension.primary_key,
        )
        report.embedded_dimensions.append(dimension.collection)


def _run_simple_normalized_query(
    database,
    spec: QuerySpec,
    parameters: Mapping[str, Any] | None,
    report: NormalizedExecutionReport,
    *,
    keep_intermediate: bool,
    write_output: bool,
) -> None:
    """The single-fact plan shared by queries 7, 21, and 46."""
    intermediate_name = f"query{spec.query_id}_intermediate"

    semi_join_filter: dict[str, Any] = {}
    for dimension in spec.filtered_dimensions():
        keys = _filter_dimension_keys(database, dimension)
        report.dimension_keys[dimension.collection] = len(keys)
        semi_join_filter[dimension.fact_field] = {"$in": keys}

    fact = database[spec.fact_collection]
    semi_joined = fact.find(semi_join_filter, {"_id": 0}).to_list()
    report.semi_join_documents = _copy_into_intermediate(database, semi_joined, intermediate_name)

    _embed_into_intermediate(database, spec, intermediate_name, report)

    pipeline = normalized_final_pipeline(spec.query_id, parameters)
    if write_output:
        pipeline = pipeline + [{"$out": spec.output_collection}]
    results = database[intermediate_name].aggregate(pipeline)
    if write_output:
        results = database[spec.output_collection].find({}).to_list()
    report.results = results
    report.result_documents = len(results)

    if not keep_intermediate:
        database[intermediate_name].drop()


def _run_fact_join_query(
    database,
    spec: QuerySpec,
    parameters: Mapping[str, Any] | None,
    report: NormalizedExecutionReport,
    *,
    keep_intermediate: bool,
    write_output: bool,
) -> None:
    """The two-fact plan of Query 50 (store_sales ⋈ store_returns)."""
    assert spec.fact_join is not None
    intermediate_name = f"query{spec.query_id}_intermediate"

    # Filter the dimensions of the secondary fact (the return-date window).
    secondary_filter: dict[str, Any] = {}
    for dimension in spec.fact_join.dimensions:
        keys = _filter_dimension_keys(database, dimension)
        report.dimension_keys[dimension.collection] = len(keys)
        secondary_filter[dimension.fact_field] = {"$in": keys}

    returns = database[spec.fact_join.collection].find(
        secondary_filter, {"_id": 0}
    ).to_list()

    # Semi-join the primary fact on the first join field (ticket number); the
    # remaining join fields are checked during the client-side merge below.
    primary_field, secondary_field = spec.fact_join.join_fields[0]
    ticket_numbers = sorted({doc.get(secondary_field) for doc in returns if secondary_field in doc})
    sales = database[spec.fact_collection].find(
        {primary_field: {"$in": ticket_numbers}}, {"_id": 0}
    ).to_list()

    sales_by_key: dict[tuple[Any, ...], list[dict[str, Any]]] = {}
    for sale in sales:
        key = tuple(sale.get(field_pair[0]) for field_pair in spec.fact_join.join_fields)
        sales_by_key.setdefault(key, []).append(sale)

    merged: list[dict[str, Any]] = []
    for return_document in returns:
        key = tuple(
            return_document.get(field_pair[1]) for field_pair in spec.fact_join.join_fields
        )
        for sale in sales_by_key.get(key, []):
            combined = dict(sale)
            combined.pop("_id", None)
            for field_name, value in return_document.items():
                if field_name != "_id":
                    combined[field_name] = value
            merged.append(combined)

    report.semi_join_documents = _copy_into_intermediate(database, merged, intermediate_name)
    _embed_into_intermediate(database, spec, intermediate_name, report)

    pipeline = normalized_final_pipeline(spec.query_id, parameters)
    if write_output:
        pipeline = pipeline + [{"$out": spec.output_collection}]
    results = database[intermediate_name].aggregate(pipeline)
    if write_output:
        results = database[spec.output_collection].find({}).to_list()
    report.results = results
    report.result_documents = len(results)

    if not keep_intermediate:
        database[intermediate_name].drop()


def run_normalized_query(
    database,
    query_id: int,
    parameters: Mapping[str, Any] | None = None,
    *,
    keep_intermediate: bool = False,
    write_output: bool = False,
) -> NormalizedExecutionReport:
    """Run *query_id* against the normalized collections in *database*.

    *database* may be a stand-alone :class:`~repro.documentstore.Database`
    (Experiments 2 and 5) or a routed database backed by a sharded cluster
    (Experiments 1 and 4).
    """
    params = query_parameters(query_id)
    if parameters:
        params.update(parameters)
    spec = query_spec(query_id, params)
    report = NormalizedExecutionReport(query_id=query_id)
    started = time.perf_counter()
    if spec.fact_join is not None:
        _run_fact_join_query(
            database,
            spec,
            params,
            report,
            keep_intermediate=keep_intermediate,
            write_output=write_output,
        )
    else:
        _run_simple_normalized_query(
            database,
            spec,
            params,
            report,
            keep_intermediate=keep_intermediate,
            write_output=write_output,
        )
    report.seconds = time.perf_counter() - started
    return report
