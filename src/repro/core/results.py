"""Result-table rendering.

The benchmark harness prints the same tables and figure series the paper
reports (Tables 4.3–4.5, Figures 4.9–4.11).  These helpers turn the raw
measurements into aligned plain-text tables and simple ASCII bar charts so a
bench run is directly comparable with the published numbers.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

__all__ = [
    "render_table",
    "render_bar_chart",
    "format_seconds",
    "paper_reference_table_45",
    "paper_reference_table_44",
]


def format_seconds(seconds: float) -> str:
    """Format a duration the way the paper does (h/m/s)."""
    if seconds >= 3600:
        hours, remainder = divmod(seconds, 3600)
        minutes, secs = divmod(remainder, 60)
        return f"{int(hours)}h{int(minutes)}m{secs:05.2f}s"
    if seconds >= 60:
        minutes, secs = divmod(seconds, 60)
        return f"{int(minutes)}m{secs:05.2f}s"
    return f"{seconds:.2f}s"


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    *,
    title: str | None = None,
) -> str:
    """Render rows as an aligned plain-text table."""
    materialized = [[str(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))

    def format_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(format_row(list(headers)))
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(format_row(row) for row in materialized)
    return "\n".join(lines)


def render_bar_chart(
    series: Mapping[str, float],
    *,
    title: str | None = None,
    width: int = 50,
    unit: str = "s",
) -> str:
    """Render a horizontal ASCII bar chart (used for the figure benches)."""
    lines = []
    if title:
        lines.append(title)
    if not series:
        return "\n".join(lines + ["(no data)"])
    label_width = max(len(label) for label in series)
    maximum = max(series.values()) or 1.0
    for label, value in series.items():
        bar_length = int(round(width * value / maximum)) if maximum else 0
        bar = "#" * max(bar_length, 1 if value > 0 else 0)
        lines.append(f"{label.ljust(label_width)} | {bar} {value:.3f}{unit}")
    return "\n".join(lines)


def paper_reference_table_45() -> dict[int, dict[int, float]]:
    """The published Table 4.5 runtimes, in seconds ({experiment: {query: s}})."""
    return {
        1: {7: 15.71, 21: 33.77, 46: 198.0, 50: 26.08},
        2: {7: 7.30, 21: 26.84, 46: 63.93, 50: 52.61},
        3: {7: 0.62, 21: 0.17, 46: 3.43, 50: 1.25},
        4: {7: 37.02, 21: 159.0, 46: 665.0, 50: 117.0},
        5: {7: 22.55, 21: 107.0, 46: 376.0, 50: 276.0},
        6: {7: 2.71, 21: 0.52, 46: 11.12, 50: 5.12},
    }


def paper_reference_table_44() -> dict[str, dict[int, float]]:
    """The published Table 4.4 selectivities, in MB ({scale: {query: MB}})."""
    return {
        "small": {7: 0.60, 21: 0.34, 46: 2.48, 50: 0.003},
        "large": {7: 2.28, 21: 1.55, 46: 11.84, 50: 0.003},
    }
