"""Query selectivity (Table 4.4).

The paper reports, per query and dataset, the amount of data the query
returns (in MB).  The reproduction measures the same thing: the serialized
size of the result documents produced by the denormalized pipeline of each
query, which equals the contents of the ``query<N>_output`` collection the
thesis scripts write with ``$out``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from ..documentstore.bson import document_size
from ..tpcds.queries import QUERY_IDS
from .translate_denormalized import run_denormalized_query

__all__ = ["QuerySelectivity", "measure_selectivity", "selectivity_table"]


@dataclass(frozen=True)
class QuerySelectivity:
    """Result-set size of one query."""

    query_id: int
    result_documents: int
    result_bytes: int

    @property
    def megabytes(self) -> float:
        """Result size in MB (the unit Table 4.4 uses)."""
        return self.result_bytes / (1024.0 * 1024.0)

    def as_row(self) -> dict[str, Any]:
        """Row for the Table 4.4 report."""
        return {
            "query": self.query_id,
            "documents": self.result_documents,
            "bytes": self.result_bytes,
            "megabytes": round(self.megabytes, 6),
        }


def measure_selectivity(
    database,
    query_id: int,
    parameters: Mapping[str, Any] | None = None,
) -> QuerySelectivity:
    """Measure the result size of *query_id* on a denormalized *database*."""
    results = run_denormalized_query(database, query_id, parameters)
    return QuerySelectivity(
        query_id=query_id,
        result_documents=len(results),
        result_bytes=sum(document_size(document) for document in results),
    )


def selectivity_table(
    database,
    query_ids: Iterable[int] = QUERY_IDS,
) -> dict[int, QuerySelectivity]:
    """Measure every query's selectivity (one Table 4.4 row per query)."""
    return {query_id: measure_selectivity(database, query_id) for query_id in query_ids}
