"""The length-prefixed binary wire protocol spoken by the served front door.

Every message crossing the socket is one *frame*::

    +--------+---------+------------+------------+--------+-------+---------+
    | magic  | version | body len   | request id | opcode | flags | payload |
    | u16 BE | u8      | u32 BE     | u32 BE     | u8     | u8    | bytes   |
    +--------+---------+------------+------------+--------+-------+---------+
    '--------- 7-byte header ------' '------------- body -------------------'

``body len`` counts everything after the header (request id + opcode +
flags + payload), so a reader needs exactly two reads per frame.  The
payload is one serialized document produced by the existing BSON layer
(:func:`repro.documentstore.bson.encode_document`), which round-trips the
store's extended types (ObjectId, datetime/date, bytes) — the same encoding
the simulated shard↔router network uses, so served byte counts are directly
comparable to :class:`~repro.sharding.router.RouterMetrics` estimates.

Requests carry an opcode per logical operation (find, getMore, insertMany,
…) and an arbitrary request id chosen by the client; the server echoes the
id on the matching :data:`Opcode.REPLY` or :data:`Opcode.ERROR` frame.
Error frames carry a structured ``{code, message, details}`` document that
:func:`raise_wire_error` converts back into the proper exception class on
the client side (including a reconstructed
:class:`~repro.sharding.executor.ShardTimeoutError`).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from enum import IntEnum
from typing import Any, Mapping, NoReturn

from ..documentstore import errors as _errors
from ..documentstore.bson import decode_document, encode_document
from ..documentstore.errors import (
    DocumentStoreError,
    DocumentTooLargeError,
    DuplicateKeyError,
    OperationFailure,
)
from ..documentstore.findspec import FindSpec
from ..sharding.executor import ShardTimeoutError

__all__ = [
    "MAGIC",
    "VERSION",
    "MAX_FRAME_SIZE",
    "FLAG_HAS_MORE",
    "Opcode",
    "Frame",
    "ProtocolError",
    "ConnectionFailure",
    "encode_frame",
    "recv_frame",
    "read_exact",
    "encode_findspec",
    "decode_findspec",
    "encode_error",
    "raise_wire_error",
]

#: Frame magic — rejects non-protocol peers immediately.
MAGIC = 0xD0C5
#: Protocol version carried in every frame header.
VERSION = 1
#: Hard upper bound on one frame body: one 16 MB document batch plus margin.
MAX_FRAME_SIZE = 64 * 1024 * 1024

#: Reply-frame flag: the server holds an open cursor with more batches.
FLAG_HAS_MORE = 0x01

_HEADER = struct.Struct(">HBI")  # magic, version, body length
_BODY_PREFIX = struct.Struct(">IBB")  # request id, opcode, flags


class ProtocolError(DocumentStoreError):
    """A frame violated the wire protocol (bad magic, truncation, size)."""


class ConnectionFailure(DocumentStoreError):
    """The socket to the server was lost and could not be re-established."""


class Opcode(IntEnum):
    """Operation codes carried in the frame body."""

    # Requests (client → server).
    FIND = 1
    GET_MORE = 2
    KILL_CURSOR = 3
    INSERT_MANY = 4
    UPDATE_ONE = 5
    UPDATE_MANY = 6
    DELETE_ONE = 7
    DELETE_MANY = 8
    AGGREGATE = 9
    DISTINCT = 10
    COUNT = 11
    COMMAND = 12
    # Replies (server → client).
    REPLY = 64
    ERROR = 65


@dataclass(frozen=True)
class Frame:
    """One decoded frame, plus its actual encoded size for byte accounting."""

    request_id: int
    opcode: int
    flags: int
    document: dict[str, Any]
    wire_size: int

    @property
    def has_more(self) -> bool:
        """True when the server signalled an open cursor on this reply."""
        return bool(self.flags & FLAG_HAS_MORE)


def encode_frame(
    opcode: int,
    request_id: int,
    document: Mapping[str, Any],
    *,
    flags: int = 0,
) -> bytes:
    """Serialize one frame; raises :class:`ProtocolError` if oversized."""
    payload = encode_document(document)
    body_length = _BODY_PREFIX.size + len(payload)
    if body_length > MAX_FRAME_SIZE:
        raise ProtocolError(
            f"frame body of {body_length} bytes exceeds the {MAX_FRAME_SIZE}-byte limit"
        )
    return (
        _HEADER.pack(MAGIC, VERSION, body_length)
        + _BODY_PREFIX.pack(request_id & 0xFFFFFFFF, int(opcode), flags)
        + payload
    )


def read_exact(sock: Any, count: int) -> bytes | None:
    """Read exactly *count* bytes from a socket.

    Returns ``None`` on a clean EOF at offset zero (the peer closed between
    frames); raises :class:`ProtocolError` when the stream ends mid-frame.
    """
    chunks: list[bytes] = []
    received = 0
    while received < count:
        chunk = sock.recv(count - received)
        if not chunk:
            if received == 0:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({received}/{count} bytes read)"
            )
        chunks.append(chunk)
        received += len(chunk)
    return b"".join(chunks)


def recv_frame(sock: Any) -> Frame | None:
    """Read one complete frame from *sock* (``None`` on clean EOF)."""
    header = read_exact(sock, _HEADER.size)
    if header is None:
        return None
    magic, version, body_length = _HEADER.unpack(header)
    if magic != MAGIC:
        raise ProtocolError(f"bad frame magic 0x{magic:04X} (expected 0x{MAGIC:04X})")
    if version != VERSION:
        raise ProtocolError(f"unsupported protocol version {version}")
    if body_length < _BODY_PREFIX.size or body_length > MAX_FRAME_SIZE:
        raise ProtocolError(f"invalid frame body length {body_length}")
    body = read_exact(sock, body_length)
    if body is None:
        raise ProtocolError("connection closed before the frame body arrived")
    request_id, opcode, flags = _BODY_PREFIX.unpack_from(body)
    document = decode_document(body[_BODY_PREFIX.size:])
    return Frame(
        request_id=request_id,
        opcode=opcode,
        flags=flags,
        document=document,
        wire_size=_HEADER.size + body_length,
    )


# --------------------------------------------------------------------------
# FindSpec encoding: the complete lazy read spec crosses the wire in one
# piece, so shard-side sort/skip/limit/projection pushdown survives serving.
# --------------------------------------------------------------------------


def encode_findspec(spec: FindSpec) -> dict[str, Any]:
    """Return the wire form of a :class:`FindSpec`."""
    return {
        "filter": dict(spec.filter) if spec.filter else None,
        "projection": dict(spec.projection) if spec.projection else None,
        "sort": [[field, direction] for field, direction in spec.sort]
        if spec.sort
        else None,
        "skip": spec.skip,
        "limit": spec.limit,
        "batch_size": spec.batch_size,
        "hint": spec.hint,
    }


def decode_findspec(document: Mapping[str, Any]) -> FindSpec:
    """Rebuild a :class:`FindSpec` from its wire form."""
    sort = document.get("sort")
    return FindSpec(
        filter=document.get("filter") or None,
        projection=document.get("projection") or None,
        sort=tuple((str(field), int(direction)) for field, direction in sort)
        if sort
        else None,
        skip=int(document.get("skip") or 0),
        limit=document.get("limit"),
        batch_size=document.get("batch_size"),
        hint=document.get("hint"),
    )


# --------------------------------------------------------------------------
# Structured error frames.
# --------------------------------------------------------------------------


def encode_error(exc: BaseException) -> dict[str, Any]:
    """Return the error-frame payload describing *exc*."""
    details: dict[str, Any] = {}
    if isinstance(exc, ShardTimeoutError):
        details = {
            "purpose": exc.purpose,
            "shard_ids": list(exc.shard_ids),
            "completed": list(exc.completed),
            "deadline_seconds": exc.deadline_seconds,
        }
    elif isinstance(exc, DuplicateKeyError):
        details = {"index_name": exc.index_name, "key": repr(exc.key)}
    elif isinstance(exc, DocumentTooLargeError):
        details = {"size": exc.size, "limit": exc.limit}
    return {
        "code": type(exc).__name__,
        "message": str(exc),
        "details": details,
    }


def raise_wire_error(document: Mapping[str, Any]) -> NoReturn:
    """Raise the exception described by an error-frame payload."""
    code = str(document.get("code") or "OperationFailure")
    message = str(document.get("message") or "server error")
    details = document.get("details") or {}
    if code == "ShardTimeoutError":
        raise ShardTimeoutError(
            str(details.get("purpose", "operation")),
            [str(s) for s in details.get("shard_ids", [])],
            [str(s) for s in details.get("completed", [])],
            float(details.get("deadline_seconds", 0.0)),
        )
    if code == "DuplicateKeyError":
        raise DuplicateKeyError(
            str(details.get("index_name", "")), details.get("key")
        )
    if code == "DocumentTooLargeError":
        raise DocumentTooLargeError(
            int(details.get("size", 0)), int(details.get("limit", 0))
        )
    exc_class = getattr(_errors, code, None)
    if isinstance(exc_class, type) and issubclass(exc_class, DocumentStoreError):
        raise exc_class(message)
    if code in ("TooManyConnections", "ShuttingDown"):
        raise ConnectionFailure(message)
    raise OperationFailure(f"{code}: {message}")
