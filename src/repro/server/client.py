"""A thin driver re-speaking the Collection API over the wire protocol.

:class:`RemoteClient` connects to a :class:`~repro.server.server.
DocumentStoreServer` and exposes the same database/collection surface as the
in-process backends: ``client[db][collection].find(...)`` returns the same
lazy :class:`~repro.documentstore.cursor.Cursor` type, chained
``sort``/``skip``/``limit`` calls refine a :class:`FindSpec`, and the
complete spec crosses the wire in one ``FIND`` frame when iteration starts —
so shard-side pushdown behaves exactly as it does for an imported library.

Connections are pooled (``pool_size`` sockets, created lazily, checked out
per request).  A cursor pins its connection until it is exhausted, because
``GET_MORE`` addresses per-connection session state; abandoning a cursor
mid-stream sends a best-effort ``KILL_CURSOR`` before the socket returns to
the pool.  Idempotent reads (find, count, distinct, aggregate, commands) are
retried once on a fresh connection when the socket dies mid-request;
writes are never retried automatically.
"""

from __future__ import annotations

import itertools
import socket
import threading
from typing import Any, Iterator, Mapping, Sequence

from ..documentstore.cursor import (
    Cursor,
    DeleteResult,
    InsertManyResult,
    InsertOneResult,
    UpdateResult,
)
from ..documentstore.errors import DocumentStoreError
from ..documentstore.findspec import FindSpec
from ..sharding.executor import ShardTimeoutError
from .protocol import (
    ConnectionFailure,
    Frame,
    Opcode,
    ProtocolError,
    encode_findspec,
    encode_frame,
    raise_wire_error,
    recv_frame,
)

__all__ = ["RemoteClient", "RemoteDatabase", "RemoteCollection"]

#: Exceptions meaning "the transport died" (retryable for idempotent reads),
#: as opposed to a structured error the server delivered over a live socket.
_TRANSPORT_ERRORS = (ConnectionFailure, ProtocolError, OSError, TimeoutError)


class _PooledConnection:
    """One socket to the server plus its request-id counter."""

    def __init__(
        self,
        address: tuple[str, int],
        connect_timeout: float,
        socket_timeout: float | None,
    ) -> None:
        try:
            self.sock = socket.create_connection(address, timeout=connect_timeout)
        except OSError as exc:
            raise ConnectionFailure(f"cannot connect to {address[0]}:{address[1]}: {exc}") from exc
        self.sock.settimeout(socket_timeout)
        try:
            self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover - platform without TCP_NODELAY
            pass
        self._request_ids = itertools.count(1)
        self.broken = False

    def request(self, opcode: int, payload: Mapping[str, Any]) -> Frame:
        """Send one request frame and return the matching reply frame.

        Transport failures mark the connection broken and raise one of
        ``_TRANSPORT_ERRORS``; server-side errors raise the reconstructed
        exception while leaving the connection usable.
        """
        request_id = next(self._request_ids) & 0xFFFFFFFF
        try:
            self.sock.sendall(encode_frame(opcode, request_id, payload))
            frame = recv_frame(self.sock)
        except _TRANSPORT_ERRORS:
            self.broken = True
            raise
        if frame is None:
            self.broken = True
            raise ConnectionFailure("server closed the connection")
        if frame.opcode == Opcode.ERROR:
            if frame.document.get("code") in ("TooManyConnections", "ShuttingDown"):
                self.broken = True
            raise_wire_error(frame.document)
        if frame.request_id != request_id:
            self.broken = True
            raise ProtocolError(
                f"reply id {frame.request_id} does not match request id {request_id}"
            )
        return frame

    def close(self) -> None:
        self.broken = True
        try:
            self.sock.close()
        except OSError:  # pragma: no cover
            pass


class RemoteClient:
    """Socket client for a served document store (standalone or sharded)."""

    def __init__(
        self,
        host: str | tuple[str, int] = "127.0.0.1",
        port: int | None = None,
        *,
        pool_size: int = 4,
        connect_timeout_seconds: float = 5.0,
        socket_timeout_seconds: float | None = 30.0,
        retry_reads: bool = True,
    ) -> None:
        if isinstance(host, tuple):
            host, port = host
        if port is None:
            raise ValueError("a server port is required")
        if pool_size <= 0:
            raise ValueError("pool_size must be positive")
        self.address = (str(host), int(port))
        self.pool_size = pool_size
        self.connect_timeout_seconds = connect_timeout_seconds
        self.socket_timeout_seconds = socket_timeout_seconds
        self.retry_reads = retry_reads
        self._idle: list[_PooledConnection] = []
        self._total = 0
        self._cond = threading.Condition()
        self._closed = False

    # ----------------------------------------------------------------- pooling

    def _checkout(self) -> _PooledConnection:
        with self._cond:
            while True:
                if self._closed:
                    raise ConnectionFailure("client is closed")
                while self._idle:
                    connection = self._idle.pop()
                    if connection.broken:
                        self._total -= 1
                        continue
                    return connection
                if self._total < self.pool_size:
                    self._total += 1
                    break
                self._cond.wait()
        try:
            return _PooledConnection(
                self.address, self.connect_timeout_seconds, self.socket_timeout_seconds
            )
        except BaseException:
            with self._cond:
                self._total -= 1
                self._cond.notify()
            raise

    def _checkin(self, connection: _PooledConnection) -> None:
        with self._cond:
            if connection.broken or self._closed:
                connection.close()
                self._total -= 1
            else:
                self._idle.append(connection)
            self._cond.notify()

    def _discard(self, connection: _PooledConnection) -> None:
        connection.close()
        with self._cond:
            self._total -= 1
            self._cond.notify()

    def close(self) -> None:
        """Close every pooled connection; in-use sockets close on check-in."""
        with self._cond:
            self._closed = True
            idle, self._idle = self._idle, []
            self._total -= len(idle)
            self._cond.notify_all()
        for connection in idle:
            connection.close()

    def __enter__(self) -> "RemoteClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ---------------------------------------------------------------- requests

    def _request_pinned(
        self, opcode: int, payload: Mapping[str, Any], *, idempotent: bool
    ) -> tuple[_PooledConnection, dict[str, Any]]:
        """Issue a request and return ``(connection, reply)`` without check-in.

        The caller owns the connection (cursors pin it for ``GET_MORE``) and
        must return it via ``_checkin``/``_discard``.  Transport failures are
        retried once on a fresh connection when *idempotent*.
        """
        attempts = 2 if (idempotent and self.retry_reads) else 1
        last_error: BaseException | None = None
        for _attempt in range(attempts):
            connection = self._checkout()
            try:
                frame = connection.request(opcode, payload)
            except _TRANSPORT_ERRORS as exc:
                self._discard(connection)
                last_error = exc
                continue
            except (DocumentStoreError, ShardTimeoutError):
                self._checkin(connection)
                raise
            return connection, frame.document
        raise ConnectionFailure(
            f"request failed after {attempts} attempt(s): {last_error}"
        ) from last_error

    def _request(
        self, opcode: int, payload: Mapping[str, Any], *, idempotent: bool = False
    ) -> dict[str, Any]:
        connection, document = self._request_pinned(opcode, payload, idempotent=idempotent)
        self._checkin(connection)
        return document

    # ---------------------------------------------------------------- surface

    def __getitem__(self, name: str) -> "RemoteDatabase":
        return RemoteDatabase(self, name)

    def __getattr__(self, name: str) -> "RemoteDatabase":
        if name.startswith("_"):
            raise AttributeError(name)
        return self[name]

    def get_database(self, name: str) -> "RemoteDatabase":
        """Return a database handle speaking the wire protocol."""
        return self[name]

    def command(self, database_name: str, command: Mapping[str, Any]) -> dict[str, Any]:
        """Run a database command on the server."""
        return self._request(
            Opcode.COMMAND,
            {"db": database_name, "command": dict(command)},
            idempotent=True,
        )

    def ping(self) -> bool:
        """Round-trip a ``ping`` command."""
        return self.command("admin", {"ping": 1}).get("ok") == 1.0

    def server_status(self) -> dict[str, Any]:
        """The server's observability surface (opcounters, latency, wire bytes)."""
        return self.command("admin", {"serverStatus": 1})

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        host, port = self.address
        return f"RemoteClient({host}:{port}, pool_size={self.pool_size})"


class RemoteDatabase:
    """Database handle over the wire."""

    def __init__(self, client: RemoteClient, name: str) -> None:
        self.client = client
        self.name = name

    def __getitem__(self, collection_name: str) -> "RemoteCollection":
        return RemoteCollection(self.client, self.name, collection_name)

    def __getattr__(self, collection_name: str) -> "RemoteCollection":
        if collection_name.startswith("_"):
            raise AttributeError(collection_name)
        return self[collection_name]

    def get_collection(self, collection_name: str) -> "RemoteCollection":
        """Return a collection handle speaking the wire protocol."""
        return self[collection_name]

    def command(self, command: Mapping[str, Any]) -> dict[str, Any]:
        """Run a command against this database."""
        return self.client.command(self.name, command)

    def list_collection_names(self) -> list[str]:
        """Collection names present on the server for this database."""
        return list(self.command({"listCollections": 1}).get("collections", []))

    def drop_collection(self, collection_name: str) -> None:
        """Drop a collection on the server."""
        self.command({"drop": collection_name})

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RemoteDatabase({self.name!r})"


class RemoteCollection:
    """Collection handle with the same surface as the in-process backends."""

    def __init__(self, client: RemoteClient, database_name: str, name: str) -> None:
        self.client = client
        self.database_name = database_name
        self.name = name

    @property
    def full_name(self) -> str:
        """The namespaced collection name."""
        return f"{self.database_name}.{self.name}"

    def _namespace(self) -> dict[str, Any]:
        return {"db": self.database_name, "collection": self.name}

    # ------------------------------------------------------------------ reads

    def find(
        self,
        query: Mapping[str, Any] | None = None,
        projection: Mapping[str, Any] | None = None,
        *,
        sort: str | Sequence[tuple[str, int]] | Mapping[str, int] | None = None,
        skip: int = 0,
        limit: int = 0,
        batch_size: int | None = None,
        hint: str | None = None,
    ) -> Cursor:
        """Return a lazy cursor; the complete spec crosses the wire at once."""
        spec = FindSpec.create(
            filter=query,
            projection=projection,
            sort=sort,
            skip=skip,
            limit=limit,
            batch_size=batch_size,
            hint=hint,
        )
        return Cursor(self._execute_find, spec=spec)

    def _execute_find(self, spec: FindSpec) -> Iterator[dict[str, Any]]:
        """Stream a find: one ``FIND`` frame, then ``GET_MORE`` per batch.

        The connection is pinned for the cursor's lifetime (server cursor
        state is per-connection); a cursor abandoned before exhaustion sends
        a best-effort ``KILL_CURSOR`` so the server frees its state.
        """
        payload = {**self._namespace(), "spec": encode_findspec(spec)}
        connection, reply = self.client._request_pinned(
            Opcode.FIND, payload, idempotent=True
        )
        cursor_id = 0
        try:
            while True:
                cursor_id = int(reply.get("cursor_id") or 0)
                for document in reply.get("batch", []):
                    yield document
                if not reply.get("has_more"):
                    cursor_id = 0
                    return
                try:
                    frame = connection.request(
                        Opcode.GET_MORE,
                        {
                            **self._namespace(),
                            "cursor_id": cursor_id,
                            "batch_size": spec.batch_size,
                        },
                    )
                except _TRANSPORT_ERRORS as exc:
                    lost_cursor_id, cursor_id = cursor_id, 0  # died with its connection
                    raise ConnectionFailure(
                        f"connection lost while streaming cursor {lost_cursor_id}: {exc}"
                    ) from exc
                reply = frame.document
        finally:
            if cursor_id and not connection.broken:
                try:
                    connection.request(
                        Opcode.KILL_CURSOR,
                        {**self._namespace(), "cursor_id": cursor_id},
                    )
                except (DocumentStoreError, ShardTimeoutError, *_TRANSPORT_ERRORS):
                    pass
            if connection.broken:
                self.client._discard(connection)
            else:
                self.client._checkin(connection)

    def find_one(
        self,
        query: Mapping[str, Any] | None = None,
        projection: Mapping[str, Any] | None = None,
        *,
        sort: str | Sequence[tuple[str, int]] | Mapping[str, int] | None = None,
    ) -> dict[str, Any] | None:
        """Return one matching document, or ``None``."""
        for document in self.find(query, projection, sort=sort, limit=1):
            return document
        return None

    def count_documents(self, query: Mapping[str, Any] | None = None) -> int:
        """Count matching documents on the server."""
        reply = self.client._request(
            Opcode.COUNT, {**self._namespace(), "filter": query}, idempotent=True
        )
        return int(reply["n"])

    def distinct(self, key: str, query: Mapping[str, Any] | None = None) -> list[Any]:
        """Distinct values of *key* across matching documents."""
        reply = self.client._request(
            Opcode.DISTINCT,
            {**self._namespace(), "key": key, "filter": query},
            idempotent=True,
        )
        return list(reply["values"])

    def aggregate(
        self,
        pipeline: Sequence[Mapping[str, Any]],
        *,
        batch_size: int | None = None,
    ) -> list[dict[str, Any]]:
        """Run an aggregation pipeline on the server.

        With *batch_size* the results stream back in ``GET_MORE`` batches
        (like :meth:`find`) instead of one monolithic reply — the path large
        ``$vectorSearch``/``$group`` result sets should take.
        """
        if batch_size is None:
            reply = self.client._request(
                Opcode.AGGREGATE,
                {**self._namespace(), "pipeline": [dict(stage) for stage in pipeline]},
                idempotent=True,
            )
            return list(reply["results"])
        return list(self._stream_aggregate(pipeline, int(batch_size)))

    def _stream_aggregate(
        self, pipeline: Sequence[Mapping[str, Any]], batch_size: int
    ) -> Iterator[dict[str, Any]]:
        """Stream an aggregation: one ``AGGREGATE`` frame, then ``GET_MORE``.

        Mirrors :meth:`_execute_find`: the connection stays pinned while the
        server cursor is open, and early abandonment kills the cursor.
        """
        payload = {
            **self._namespace(),
            "pipeline": [dict(stage) for stage in pipeline],
            "batch_size": batch_size,
        }
        connection, reply = self.client._request_pinned(
            Opcode.AGGREGATE, payload, idempotent=True
        )
        cursor_id = 0
        try:
            while True:
                cursor_id = int(reply.get("cursor_id") or 0)
                for document in reply.get("batch", []):
                    yield document
                if not reply.get("has_more"):
                    cursor_id = 0
                    return
                try:
                    frame = connection.request(
                        Opcode.GET_MORE,
                        {
                            **self._namespace(),
                            "cursor_id": cursor_id,
                            "batch_size": batch_size,
                        },
                    )
                except _TRANSPORT_ERRORS as exc:
                    lost_cursor_id, cursor_id = cursor_id, 0
                    raise ConnectionFailure(
                        f"connection lost while streaming cursor {lost_cursor_id}: {exc}"
                    ) from exc
                reply = frame.document
        finally:
            if cursor_id and not connection.broken:
                try:
                    connection.request(
                        Opcode.KILL_CURSOR,
                        {**self._namespace(), "cursor_id": cursor_id},
                    )
                except (DocumentStoreError, ShardTimeoutError, *_TRANSPORT_ERRORS):
                    pass
            if connection.broken:
                self.client._discard(connection)
            else:
                self.client._checkin(connection)

    def explain(
        self,
        query_or_pipeline: Mapping[str, Any] | Sequence[Mapping[str, Any]] | None = None,
        *,
        verbosity: str = "queryPlanner",
    ) -> dict[str, Any]:
        """The unified explain entry point (schema v1, ``surface="served"``).

        Same signature and document shape as ``Collection.explain`` /
        ``RoutedCollection.explain``: a mapping (or ``None``) explains a
        find, a sequence of stages explains an aggregation.
        """
        command: dict[str, Any] = {"explain": self.name, "verbosity": verbosity}
        if isinstance(query_or_pipeline, Sequence) and not isinstance(
            query_or_pipeline, (str, bytes)
        ):
            command["pipeline"] = [dict(stage) for stage in query_or_pipeline]
        elif query_or_pipeline is not None:
            command["query"] = dict(query_or_pipeline)
        reply = self.client.command(self.database_name, command)
        return dict(reply["explain"])

    # ----------------------------------------------------------------- writes

    def insert_one(self, document: Mapping[str, Any]) -> InsertOneResult:
        """Insert one document."""
        result = self.insert_many([document])
        return InsertOneResult(inserted_id=result.inserted_ids[0])

    def insert_many(self, documents: Sequence[Mapping[str, Any]]) -> InsertManyResult:
        """Insert a batch of documents in one frame."""
        reply = self.client._request(
            Opcode.INSERT_MANY,
            {**self._namespace(), "documents": [dict(doc) for doc in documents]},
        )
        return InsertManyResult(inserted_ids=list(reply["inserted_ids"]))

    def update_one(
        self,
        query: Mapping[str, Any] | None,
        update: Mapping[str, Any],
        *,
        upsert: bool = False,
    ) -> UpdateResult:
        """Update at most one matching document."""
        reply = self.client._request(
            Opcode.UPDATE_ONE,
            {**self._namespace(), "filter": query, "update": dict(update), "upsert": upsert},
        )
        return UpdateResult(
            matched_count=int(reply["matched"]),
            modified_count=int(reply["modified"]),
            upserted_id=reply.get("upserted_id"),
        )

    def update_many(
        self,
        query: Mapping[str, Any] | None,
        update: Mapping[str, Any],
        *,
        upsert: bool = False,
    ) -> UpdateResult:
        """Update every matching document."""
        reply = self.client._request(
            Opcode.UPDATE_MANY,
            {**self._namespace(), "filter": query, "update": dict(update), "upsert": upsert},
        )
        return UpdateResult(
            matched_count=int(reply["matched"]),
            modified_count=int(reply["modified"]),
            upserted_id=reply.get("upserted_id"),
        )

    def delete_one(self, query: Mapping[str, Any] | None) -> DeleteResult:
        """Delete at most one matching document."""
        reply = self.client._request(
            Opcode.DELETE_ONE, {**self._namespace(), "filter": query}
        )
        return DeleteResult(deleted_count=int(reply["deleted"]))

    def delete_many(self, query: Mapping[str, Any] | None) -> DeleteResult:
        """Delete every matching document."""
        reply = self.client._request(
            Opcode.DELETE_MANY, {**self._namespace(), "filter": query}
        )
        return DeleteResult(deleted_count=int(reply["deleted"]))

    # -------------------------------------------------------------------- DDL

    def create_index(self, keys: Any, *, unique: bool = False, name: str = "") -> str:
        """Create an index on the served collection.

        Accepts the same shapes as the in-process backends, including
        structured specs like ``{"keys": ["embedding"], "type": "vector",
        "dims": 8, "metric": "cosine"}`` — those cross the wire verbatim.
        """
        if isinstance(keys, Mapping) and "keys" in keys:
            reply = self.client.command(
                self.database_name,
                {"createIndexes": self.name, "spec": dict(keys)},
            )
            return str(reply["name"])
        if isinstance(keys, str):
            wire_keys: Any = keys
        elif isinstance(keys, Mapping):
            wire_keys = [[field, direction] for field, direction in keys.items()]
        else:
            wire_keys = [list(pair) for pair in keys]
        reply = self.client.command(
            self.database_name,
            {"createIndexes": self.name, "keys": wire_keys, "unique": unique, "name": name},
        )
        return str(reply["name"])

    def list_indexes(self) -> list[dict[str, Any]]:
        """Structured index specs (``Collection.list_indexes`` analogue)."""
        reply = self.client.command(self.database_name, {"listIndexes": self.name})
        return [dict(spec) for spec in reply["indexes"]]

    def drop_index(self, index_name: str) -> None:
        """Drop an index from the served collection."""
        self.client.command(
            self.database_name, {"dropIndexes": self.name, "index": index_name}
        )

    def drop(self) -> None:
        """Drop the served collection."""
        self.client.command(self.database_name, {"drop": self.name})

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RemoteCollection({self.full_name!r})"
