"""The served front door: wire protocol, socket server, and remote client.

Turns the in-process document store into a *served* system: a
length-prefixed binary frame protocol (:mod:`repro.server.protocol`), a
threaded TCP server fronting either a stand-alone
:class:`~repro.documentstore.client.DocumentStoreClient` or a
:class:`~repro.sharding.cluster.ShardedCluster`
(:mod:`repro.server.server`), and a pooled socket client that re-speaks the
existing Collection API over the wire (:mod:`repro.server.client`).
"""

from .client import RemoteClient, RemoteCollection, RemoteDatabase
from .protocol import (
    FLAG_HAS_MORE,
    MAX_FRAME_SIZE,
    ConnectionFailure,
    Frame,
    Opcode,
    ProtocolError,
    decode_findspec,
    encode_error,
    encode_findspec,
    encode_frame,
    raise_wire_error,
    recv_frame,
)
from .server import DocumentStoreServer, LatencyHistogram, ServerStats

__all__ = [
    "ConnectionFailure",
    "DocumentStoreServer",
    "FLAG_HAS_MORE",
    "Frame",
    "LatencyHistogram",
    "MAX_FRAME_SIZE",
    "Opcode",
    "ProtocolError",
    "RemoteClient",
    "RemoteCollection",
    "RemoteDatabase",
    "ServerStats",
    "decode_findspec",
    "encode_error",
    "encode_findspec",
    "encode_frame",
    "raise_wire_error",
    "recv_frame",
]
