"""A threaded socket server fronting the document store.

:class:`DocumentStoreServer` binds one TCP listening socket and speaks the
length-prefixed frame protocol of :mod:`repro.server.protocol`.  It can
front any backend exposing ``get_database(name)`` — a stand-alone
:class:`~repro.documentstore.client.DocumentStoreClient`, a
:class:`~repro.sharding.cluster.ShardedCluster`, or a bare
:class:`~repro.sharding.router.QueryRouter` — so the same wire surface
serves both of the paper's deployment environments.

Design points:

* **one thread per connection** — each accepted socket gets a daemon
  handler thread with its own session state; accepts beyond
  ``max_connections`` are rejected with a structured error frame
  (backpressure the client can see and retry on);
* **cursor state for batched streaming** — a ``FIND`` whose result exceeds
  the batch size registers a server-side cursor; ``GET_MORE`` frames stream
  the remaining batches.  The cursor wraps the backend's lazy
  :class:`~repro.documentstore.cursor.Cursor`, so the complete
  :class:`~repro.documentstore.findspec.FindSpec` (sort/skip/limit/
  projection/hint) reached the planner before the first batch was produced
  — shard-side pushdown survives the wire;
* **graceful shutdown** — :meth:`shutdown` stops accepting, waits for
  in-flight operations to drain, then closes every session;
* **observability from day one** — :class:`ServerStats` counts every
  opcode, keeps a per-opcode log-bucketed latency histogram, and records
  the *actual* encoded size of every frame in both directions
  (``bytes_in``/``bytes_out``), making the simulated
  ``RouterMetrics.bytes_shipped`` numbers checkable against real sockets.
  The whole surface is exposed through the ``serverStatus`` command.
"""

from __future__ import annotations

import math
import socket
import threading
import time
from typing import Any, Callable, Iterator, Mapping

from ..documentstore.errors import DocumentStoreError, OperationFailure
from ..sharding.executor import ShardTimeoutError
from .protocol import (
    FLAG_HAS_MORE,
    Frame,
    Opcode,
    ProtocolError,
    encode_error,
    encode_frame,
    decode_findspec,
    recv_frame,
)

__all__ = ["DocumentStoreServer", "ServerStats", "LatencyHistogram"]

#: Default number of documents per find/getMore response batch.
DEFAULT_BATCH_SIZE = 101


class LatencyHistogram:
    """Log-bucketed latency histogram (power-of-two buckets from 1 µs).

    Exact enough for p50/p95/p99 reporting at a fixed, tiny memory cost per
    opcode; percentiles are interpolated inside the winning bucket.
    """

    #: Lower edge of the first bucket, in seconds.
    BASE_SECONDS = 1e-6
    #: Number of power-of-two buckets (covers 1 µs .. ~134 s).
    BUCKETS = 28

    def __init__(self) -> None:
        self.counts = [0] * self.BUCKETS
        self.count = 0
        self.total_seconds = 0.0
        self.max_seconds = 0.0

    def record(self, seconds: float) -> None:
        """Add one observation."""
        if seconds < 0:
            seconds = 0.0
        index = 0
        if seconds > self.BASE_SECONDS:
            index = min(
                self.BUCKETS - 1,
                1 + int(math.log2(seconds / self.BASE_SECONDS)),
            )
        self.counts[index] += 1
        self.count += 1
        self.total_seconds += seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds

    def _bucket_edges(self, index: int) -> tuple[float, float]:
        if index == 0:
            return 0.0, self.BASE_SECONDS
        return (
            self.BASE_SECONDS * 2 ** (index - 1),
            self.BASE_SECONDS * 2 ** index,
        )

    def percentile(self, fraction: float) -> float:
        """Approximate the latency at *fraction* (0..1) of observations."""
        if self.count == 0:
            return 0.0
        target = fraction * self.count
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if seen + bucket_count >= target:
                low, high = self._bucket_edges(index)
                within = (target - seen) / bucket_count
                return min(low + (high - low) * within, self.max_seconds or high)
            seen += bucket_count
        return self.max_seconds

    def snapshot(self) -> dict[str, Any]:
        """Summary statistics in milliseconds."""
        mean = self.total_seconds / self.count if self.count else 0.0
        return {
            "count": self.count,
            "mean_ms": mean * 1e3,
            "p50_ms": self.percentile(0.50) * 1e3,
            "p95_ms": self.percentile(0.95) * 1e3,
            "p99_ms": self.percentile(0.99) * 1e3,
            "max_ms": self.max_seconds * 1e3,
        }


class ServerStats:
    """Thread-safe operation counters, latency histograms, wire byte totals.

    ``bytes_in``/``bytes_out`` are *actual* encoded frame sizes measured at
    the socket boundary — not estimates — which is what makes the
    traffic-benchmark byte numbers and the ``RouterMetrics`` comparison
    honest.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.started_at = time.time()
        self.opcounters: dict[str, int] = {}
        self.errors = 0
        self.latency: dict[str, LatencyHistogram] = {}
        self.frames_in = 0
        self.frames_out = 0
        self.bytes_in = 0
        self.bytes_out = 0
        self.connections_accepted = 0
        self.connections_rejected = 0
        self.connections_active = 0
        self.cursors_opened = 0
        self.cursors_exhausted = 0
        self.cursors_killed = 0

    def record_frame_in(self, wire_size: int) -> None:
        with self._lock:
            self.frames_in += 1
            self.bytes_in += wire_size

    def record_frame_out(self, wire_size: int) -> None:
        with self._lock:
            self.frames_out += 1
            self.bytes_out += wire_size

    def record_operation(self, opcode_name: str, seconds: float, *, failed: bool) -> None:
        with self._lock:
            self.opcounters[opcode_name] = self.opcounters.get(opcode_name, 0) + 1
            if failed:
                self.errors += 1
            histogram = self.latency.get(opcode_name)
            if histogram is None:
                histogram = self.latency[opcode_name] = LatencyHistogram()
            histogram.record(seconds)

    def adjust_connections(self, delta: int) -> None:
        with self._lock:
            self.connections_active += delta
            if delta > 0:
                self.connections_accepted += delta

    def record_rejection(self) -> None:
        with self._lock:
            self.connections_rejected += 1

    def record_cursor(self, event: str) -> None:
        with self._lock:
            if event == "opened":
                self.cursors_opened += 1
            elif event == "exhausted":
                self.cursors_exhausted += 1
            elif event == "killed":
                self.cursors_killed += 1

    def reset(self) -> None:
        """Zero every counter (between benchmark phases)."""
        with self._lock:
            self.opcounters.clear()
            self.latency.clear()
            self.errors = 0
            self.frames_in = self.frames_out = 0
            self.bytes_in = self.bytes_out = 0
            self.cursors_opened = self.cursors_exhausted = self.cursors_killed = 0

    def snapshot(self) -> dict[str, Any]:
        """The full statistics surface as a plain dictionary."""
        with self._lock:
            return {
                "uptime_seconds": time.time() - self.started_at,
                "opcounters": dict(self.opcounters),
                "errors": self.errors,
                "latency_ms": {
                    name: histogram.snapshot()
                    for name, histogram in self.latency.items()
                },
                "wire": {
                    "frames_in": self.frames_in,
                    "frames_out": self.frames_out,
                    "bytes_in": self.bytes_in,
                    "bytes_out": self.bytes_out,
                },
                "connections": {
                    "accepted": self.connections_accepted,
                    "rejected": self.connections_rejected,
                    "active": self.connections_active,
                },
                "cursors": {
                    "opened": self.cursors_opened,
                    "exhausted": self.cursors_exhausted,
                    "killed": self.cursors_killed,
                },
            }


class _ServerCursor:
    """Session-local state of one batched ``FIND`` being streamed."""

    def __init__(self, iterator: Iterator[dict[str, Any]], batch_size: int) -> None:
        self.iterator = iterator
        self.batch_size = batch_size
        self._lookahead: dict[str, Any] | None = None
        self._has_lookahead = False

    def next_batch(self, batch_size: int | None = None) -> tuple[list[dict[str, Any]], bool]:
        """Return (documents, has_more) for the next response batch."""
        size = batch_size or self.batch_size
        batch: list[dict[str, Any]] = []
        if self._has_lookahead:
            assert self._lookahead is not None
            batch.append(self._lookahead)
            self._lookahead = None
            self._has_lookahead = False
        while len(batch) < size:
            try:
                batch.append(next(self.iterator))
            except StopIteration:
                return batch, False
        try:
            self._lookahead = next(self.iterator)
            self._has_lookahead = True
        except StopIteration:
            return batch, False
        return batch, True


class DocumentStoreServer:
    """The wire-protocol front door to a stand-alone store or a cluster.

    Parameters
    ----------
    backend:
        Anything with ``get_database(name)`` — ``DocumentStoreClient``,
        ``ShardedCluster``, or ``QueryRouter``.  The server does not own
        the backend: closing the server leaves it untouched.
    max_connections:
        Concurrent session cap; further accepts receive a
        ``TooManyConnections`` error frame and are closed (backpressure).
    read_timeout_seconds / write_timeout_seconds:
        Socket timeouts for receiving requests (``None`` = wait forever)
        and sending replies.  A read timeout closes the idle session; a
        write timeout closes a session whose client stopped draining.
    default_batch_size:
        Response batch size for finds that did not set one on their spec.
    """

    def __init__(
        self,
        backend: Any,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_connections: int = 64,
        read_timeout_seconds: float | None = None,
        write_timeout_seconds: float | None = 30.0,
        default_batch_size: int = DEFAULT_BATCH_SIZE,
        name: str = "documentstore-server",
    ) -> None:
        if not hasattr(backend, "get_database"):
            raise TypeError(
                "backend must expose get_database(name) "
                "(DocumentStoreClient, ShardedCluster, or QueryRouter)"
            )
        if default_batch_size <= 0:
            raise ValueError("default_batch_size must be positive")
        self.name = name
        self.backend = backend
        self.stats = ServerStats()
        self.max_connections = max_connections
        self.read_timeout_seconds = read_timeout_seconds
        self.write_timeout_seconds = write_timeout_seconds
        self.default_batch_size = default_batch_size
        self._requested_host = host
        self._requested_port = port
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._sessions: set[_Session] = set()
        self._state_lock = threading.Lock()
        self._inflight = 0
        self._inflight_cond = threading.Condition(self._state_lock)
        self._stopping = False
        self._started = False

    # ------------------------------------------------------------- lifecycle

    def start(self) -> "DocumentStoreServer":
        """Bind, listen, and start accepting connections; returns ``self``."""
        with self._state_lock:
            if self._started:
                return self
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self._requested_host, self._requested_port))
            listener.listen(128)
            # The timeout is a portable fallback so the accept loop re-checks
            # ``_stopping`` even if closing the listener fails to wake it.
            listener.settimeout(1.0)
            self._listener = listener
            self._started = True
            self._stopping = False
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"{self.name}-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    @property
    def address(self) -> tuple[str, int]:
        """The (host, port) the server is actually bound to."""
        if self._listener is None:
            raise OperationFailure("server is not started")
        return self._listener.getsockname()[:2]

    @property
    def port(self) -> int:
        """The bound TCP port (useful with ``port=0`` ephemeral binds)."""
        return self.address[1]

    def shutdown(self, *, drain_timeout_seconds: float = 10.0) -> None:
        """Gracefully stop: no new connections, drain in-flight operations.

        Operations already executing when shutdown begins run to completion
        and their replies are delivered (bounded by *drain_timeout_seconds*);
        only then are the session sockets closed.
        """
        with self._state_lock:
            if not self._started or self._stopping:
                self._stopping = True
                return
            self._stopping = True
            listener = self._listener
        if listener is not None:
            # SHUT_RDWR wakes a thread blocked in accept(); close alone
            # does not on Linux.
            try:
                listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                listener.close()
            except OSError:  # pragma: no cover - best effort
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=drain_timeout_seconds)
        deadline = time.monotonic() + drain_timeout_seconds
        with self._inflight_cond:
            while self._inflight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._inflight_cond.wait(remaining)
        with self._state_lock:
            sessions = list(self._sessions)
        for session in sessions:
            session.close()
        for session in sessions:
            session.join(timeout=2.0)
        # Every acknowledged write has been logged by the backend; a graceful
        # drain also forces group-committed WAL records to stable storage so
        # a planned restart never depends on the fsync policy.
        self._flush_backend_durability()
        self._started = False

    def _flush_backend_durability(self) -> None:
        """Flush the backend's WAL(s), when it has a durable storage engine.

        Class-level check for the same reason as :meth:`_router`: the
        standalone client materializes databases for unknown attributes.
        """
        if hasattr(type(self.backend), "flush_durability"):
            try:
                self.backend.flush_durability()
            except Exception:  # pragma: no cover - best effort on teardown
                pass

    close = shutdown

    def __enter__(self) -> "DocumentStoreServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()

    # ------------------------------------------------------------ accept loop

    def _accept_loop(self) -> None:
        listener = self._listener
        assert listener is not None
        while True:
            try:
                conn, _addr = listener.accept()
            except (TimeoutError, socket.timeout):
                if self._stopping:
                    return
                continue
            except OSError:
                return  # listener closed by shutdown()
            with self._state_lock:
                stopping = self._stopping
                active = len(self._sessions)
            if stopping or active >= self.max_connections:
                self._reject(conn, stopping=stopping)
                continue
            session = _Session(self, conn)
            with self._state_lock:
                self._sessions.add(session)
            self.stats.adjust_connections(+1)
            session.start()

    def _reject(self, conn: socket.socket, *, stopping: bool) -> None:
        """Refuse a connection with a structured error frame (backpressure)."""
        self.stats.record_rejection()
        code = "ShuttingDown" if stopping else "TooManyConnections"
        message = (
            "server is shutting down"
            if stopping
            else f"connection limit of {self.max_connections} reached; retry later"
        )
        try:
            conn.settimeout(1.0)
            frame = encode_frame(
                Opcode.ERROR, 0, {"code": code, "message": message, "details": {}}
            )
            conn.sendall(frame)
            self.stats.record_frame_out(len(frame))
        except OSError:  # pragma: no cover - peer vanished
            pass
        finally:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass

    def _session_finished(self, session: "_Session") -> None:
        with self._state_lock:
            self._sessions.discard(session)
        self.stats.adjust_connections(-1)

    # -------------------------------------------------------------- op window

    def _operation_started(self) -> bool:
        """Enter the in-flight window; False when the server is draining."""
        with self._inflight_cond:
            if self._stopping:
                return False
            self._inflight += 1
            return True

    def _operation_finished(self) -> None:
        with self._inflight_cond:
            self._inflight -= 1
            if self._inflight == 0:
                self._inflight_cond.notify_all()

    # ------------------------------------------------------------- backend ops

    def _collection(self, database_name: str, collection_name: str) -> Any:
        return self.backend.get_database(database_name)[collection_name]

    def _router(self) -> Any | None:
        """The query router behind this server, when fronting a cluster.

        Checks are class-level / instance-dict only: ``DocumentStoreClient``
        materializes a database for *any* attribute name via ``__getattr__``,
        so plain ``hasattr`` would misidentify a standalone backend.
        """
        if hasattr(type(self.backend), "execute_find"):
            return self.backend
        router = vars(self.backend).get("router")
        if router is not None and hasattr(type(router), "execute_find"):
            return router
        return None

    def server_status(self) -> dict[str, Any]:
        """The ``serverStatus`` command body."""
        router = self._router()
        status: dict[str, Any] = {
            "ok": 1.0,
            "name": self.name,
            "deployment": "sharded" if router is not None else "standalone",
            **self.stats.snapshot(),
        }
        if router is not None:
            status["router"] = router.metrics.snapshot()
            status["network"] = router.network.stats.snapshot()
        if hasattr(type(self.backend), "durability_status"):
            status["durability"] = self.backend.durability_status()
        return status


class _Session(threading.Thread):
    """One connection: a request loop plus per-connection cursor state."""

    def __init__(self, server: DocumentStoreServer, sock: socket.socket) -> None:
        super().__init__(name=f"{server.name}-session", daemon=True)
        self.server = server
        self.sock = sock
        self.cursors: dict[int, _ServerCursor] = {}
        self._next_cursor_id = 1
        self._closed = False
        self._handlers: dict[int, Callable[[Mapping[str, Any]], tuple[dict[str, Any], int]]] = {
            Opcode.FIND: self._handle_find,
            Opcode.GET_MORE: self._handle_get_more,
            Opcode.KILL_CURSOR: self._handle_kill_cursor,
            Opcode.INSERT_MANY: self._handle_insert_many,
            Opcode.UPDATE_ONE: self._handle_update_one,
            Opcode.UPDATE_MANY: self._handle_update_many,
            Opcode.DELETE_ONE: self._handle_delete_one,
            Opcode.DELETE_MANY: self._handle_delete_many,
            Opcode.AGGREGATE: self._handle_aggregate,
            Opcode.DISTINCT: self._handle_distinct,
            Opcode.COUNT: self._handle_count,
            Opcode.COMMAND: self._handle_command,
        }

    # --------------------------------------------------------------- plumbing

    def close(self) -> None:
        """Close the session socket (unblocks the request loop)."""
        self._closed = True
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:  # pragma: no cover
            pass

    def run(self) -> None:
        try:
            self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover - platform without TCP_NODELAY
            pass
        try:
            while True:
                try:
                    self.sock.settimeout(self.server.read_timeout_seconds)
                    frame = recv_frame(self.sock)
                except (TimeoutError, socket.timeout):
                    break  # idle past the read timeout: close the session
                except (OSError, ProtocolError):
                    break
                if frame is None:
                    break  # clean EOF
                self.server.stats.record_frame_in(frame.wire_size)
                reply, in_flight = self._dispatch(frame)
                # Account the reply *before* sending it: once the client has
                # read the frame, the stats must already include it.
                self.server.stats.record_frame_out(len(reply))
                try:
                    self.sock.settimeout(self.server.write_timeout_seconds)
                    self.sock.sendall(reply)
                except (TimeoutError, socket.timeout, OSError):
                    break
                finally:
                    if in_flight:
                        self.server._operation_finished()
        finally:
            self.cursors.clear()
            if not self._closed:
                try:
                    self.sock.close()
                except OSError:  # pragma: no cover
                    pass
            self.server._session_finished(self)

    def _dispatch(self, frame: Frame) -> tuple[bytes, bool]:
        """Execute one frame; returns (encoded reply, entered in-flight window).

        When the second element is True the caller must call
        ``_operation_finished()`` once the reply has been sent (or the send
        failed) — the in-flight window covers delivery, not just execution,
        so a draining shutdown never cuts a session between handler
        completion and ``sendall``.
        """
        started = time.perf_counter()
        try:
            opcode_name = Opcode(frame.opcode).name.lower()
        except ValueError:
            opcode_name = f"op{frame.opcode}"
        if not self.server._operation_started():
            payload = {
                "code": "ShuttingDown",
                "message": "server is shutting down",
                "details": {},
            }
            return encode_frame(Opcode.ERROR, frame.request_id, payload), False
        failed = False
        try:
            handler = self._handlers.get(frame.opcode)
            if handler is None:
                raise OperationFailure(f"unknown opcode {frame.opcode}")
            payload, flags = handler(frame.document)
            reply = encode_frame(Opcode.REPLY, frame.request_id, payload, flags=flags)
        except (DocumentStoreError, ShardTimeoutError) as exc:
            failed = True
            reply = encode_frame(Opcode.ERROR, frame.request_id, encode_error(exc))
        except Exception as exc:  # noqa: BLE001 - the server must not die
            failed = True
            reply = encode_frame(
                Opcode.ERROR,
                frame.request_id,
                {"code": "InternalError", "message": repr(exc), "details": {}},
            )
        self.server.stats.record_operation(
            opcode_name, time.perf_counter() - started, failed=failed
        )
        # The caller closes the in-flight window *after* sending the reply:
        # a draining shutdown must not close this session between handler
        # completion and sendall, or the reply would be dropped.
        return reply, True

    # --------------------------------------------------------------- handlers

    def _handle_find(self, doc: Mapping[str, Any]) -> tuple[dict[str, Any], int]:
        collection = self.server._collection(doc["db"], doc["collection"])
        spec = decode_findspec(doc.get("spec") or {})
        cursor = collection.find(
            spec.filter,
            spec.projection,
            sort=spec.sort,
            skip=spec.skip,
            limit=spec.limit or 0,
            batch_size=spec.batch_size,
            hint=spec.hint,
        )
        batch_size = spec.batch_size or self.server.default_batch_size
        server_cursor = _ServerCursor(iter(cursor), batch_size)
        batch, has_more = server_cursor.next_batch()
        cursor_id = 0
        flags = 0
        if has_more:
            cursor_id = self._next_cursor_id
            self._next_cursor_id += 1
            self.cursors[cursor_id] = server_cursor
            self.server.stats.record_cursor("opened")
            flags = FLAG_HAS_MORE
        return {"batch": batch, "cursor_id": cursor_id, "has_more": has_more}, flags

    def _handle_get_more(self, doc: Mapping[str, Any]) -> tuple[dict[str, Any], int]:
        cursor_id = int(doc.get("cursor_id") or 0)
        server_cursor = self.cursors.get(cursor_id)
        if server_cursor is None:
            raise OperationFailure(f"cursor {cursor_id} not found on this connection")
        batch, has_more = server_cursor.next_batch(doc.get("batch_size"))
        if not has_more:
            del self.cursors[cursor_id]
            self.server.stats.record_cursor("exhausted")
            cursor_id = 0
        flags = FLAG_HAS_MORE if has_more else 0
        return {"batch": batch, "cursor_id": cursor_id, "has_more": has_more}, flags

    def _handle_kill_cursor(self, doc: Mapping[str, Any]) -> tuple[dict[str, Any], int]:
        cursor_id = int(doc.get("cursor_id") or 0)
        if self.cursors.pop(cursor_id, None) is not None:
            self.server.stats.record_cursor("killed")
        return {"ok": 1.0}, 0

    def _handle_insert_many(self, doc: Mapping[str, Any]) -> tuple[dict[str, Any], int]:
        collection = self.server._collection(doc["db"], doc["collection"])
        result = collection.insert_many(doc.get("documents") or [])
        return {"inserted_ids": list(result.inserted_ids)}, 0

    def _handle_update_one(self, doc: Mapping[str, Any]) -> tuple[dict[str, Any], int]:
        collection = self.server._collection(doc["db"], doc["collection"])
        result = collection.update_one(
            doc.get("filter"), doc["update"], upsert=bool(doc.get("upsert"))
        )
        return {
            "matched": result.matched_count,
            "modified": result.modified_count,
            "upserted_id": result.upserted_id,
        }, 0

    def _handle_update_many(self, doc: Mapping[str, Any]) -> tuple[dict[str, Any], int]:
        collection = self.server._collection(doc["db"], doc["collection"])
        result = collection.update_many(
            doc.get("filter"), doc["update"], upsert=bool(doc.get("upsert"))
        )
        return {
            "matched": result.matched_count,
            "modified": result.modified_count,
            "upserted_id": result.upserted_id,
        }, 0

    def _handle_delete_one(self, doc: Mapping[str, Any]) -> tuple[dict[str, Any], int]:
        collection = self.server._collection(doc["db"], doc["collection"])
        result = collection.delete_one(doc.get("filter"))
        return {"deleted": result.deleted_count}, 0

    def _handle_delete_many(self, doc: Mapping[str, Any]) -> tuple[dict[str, Any], int]:
        collection = self.server._collection(doc["db"], doc["collection"])
        result = collection.delete_many(doc.get("filter"))
        return {"deleted": result.deleted_count}, 0

    def _handle_aggregate(self, doc: Mapping[str, Any]) -> tuple[dict[str, Any], int]:
        collection = self.server._collection(doc["db"], doc["collection"])
        results = collection.aggregate(doc.get("pipeline") or [])
        if "batch_size" not in doc:
            # Pre-cursor clients ask for the whole result set in one reply.
            return {"results": list(results)}, 0
        # Cursor-style reply: ship the first batch and register a server
        # cursor for GET_MORE, exactly like _handle_find.
        batch_size = int(doc.get("batch_size") or self.server.default_batch_size)
        server_cursor = _ServerCursor(iter(results), batch_size)
        batch, has_more = server_cursor.next_batch()
        cursor_id = 0
        flags = 0
        if has_more:
            cursor_id = self._next_cursor_id
            self._next_cursor_id += 1
            self.cursors[cursor_id] = server_cursor
            self.server.stats.record_cursor("opened")
            flags = FLAG_HAS_MORE
        return {"batch": batch, "cursor_id": cursor_id, "has_more": has_more}, flags

    def _handle_distinct(self, doc: Mapping[str, Any]) -> tuple[dict[str, Any], int]:
        collection = self.server._collection(doc["db"], doc["collection"])
        values = collection.distinct(doc["key"], doc.get("filter"))
        return {"values": list(values)}, 0

    def _handle_count(self, doc: Mapping[str, Any]) -> tuple[dict[str, Any], int]:
        collection = self.server._collection(doc["db"], doc["collection"])
        return {"n": collection.count_documents(doc.get("filter"))}, 0

    def _handle_command(self, doc: Mapping[str, Any]) -> tuple[dict[str, Any], int]:
        command = doc.get("command") or {}
        database_name = doc.get("db") or "admin"
        if "ping" in command:
            return {"ok": 1.0}, 0
        if "serverStatus" in command:
            return self.server.server_status(), 0
        if "createIndexes" in command:
            collection = self.server._collection(database_name, command["createIndexes"])
            spec = command.get("spec")
            if isinstance(spec, Mapping):
                # Structured spec: btree and vector indexes round-trip as-is.
                name = collection.create_index(spec)
                return {"ok": 1.0, "name": name}, 0
            keys = command.get("keys")
            if isinstance(keys, list):
                keys = [tuple(pair) for pair in keys]
            name = collection.create_index(
                keys,
                unique=bool(command.get("unique")),
                name=str(command.get("name") or ""),
            )
            return {"ok": 1.0, "name": name}, 0
        if "listIndexes" in command:
            collection = self.server._collection(database_name, command["listIndexes"])
            return {"ok": 1.0, "indexes": collection.list_indexes()}, 0
        if "explain" in command:
            collection = self.server._collection(database_name, command["explain"])
            if "pipeline" in command:
                argument: Any = command["pipeline"]
            else:
                argument = command.get("query")
            explain = collection.explain(
                argument, verbosity=str(command.get("verbosity") or "queryPlanner")
            )
            # The backend reports its own surface; the client sees a served one.
            explain["surface"] = "served"
            return {"ok": 1.0, "explain": explain}, 0
        if "dropIndexes" in command:
            collection = self.server._collection(database_name, command["dropIndexes"])
            collection.drop_index(str(command["index"]))
            return {"ok": 1.0}, 0
        if "drop" in command:
            collection = self.server._collection(database_name, command["drop"])
            collection.drop()
            return {"ok": 1.0}, 0
        if "listCollections" in command:
            database = self.server.backend.get_database(database_name)
            return {"ok": 1.0, "collections": database.list_collection_names()}, 0
        raise OperationFailure(f"unknown command {sorted(command)!r}")
