"""Shared fixtures for the benchmark suite.

The benchmarks regenerate every table and figure of the paper's evaluation
section.  They share one :class:`~repro.core.ExperimentHarness` per pytest
session so each deployment (stand-alone / sharded, small / large scale) is
loaded and denormalized exactly once.

Scale control
-------------
By default the harness uses the reproduction's standard scales (the paper's
1 GB / 5 GB datasets reduced by 1/1000).  Set ``REPRO_BENCH_SCALE=tiny`` to
run the whole suite on very small data (useful for smoke-testing the
benchmark code itself), or ``REPRO_BENCH_SCALE=full`` for the standard size.

Artifacts
---------
Every benchmark renders the table or figure it reproduces into
``benchmarks/results/`` so the numbers can be compared with the paper after
a run (this populates EXPERIMENTS.md).
"""

from __future__ import annotations

import gc
import os
import pathlib

import pytest

from repro.core import ExperimentHarness, tiny_profile

RESULTS_DIRECTORY = pathlib.Path(__file__).parent / "results"

#: Shared cache of measured query runtimes: {(experiment, query): seconds}.
MEASURED_RUNTIMES: dict[tuple[int, int], float] = {}


@pytest.fixture(autouse=True)
def _collect_before_timing():
    """Drain collector debt before each benchmark.

    When the full suite runs in one process, a thousand functional tests
    precede these timing assertions; a generation-2 collection triggered
    mid-measurement can double a sub-second load on a single-CPU runner
    and flip a relative-timing check.
    """
    gc.collect()
    yield


def _scale_overrides() -> dict:
    mode = os.environ.get("REPRO_BENCH_SCALE", "full").lower()
    if mode == "tiny":
        return {
            "small": tiny_profile(1.0 / 10_000.0),
            "large": tiny_profile(1.0 / 4_000.0),
        }
    return {}


@pytest.fixture(scope="session")
def harness() -> ExperimentHarness:
    """The shared experiment harness (cached environments per scale)."""
    return ExperimentHarness(scale_overrides=_scale_overrides())


@pytest.fixture(scope="session")
def measured_runtimes() -> dict[tuple[int, int], float]:
    """Query runtimes recorded by earlier benchmarks in the same session."""
    return MEASURED_RUNTIMES


@pytest.fixture(scope="session")
def record_artifact():
    """Write a rendered table/figure to ``benchmarks/results/`` and echo it."""

    def _record(name: str, text: str) -> pathlib.Path:
        RESULTS_DIRECTORY.mkdir(parents=True, exist_ok=True)
        path = RESULTS_DIRECTORY / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[artifact written to {path}]")
        return path

    return _record
