"""Figure 4.9 — comparison of total data-load times for the two datasets.

The paper's Figure 4.9 is a bar chart of the total load time of the 9.94 GB
dataset (47m20s) against the 41.93 GB dataset (3h31m54s).  This benchmark
loads both reproduction datasets into fresh stand-alone deployments and
renders the same two-bar comparison; the expected shape is that the large
dataset takes several times longer, in proportion to its extra rows.
"""

from __future__ import annotations

import pytest

from repro.core import format_seconds, render_bar_chart
from repro.core.migration import migrate_generated_dataset
from repro.documentstore import DocumentStoreClient
from repro.tpcds import SCALE_LARGE, SCALE_SMALL, TPCDSGenerator

#: Total load seconds measured per profile, shared across parametrized runs.
TOTALS: dict[str, float] = {}


def _load(profile) -> float:
    generator = TPCDSGenerator(profile, seed=20151109)
    client = DocumentStoreClient()
    report = migrate_generated_dataset(client[profile.database_name], generator)
    return report.total_seconds


@pytest.mark.benchmark(group="figure-4.9")
@pytest.mark.parametrize("profile", [SCALE_SMALL, SCALE_LARGE], ids=["small-9.94GB", "large-41.93GB"])
def test_total_load_time(benchmark, profile):
    """Measure the end-to-end load of one dataset."""
    total = benchmark.pedantic(_load, args=(profile,), rounds=1, iterations=1)
    TOTALS[profile.name] = total
    assert total > 0


@pytest.mark.benchmark(group="figure-4.9")
def test_render_figure(benchmark, record_artifact):
    """Render the Figure 4.9 bar chart from the measured totals."""
    for profile in (SCALE_SMALL, SCALE_LARGE):
        if profile.name not in TOTALS:
            TOTALS[profile.name] = _load(profile)

    series = {
        "9.94GB dataset (small)": TOTALS[SCALE_SMALL.name],
        "41.93GB dataset (large)": TOTALS[SCALE_LARGE.name],
    }
    chart = benchmark.pedantic(
        lambda: render_bar_chart(series, title="Figure 4.9 — data load times"),
        rounds=3,
        iterations=1,
    )
    summary = (
        f"{chart}\n\n"
        f"paper: 47m20.14s vs 3h31m53.72s (ratio 4.47x)\n"
        f"reproduction: {format_seconds(series['9.94GB dataset (small)'])} vs "
        f"{format_seconds(series['41.93GB dataset (large)'])} "
        f"(ratio {series['41.93GB dataset (large)'] / series['9.94GB dataset (small)']:.2f}x)"
    )
    record_artifact("figure_4_9_load_times", summary)

    # Shape check: the large dataset loads substantially slower.
    assert series["41.93GB dataset (large)"] > 2.0 * series["9.94GB dataset (small)"]
