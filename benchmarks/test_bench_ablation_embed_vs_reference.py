"""Ablation — embedded vs referenced data model for read operations.

Table 2.2 of the paper contrasts the two document-modelling options: the
embedded (denormalized) model retrieves related data in a single operation,
while the referenced (normalized) model needs follow-up queries to resolve
references.  This ablation measures that difference directly on the
publisher/book example of Section 2.1.1, scaled up to many publishers.
"""

from __future__ import annotations

import pytest

from repro.core import render_table
from repro.documentstore import DocumentStoreClient

PUBLISHERS = 200
BOOKS_PER_PUBLISHER = 8


@pytest.fixture(scope="module")
def library():
    client = DocumentStoreClient()
    database = client["library"]

    referenced_publishers = database["publishers"]
    referenced_books = database["books"]
    embedded_publishers = database["publishers_embedded"]

    for publisher_id in range(1, PUBLISHERS + 1):
        publisher = {
            "publisher_id": publisher_id,
            "publisher": f"Publisher {publisher_id}",
            "founded": 1900 + publisher_id % 100,
            "location": "California",
        }
        books = [
            {
                "title": f"Book {publisher_id}-{book_number}",
                "publisher_id": publisher_id,
                "pages": 100 + book_number,
            }
            for book_number in range(BOOKS_PER_PUBLISHER)
        ]
        referenced_publishers.insert_one(publisher)
        referenced_books.insert_many(books)
        embedded_publishers.insert_one({**publisher, "books": books})

    referenced_books.create_index("publisher_id")
    referenced_publishers.create_index("publisher_id")
    embedded_publishers.create_index("publisher_id")
    return database


TIMINGS: dict[str, float] = {}


@pytest.mark.benchmark(group="ablation-data-model")
def test_embedded_read_single_operation(benchmark, library):
    """Complete publisher info (publisher + books) in one read."""

    def read_all():
        documents = []
        for publisher_id in range(1, PUBLISHERS + 1):
            documents.append(
                library["publishers_embedded"].find_one({"publisher_id": publisher_id})
            )
        return documents

    documents = benchmark.pedantic(read_all, rounds=3, iterations=1)
    TIMINGS["embedded"] = benchmark.stats.stats.min
    assert len(documents) == PUBLISHERS
    assert len(documents[0]["books"]) == BOOKS_PER_PUBLISHER


@pytest.mark.benchmark(group="ablation-data-model")
def test_referenced_read_requires_follow_up_queries(benchmark, library):
    """The referenced model resolves each publisher's books separately."""

    def read_all():
        documents = []
        for publisher_id in range(1, PUBLISHERS + 1):
            publisher = library["publishers"].find_one({"publisher_id": publisher_id})
            publisher = dict(publisher)
            publisher["books"] = library["books"].find(
                {"publisher_id": publisher_id}
            ).to_list()
            documents.append(publisher)
        return documents

    documents = benchmark.pedantic(read_all, rounds=3, iterations=1)
    TIMINGS["referenced"] = benchmark.stats.stats.min
    assert len(documents) == PUBLISHERS
    assert len(documents[0]["books"]) == BOOKS_PER_PUBLISHER


@pytest.mark.benchmark(group="ablation-data-model")
def test_render_data_model_report(benchmark, record_artifact):
    """Summarize the embedded-vs-referenced read cost."""

    def build_rows():
        rows = []
        for model, operations in (("embedded", 1), ("referenced", 2)):
            seconds = TIMINGS.get(model)
            rows.append(
                [
                    model,
                    operations,
                    f"{seconds * 1000:.2f}" if seconds is not None else "n/a",
                ]
            )
        return rows

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    record_artifact(
        "ablation_embedded_vs_referenced",
        render_table(
            ["data model", "reads per entity", "total ms (best of 3)"],
            rows,
            title="Ablation — embedded vs referenced reads (Table 2.2)",
        ),
    )
    if "embedded" in TIMINGS and "referenced" in TIMINGS:
        assert TIMINGS["embedded"] < TIMINGS["referenced"]
