"""Before/after benchmark for the concurrent scatter-gather engine.

Run directly (``PYTHONPATH=src python benchmarks/parallel_scatter_bench.py``)
to compare the sequential scatter baseline (``executor_mode="serial"``, the
pre-concurrency router) against the parallel worker-pool scatter
(``executor_mode="thread"``) on a Table 4.5-style broadcast query mix over a
3-shard cluster.

Two configurations are measured:

* **realtime network emulation** — ``NetworkModel(realtime=True)`` makes
  every routed message really wait for its simulated duration, emulating the
  paper's machine boundaries in wall-clock time.  This is where concurrency
  pays: the serial router pays the *sum* of per-shard network waits, the
  parallel router overlaps them and approaches the *slowest single shard*
  (the acceptance target: parallel wall ≤ 1.4x slowest shard).
* **in-process only** — no realtime waits, pure CPU.  Reported for honesty:
  on a single-core host pure-Python scans serialize on the GIL, so thread
  mode shows no CPU speedup there (``executor_mode="process"`` exists for
  multi-core hosts).

The observed numbers are recorded in
``benchmarks/results/parallel_scatter_before_after.txt`` and, machine
readable, in ``benchmarks/results/BENCH_parallel_scatter.json``.  Set
``REPRO_SCATTER_BENCH_SCALE=tiny`` for a CI-sized smoke run.
"""

from __future__ import annotations

import json
import os
import pathlib
import random
import time

from repro.sharding import NetworkModel, ShardedCluster

TINY = os.environ.get("REPRO_SCATTER_BENCH_SCALE", "full").lower() == "tiny"
DOCS = 1_500 if TINY else 30_000
ROUNDS = 2 if TINY else 5
LATENCY_SECONDS = 0.002 if TINY else 0.005
SHARDS = 3

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"


def make_documents(count: int) -> list[dict]:
    random.seed(20151109)
    return [
        {
            "item_sk": i,
            "store": random.randrange(12),
            "quantity": random.randrange(1, 100),
            "price": round(random.uniform(1.0, 500.0), 2),
            "category": f"cat{i % 25}",
        }
        for i in range(count)
    ]


def build_cluster(mode: str, model: NetworkModel | None) -> ShardedCluster:
    cluster = ShardedCluster(
        shard_count=SHARDS, executor_mode=mode, network_model=model
    )
    cluster.enable_sharding("bench")
    cluster.shard_collection("bench", "sales", {"item_sk": "hashed"})
    cluster.get_database("bench")["sales"].insert_many(make_documents(DOCS))
    cluster.balance()
    cluster.reset_metrics()
    return cluster


def broadcast_mix(cluster: ShardedCluster) -> list[float]:
    """Run the broadcast query mix; returns the slowest-branch time per op.

    Every operation here lacks the shard key, so each one fans out to all
    three shards (the expensive Section 4.3 case).  After each operation the
    router's last scatter report gives the wall time of its slowest shard
    branch — the floor a perfectly parallel router could reach.
    """
    sales = cluster.get_database("bench")["sales"]
    slowest: list[float] = []

    def record() -> None:
        report = cluster.router.last_scatter_report or {}
        branches = report.get("shards", {})
        slowest.append(
            max((t["totalSeconds"] for t in branches.values()), default=0.0)
        )

    for round_no in range(ROUNDS):
        sales.find({"store": round_no % 12}).to_list()
        record()
        sales.find(
            {"quantity": {"$gte": 50}},
            {"_id": 0, "item_sk": 1, "price": 1},
            sort=[("price", -1)],
            limit=100,
        ).to_list()
        record()
        sales.count_documents({"category": f"cat{round_no % 25}"})
        record()
        sales.distinct("category", {"store": {"$lte": 5}})
        record()
        sales.aggregate(
            [
                {"$match": {"quantity": {"$gte": 20}}},
                {"$group": {"_id": "$store", "revenue": {"$sum": "$price"}}},
                {"$sort": {"_id": 1}},
            ]
        )
        record()
    return slowest


def run_configuration(mode: str, model: NetworkModel | None) -> dict:
    cluster = build_cluster(mode, model)
    try:
        started = time.perf_counter()
        slowest_branches = broadcast_mix(cluster)
        wall = time.perf_counter() - started
        metrics = cluster.router.metrics
        return {
            "mode": mode,
            "wall_seconds": wall,
            "slowest_shard_seconds": sum(slowest_branches),
            "sum_of_shard_work_seconds": metrics.shard_seconds_total,
            "observed_makespan_seconds": metrics.parallel_shard_seconds,
            "operations": metrics.operations,
            "documents_shipped": metrics.documents_shipped,
        }
    finally:
        cluster.close()


def compare(label: str, model: NetworkModel | None) -> dict:
    serial = run_configuration("serial", model)
    thread = run_configuration("thread", model)
    speedup = serial["wall_seconds"] / thread["wall_seconds"]
    # How close the parallel wall clock gets to the slowest-single-shard
    # floor of the same run (1.0 = perfect overlap; acceptance: <= 1.4).
    floor_ratio = thread["wall_seconds"] / max(thread["slowest_shard_seconds"], 1e-9)
    print(f"\n[{label}]")
    for row in (serial, thread):
        print(
            f"  {row['mode']:>6}: wall={row['wall_seconds']:7.3f} s   "
            f"slowest-shard floor={row['slowest_shard_seconds']:7.3f} s   "
            f"sum-of-shard-work={row['sum_of_shard_work_seconds']:7.3f} s   "
            f"docs_shipped={row['documents_shipped']:,}"
        )
    print(
        f"  parallel speedup (serial/thread): x{speedup:.2f}   "
        f"thread wall / slowest shard: x{floor_ratio:.2f}"
    )
    return {
        "label": label,
        "serial": serial,
        "thread": thread,
        "speedup_serial_over_thread": speedup,
        "thread_wall_over_slowest_shard": floor_ratio,
    }


def main() -> None:
    print(
        f"parallel scatter bench: docs={DOCS:,} shards={SHARDS} rounds={ROUNDS} "
        f"broadcast ops/round=5 latency={LATENCY_SECONDS * 1e3:.1f} ms "
        f"cpus={os.cpu_count()}"
    )
    realtime = compare(
        "realtime network emulation (machine-boundary waits are real)",
        NetworkModel(latency_seconds=LATENCY_SECONDS, realtime=True),
    )
    cpu_only = compare("in-process only (no realtime waits; GIL-bound on 1 core)", None)

    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    payload = {
        "bench": "parallel_scatter",
        "scale": "tiny" if TINY else "full",
        "config": {
            "documents": DOCS,
            "shards": SHARDS,
            "rounds": ROUNDS,
            "broadcast_ops_per_round": 5,
            "latency_seconds": LATENCY_SECONDS,
            "cpus": os.cpu_count(),
        },
        "configurations": [realtime, cpu_only],
        "acceptance": {
            "criterion": "thread wall <= 1.4x slowest single shard (realtime mix)",
            "thread_wall_over_slowest_shard": realtime[
                "thread_wall_over_slowest_shard"
            ],
            "passed": realtime["thread_wall_over_slowest_shard"] <= 1.4,
        },
    }
    out_path = RESULTS_DIR / "BENCH_parallel_scatter.json"
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {out_path.relative_to(RESULTS_DIR.parent.parent)}")
    if not payload["acceptance"]["passed"]:
        raise SystemExit("acceptance criterion failed: parallel wall > 1.4x slowest shard")


if __name__ == "__main__":
    main()
