"""Table 4.5 — query execution runtimes for the six experimental setups.

The centre-piece of the paper's evaluation: queries 7, 21, 46, and 50 are run
against every experiment of Table 4.1 (normalized/denormalized ×
stand-alone/sharded × two scales) and the best of several runs is reported.

The expected shape (Section 4.3):

* the denormalized stand-alone experiments (3 and 6) are the fastest for
  every query;
* the normalized stand-alone experiments beat the normalized sharded ones for
  the broadcast queries 7, 21, and 46;
* Query 50 — the query whose plan is targeted by the shard key and needs
  almost no cross-node aggregation — is the query that benefits most from
  the cluster (smallest sharded/stand-alone ratio; it crosses below 1.0 as
  the dataset grows).
"""

from __future__ import annotations

import pytest

from repro.core import EXPERIMENTS, paper_reference_table_45, render_table
from repro.tpcds import QUERY_IDS

#: Best-of-N runs per measurement, mirroring the paper's protocol of running
#: each query five times warm and keeping the best result.
REPETITIONS = 2

EXPERIMENT_NUMBERS = (1, 2, 3, 4, 5, 6)


@pytest.mark.benchmark(group="table-4.5")
@pytest.mark.parametrize("experiment", EXPERIMENT_NUMBERS)
@pytest.mark.parametrize("query_id", QUERY_IDS)
def test_query_runtime(benchmark, harness, experiment, query_id, measured_runtimes):
    """Measure one (experiment, query) cell of Table 4.5."""
    # Build the environment outside the measured region.
    config = EXPERIMENTS[experiment]
    profile = harness.scale(config)
    if config.environment == "standalone":
        if config.data_model == "denormalized":
            harness.standalone_denormalized_database(profile)
        else:
            harness.standalone_database(profile)
    else:
        harness.sharded_database(profile)

    def run():
        return harness.run_query(experiment, query_id, repetitions=REPETITIONS)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    measured_runtimes[(experiment, query_id)] = result.simulated_seconds
    assert result.result_documents >= 0


@pytest.mark.benchmark(group="table-4.5")
def test_render_table_45(benchmark, harness, record_artifact, measured_runtimes):
    """Render Table 4.5 (reproduction vs paper) and check the result shape."""
    for experiment in EXPERIMENT_NUMBERS:
        for query_id in QUERY_IDS:
            if (experiment, query_id) not in measured_runtimes:
                run = harness.run_query(experiment, query_id, repetitions=1)
                measured_runtimes[(experiment, query_id)] = run.simulated_seconds

    paper = paper_reference_table_45()

    def build_rows():
        rows = []
        for experiment in EXPERIMENT_NUMBERS:
            config = EXPERIMENTS[experiment]
            for query_id in QUERY_IDS:
                rows.append(
                    [
                        f"Experiment {experiment}",
                        f"{config.scale.name}/{config.data_model}/{config.environment}",
                        f"Query {query_id}",
                        f"{measured_runtimes[(experiment, query_id)]:.3f}",
                        f"{paper[experiment][query_id]:.2f}",
                    ]
                )
        return rows

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    record_artifact(
        "table_4_5_query_runtimes",
        render_table(
            ["experiment", "setup", "query", "reproduction seconds", "paper seconds"],
            rows,
            title="Table 4.5 — query execution runtimes",
        ),
    )

    measured = measured_runtimes
    # Shape 1: denormalized stand-alone is the fastest setup at each scale
    # (a 10% tolerance absorbs timing noise on very fast queries).
    for query_id in QUERY_IDS:
        assert measured[(3, query_id)] <= measured[(2, query_id)] * 1.1
        assert measured[(3, query_id)] <= measured[(1, query_id)] * 1.1
        assert measured[(6, query_id)] <= measured[(5, query_id)] * 1.1
        assert measured[(6, query_id)] <= measured[(4, query_id)] * 1.1

    # Shape 2: the broadcast queries are slower on the sharded cluster.
    for query_id in (21, 46):
        assert measured[(1, query_id)] > measured[(2, query_id)]
        assert measured[(4, query_id)] > measured[(5, query_id)]
    assert measured[(1, 7)] > measured[(2, 7)]

    # Shape 3: Query 50 benefits most from sharding — its sharded/stand-alone
    # ratio is the smallest of the four queries (25% tolerance: at reduced
    # scale the fixed routing overhead weighs proportionally more than in the
    # paper's multi-GB runs).
    def ratio(sharded, standalone, query_id):
        return measured[(sharded, query_id)] / measured[(standalone, query_id)]

    for sharded, standalone in ((1, 2), (4, 5)):
        q50_ratio = ratio(sharded, standalone, 50)
        other_ratios = [ratio(sharded, standalone, q) for q in (7, 21, 46)]
        assert q50_ratio <= min(other_ratios) * 1.25
