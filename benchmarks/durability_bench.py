"""Measure what durability costs — and what it must not cost.

Run directly (``PYTHONPATH=src python benchmarks/durability_bench.py``) to
measure three things about the storage engine:

* **Recovery time vs dataset size** — load N documents durably, abandon the
  process model (no clean close, the SIGKILL shape), and time how long a
  fresh client takes to replay the WAL back to the acknowledged state; then
  the same dataset recovered from a checkpoint snapshot instead of a log.

* **WAL overhead per fsync policy** — acknowledged batched-insert
  throughput for the in-memory baseline against ``fsync="off"``,
  ``"batch"`` (group commit), and ``"always"`` (fsync per batch).

* **Read/aggregation neutrality** — the same indexed find and ``$group``
  aggregation on an in-memory store and a durable one.  Logging rides the
  write path only; reads must not regress.

``--smoke`` shrinks every scale for CI; ``--json PATH`` writes the
machine-readable results (the checked-in copy lives at
``benchmarks/results/BENCH_durability.json``).
"""

from __future__ import annotations

import argparse
import gc
import json
import pathlib
import shutil
import sys
import tempfile
import time

from repro.documentstore import DocumentStoreClient

FULL_RECOVERY_SCALES = (1_000, 10_000, 100_000)
SMOKE_RECOVERY_SCALES = (200, 1_000)
FULL_POLICY_DOCS = 20_000
SMOKE_POLICY_DOCS = 1_000
FULL_READ_DOCS = 50_000
SMOKE_READ_DOCS = 2_000
BATCH = 1_000
#: Smaller batches for the fsync-policy comparison: one WAL record (and,
#: under ``always``, one fsync) per 100 documents makes the sync cost visible.
POLICY_BATCH = 100


def make_documents(count: int) -> list[dict]:
    return [
        {
            "_id": i,
            "store": i % 500,
            "quantity": (i * 7) % 100 + 1,
            "price": round((i % 997) * 0.5, 2),
            "tags": [i % 7, i % 11],
        }
        for i in range(count)
    ]


def load_in_batches(
    client: DocumentStoreClient, documents: list[dict], batch: int = BATCH
) -> float:
    collection = client.bench.sales
    started = time.perf_counter()
    for offset in range(0, len(documents), batch):
        collection.insert_many(documents[offset : offset + batch])
    return time.perf_counter() - started


def bench_recovery(scales) -> list[dict]:
    """Load, abandon, reopen: the crash-restart cost at each dataset size."""
    results = []
    for count in scales:
        documents = make_documents(count)
        for mode in ("wal_replay", "snapshot_restore"):
            workdir = pathlib.Path(tempfile.mkdtemp(prefix="durability-bench-"))
            try:
                client = DocumentStoreClient(data_dir=workdir / "data", fsync="batch")
                load_seconds = load_in_batches(client, documents)
                if mode == "snapshot_restore":
                    client.checkpoint()
                # Flush the acked state; no checkpoint-on-close exists, so this
                # leaves exactly what a crash after the last ack leaves.
                client.close()
                del client
                gc.collect()  # keep collector pauses out of the timed reopen

                started = time.perf_counter()
                survivor = DocumentStoreClient(data_dir=workdir / "data")
                open_seconds = time.perf_counter() - started
                report = survivor.engine.recovery_report
                assert survivor.bench.sales.count_documents({}) == count
                results.append(
                    {
                        "documents": count,
                        "mode": mode,
                        "load_seconds": round(load_seconds, 4),
                        "recover_seconds": round(open_seconds, 4),
                        "replay_seconds": round(report.replay_seconds, 4),
                        "records_replayed": report.records_replayed,
                        "snapshot_documents": report.snapshot_documents,
                    }
                )
                survivor.close()
            finally:
                shutil.rmtree(workdir, ignore_errors=True)
    return results


def bench_fsync_policies(count: int) -> list[dict]:
    """Acknowledged insert throughput per durability level."""
    documents = make_documents(count)
    # Warm the code and filesystem paths so the first measured policy does
    # not pay one-time costs (imports, page-cache, tempdir creation).
    warm = pathlib.Path(tempfile.mkdtemp(prefix="durability-bench-"))
    try:
        client = DocumentStoreClient(data_dir=warm / "data", fsync="always")
        load_in_batches(client, documents[: min(2_000, count)], batch=POLICY_BATCH)
        client.close()
    finally:
        shutil.rmtree(warm, ignore_errors=True)
    gc.collect()
    results = []
    for policy in ("in-memory", "off", "batch", "always"):
        workdir = pathlib.Path(tempfile.mkdtemp(prefix="durability-bench-"))
        try:
            if policy == "in-memory":
                client = DocumentStoreClient()
            else:
                client = DocumentStoreClient(data_dir=workdir / "data", fsync=policy)
            seconds = load_in_batches(client, documents, batch=POLICY_BATCH)
            entry = {
                "policy": policy,
                "documents": count,
                "seconds": round(seconds, 4),
                "docs_per_second": round(count / seconds),
            }
            if client.engine is not None:
                counters = client.engine.counters
                entry["fsync_calls"] = counters.fsync_calls
                entry["wal_bytes"] = counters.bytes_appended
            client.close()
            results.append(entry)
        finally:
            shutil.rmtree(workdir, ignore_errors=True)
        gc.collect()
    return results


def bench_reads(count: int) -> dict:
    """Indexed find + $group aggregation, in-memory vs durable."""
    documents = make_documents(count)
    pipeline = [
        {"$match": {"quantity": {"$gte": 50}}},
        {"$group": {"_id": "$store", "revenue": {"$sum": "$price"}}},
        {"$sort": {"revenue": -1}},
        {"$limit": 10},
    ]
    timings: dict[str, dict[str, float]] = {}
    workdir = pathlib.Path(tempfile.mkdtemp(prefix="durability-bench-"))
    try:
        for label in ("in_memory", "durable"):
            if label == "in_memory":
                client = DocumentStoreClient()
            else:
                client = DocumentStoreClient(data_dir=workdir / "data", fsync="batch")
            collection = client.bench.sales
            with collection.bulk_load():
                collection.create_index("store")
                for offset in range(0, count, BATCH):
                    collection.insert_many(documents[offset : offset + BATCH])
            gc.collect()  # measure the reads, not leftover allocator work

            started = time.perf_counter()
            found = len(list(collection.find({"store": {"$lt": 50}})))
            find_seconds = time.perf_counter() - started

            started = time.perf_counter()
            grouped = collection.aggregate(pipeline)
            agg_seconds = time.perf_counter() - started

            assert found > 0 and len(grouped) == 10
            timings[label] = {
                "find_seconds": round(find_seconds, 4),
                "aggregate_seconds": round(agg_seconds, 4),
            }
            client.close()
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return {
        "documents": count,
        **timings,
        "find_ratio_durable_over_memory": round(
            timings["durable"]["find_seconds"] / timings["in_memory"]["find_seconds"], 2
        ),
        "aggregate_ratio_durable_over_memory": round(
            timings["durable"]["aggregate_seconds"]
            / timings["in_memory"]["aggregate_seconds"],
            2,
        ),
    }


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="CI-sized scales")
    parser.add_argument("--json", type=pathlib.Path, help="write results as JSON")
    args = parser.parse_args(argv)

    recovery_scales = SMOKE_RECOVERY_SCALES if args.smoke else FULL_RECOVERY_SCALES
    policy_docs = SMOKE_POLICY_DOCS if args.smoke else FULL_POLICY_DOCS
    read_docs = SMOKE_READ_DOCS if args.smoke else FULL_READ_DOCS

    print(f"recovery_scales={recovery_scales} policy_docs={policy_docs:,} read_docs={read_docs:,}")

    recovery = bench_recovery(recovery_scales)
    for row in recovery:
        print(
            f"recover {row['documents']:>7,} docs via {row['mode']:<16}  "
            f"load={row['load_seconds']:7.3f} s  "
            f"recover={row['recover_seconds']:7.3f} s  "
            f"(replay={row['replay_seconds']:7.3f} s, "
            f"records={row['records_replayed']:,})"
        )

    policies = bench_fsync_policies(policy_docs)
    baseline = policies[0]["seconds"]
    for row in policies:
        overhead = (row["seconds"] / baseline - 1.0) * 100.0
        extras = (
            f"  fsyncs={row['fsync_calls']:>4}  wal={row['wal_bytes']:>12,} B"
            if "fsync_calls" in row
            else ""
        )
        print(
            f"insert {row['documents']:>7,} docs, fsync={row['policy']:<9}  "
            f"wall={row['seconds']:7.3f} s  ({row['docs_per_second']:>9,} docs/s, "
            f"{overhead:+6.1f}% vs memory){extras}"
        )

    reads = bench_reads(read_docs)
    print(
        f"reads  {reads['documents']:>7,} docs  "
        f"find durable/memory={reads['find_ratio_durable_over_memory']:.2f}x  "
        f"aggregate durable/memory={reads['aggregate_ratio_durable_over_memory']:.2f}x"
    )

    if args.json:
        payload = {
            "bench": "durability",
            "source": "benchmarks/durability_bench.py",
            "pr": "PR 9: durable storage engine",
            "config": {
                "smoke": args.smoke,
                "recovery_scales": list(recovery_scales),
                "policy_docs": policy_docs,
                "read_docs": read_docs,
                "batch": BATCH,
            },
            "recovery": recovery,
            "fsync_policies": policies,
            "reads": reads,
        }
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(payload, indent=1) + "\n")
        print(f"wrote {args.json}")


if __name__ == "__main__":
    sys.exit(main())
