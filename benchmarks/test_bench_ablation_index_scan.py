"""Ablation — index scans vs collection scans (Section 2.1.2).

The paper motivates secondary indexes with the B-tree lookup cost used in the
complexity analysis of the embedding algorithm (Section 4.1.3.1.1).  This
ablation measures point and range queries with and without an index, plus the
index-prefix behaviour of compound indexes.
"""

from __future__ import annotations

import pytest

from repro.core import render_table
from repro.documentstore import Collection

ROWS = 20_000


def build_collection(indexed: bool) -> Collection:
    collection = Collection(None, "events")
    collection.insert_many(
        [
            {
                "event_id": i,
                "day": i % 365,
                "store": i % 50,
                "amount": float(i % 997),
            }
            for i in range(ROWS)
        ]
    )
    if indexed:
        collection.create_index("event_id")
        collection.create_index([("store", 1), ("day", 1)])
    return collection


@pytest.fixture(scope="module")
def indexed_collection():
    return build_collection(indexed=True)


@pytest.fixture(scope="module")
def unindexed_collection():
    return build_collection(indexed=False)


TIMINGS: dict[str, float] = {}


@pytest.mark.benchmark(group="ablation-indexing")
def test_point_lookup_collscan(benchmark, unindexed_collection):
    result = benchmark.pedantic(
        lambda: unindexed_collection.find_one({"event_id": ROWS // 2}),
        rounds=5,
        iterations=1,
    )
    TIMINGS["point COLLSCAN"] = benchmark.stats.stats.min
    assert result["event_id"] == ROWS // 2


@pytest.mark.benchmark(group="ablation-indexing")
def test_point_lookup_ixscan(benchmark, indexed_collection):
    result = benchmark.pedantic(
        lambda: indexed_collection.find_one({"event_id": ROWS // 2}),
        rounds=5,
        iterations=1,
    )
    TIMINGS["point IXSCAN"] = benchmark.stats.stats.min
    assert result["event_id"] == ROWS // 2
    plan = indexed_collection.explain({"event_id": ROWS // 2})
    assert plan["queryPlanner"]["winningPlan"]["stage"] == "IXSCAN"


@pytest.mark.benchmark(group="ablation-indexing")
def test_compound_prefix_lookup_ixscan(benchmark, indexed_collection):
    """A compound index on (store, day) answers queries on its prefix."""
    result = benchmark.pedantic(
        lambda: indexed_collection.find({"store": 17}).to_list(),
        rounds=5,
        iterations=1,
    )
    TIMINGS["prefix IXSCAN"] = benchmark.stats.stats.min
    assert len(result) == ROWS // 50
    plan = indexed_collection.explain({"store": 17})
    assert plan["queryPlanner"]["winningPlan"]["indexName"] == "store_1_day_1"


@pytest.mark.benchmark(group="ablation-indexing")
def test_compound_prefix_lookup_collscan(benchmark, unindexed_collection):
    result = benchmark.pedantic(
        lambda: unindexed_collection.find({"store": 17}).to_list(),
        rounds=5,
        iterations=1,
    )
    TIMINGS["prefix COLLSCAN"] = benchmark.stats.stats.min
    assert len(result) == ROWS // 50


@pytest.mark.benchmark(group="ablation-indexing")
def test_render_indexing_report(benchmark, record_artifact):
    def build_rows():
        return [
            [label, f"{seconds * 1000:.3f}"] for label, seconds in sorted(TIMINGS.items())
        ]

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    record_artifact(
        "ablation_index_vs_collection_scan",
        render_table(
            ["access path", "best ms"],
            rows,
            title="Ablation — index scan vs collection scan (Section 2.1.2)",
        ),
    )
    if {"point IXSCAN", "point COLLSCAN"} <= TIMINGS.keys():
        assert TIMINGS["point IXSCAN"] < TIMINGS["point COLLSCAN"]
