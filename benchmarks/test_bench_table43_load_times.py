"""Table 4.3 — data load times per table for both dataset scales.

The paper loads every ``.dat`` file into the document store with the
migration algorithm of Figure 4.3 and reports the per-table load time for the
1 GB and 5 GB datasets.  This benchmark performs the same migration into a
fresh stand-alone deployment (all 24 tables) and renders the per-table times,
preserving the two observations of Section 4.3:

* tables whose row count is identical across scales load in (near-)identical
  time;
* for the scaling tables, the ratio of load times follows the ratio of row
  counts.
"""

from __future__ import annotations

import pytest

from repro.core import render_table
from repro.core.migration import migrate_generated_dataset
from repro.documentstore import DocumentStoreClient
from repro.tpcds import NON_SCALING_TABLES, SCALE_LARGE, SCALE_SMALL, TPCDSGenerator

#: Load reports shared with the Figure 4.9 benchmark (same session).
LOAD_REPORTS: dict[str, object] = {}


def _load_full_dataset(profile):
    generator = TPCDSGenerator(profile, seed=20151109)
    client = DocumentStoreClient()
    database = client[profile.database_name]
    return migrate_generated_dataset(database, generator)


@pytest.mark.benchmark(group="table-4.3")
@pytest.mark.parametrize("profile", [SCALE_SMALL, SCALE_LARGE], ids=["small-1GB", "large-5GB"])
def test_load_all_tables(benchmark, profile, record_artifact):
    """Load the complete 24-table dataset and report per-table times."""
    report = benchmark.pedantic(_load_full_dataset, args=(profile,), rounds=1, iterations=1)
    LOAD_REPORTS[profile.name] = report

    rows = [
        [result.table, result.documents_inserted, f"{result.seconds:.4f}"]
        for result in report.results.values()
    ]
    rows.append(["TOTAL", report.total_documents, f"{report.total_seconds:.4f}"])
    record_artifact(
        f"table_4_3_load_times_{profile.name}",
        render_table(
            ["table", "documents", "load seconds"],
            rows,
            title=f"Table 4.3 — data load times, {profile.name} dataset",
        ),
    )
    assert report.total_documents > 0


@pytest.mark.benchmark(group="table-4.3")
def test_load_time_observations(benchmark, record_artifact):
    """Check the Section 4.3 load-time observations on the recorded reports."""
    for profile in (SCALE_SMALL, SCALE_LARGE):
        if profile.name not in LOAD_REPORTS:
            LOAD_REPORTS[profile.name] = _load_full_dataset(profile)

    small = LOAD_REPORTS[SCALE_SMALL.name]
    large = LOAD_REPORTS[SCALE_LARGE.name]

    def summarize():
        rows = []
        for table in sorted(small.results):
            small_result = small.results[table]
            large_result = large.results[table]
            row_ratio = (
                large_result.documents_inserted / small_result.documents_inserted
                if small_result.documents_inserted
                else 0.0
            )
            time_ratio = (
                large_result.seconds / small_result.seconds if small_result.seconds else 0.0
            )
            rows.append(
                [
                    table,
                    "non-scaling" if table in NON_SCALING_TABLES else "scaling",
                    f"{row_ratio:.2f}",
                    f"{time_ratio:.2f}",
                ]
            )
        return rows

    rows = benchmark.pedantic(summarize, rounds=1, iterations=1)
    record_artifact(
        "table_4_3_load_time_ratios",
        render_table(
            ["table", "kind", "row ratio (large/small)", "time ratio (large/small)"],
            rows,
            title="Table 4.3 — load-time ratios between scales (Section 4.3 observations)",
        ),
    )

    # Observation (i): identical row counts load in comparable time.  The
    # bound is generous because very small tables finish in microseconds.
    for table in NON_SCALING_TABLES:
        small_result = small.results[table]
        large_result = large.results[table]
        assert small_result.documents_inserted == large_result.documents_inserted

    # Observation (ii): the large dataset takes longer to load overall, and
    # its biggest fact table scales roughly with its row count.
    assert large.total_seconds > small.total_seconds
    sales_row_ratio = (
        large.results["store_sales"].documents_inserted
        / small.results["store_sales"].documents_inserted
    )
    sales_time_ratio = (
        large.results["store_sales"].seconds / small.results["store_sales"].seconds
    )
    assert sales_time_ratio == pytest.approx(sales_row_ratio, rel=0.8)
