"""Vector search benchmark: exact scan vs IVF, recall vs latency.

Run directly (``PYTHONPATH=src python benchmarks/vector_bench.py``) to
measure the ``$vectorSearch`` stage end to end on a clustered synthetic
embedding set:

* **Exact baseline** — the brute-force scan every query pays without IVF:
  per-query p50/p95 latency at k=10.
* **IVF sweep** — the same queries at increasing ``nprobe``: recall@10
  against the exact ranking, p50/p95 latency, vectors actually scored, and
  the speedup over the exact scan.  The *operating point* reported at the
  end is the smallest ``nprobe`` reaching recall@10 >= 0.95 — the
  acceptance bar is >= 3x over exact at that point on >= 50k vectors.
* **Filtered search** — a metadata pre-filter (selectivity ~10%), which
  always runs exact over the filtered candidates.

``REPRO_VECTOR_BENCH_SCALE=tiny`` shrinks everything for CI (no claims at
that scale, it only proves the path executes); ``--json PATH`` writes the
machine-readable results (the checked-in copy lives at
``benchmarks/results/BENCH_vector.json``).
"""

from __future__ import annotations

import argparse
import json
import math
import os
import pathlib
import random
import statistics
import time

from repro.documentstore import DocumentStoreClient

TINY = os.environ.get("REPRO_VECTOR_BENCH_SCALE", "full").lower() == "tiny"

DIMS = 16
CLUSTERS = 64
SEED = 20260808
K = 10

if TINY:
    N_VECTORS = 2_000
    N_QUERIES = 5
    NLIST = 16
    NPROBES = (1, 2, 4, 16)
else:
    N_VECTORS = 50_000
    N_QUERIES = 25
    NLIST = 64
    NPROBES = (1, 2, 4, 8, 16, 32)


def make_dataset(rng: random.Random) -> tuple[list[dict], list[list[float]]]:
    """Clustered Gaussian blobs — the shape IVF coarse quantizers exist for."""
    centers = [
        [rng.uniform(-10.0, 10.0) for _ in range(DIMS)] for _ in range(CLUSTERS)
    ]
    documents = []
    for i in range(N_VECTORS):
        center = centers[i % CLUSTERS]
        documents.append(
            {
                "_id": i,
                "embedding": [rng.gauss(component, 1.0) for component in center],
                "tenant": i % 10,
            }
        )
    queries = []
    for _ in range(N_QUERIES):
        center = centers[rng.randrange(CLUSTERS)]
        queries.append([rng.gauss(component, 1.0) for component in center])
    return documents, queries


def build_collection(documents: list[dict]):
    collection = DocumentStoreClient()["bench"]["embeddings"]
    with collection.bulk_load():
        collection.create_index(
            {"keys": ["embedding"], "type": "vector", "dims": DIMS, "nlist": NLIST},
            defer=True,
        )
        for offset in range(0, len(documents), 5_000):
            collection.insert_many(documents[offset : offset + 5_000])
    index = collection._live_indexes()["embedding_vector"]
    if not index.trained:
        index.train(force=True)  # tiny scale sits below the auto-train floor
    return collection


def timed_search(collection, query, **options) -> tuple[list[tuple[int, float]], float]:
    specification = {"queryVector": query, "k": K, **options}
    started = time.perf_counter()
    results = collection.aggregate([{"$vectorSearch": specification}])
    seconds = time.perf_counter() - started
    return [(doc["_id"], doc["_score"]) for doc in results], seconds


def percentile(samples: list[float], fraction: float) -> float:
    ordered = sorted(samples)
    position = min(len(ordered) - 1, max(0, math.ceil(fraction * len(ordered)) - 1))
    return ordered[position]


def latency_summary(samples: list[float]) -> dict:
    return {
        "p50_ms": round(percentile(samples, 0.50) * 1_000, 3),
        "p95_ms": round(percentile(samples, 0.95) * 1_000, 3),
        "mean_ms": round(statistics.mean(samples) * 1_000, 3),
    }


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", type=pathlib.Path, help="write results as JSON")
    args = parser.parse_args(argv)

    rng = random.Random(SEED)
    print(f"scale={'tiny' if TINY else 'full'} vectors={N_VECTORS:,} dims={DIMS} nlist={NLIST}")
    documents, queries = make_dataset(rng)
    built_started = time.perf_counter()
    collection = build_collection(documents)
    build_seconds = time.perf_counter() - built_started
    index = collection._live_indexes()["embedding_vector"]
    print(f"built+trained in {build_seconds:.2f}s (nlist={index.nlist})")

    # Exact baseline doubles as the ground truth for recall.
    exact_rankings: list[list[tuple[int, float]]] = []
    exact_seconds: list[float] = []
    for query in queries:
        ranking, seconds = timed_search(collection, query, exact=True)
        exact_rankings.append(ranking)
        exact_seconds.append(seconds)
    exact = {
        "mode": "exact",
        "vectors_scored": len(index),
        **latency_summary(exact_seconds),
    }
    print(f"exact: p50={exact['p50_ms']}ms p95={exact['p95_ms']}ms (scores {len(index):,} vectors)")

    sweep = []
    for nprobe in NPROBES:
        seconds_samples: list[float] = []
        recalls: list[float] = []
        scored_samples: list[int] = []
        for query, truth in zip(queries, exact_rankings):
            ranking, seconds = timed_search(collection, query, nprobe=nprobe)
            seconds_samples.append(seconds)
            truth_ids = {doc_id for doc_id, _score in truth}
            hit = sum(1 for doc_id, _score in ranking if doc_id in truth_ids)
            recalls.append(hit / max(1, len(truth_ids)))
            details = collection.explain(
                [{"$vectorSearch": {"queryVector": query, "k": K, "nprobe": nprobe}}]
            )["queryPlanner"]["winningPlan"]["vectorSearch"]
            scored_samples.append(details["vectorsScored"])
        entry = {
            "mode": "ivf",
            "nprobe": nprobe,
            "recall_at_10": round(statistics.mean(recalls), 4),
            "vectors_scored_mean": round(statistics.mean(scored_samples)),
            **latency_summary(seconds_samples),
            "speedup_vs_exact_p50": round(exact["p50_ms"] / max(1e-9, latency_summary(seconds_samples)["p50_ms"]), 2),
        }
        sweep.append(entry)
        print(
            f"ivf nprobe={nprobe:>3}: recall@10={entry['recall_at_10']:.3f} "
            f"p50={entry['p50_ms']}ms p95={entry['p95_ms']}ms "
            f"speedup={entry['speedup_vs_exact_p50']}x "
            f"(scores ~{entry['vectors_scored_mean']:,})"
        )

    operating_point = next(
        (entry for entry in sweep if entry["recall_at_10"] >= 0.95), None
    )
    if operating_point is not None:
        print(
            f"operating point: nprobe={operating_point['nprobe']} "
            f"recall@10={operating_point['recall_at_10']:.3f} "
            f"speedup={operating_point['speedup_vs_exact_p50']}x"
        )

    # Metadata pre-filter: ~10% selectivity, always exact over the survivors.
    collection.create_index("tenant")
    filtered_seconds: list[float] = []
    for query in queries:
        _ranking, seconds = timed_search(collection, query, filter={"tenant": 3})
        filtered_seconds.append(seconds)
    filtered = {
        "mode": "filteredExact",
        "selectivity": 0.1,
        **latency_summary(filtered_seconds),
    }
    print(f"filtered (tenant=3): p50={filtered['p50_ms']}ms p95={filtered['p95_ms']}ms")

    results = {
        "scale": "tiny" if TINY else "full",
        "vectors": N_VECTORS,
        "dims": DIMS,
        "nlist": index.nlist,
        "k": K,
        "queries": N_QUERIES,
        "build_seconds": round(build_seconds, 2),
        "exact": exact,
        "ivf_sweep": sweep,
        "operating_point": operating_point,
        "filtered": filtered,
    }
    if args.json:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {args.json}")

    if not TINY:
        assert operating_point is not None, "no nprobe reached recall@10 >= 0.95"
        assert operating_point["speedup_vs_exact_p50"] >= 3.0, (
            f"IVF speedup {operating_point['speedup_vs_exact_p50']}x below the 3x bar"
        )


if __name__ == "__main__":
    main()
