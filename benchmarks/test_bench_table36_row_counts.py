"""Table 3.6 — number of records per table for the two dataset scales.

The paper's Table 3.6 lists the row count of each of the 24 TPC-DS tables at
1 GB and 5 GB.  The reproduction's generator targets the same counts scaled
by the global reduction factor; this benchmark measures generation speed and
renders the generated counts next to the paper's, including the small/large
ratio that drives the load-time observations of Section 4.3.
"""

from __future__ import annotations

import pytest

from repro.core import render_table
from repro.tpcds import (
    PAPER_ROW_COUNTS,
    SCALE_LARGE,
    SCALE_SMALL,
    TPCDSGenerator,
    generation_row_counts,
)


@pytest.mark.benchmark(group="table-3.6")
@pytest.mark.parametrize("profile", [SCALE_SMALL, SCALE_LARGE], ids=["small-1GB", "large-5GB"])
def test_generate_dataset_row_counts(benchmark, profile, record_artifact):
    """Generate the full dataset for one scale and report its row counts."""

    def generate():
        generator = TPCDSGenerator(profile, seed=20151109)
        return generator.generate_all()

    dataset = benchmark.pedantic(generate, rounds=1, iterations=1)
    generated = dataset.row_counts()
    expected = generation_row_counts(profile)
    assert generated == expected

    rows = []
    for table in sorted(PAPER_ROW_COUNTS):
        paper_small, paper_large = PAPER_ROW_COUNTS[table]
        paper_count = paper_small if profile is SCALE_SMALL else paper_large
        rows.append([table, paper_count, generated[table]])
    record_artifact(
        f"table_3_6_row_counts_{profile.name}",
        render_table(
            ["table", f"paper rows ({profile.paper_gb}GB)", "reproduction rows"],
            rows,
            title=f"Table 3.6 — row counts, {profile.name} dataset",
        ),
    )


@pytest.mark.benchmark(group="table-3.6")
def test_row_count_scaling_ratios(benchmark, record_artifact):
    """The small:large ratio per table follows the paper (≈1x or ≈5x)."""

    def compute():
        small = generation_row_counts(SCALE_SMALL)
        large = generation_row_counts(SCALE_LARGE)
        return small, large

    small, large = benchmark.pedantic(compute, rounds=3, iterations=1)
    rows = []
    for table in sorted(PAPER_ROW_COUNTS):
        paper_small, paper_large = PAPER_ROW_COUNTS[table]
        paper_ratio = paper_large / paper_small
        reproduction_ratio = large[table] / small[table]
        rows.append(
            [table, f"{paper_ratio:.2f}", f"{reproduction_ratio:.2f}"]
        )
        # Non-scaling tables stay at 1x; scaling tables keep the paper's
        # direction (they grow), even when clamped by minimum row counts.
        if paper_ratio == 1.0:
            assert reproduction_ratio == 1.0
        else:
            assert reproduction_ratio >= 1.0
    record_artifact(
        "table_3_6_scaling_ratios",
        render_table(
            ["table", "paper 5GB/1GB ratio", "reproduction ratio"],
            rows,
            title="Table 3.6 — growth ratio between the two scales",
        ),
    )
