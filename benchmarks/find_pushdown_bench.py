"""Measure the cost of sorted/limited finds on the sharded cluster.

Run directly (``PYTHONPATH=src python benchmarks/find_pushdown_bench.py``) to
print wall time plus the router's network accounting for three read shapes:

* a broadcast ``find`` with ``sort + limit`` (top-k over every shard);
* a paginated ``find`` (``sort + skip + limit``) with a projection;
* ``find_one`` on a non-shard-key filter (broadcast, single result).

The output of this script before and after the FindSpec/Cursor pushdown
redesign is recorded in ``benchmarks/results/find_pushdown_before_after.txt``.
"""

from __future__ import annotations

import random
import time

from repro.sharding.cluster import ShardedCluster

DOCS = 30_000
SHARDS = 3


def build_cluster() -> ShardedCluster:
    random.seed(1234)
    cluster = ShardedCluster(shard_count=SHARDS)
    cluster.enable_sharding("bench")
    cluster.shard_collection("bench", "orders", {"order_id": "hashed"})
    orders = cluster.get_database("bench")["orders"]
    orders.insert_many(
        {
            "order_id": i,
            "store": i % 97,
            "amount": round(random.uniform(1.0, 500.0), 2),
            "day": i % 365,
            "note": "x" * 64,
        }
        for i in range(DOCS)
    )
    cluster.balance()
    cluster.reset_metrics()
    return cluster


def run_case(cluster: ShardedCluster, label: str, operation) -> dict:
    cluster.reset_metrics()
    started = time.perf_counter()
    result = operation()
    wall = time.perf_counter() - started
    stats = cluster.network.stats.snapshot()
    response_messages = stats["by_purpose"].get("find:response", 0)
    report = {
        "label": label,
        "wall_seconds": wall,
        "results": len(result) if isinstance(result, list) else 1,
        "bytes_transferred": stats["bytes_transferred"],
        "messages": stats["messages"],
        "find_response_messages": response_messages,
    }
    snapshot = cluster.router.metrics.snapshot()
    for key in ("documents_shipped", "bytes_shipped"):
        if key in snapshot:
            report[key] = snapshot[key]
    return report


def main() -> None:
    cluster = build_cluster()
    orders = cluster.get_database("bench")["orders"]

    cases = [
        (
            "sort+limit top-10 (broadcast)",
            lambda: orders.find({}).sort("amount", -1).limit(10).to_list(),
        ),
        (
            "page 50..60, projection (broadcast)",
            lambda: orders.find({"day": {"$lt": 180}}, {"amount": 1, "day": 1})
            .sort([("day", 1), ("amount", -1)])
            .skip(50)
            .limit(10)
            .to_list(),
        ),
        (
            "find_one non-shard-key filter",
            lambda: orders.find_one({"store": 13}),
        ),
    ]

    print(f"documents={DOCS} shards={SHARDS}")
    for label, operation in cases:
        best = None
        for _ in range(3):
            report = run_case(cluster, label, operation)
            if best is None or report["wall_seconds"] < best["wall_seconds"]:
                best = report
        print(
            f"{best['label']:<40} wall={best['wall_seconds'] * 1000:9.2f} ms  "
            f"bytes={best['bytes_transferred']:>12,}  "
            f"messages={best['messages']:>5}  "
            + "  ".join(
                f"{key}={best[key]:,}"
                for key in ("documents_shipped", "bytes_shipped")
                if key in best
            )
        )


if __name__ == "__main__":
    main()
