"""Many-client traffic benchmark for the served front door.

Run directly (``PYTHONPATH=src python benchmarks/traffic_bench.py``) to drive
a :class:`DocumentStoreServer` fronting a 2-shard cluster with N concurrent
clients over real sockets.  Each client thread owns one
:class:`RemoteClient` connection and issues a mixed workload — sorted+limited
finds, shard-key-targeted point reads, ``getMore``-paged cursors,
aggregations, small inserts, targeted updates, and counts — for a fixed
wall-clock window.

The cluster runs with **realtime network emulation**
(``NetworkModel(realtime=True)``): every router<->shard message really waits
its simulated duration, emulating the paper's machine boundaries.  That wait
is where concurrency pays — while one session's scatter is waiting on its
shards, the server's other session threads make progress — so throughput
should scale with the client count until CPU saturates.  The acceptance
criterion (full scale): 8 concurrent clients sustain at least 5x the
throughput of 1 client.

Per-operation latencies are recorded client-side and reported as exact
p50/p95/p99 over the run; the server's own ``serverStatus`` (op counters,
per-opcode latency histograms, actual wire bytes) is captured after each run
for cross-checking.

The observed numbers are written to
``benchmarks/results/traffic_scaling.txt`` and, machine readable, to
``benchmarks/results/BENCH_traffic.json``.  Set
``REPRO_TRAFFIC_BENCH_SCALE=tiny`` for a CI-sized smoke run (no scaling
assertion; just nonzero throughput and a clean drain).
"""

from __future__ import annotations

import json
import os
import pathlib
import random
import threading
import time

from repro.server import DocumentStoreServer, RemoteClient
from repro.sharding import NetworkModel, ShardedCluster

TINY = os.environ.get("REPRO_TRAFFIC_BENCH_SCALE", "full").lower() == "tiny"
DOCS = 800 if TINY else 6_000
STORES = 100
CLIENT_COUNTS = [1, 4] if TINY else [1, 2, 4, 8]
DURATION_SECONDS = 1.0 if TINY else 4.0
WARMUP_SECONDS = 0.2 if TINY else 0.5
LATENCY_SECONDS = 0.0015 if TINY else 0.005
SHARDS = 2

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"

# (name, weight) — weights sum to 100; drawn per iteration per client.
WORKLOAD = [
    ("find_sorted", 40),
    ("find_point", 15),
    ("find_paged", 15),
    ("aggregate", 10),
    ("insert_many", 10),
    ("update_one", 5),
    ("count", 5),
]


def make_documents(count: int) -> list[dict]:
    rng = random.Random(20170321)
    return [
        {
            "order_id": i,
            "amount": round(rng.uniform(1.0, 500.0), 2),
            "store": i % STORES,
            "tag": f"t{i % 7}",
        }
        for i in range(count)
    ]


def build_cluster() -> ShardedCluster:
    cluster = ShardedCluster(
        shard_count=SHARDS,
        network_model=NetworkModel(latency_seconds=LATENCY_SECONDS, realtime=True),
        executor_mode="thread",
    )
    cluster.shard_collection("bench", "orders", {"order_id": "hashed"})
    orders = cluster.get_database("bench")["orders"]
    orders.insert_many(make_documents(DOCS))
    # Secondary indexes keep per-op CPU small so the realtime network wait
    # (not a collection scan under the GIL) dominates each operation.
    orders.create_index([("store", 1)])
    orders.create_index([("amount", -1)])
    cluster.balance()
    cluster.reset_metrics()
    return cluster


class _Worker(threading.Thread):
    """One traffic client: its own connection, workload mix, and latency log."""

    def __init__(
        self,
        index: int,
        address: tuple[str, int],
        barrier: threading.Barrier,
        stop_at: list[float],
    ) -> None:
        super().__init__(name=f"traffic-client-{index}", daemon=True)
        self.index = index
        self.address = address
        self.barrier = barrier
        self.stop_at = stop_at  # single-element list, set after warmup
        self.rng = random.Random(8_000 + index)
        self.latencies: dict[str, list[float]] = {name: [] for name, _ in WORKLOAD}
        self.errors: list[str] = []
        self._insert_seq = 1_000_000 + index * 100_000
        self._ops = [name for name, _ in WORKLOAD]
        self._weights = [weight for _, weight in WORKLOAD]

    def run(self) -> None:
        try:
            with RemoteClient(self.address, pool_size=1) as client:
                orders = client["bench"]["orders"]
                self.barrier.wait()
                measuring = False
                while True:
                    now = time.perf_counter()
                    if now >= self.stop_at[1]:
                        break
                    if not measuring and now >= self.stop_at[0]:
                        measuring = True  # warmup over: start recording
                    (op,) = self.rng.choices(self._ops, weights=self._weights)
                    started = time.perf_counter()
                    self._run_op(op, orders)
                    if measuring:
                        self.latencies[op].append(time.perf_counter() - started)
        except BaseException as exc:  # noqa: BLE001 - reported by the driver
            self.errors.append(f"{type(exc).__name__}: {exc}")

    def _run_op(self, op: str, orders) -> None:
        rng = self.rng
        store = rng.randrange(STORES)
        if op == "find_sorted":
            orders.find(
                {"store": store},
                {"_id": 0, "order_id": 1, "amount": 1},
                sort=[("amount", -1)],
                limit=10,
            ).to_list()
        elif op == "find_point":
            orders.find_one({"order_id": rng.randrange(DOCS)})
        elif op == "find_paged":
            orders.find(
                {"store": store}, {"_id": 0}, batch_size=8, limit=24
            ).to_list()
        elif op == "aggregate":
            orders.aggregate(
                [
                    {"$match": {"store": store}},
                    {"$group": {"_id": "$tag", "revenue": {"$sum": "$amount"}}},
                ]
            )
        elif op == "insert_many":
            base = self._insert_seq
            self._insert_seq += 5
            orders.insert_many(
                [
                    {"order_id": n, "amount": 1.0, "store": store, "tag": "new"}
                    for n in range(base, base + 5)
                ]
            )
        elif op == "update_one":
            orders.update_one(
                {"order_id": rng.randrange(DOCS)}, {"$inc": {"amount": 1.0}}
            )
        elif op == "count":
            orders.count_documents({"store": store})


def percentile(sorted_values: list[float], q: float) -> float:
    """Exact (interpolated) percentile of an already-sorted sample."""
    if not sorted_values:
        return 0.0
    pos = (len(sorted_values) - 1) * q
    low = int(pos)
    high = min(low + 1, len(sorted_values) - 1)
    frac = pos - low
    return sorted_values[low] * (1 - frac) + sorted_values[high] * frac


def run_with_clients(client_count: int) -> dict:
    cluster = build_cluster()
    try:
        with DocumentStoreServer(cluster, max_connections=client_count + 4) as server:
            barrier = threading.Barrier(client_count + 1)
            stop_at: list[float] = [0.0, 0.0]
            workers = [
                _Worker(i, server.address, barrier, stop_at)
                for i in range(client_count)
            ]
            for worker in workers:
                worker.start()
            barrier.wait()  # all connections are up
            now = time.perf_counter()
            stop_at[0] = now + WARMUP_SECONDS
            stop_at[1] = now + WARMUP_SECONDS + DURATION_SECONDS
            for worker in workers:
                worker.join()
            status = server.server_status()

        errors = [e for w in workers for e in w.errors]
        if errors:
            raise SystemExit(f"traffic run with {client_count} client(s) failed: {errors}")

        all_latencies = sorted(
            lat for w in workers for series in w.latencies.values() for lat in series
        )
        operations = len(all_latencies)
        per_op = {}
        for name, _ in WORKLOAD:
            series = sorted(lat for w in workers for lat in w.latencies[name])
            if series:
                per_op[name] = {
                    "operations": len(series),
                    "p50_ms": percentile(series, 0.50) * 1e3,
                    "p95_ms": percentile(series, 0.95) * 1e3,
                    "p99_ms": percentile(series, 0.99) * 1e3,
                }
        return {
            "clients": client_count,
            "duration_seconds": DURATION_SECONDS,
            "operations": operations,
            "throughput_ops_per_second": operations / DURATION_SECONDS,
            "latency_ms": {
                "mean": (sum(all_latencies) / operations) * 1e3 if operations else 0.0,
                "p50": percentile(all_latencies, 0.50) * 1e3,
                "p95": percentile(all_latencies, 0.95) * 1e3,
                "p99": percentile(all_latencies, 0.99) * 1e3,
                "max": all_latencies[-1] * 1e3 if all_latencies else 0.0,
            },
            "per_operation": per_op,
            "server": {
                "opcounters": status.get("opcounters", {}),
                "wire": status.get("wire", {}),
                "cursors": status.get("cursors", {}),
                "connections": status.get("connections", {}),
            },
        }
    finally:
        cluster.close()


def main() -> None:
    print(
        f"traffic bench: docs={DOCS:,} shards={SHARDS} "
        f"latency={LATENCY_SECONDS * 1e3:.1f} ms duration={DURATION_SECONDS:.1f} s "
        f"clients={CLIENT_COUNTS} cpus={os.cpu_count()}"
    )
    runs = []
    for client_count in CLIENT_COUNTS:
        run = run_with_clients(client_count)
        runs.append(run)
        lat = run["latency_ms"]
        print(
            f"  {client_count:>2} client(s): {run['throughput_ops_per_second']:8.1f} ops/s   "
            f"p50={lat['p50']:6.2f} ms  p95={lat['p95']:6.2f} ms  "
            f"p99={lat['p99']:6.2f} ms  ({run['operations']:,} ops)"
        )

    base = runs[0]["throughput_ops_per_second"]
    peak = runs[-1]["throughput_ops_per_second"]
    scaling = peak / base if base else 0.0
    print(
        f"  scaling: {runs[-1]['clients']} clients sustain x{scaling:.2f} "
        f"the single-client throughput"
    )

    if TINY:
        accepted = all(r["throughput_ops_per_second"] > 0 for r in runs)
        criterion = "tiny smoke: every run sustains nonzero throughput and drains cleanly"
    else:
        accepted = scaling >= 5.0
        criterion = "8 concurrent clients sustain >= 5x the single-client throughput"

    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    payload = {
        "bench": "traffic",
        "scale": "tiny" if TINY else "full",
        "config": {
            "documents": DOCS,
            "shards": SHARDS,
            "stores": STORES,
            "latency_seconds": LATENCY_SECONDS,
            "duration_seconds": DURATION_SECONDS,
            "warmup_seconds": WARMUP_SECONDS,
            "workload": dict(WORKLOAD),
            "client_counts": CLIENT_COUNTS,
            "cpus": os.cpu_count(),
        },
        "runs": runs,
        "acceptance": {
            "criterion": criterion,
            "single_client_ops_per_second": base,
            "peak_ops_per_second": peak,
            "scaling_x": scaling,
            "passed": accepted,
        },
    }
    json_path = RESULTS_DIR / "BENCH_traffic.json"
    json_path.write_text(json.dumps(payload, indent=2) + "\n")

    lines = [
        "served traffic scaling (realtime network emulation, "
        f"{LATENCY_SECONDS * 1e3:.1f} ms shard latency, {SHARDS} shards, "
        f"{DOCS:,} docs, {DURATION_SECONDS:.1f} s per run)",
        "",
        f"{'clients':>7}  {'ops/s':>9}  {'p50 ms':>7}  {'p95 ms':>7}  {'p99 ms':>7}",
    ]
    for run in runs:
        lat = run["latency_ms"]
        lines.append(
            f"{run['clients']:>7}  {run['throughput_ops_per_second']:>9.1f}  "
            f"{lat['p50']:>7.2f}  {lat['p95']:>7.2f}  {lat['p99']:>7.2f}"
        )
    lines += ["", f"scaling at {runs[-1]['clients']} clients: x{scaling:.2f}  ({criterion})"]
    txt_path = RESULTS_DIR / "traffic_scaling.txt"
    txt_path.write_text("\n".join(lines) + "\n")

    print(f"\nwrote {json_path.relative_to(RESULTS_DIR.parent.parent)}")
    print(f"wrote {txt_path.relative_to(RESULTS_DIR.parent.parent)}")
    if not accepted:
        raise SystemExit(f"acceptance criterion failed: {criterion} (got x{scaling:.2f})")


if __name__ == "__main__":
    main()
