"""Figure 4.11 — query execution time comparison for the large dataset.

The large-dataset counterpart of Figure 4.10: for every query the runtimes of
Experiment 6 (denormalized / stand-alone), Experiment 5 (normalized /
stand-alone), and Experiment 4 (normalized / sharded) are compared.  The
expected shape matches the paper: the denormalized model stays the fastest;
the sharded cluster stays slower for the broadcast queries 21 and 46, while
Query 50 — targeted by the shard key — is the query where the cluster comes
closest to (or beats) the stand-alone system.
"""

from __future__ import annotations

import pytest

from repro.core import render_bar_chart
from repro.tpcds import QUERY_IDS

SERIES = {
    "denormalized / stand-alone (Exp 6)": 6,
    "normalized / stand-alone (Exp 5)": 5,
    "normalized / sharded (Exp 4)": 4,
}


@pytest.mark.benchmark(group="figure-4.11")
@pytest.mark.parametrize("query_id", QUERY_IDS)
def test_large_dataset_query_comparison(
    benchmark, harness, query_id, measured_runtimes, record_artifact
):
    """Measure the three large-dataset series for one query and plot them."""

    def run_all_series():
        chart_series = {}
        for label, experiment in SERIES.items():
            key = (experiment, query_id)
            if key not in measured_runtimes:
                run = harness.run_query(experiment, query_id, repetitions=2)
                measured_runtimes[key] = run.simulated_seconds
            chart_series[label] = measured_runtimes[key]
        return chart_series

    chart_series = benchmark.pedantic(run_all_series, rounds=1, iterations=1)
    record_artifact(
        f"figure_4_11_query{query_id}_large_dataset",
        render_bar_chart(
            chart_series,
            title=f"Figure 4.11 — Query {query_id}, 41.93GB (large) dataset",
        ),
    )

    denormalized = chart_series["denormalized / stand-alone (Exp 6)"]
    standalone = chart_series["normalized / stand-alone (Exp 5)"]
    sharded = chart_series["normalized / sharded (Exp 4)"]
    assert denormalized <= standalone * 1.1
    assert denormalized <= sharded * 1.1
    if query_id in (21, 46):
        assert sharded > standalone


@pytest.mark.benchmark(group="figure-4.11")
def test_query50_has_smallest_sharding_penalty(benchmark, harness, measured_runtimes, record_artifact):
    """Observation (iii): Q50 benefits most from the sharded deployment."""

    def collect_ratios():
        ratios = {}
        for query_id in QUERY_IDS:
            for experiment in (4, 5):
                key = (experiment, query_id)
                if key not in measured_runtimes:
                    run = harness.run_query(experiment, query_id, repetitions=2)
                    measured_runtimes[key] = run.simulated_seconds
            ratios[f"Query {query_id}"] = (
                measured_runtimes[(4, query_id)] / measured_runtimes[(5, query_id)]
            )
        return ratios

    ratios = benchmark.pedantic(collect_ratios, rounds=1, iterations=1)
    record_artifact(
        "figure_4_11_sharded_over_standalone_ratio",
        render_bar_chart(
            ratios,
            title="Sharded / stand-alone runtime ratio, large dataset (paper: Q50 < 1.0)",
            unit="x",
        ),
    )
    assert ratios["Query 50"] <= min(ratios[f"Query {q}"] for q in (7, 21, 46)) * 1.25
