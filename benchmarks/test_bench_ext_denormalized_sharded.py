"""Extension — the denormalized data model on the sharded cluster.

Section 5.2 of the paper proposes deploying the denormalized model on the
sharded cluster as future work.  The reproduction implements that
configuration as Experiments 7 (small dataset) and 8 (large dataset); this
benchmark compares it with the denormalized stand-alone experiments (3/6) for
every query.  Because the denormalized pipelines are single aggregations, the
only extra sharded cost is scatter-gather — so the gap is expected to be far
smaller than for the normalized model, and the shard-key-targeted queries may
benefit.
"""

from __future__ import annotations

import pytest

from repro.core import render_table
from repro.tpcds import QUERY_IDS

RESULTS: dict[tuple[int, int], float] = {}


@pytest.mark.benchmark(group="extension-denormalized-sharded")
@pytest.mark.parametrize("experiment", [7, 3])
@pytest.mark.parametrize("query_id", QUERY_IDS)
def test_denormalized_small_dataset(benchmark, harness, experiment, query_id):
    """Denormalized model, small dataset: sharded (7) vs stand-alone (3)."""
    run = benchmark.pedantic(
        lambda: harness.run_query(experiment, query_id, repetitions=1),
        rounds=1,
        iterations=1,
    )
    RESULTS[(experiment, query_id)] = run.simulated_seconds
    assert run.result_documents >= 0


@pytest.mark.benchmark(group="extension-denormalized-sharded")
def test_render_extension_report(benchmark, record_artifact):
    """Render the future-work comparison (Section 5.2)."""

    def build_rows():
        rows = []
        for query_id in QUERY_IDS:
            standalone = RESULTS.get((3, query_id))
            sharded = RESULTS.get((7, query_id))
            if standalone is None or sharded is None:
                continue
            rows.append(
                [
                    f"Query {query_id}",
                    f"{standalone:.3f}",
                    f"{sharded:.3f}",
                    f"{sharded / standalone:.2f}" if standalone else "n/a",
                ]
            )
        return rows

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    record_artifact(
        "extension_denormalized_sharded",
        render_table(
            ["query", "stand-alone (Exp 3) s", "sharded (Exp 7) s", "sharded/stand-alone"],
            rows,
            title="Extension — denormalized data model on the sharded cluster (Section 5.2)",
        ),
    )
    assert rows, "expected the parametrized measurements to run first"
