"""Figure 4.10 — query execution time comparison for the small dataset.

The paper's Figure 4.10 plots, for each of the four queries, the runtime of
the three small-dataset setups: denormalized / stand-alone (Experiment 3),
normalized / stand-alone (Experiment 2), and normalized / sharded
(Experiment 1).  This benchmark measures the same three series and renders a
bar chart per query.  The expected shape: the denormalized bar is the
shortest for every query; the sharded bar is the tallest for the broadcast
queries 7, 21, and 46.
"""

from __future__ import annotations

import pytest

from repro.core import render_bar_chart
from repro.tpcds import QUERY_IDS

SERIES = {
    "denormalized / stand-alone (Exp 3)": 3,
    "normalized / stand-alone (Exp 2)": 2,
    "normalized / sharded (Exp 1)": 1,
}


@pytest.mark.benchmark(group="figure-4.10")
@pytest.mark.parametrize("query_id", QUERY_IDS)
def test_small_dataset_query_comparison(
    benchmark, harness, query_id, measured_runtimes, record_artifact
):
    """Measure the three small-dataset series for one query and plot them."""

    def run_all_series():
        chart_series = {}
        for label, experiment in SERIES.items():
            key = (experiment, query_id)
            if key not in measured_runtimes:
                run = harness.run_query(experiment, query_id, repetitions=2)
                measured_runtimes[key] = run.simulated_seconds
            chart_series[label] = measured_runtimes[key]
        return chart_series

    chart_series = benchmark.pedantic(run_all_series, rounds=1, iterations=1)
    record_artifact(
        f"figure_4_10_query{query_id}_small_dataset",
        render_bar_chart(
            chart_series,
            title=f"Figure 4.10 — Query {query_id}, 9.94GB (small) dataset",
        ),
    )

    denormalized = chart_series["denormalized / stand-alone (Exp 3)"]
    standalone = chart_series["normalized / stand-alone (Exp 2)"]
    sharded = chart_series["normalized / sharded (Exp 1)"]
    assert denormalized <= standalone * 1.1
    assert denormalized <= sharded * 1.1
    if query_id in (21, 46):
        assert sharded > standalone
