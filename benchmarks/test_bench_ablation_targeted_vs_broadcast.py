"""Ablation — targeted vs broadcast routing on the sharded cluster.

Section 4.3 (observation iii) attributes Query 50's good sharded performance
to the fact that its predicate contains the shard key, so the router sends it
to a single shard instead of broadcasting it and merging results from every
shard.  This ablation isolates that mechanism: the same collection is queried
once through its shard key (targeted) and once through a non-key attribute
(broadcast), and the aggregation pipelines of both flavours are compared.
"""

from __future__ import annotations

import pytest

from repro.core import render_table
from repro.sharding import ShardedCluster

ROWS = 6_000


@pytest.fixture(scope="module")
def cluster():
    built = ShardedCluster(shard_count=3)
    built.enable_sharding("ablation")
    built.shard_collection("ablation", "orders", {"day": 1}, chunk_size_bytes=16 * 1024)
    orders = built.get_database("ablation")["orders"]
    orders.insert_many(
        [
            {
                "day": i % 365,
                "store": i % 40,
                "amount": float(i % 97),
                "payload": "x" * 40,
            }
            for i in range(ROWS)
        ]
    )
    built.balance()
    built.reset_metrics()
    return built


RESULTS: dict[str, dict[str, float]] = {}


def _run_and_snapshot(cluster, label, operation):
    cluster.reset_metrics()
    operation()
    metrics = cluster.router.metrics
    RESULTS[label] = {
        "shards_contacted": metrics.shards_contacted,
        "targeted": metrics.targeted_operations,
        "broadcast": metrics.broadcast_operations,
        "network_seconds": metrics.network_seconds,
        "parallel_shard_seconds": metrics.parallel_shard_seconds,
    }


@pytest.mark.benchmark(group="ablation-routing")
def test_targeted_find_by_shard_key(benchmark, cluster):
    """A find constrained by the shard key touches a subset of the shards."""
    orders = cluster.get_database("ablation")["orders"]

    def targeted():
        return orders.find({"day": {"$gte": 10, "$lte": 20}}).to_list()

    results = benchmark.pedantic(targeted, rounds=3, iterations=1)
    _run_and_snapshot(cluster, "targeted find (day range)", targeted)
    assert results
    assert RESULTS["targeted find (day range)"]["shards_contacted"] < 3 * 1 + 1


@pytest.mark.benchmark(group="ablation-routing")
def test_broadcast_find_by_non_key(benchmark, cluster):
    """A find on a non-key attribute is broadcast to every shard."""
    orders = cluster.get_database("ablation")["orders"]

    def broadcast():
        return orders.find({"store": 7}).to_list()

    results = benchmark.pedantic(broadcast, rounds=3, iterations=1)
    _run_and_snapshot(cluster, "broadcast find (store)", broadcast)
    assert results
    assert RESULTS["broadcast find (store)"]["shards_contacted"] == 3


@pytest.mark.benchmark(group="ablation-routing")
def test_targeted_aggregation(benchmark, cluster):
    """An aggregation whose $match carries the shard key is targeted."""
    orders = cluster.get_database("ablation")["orders"]
    pipeline = [
        {"$match": {"day": {"$gte": 100, "$lte": 110}}},
        {"$group": {"_id": "$store", "total": {"$sum": "$amount"}}},
    ]

    def targeted():
        return orders.aggregate(pipeline)

    benchmark.pedantic(targeted, rounds=3, iterations=1)
    _run_and_snapshot(cluster, "targeted aggregate", targeted)


@pytest.mark.benchmark(group="ablation-routing")
def test_broadcast_aggregation(benchmark, cluster):
    """An aggregation without the shard key is scattered and merged."""
    orders = cluster.get_database("ablation")["orders"]
    pipeline = [
        {"$match": {"amount": {"$gte": 50.0}}},
        {"$group": {"_id": "$store", "total": {"$sum": "$amount"}}},
    ]

    def broadcast():
        return orders.aggregate(pipeline)

    benchmark.pedantic(broadcast, rounds=3, iterations=1)
    _run_and_snapshot(cluster, "broadcast aggregate", broadcast)


@pytest.mark.benchmark(group="ablation-routing")
def test_render_routing_report(benchmark, cluster, record_artifact):
    """Summarize shards contacted and routing cost per access pattern."""

    def build_rows():
        return [
            [
                label,
                int(stats["shards_contacted"]),
                int(stats["targeted"]),
                int(stats["broadcast"]),
                f"{stats['network_seconds'] * 1000:.2f}",
            ]
            for label, stats in RESULTS.items()
        ]

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    record_artifact(
        "ablation_targeted_vs_broadcast",
        render_table(
            ["access pattern", "shards contacted", "targeted ops", "broadcast ops", "network ms"],
            rows,
            title="Ablation — targeted vs broadcast routing (Section 4.3, observation iii)",
        ),
    )
    if {"targeted aggregate", "broadcast aggregate"} <= RESULTS.keys():
        assert (
            RESULTS["targeted aggregate"]["shards_contacted"]
            <= RESULTS["broadcast aggregate"]["shards_contacted"]
        )
