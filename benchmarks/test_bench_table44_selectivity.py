"""Table 4.4 — query selectivity (size of the data each query returns).

The paper reports the result-set size of each query in MB for both datasets
(for example, Q46 returns 2.48 MB at the small scale while Q50 returns only
0.003 MB).  This benchmark runs each query against the denormalized
deployments of both scales, measures the serialized result size, and renders
the table next to the paper's values.  The expected shape: Q46 returns by far
the most data, Q50 by far the least, and the scaling queries grow with the
dataset while Q50 stays flat.
"""

from __future__ import annotations

import pytest

from repro.core import (
    EXPERIMENTS,
    measure_selectivity,
    paper_reference_table_44,
    render_table,
)
from repro.tpcds import QUERY_IDS

MEASUREMENTS: dict[tuple[str, int], object] = {}


@pytest.mark.benchmark(group="table-4.4")
@pytest.mark.parametrize("scale_name, experiment", [("small", 3), ("large", 6)])
@pytest.mark.parametrize("query_id", QUERY_IDS)
def test_query_selectivity(benchmark, harness, scale_name, experiment, query_id):
    """Measure one query's result size on the denormalized deployment."""
    profile = harness.scale(EXPERIMENTS[experiment])
    database = harness.standalone_denormalized_database(profile)
    measurement = benchmark.pedantic(
        measure_selectivity, args=(database, query_id), rounds=1, iterations=1
    )
    MEASUREMENTS[(scale_name, query_id)] = measurement
    assert measurement.result_documents >= 0


@pytest.mark.benchmark(group="table-4.4")
def test_render_table_44(benchmark, harness, record_artifact):
    """Render Table 4.4 (reproduction vs paper) from the measurements."""
    for scale_name, experiment in (("small", 3), ("large", 6)):
        profile = harness.scale(EXPERIMENTS[experiment])
        database = harness.standalone_denormalized_database(profile)
        for query_id in QUERY_IDS:
            if (scale_name, query_id) not in MEASUREMENTS:
                MEASUREMENTS[(scale_name, query_id)] = measure_selectivity(database, query_id)

    paper = paper_reference_table_44()

    def build_rows():
        rows = []
        for scale_name in ("small", "large"):
            for query_id in QUERY_IDS:
                measurement = MEASUREMENTS[(scale_name, query_id)]
                rows.append(
                    [
                        scale_name,
                        f"Query {query_id}",
                        measurement.result_documents,
                        f"{measurement.megabytes:.4f}",
                        f"{paper[scale_name][query_id]:.3f}",
                    ]
                )
        return rows

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    record_artifact(
        "table_4_4_selectivity",
        render_table(
            ["dataset", "query", "result documents", "reproduction MB", "paper MB"],
            rows,
            title="Table 4.4 — query selectivity",
        ),
    )

    # Shape checks mirroring the paper's table: Q46 returns the most data,
    # Q50 the fewest result rows, and the large dataset returns at least as
    # much as the small one for the scaling queries.  (At the reduced scale
    # Q50's byte size is not always the minimum because its few rows carry
    # the wide store-address group key; its row count stays the smallest.)
    small_bytes = {q: MEASUREMENTS[("small", q)].result_bytes for q in QUERY_IDS}
    large_bytes = {q: MEASUREMENTS[("large", q)].result_bytes for q in QUERY_IDS}
    small_docs = {q: MEASUREMENTS[("small", q)].result_documents for q in QUERY_IDS}
    large_docs = {q: MEASUREMENTS[("large", q)].result_documents for q in QUERY_IDS}
    assert large_bytes[46] == max(large_bytes.values())
    assert small_docs[46] >= small_docs[50]
    assert large_docs[46] >= large_docs[50]
    assert large_bytes[46] >= small_bytes[46]
