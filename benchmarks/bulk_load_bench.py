"""Measure bulk-load throughput on the write path.

Run directly (``PYTHONPATH=src python benchmarks/bulk_load_bench.py``) to
print wall times for the load shapes the paper's Table 4.3 / Figure 4.9
experiments exercise:

* ``insert_many`` into a collection that already carries secondary indexes
  (the load-with-index ablation), at two scales to expose the asymptotics;
* the same load inside ``collection.bulk_load()`` (secondary-index
  maintenance deferred, one-sort rebuild on exit);
* a routed ``insert_many`` into a hashed sharded collection (single-pass
  batch routing, one shipment per shard).

The output of this script before and after the batched write engine is
recorded in ``benchmarks/results/bulk_load_before_after.txt``.  Set
``REPRO_BULK_BENCH_SCALE=tiny`` for a CI-sized smoke run.
"""

from __future__ import annotations

import os
import random
import time

from repro.documentstore.collection import Collection
from repro.sharding.cluster import ShardedCluster

if os.environ.get("REPRO_BULK_BENCH_SCALE", "full").lower() == "tiny":
    SCALES = (200, 1_000)
    SHARDED_DOCS = 600
else:
    SCALES = (10_000, 100_000)
    SHARDED_DOCS = 30_000

SHARDS = 3


def make_documents(count: int) -> list[dict]:
    random.seed(20151109)
    return [
        {
            "item_sk": i,
            "ticket": count - i,
            "store": random.randrange(500),
            "quantity": random.randrange(1, 100),
            "price": round(random.uniform(1.0, 500.0), 2),
            "tags": [i % 7, i % 11],
        }
        for i in range(count)
    ]


def indexed_collection() -> Collection:
    collection = Collection(None, "store_sales")
    collection.create_index("store")
    collection.create_index([("store", 1), ("quantity", -1)])
    collection.create_index("item_sk", unique=True)
    collection.create_index("tags")
    return collection


def timed(operation) -> float:
    started = time.perf_counter()
    operation()
    return time.perf_counter() - started


def bench_insert_many(documents: list[dict]) -> float:
    collection = indexed_collection()
    return timed(lambda: collection.insert_many(documents))


def bench_bulk_load(documents: list[dict]) -> float:
    collection = indexed_collection()

    def run() -> None:
        if hasattr(collection, "bulk_load"):
            with collection.bulk_load():
                collection.insert_many(documents)
        else:  # pre-batched-engine code: plain insert_many
            collection.insert_many(documents)

    return timed(run)


def bench_sharded_load(documents: list[dict]) -> dict:
    cluster = ShardedCluster(shard_count=SHARDS)
    cluster.enable_sharding("bench")
    cluster.shard_collection("bench", "sales", {"item_sk": "hashed"})
    cluster.reset_metrics()
    sales = cluster.get_database("bench")["sales"]
    seconds = timed(lambda: sales.insert_many(documents))
    stats = cluster.network.stats.snapshot()
    return {
        "seconds": seconds,
        "messages": stats["messages"],
        "insert_requests": stats["by_purpose"].get("insert:request", 0),
    }


def main() -> None:
    print(f"scales={SCALES} sharded_docs={SHARDED_DOCS} shards={SHARDS}")
    rates = {}
    for count in SCALES:
        documents = make_documents(count)
        seconds = bench_insert_many(documents)
        rates[count] = seconds
        print(
            f"insert_many, 4 secondary indexes, {count:>7,} docs   "
            f"wall={seconds:8.3f} s  ({count / seconds:>10,.0f} docs/s)"
        )
    small, large = SCALES
    print(
        f"scaling {small:,} -> {large:,}: rows x{large / small:.0f}, "
        f"time x{rates[large] / rates[small]:.1f}"
    )
    for count in SCALES:
        documents = make_documents(count)
        seconds = bench_bulk_load(documents)
        print(
            f"bulk_load (deferred indexes),   {count:>7,} docs   "
            f"wall={seconds:8.3f} s  ({count / seconds:>10,.0f} docs/s)"
        )
    documents = make_documents(SHARDED_DOCS)
    report = bench_sharded_load(documents)
    print(
        f"sharded routed insert_many,     {SHARDED_DOCS:>7,} docs   "
        f"wall={report['seconds']:8.3f} s  messages={report['messages']:,}  "
        f"insert_request_messages={report['insert_requests']:,}"
    )


if __name__ == "__main__":
    main()
