"""Shared fixtures for the served-front-door tests.

Builds a 2-shard cluster loaded with a small order dataset, serves it
through a :class:`DocumentStoreServer` on an ephemeral port, and connects a
:class:`RemoteClient`; a stand-alone collection with the same data is the
parity reference.
"""

from __future__ import annotations

import time

import pytest

from repro.documentstore import DocumentStoreClient
from repro.server import DocumentStoreServer, RemoteClient
from repro.sharding import ShardedCluster

DOCS = [
    {"order_id": i, "amount": float((i * 37) % 97), "store": i % 5, "tag": f"t{i % 7}"}
    for i in range(300)
]


def build_served_cluster(**cluster_kwargs) -> ShardedCluster:
    """A 2-shard cluster with the shared order dataset loaded and balanced."""
    cluster = ShardedCluster(shard_count=2, **cluster_kwargs)
    cluster.enable_sharding("shop")
    cluster.shard_collection("shop", "orders", {"order_id": "hashed"})
    cluster.get_database("shop")["orders"].insert_many(DOCS)
    cluster.balance()
    cluster.reset_metrics()
    return cluster


def slow_down_shard(cluster: ShardedCluster, shard_id: str, seconds: float) -> None:
    """Make every storage operation on one shard sleep before executing."""
    shard = cluster.shard(shard_id)
    original = shard.run

    def slow_run(operation, *args, **kwargs):
        time.sleep(seconds)
        return original(operation, *args, **kwargs)

    shard.run = slow_run


@pytest.fixture()
def cluster():
    cluster = build_served_cluster()
    yield cluster
    cluster.close()


@pytest.fixture()
def server(cluster):
    with DocumentStoreServer(cluster, port=0) as server:
        yield server


@pytest.fixture()
def client(server):
    with RemoteClient(server.address, pool_size=2) as client:
        yield client


@pytest.fixture()
def remote(client):
    return client["shop"]["orders"]


@pytest.fixture()
def standalone():
    client = DocumentStoreClient()
    client["shop"]["orders"].insert_many(DOCS)
    return client["shop"]["orders"]
