"""Unit tests for the length-prefixed binary wire protocol."""

from __future__ import annotations

import datetime as dt

import pytest

from repro.documentstore import FindSpec, ObjectId
from repro.documentstore.errors import (
    DocumentTooLargeError,
    DuplicateKeyError,
    InvalidUpdateError,
    OperationFailure,
)
from repro.server import (
    ConnectionFailure,
    Opcode,
    ProtocolError,
    decode_findspec,
    encode_error,
    encode_findspec,
    encode_frame,
    raise_wire_error,
    recv_frame,
)
from repro.server.protocol import FLAG_HAS_MORE, MAGIC, MAX_FRAME_SIZE
from repro.sharding import ShardTimeoutError


class FakeSocket:
    """Feeds a byte buffer to ``recv_frame`` in deliberately small chunks."""

    def __init__(self, data: bytes, chunk: int = 5) -> None:
        self._data = data
        self._chunk = chunk

    def recv(self, count: int) -> bytes:
        take = min(count, self._chunk, len(self._data))
        piece, self._data = self._data[:take], self._data[take:]
        return piece


class TestFrames:
    def test_round_trip_with_extended_types(self):
        oid = ObjectId()
        document = {
            "batch": [
                {"_id": oid, "when": dt.datetime(2017, 3, 21, 12, 30), "blob": b"\x00\x01"},
                {"day": dt.date(2017, 3, 21), "nested": {"pi": 3.14, "none": None}},
            ],
            "has_more": True,
        }
        data = encode_frame(Opcode.REPLY, 42, document, flags=FLAG_HAS_MORE)
        frame = recv_frame(FakeSocket(data))
        assert frame is not None
        assert frame.request_id == 42
        assert frame.opcode == Opcode.REPLY
        assert frame.has_more
        assert frame.document == document
        assert frame.wire_size == len(data)

    def test_clean_eof_returns_none(self):
        assert recv_frame(FakeSocket(b"")) is None

    def test_truncated_frame_raises(self):
        data = encode_frame(Opcode.FIND, 1, {"db": "shop"})
        with pytest.raises(ProtocolError):
            recv_frame(FakeSocket(data[:-3]))

    def test_bad_magic_rejected(self):
        data = bytearray(encode_frame(Opcode.FIND, 1, {}))
        data[0] ^= 0xFF
        with pytest.raises(ProtocolError, match="magic"):
            recv_frame(FakeSocket(bytes(data)))

    def test_oversized_body_length_rejected(self):
        header = (MAGIC).to_bytes(2, "big") + b"\x01" + (MAX_FRAME_SIZE + 1).to_bytes(4, "big")
        with pytest.raises(ProtocolError, match="length"):
            recv_frame(FakeSocket(header))


class TestFindSpec:
    def test_round_trip_full_spec(self):
        spec = FindSpec.create(
            filter={"store": {"$gte": 1}},
            projection={"_id": 0, "order_id": 1},
            sort=[("amount", -1), ("order_id", 1)],
            skip=3,
            limit=20,
            batch_size=7,
            hint="amount_1",
        )
        assert decode_findspec(encode_findspec(spec)) == spec

    def test_round_trip_empty_spec(self):
        spec = FindSpec()
        assert decode_findspec(encode_findspec(spec)) == spec


class TestErrors:
    def test_generic_error_maps_to_class(self):
        payload = encode_error(InvalidUpdateError("empty update document"))
        with pytest.raises(InvalidUpdateError, match="empty update"):
            raise_wire_error(payload)

    def test_duplicate_key_reconstructed(self):
        payload = encode_error(DuplicateKeyError("order_id_1", 17))
        with pytest.raises(DuplicateKeyError) as excinfo:
            raise_wire_error(payload)
        assert excinfo.value.index_name == "order_id_1"

    def test_document_too_large_reconstructed(self):
        payload = encode_error(DocumentTooLargeError(20_000_000, 16_777_216))
        with pytest.raises(DocumentTooLargeError) as excinfo:
            raise_wire_error(payload)
        assert excinfo.value.size == 20_000_000

    def test_shard_timeout_reconstructed(self):
        original = ShardTimeoutError("find", ["shard2"], ["shard1"], 0.15)
        with pytest.raises(ShardTimeoutError) as excinfo:
            raise_wire_error(encode_error(original))
        assert excinfo.value.shard_ids == ["shard2"]
        assert excinfo.value.completed == ["shard1"]
        assert excinfo.value.deadline_seconds == pytest.approx(0.15)

    def test_unknown_code_falls_back_to_operation_failure(self):
        with pytest.raises(OperationFailure, match="Mystery"):
            raise_wire_error({"code": "Mystery", "message": "boom"})

    def test_rejection_codes_map_to_connection_failure(self):
        with pytest.raises(ConnectionFailure):
            raise_wire_error({"code": "TooManyConnections", "message": "full"})
