"""Concurrent sessions: racing clients, cursor isolation, deadlines, drains.

Two clients hammering one server must behave exactly like one client run
twice: inserts land once, sorted finds see a consistent order, and each
connection's cursors stream their own results (no cross-talk).  A slow
shard behind the server surfaces as a structured ``ShardTimeoutError`` on
the client, and a graceful shutdown delivers in-flight replies before
closing sessions.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.server import ConnectionFailure, DocumentStoreServer, RemoteClient
from repro.sharding import ScatterPolicy, ShardTimeoutError

from .conftest import build_served_cluster, slow_down_shard


class TestRacingClients:
    def test_two_clients_racing_insert_many_and_sorted_find(self, server):
        """Interleaved insert_many + sorted finds from two sessions stay exact."""
        address = server.address
        per_client = 120
        batch = 20
        errors: list[BaseException] = []

        def run(client_index: int) -> None:
            base = 10_000 + client_index * per_client
            try:
                with RemoteClient(address, pool_size=1) as client:
                    race = client["shop"]["race"]
                    for start in range(base, base + per_client, batch):
                        race.insert_many(
                            [
                                {"seq": n, "owner": client_index, "payload": n * 3}
                                for n in range(start, start + batch)
                            ]
                        )
                        # A sorted, paged read of this client's own rows must
                        # never see another session's cursor batches.
                        mine = race.find(
                            {"owner": client_index},
                            {"_id": 0, "seq": 1},
                            sort=[("seq", 1)],
                            batch_size=7,
                        ).to_list()
                        assert [d["seq"] for d in mine] == list(range(base, start + batch))
            except BaseException as exc:  # noqa: BLE001 - surfaced in the main thread
                errors.append(exc)

        threads = [threading.Thread(target=run, args=(i,)) for i in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors

        # Single-client ground truth after the race: every row exactly once,
        # in global sort order.
        with RemoteClient(address, pool_size=1) as client:
            rows = client["shop"]["race"].find(
                {}, {"_id": 0, "seq": 1}, sort=[("seq", 1)], batch_size=11
            ).to_list()
        assert [d["seq"] for d in rows] == list(range(10_000, 10_000 + 2 * per_client))

    def test_interleaved_cursors_do_not_cross_talk(self, client, standalone):
        """Two cursors pulled alternately yield their own streams."""
        evens = iter(
            client["shop"]["orders"].find(
                {"order_id": {"$mod": [2, 0]}},
                {"_id": 0, "order_id": 1},
                sort=[("order_id", 1)],
                batch_size=5,
            )
        )
        odds = iter(
            client["shop"]["orders"].find(
                {"order_id": {"$mod": [2, 1]}},
                {"_id": 0, "order_id": 1},
                sort=[("order_id", 1)],
                batch_size=3,
            )
        )
        got_evens, got_odds = [], []
        for _ in range(60):
            got_evens.append(next(evens)["order_id"])
            got_odds.append(next(odds)["order_id"])
        assert got_evens == [2 * i for i in range(60)]
        assert got_odds == [2 * i + 1 for i in range(60)]


class TestDeadlinesBehindTheServer:
    def test_slow_shard_surfaces_as_shard_timeout(self):
        cluster = build_served_cluster(
            scatter_policy=ScatterPolicy(deadline_seconds=0.15)
        )
        try:
            slow_down_shard(cluster, "shard2", 1.0)
            with DocumentStoreServer(cluster, port=0) as server:
                with RemoteClient(server.address) as client:
                    with pytest.raises(ShardTimeoutError) as excinfo:
                        client["shop"]["orders"].find({"store": 1}).to_list()
                    assert "shard2" in excinfo.value.shard_ids
                    assert excinfo.value.deadline_seconds == pytest.approx(0.15)
        finally:
            cluster.close()

    def test_partial_policy_returns_responsive_shards(self):
        # Generous deadline: the fast shard only needs sub-ms of CPU, but a
        # loaded CI host can delay its thread; the slow shard always misses.
        cluster = build_served_cluster(
            scatter_policy=ScatterPolicy(deadline_seconds=0.5, on_timeout="partial")
        )
        try:
            slow_down_shard(cluster, "shard2", 2.0)
            with DocumentStoreServer(cluster, port=0) as server:
                with RemoteClient(server.address) as client:
                    rows = client["shop"]["orders"].find({"store": 1}).to_list()
                    # Only shard1's slice answered in time.
                    assert 0 < len(rows) < 60
                    assert cluster.router.metrics.shards_timed_out == 1
        finally:
            cluster.close()


class TestReconnectAndShutdown:
    def test_idempotent_read_retries_on_dead_socket(self, server):
        with RemoteClient(server.address, pool_size=1) as client:
            orders = client["shop"]["orders"]
            assert client.ping()  # establishes the pooled connection
            client._idle[0].sock.close()  # simulate the socket dying under us
            rows = orders.find({"store": 1}, {"_id": 0}).to_list()  # retried
            assert len(rows) == 60

    def test_writes_are_not_retried(self, server):
        with RemoteClient(server.address, pool_size=1) as client:
            orders = client["shop"]["orders"]
            assert client.ping()
            client._idle[0].sock.close()
            with pytest.raises(ConnectionFailure):
                orders.insert_many([{"order_id": 99_999, "amount": 0.0, "store": 0}])
            # The write never reached the server and the pool recovered.
            assert orders.count_documents({"order_id": 99_999}) == 0

    def test_graceful_shutdown_drains_in_flight_operation(self):
        cluster = build_served_cluster()
        slow_down_shard(cluster, "shard1", 0.4)
        server = DocumentStoreServer(cluster, port=0).start()
        results: list[int] = []
        errors: list[BaseException] = []

        def slow_read() -> None:
            try:
                with RemoteClient(server.address, pool_size=1) as client:
                    results.append(
                        client["shop"]["orders"].count_documents({"store": 2})
                    )
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        thread = threading.Thread(target=slow_read)
        thread.start()
        # Wait until the count is actually in flight (not a fixed sleep, which
        # races on a loaded host) before starting the graceful shutdown.
        deadline = time.monotonic() + 2.0
        while time.monotonic() < deadline:
            with server._inflight_cond:
                if server._inflight > 0:
                    break
            time.sleep(0.005)
        server.shutdown(drain_timeout_seconds=5.0)
        thread.join(timeout=5.0)
        assert not errors, errors
        assert results == [60]  # the in-flight reply was delivered, not dropped
        cluster.close()

    def test_requests_after_shutdown_are_refused(self):
        cluster = build_served_cluster()
        try:
            server = DocumentStoreServer(cluster, port=0).start()
            address = server.address
            server.shutdown()
            with RemoteClient(address, pool_size=1) as client:
                with pytest.raises(ConnectionFailure):
                    client.ping()
        finally:
            cluster.close()
