"""Vector search and the unified explain over the wire protocol.

Serves a stand-alone backend so the three-surface parity chain closes:
``test_vector_sharded`` proves standalone == sharded, and this module
proves standalone == served (identical top-k, identical explain schema).
"""

from __future__ import annotations

import pytest

from repro.documentstore import (
    EXECUTION_KEYS,
    PLANNER_KEYS,
    TOP_LEVEL_KEYS,
    DocumentStoreClient,
    OperationFailure,
)
from repro.server import DocumentStoreServer, RemoteClient

DIMS = 4

DOCS = [
    {
        "_id": i,
        "embedding": [float((i * 11 + axis * 3) % 19) for axis in range(DIMS)],
        "tenant": i % 3,
    }
    for i in range(150)
]

VECTOR_SPEC = {"keys": ["embedding"], "type": "vector", "dims": DIMS}

QUERY = [4.0, 12.0, 1.0, 8.0]


@pytest.fixture()
def backend():
    client = DocumentStoreClient()
    client["rag"]["chunks"].insert_many(DOCS)
    return client


@pytest.fixture()
def server(backend):
    with DocumentStoreServer(backend, port=0) as server:
        yield server


@pytest.fixture()
def client(server):
    with RemoteClient(server.address, pool_size=2) as client:
        yield client


@pytest.fixture()
def remote(client):
    return client["rag"]["chunks"]


@pytest.fixture()
def standalone(backend, remote):
    # The remote DDL lands on this same backend; create the index over the
    # wire so the served DDL path is what builds it.
    remote.create_index(VECTOR_SPEC)
    return backend["rag"]["chunks"]


class TestServedDDL:
    def test_structured_create_index_round_trips(self, remote, standalone):
        specs = {spec["name"]: spec for spec in remote.list_indexes()}
        assert specs["embedding_vector"]["type"] == "vector"
        assert specs["embedding_vector"]["dims"] == DIMS
        assert remote.list_indexes() == standalone.list_indexes()

    def test_legacy_create_index_still_works(self, remote):
        assert remote.create_index([("tenant", 1)]) == "tenant_1"


class TestServedVectorSearch:
    def test_topk_matches_standalone(self, remote, standalone):
        pipeline = [{"$vectorSearch": {"queryVector": QUERY, "k": 9}}]
        assert remote.aggregate(pipeline) == standalone.aggregate(pipeline)

    def test_prefiltered_matches_standalone(self, remote, standalone):
        pipeline = [
            {
                "$vectorSearch": {
                    "queryVector": QUERY,
                    "k": 6,
                    "filter": {"tenant": 0},
                }
            }
        ]
        results = remote.aggregate(pipeline)
        assert results == standalone.aggregate(pipeline)
        assert all(doc["tenant"] == 0 for doc in results)

    def test_streamed_aggregate_matches_monolithic(self, server, remote, standalone):
        pipeline = [{"$vectorSearch": {"queryVector": QUERY, "k": 50}}]
        opened_before = server.stats.snapshot()["cursors"]["opened"]
        streamed = remote.aggregate(pipeline, batch_size=7)
        assert streamed == standalone.aggregate(pipeline)
        # The batched reply path registered (and exhausted) a server cursor.
        stats = server.stats.snapshot()["cursors"]
        assert stats["opened"] == opened_before + 1

    def test_streamed_aggregate_without_cursor_for_small_results(
        self, server, remote, standalone
    ):
        opened_before = server.stats.snapshot()["cursors"]["opened"]
        results = remote.aggregate(
            [{"$vectorSearch": {"queryVector": QUERY, "k": 3}}], batch_size=10
        )
        assert len(results) == 3
        assert server.stats.snapshot()["cursors"]["opened"] == opened_before

    def test_server_error_propagates(self, remote, standalone):
        with pytest.raises(OperationFailure, match="queryVector"):
            remote.aggregate([{"$vectorSearch": {"k": 3}}])


class TestServedExplain:
    def test_unified_find_schema(self, remote, standalone):
        served = remote.explain({"tenant": 1}, verbosity="executionStats")
        local = standalone.explain({"tenant": 1}, verbosity="executionStats")
        assert set(served) == set(TOP_LEVEL_KEYS) | {"executionStats"}
        assert served["surface"] == "served"
        assert set(served["queryPlanner"]) == set(PLANNER_KEYS)
        assert EXECUTION_KEYS <= set(served["executionStats"])
        # Identical schema — and identical plan — to the stand-alone surface.
        assert set(served) == set(local)
        assert served["queryPlanner"]["winningPlan"] == local["queryPlanner"]["winningPlan"]
        assert served["executionStats"]["nReturned"] == local["executionStats"]["nReturned"]

    def test_unified_aggregate_schema(self, remote, standalone):
        pipeline = [{"$vectorSearch": {"queryVector": QUERY, "k": 5}}]
        served = remote.explain(pipeline, verbosity="executionStats")
        local = standalone.explain(pipeline, verbosity="executionStats")
        assert served["surface"] == "served"
        assert served["operation"] == "aggregate"
        assert set(served) == set(local)
        assert served["executionStats"]["nReturned"] == 5
        plan = served["queryPlanner"]["winningPlan"]
        assert plan["stage"] == "VECTOR_SEARCH"

    def test_unknown_verbosity_rejected_over_the_wire(self, remote, standalone):
        with pytest.raises(OperationFailure, match="verbosity"):
            remote.explain({}, verbosity="nope")
