"""Served-vs-standalone parity, cursor streaming, observability, honesty.

The acceptance matrix of the served front door: every operation issued
through a real socket against the 2-shard served cluster must return exactly
what the stand-alone in-process database returns, including sort+skip+limit
pushdown and ``getMore`` batched cursors; the server's byte accounting must
be at least the router's simulated shipping estimate for the same query.
"""

from __future__ import annotations

import datetime as dt
import time

import pytest

from repro.documentstore import ObjectId
from repro.documentstore.errors import DuplicateKeyError, OperationFailure
from repro.server import ConnectionFailure, DocumentStoreServer, RemoteClient

from .conftest import DOCS


def stripped(docs):
    """Deterministic order, ignoring auto-generated ``_id`` values."""
    return sorted(
        ({k: v for k, v in d.items() if k != "_id"} for d in docs),
        key=lambda d: d["order_id"],
    )


class TestParityMatrix:
    def test_find_broadcast(self, remote, standalone):
        got = remote.find({"store": 2}).to_list()
        want = standalone.find({"store": 2}).to_list()
        assert stripped(got) == stripped(want)

    def test_find_sort_skip_limit_projection(self, remote, standalone):
        kwargs = dict(
            projection={"_id": 0, "order_id": 1, "amount": 1},
            sort=[("amount", -1), ("order_id", 1)],
            skip=5,
            limit=20,
        )
        got = remote.find({"store": {"$gte": 1}}, **kwargs).to_list()
        want = standalone.find({"store": {"$gte": 1}}, **kwargs).to_list()
        assert got == want

    def test_find_chained_cursor_options(self, remote, standalone):
        got = (
            remote.find({}, {"_id": 0, "order_id": 1})
            .sort("order_id", -1)
            .skip(2)
            .limit(9)
            .to_list()
        )
        want = (
            standalone.find({}, {"_id": 0, "order_id": 1})
            .sort("order_id", -1)
            .skip(2)
            .limit(9)
            .to_list()
        )
        assert got == want

    def test_find_targeted_on_shard_key(self, remote, standalone):
        got = remote.find({"order_id": 41}).to_list()
        want = standalone.find({"order_id": 41}).to_list()
        assert stripped(got) == stripped(want)

    def test_get_more_batched_cursor(self, remote, standalone, server):
        got = remote.find(
            {}, {"_id": 0}, sort=[("order_id", 1)], batch_size=7, limit=40
        ).to_list()
        want = standalone.find(
            {}, {"_id": 0}, sort=[("order_id", 1)], batch_size=7, limit=40
        ).to_list()
        assert got == want
        status = server.stats.snapshot()
        assert status["opcounters"]["get_more"] >= 5  # 40 docs / 7 per batch
        assert status["cursors"]["opened"] == 1
        assert status["cursors"]["exhausted"] == 1

    def test_aggregate(self, remote, standalone):
        pipeline = [
            {"$match": {"store": {"$lte": 3}}},
            {"$group": {"_id": "$store", "total": {"$sum": "$amount"}, "n": {"$sum": 1}}},
            {"$sort": {"_id": 1}},
        ]
        assert remote.aggregate(pipeline) == standalone.aggregate(pipeline)

    def test_count_and_distinct(self, remote, standalone):
        assert remote.count_documents({"store": 3}) == standalone.count_documents({"store": 3})
        assert sorted(remote.distinct("tag")) == sorted(standalone.distinct("tag"))
        assert sorted(remote.distinct("tag", {"store": 1})) == sorted(
            standalone.distinct("tag", {"store": 1})
        )

    def test_insert_many_parity(self, remote, standalone):
        extra = [{"order_id": 1_000 + i, "amount": float(i), "store": 9} for i in range(25)]
        got_result = remote.insert_many(extra)
        want_result = standalone.insert_many(extra)
        assert len(got_result.inserted_ids) == len(want_result.inserted_ids) == 25
        assert all(isinstance(oid, ObjectId) for oid in got_result.inserted_ids)
        got = remote.find({"store": 9}).to_list()
        want = standalone.find({"store": 9}).to_list()
        assert stripped(got) == stripped(want)

    def test_insert_one_returns_id(self, remote):
        result = remote.insert_one({"order_id": 5_000, "amount": 1.5, "store": 8})
        assert isinstance(result.inserted_id, ObjectId)
        assert remote.count_documents({"order_id": 5_000}) == 1

    def test_update_one_modifies_exactly_one(self, remote, standalone):
        got = remote.update_one({"store": 2}, {"$set": {"flag": True}})
        want = standalone.update_one({"store": 2}, {"$set": {"flag": True}})
        assert (got.matched_count, got.modified_count) == (
            want.matched_count,
            want.modified_count,
        ) == (1, 1)
        assert remote.count_documents({"flag": True}) == 1

    def test_update_many_and_upsert(self, remote, standalone):
        got = remote.update_many({"store": 4}, {"$inc": {"amount": 1.0}})
        want = standalone.update_many({"store": 4}, {"$inc": {"amount": 1.0}})
        assert got.modified_count == want.modified_count
        upserted = remote.update_one(
            {"order_id": 77_777}, {"$set": {"store": 1}}, upsert=True
        )
        assert upserted.upserted_id is not None
        assert remote.count_documents({"order_id": 77_777}) == 1

    def test_delete_one_and_many(self, remote, standalone):
        got_one = remote.delete_one({"store": 1})
        want_one = standalone.delete_one({"store": 1})
        assert got_one.deleted_count == want_one.deleted_count == 1
        got_many = remote.delete_many({"store": 0})
        want_many = standalone.delete_many({"store": 0})
        assert got_many.deleted_count == want_many.deleted_count
        assert remote.count_documents({}) == standalone.count_documents({})

    def test_extended_types_round_trip_through_server(self, remote):
        oid = ObjectId()
        when = dt.datetime(2017, 3, 21, 9, 30, 0)
        remote.insert_many(
            [{"order_id": 9_000, "ref": oid, "when": when, "raw": b"\x01\x02"}]
        )
        stored = remote.find_one({"order_id": 9_000})
        assert stored["ref"] == oid
        assert stored["when"] == when
        assert stored["raw"] == b"\x01\x02"


class TestErrorsOverTheWire:
    def test_unknown_command(self, client):
        with pytest.raises(OperationFailure, match="unknown command"):
            client.command("shop", {"frobnicate": 1})

    def test_duplicate_key_error(self, remote):
        remote.create_index([("order_id", 1)], unique=True, name="uniq_order")
        with pytest.raises(DuplicateKeyError):
            remote.insert_many([{"order_id": 0, "amount": 0.0, "store": 0}])

    def test_invalid_filter_operator(self, remote):
        with pytest.raises(OperationFailure):
            remote.find({"amount": {"$frob": 1}}).to_list()


class TestObservability:
    def test_server_status_surface(self, client, remote):
        remote.find({"store": 1}).to_list()
        remote.count_documents({})
        status = client.server_status()
        assert status["deployment"] == "sharded"
        assert status["opcounters"]["find"] >= 1
        assert status["opcounters"]["count"] >= 1
        find_latency = status["latency_ms"]["find"]
        assert find_latency["count"] >= 1
        assert find_latency["p50_ms"] <= find_latency["p99_ms"] <= find_latency["max_ms"]
        assert status["wire"]["bytes_in"] > 0
        assert status["wire"]["bytes_out"] > 0
        assert status["connections"]["active"] >= 1
        assert "router" in status and "bytes_shipped" in status["router"]

    def test_wire_bytes_at_least_simulated_bytes_shipped(self, cluster, server, remote):
        """Byte-accounting honesty: real frames >= the simulated estimate.

        A broadcast find without projection makes every shard ship its full
        matching documents to the router (``RouterMetrics.bytes_shipped``,
        simulated), and the server then sends the same documents to the
        client in reply frames whose *actual* encoded sizes are accounted in
        ``ServerStats.bytes_out``.  The wire carries the same payload plus
        framing and envelope overhead, so the real number must dominate the
        simulated one for the same query.
        """
        server.stats.reset()
        cluster.reset_metrics()
        results = remote.find({"store": {"$lte": 2}}).to_list()
        assert results  # a real broadcast result set
        simulated = cluster.router.metrics.bytes_shipped
        actual = server.stats.snapshot()["wire"]["bytes_out"]
        assert simulated > 0
        assert actual >= simulated

    def test_stats_reset(self, server, remote):
        remote.count_documents({})
        server.stats.reset()
        status = server.stats.snapshot()
        assert status["opcounters"] == {}
        assert status["wire"]["bytes_out"] == 0


class TestConnectionLimits:
    def test_max_connections_backpressure(self, cluster):
        with DocumentStoreServer(cluster, port=0, max_connections=1) as server:
            with RemoteClient(server.address, pool_size=1) as first:
                assert first.ping()  # occupies the only session slot
                with RemoteClient(server.address, pool_size=1) as second:
                    with pytest.raises(ConnectionFailure, match="connection limit"):
                        second.ping()
                assert server.stats.snapshot()["connections"]["rejected"] >= 1
            # The slot frees once the server notices the first client's EOF;
            # retry briefly rather than racing the session teardown.
            deadline = time.monotonic() + 2.0
            while True:
                try:
                    with RemoteClient(server.address, pool_size=1) as third:
                        assert third.ping()
                    break
                except ConnectionFailure:
                    if time.monotonic() >= deadline:
                        raise
                    time.sleep(0.02)

    def test_standalone_backend(self):
        from repro.documentstore import DocumentStoreClient

        backend = DocumentStoreClient()
        backend["db"]["events"].insert_many([{"n": i} for i in range(10)])
        with DocumentStoreServer(backend, port=0) as server:
            with RemoteClient(server.address) as client:
                assert client["db"]["events"].count_documents({"n": {"$gte": 5}}) == 5
                status = client.server_status()
                assert status["deployment"] == "standalone"
                assert "router" not in status
                assert client["db"].list_collection_names() == ["events"]
