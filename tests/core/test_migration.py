"""Tests for the data-migration algorithm (Figure 4.3)."""

from __future__ import annotations

from repro.core.migration import (
    migrate_dat_directory,
    migrate_dat_file,
    migrate_generated_dataset,
    migrate_rows,
    row_to_document,
)
from repro.core.experiments import tiny_profile
from repro.documentstore import DocumentStoreClient
from repro.tpcds import TPCDSGenerator, write_dat_file
from repro.tpcds.schema import QUERY_TABLES


class TestRowToDocument:
    def test_columns_become_keys(self):
        row = {"ca_address_sk": 1, "ca_city": "Midway"}
        assert row_to_document(row) == row

    def test_null_columns_are_omitted(self):
        """Section 4.1.2: null column values produce no key/value pair."""
        row = {"ca_address_sk": 1, "ca_suite_number": None, "ca_city": "Midway"}
        document = row_to_document(row)
        assert "ca_suite_number" not in document
        assert document["ca_address_sk"] == 1

    def test_empty_row_gives_empty_document(self):
        assert row_to_document({"a": None}) == {}


class TestMigrateRows:
    def test_inserts_every_row(self, standalone_db):
        collection = standalone_db["scratch_rows"]
        result = migrate_rows(collection, [{"k": i} for i in range(25)], batch_size=10)
        assert result.documents_inserted == 25
        assert collection.count_documents({}) == 25
        collection.drop()

    def test_reports_positive_duration_and_throughput(self, standalone_db):
        collection = standalone_db["scratch_rows2"]
        result = migrate_rows(collection, [{"k": i} for i in range(10)])
        assert result.seconds >= 0
        assert result.documents_per_second > 0
        collection.drop()


class TestMigrateDatFiles:
    def test_dat_file_round_trip(self, tmp_path, tiny_generator):
        rows = tiny_generator.generate_table("customer_address")
        path = write_dat_file("customer_address", rows, tmp_path)
        client = DocumentStoreClient()
        collection = client["load"]["customer_address"]
        result = migrate_dat_file(collection, "customer_address", path)
        assert result.documents_inserted == len(rows)
        stored = collection.find_one({"ca_address_sk": rows[0]["ca_address_sk"]})
        assert stored["ca_city"] == rows[0]["ca_city"]

    def test_dat_directory_loads_only_known_tables(self, tmp_path, tiny_generator):
        write_dat_file("store", tiny_generator.generate_table("store"), tmp_path)
        write_dat_file("warehouse", tiny_generator.generate_table("warehouse"), tmp_path)
        (tmp_path / "notes.txt").write_text("not a table")
        (tmp_path / "unknown.dat").write_text("1|2|3|")
        client = DocumentStoreClient()
        report = migrate_dat_directory(client["load"], tmp_path)
        assert set(report.results) == {"store", "warehouse"}

    def test_typed_parsing_of_dat_columns(self, tmp_path, tiny_generator):
        rows = tiny_generator.generate_table("item")
        path = write_dat_file("item", rows, tmp_path)
        client = DocumentStoreClient()
        collection = client["load"]["item"]
        migrate_dat_file(collection, "item", path)
        stored = collection.find_one({"i_item_sk": 1})
        assert isinstance(stored["i_item_sk"], int)
        assert isinstance(stored["i_current_price"], float)


class TestMigrateGeneratedDataset:
    def test_creates_one_collection_per_table(self, tiny_generator):
        client = DocumentStoreClient()
        database = client["Dataset_tiny"]
        report = migrate_generated_dataset(database, tiny_generator, tables=QUERY_TABLES)
        assert set(report.results) == set(QUERY_TABLES)
        assert database["store_sales"].count_documents({}) == report.results[
            "store_sales"
        ].documents_inserted

    def test_report_totals(self, tiny_generator):
        client = DocumentStoreClient()
        report = migrate_generated_dataset(
            client["d"], tiny_generator, tables=("store", "warehouse")
        )
        assert report.total_documents == 12 + 5
        assert report.total_seconds > 0
        assert len(report.as_table()) == 2

    def test_document_count_matches_generator(self, standalone_db, tiny_generator):
        for table in ("store_sales", "inventory", "item"):
            assert standalone_db[table].count_documents({}) == len(
                tiny_generator.generate_table(table)
            )

    def test_loading_through_sharded_router(self, sharded_env, tiny_generator):
        cluster, routed = sharded_env
        expected = len(tiny_generator.generate_table("store_sales"))
        assert routed["store_sales"].count_documents({}) == expected
        distribution = cluster.data_distribution(
            "Dataset_1GB", "store_sales"
        )
        assert sum(distribution.values()) == expected
        # hashed shard key spreads the fact across every shard
        assert all(count > 0 for count in distribution.values())

    def test_load_report_tracks_ratio_between_scales(self):
        """Observation (ii) of Section 4.3: load time scales with row count."""
        small = TPCDSGenerator(tiny_profile(1.0 / 20_000.0), seed=1)
        large = TPCDSGenerator(tiny_profile(1.0 / 5_000.0), seed=1)
        client = DocumentStoreClient()
        small_report = migrate_generated_dataset(client["s"], small, tables=("store_sales",))
        large_report = migrate_generated_dataset(client["l"], large, tables=("store_sales",))
        small_result = small_report.results["store_sales"]
        large_result = large_report.results["store_sales"]
        row_ratio = large_result.documents_inserted / small_result.documents_inserted
        assert row_ratio > 2
