"""End-to-end correctness of the query translations.

For every evaluation query, three independent executions must agree:

1. a plain-Python reference implementation over the generated rows (the
   oracle — it performs the SQL semantics directly with dictionaries);
2. the denormalized-model aggregation pipeline (Appendix B);
3. the normalized-model client-side algorithm (Figure 4.8), on the
   stand-alone deployment and through the sharded cluster.
"""

from __future__ import annotations

import datetime as dt

import pytest

from repro.core.translate_denormalized import denormalized_pipeline, run_denormalized_query
from repro.core.translate_normalized import normalized_final_pipeline, run_normalized_query
from repro.tpcds import query_parameters


# ---------------------------------------------------------------------------
# Reference implementations (the oracle)
# ---------------------------------------------------------------------------

def reference_query7(tables):
    params = query_parameters(7)
    dates = {r["d_date_sk"]: r for r in tables["date_dim"]}
    items = {r["i_item_sk"]: r for r in tables["item"]}
    demographics = {r["cd_demo_sk"]: r for r in tables["customer_demographics"]}
    promotions = {r["p_promo_sk"]: r for r in tables["promotion"]}

    groups: dict[str, list[dict]] = {}
    for sale in tables["store_sales"]:
        demographic = demographics[sale["ss_cdemo_sk"]]
        promotion = promotions[sale["ss_promo_sk"]]
        date = dates[sale["ss_sold_date_sk"]]
        if demographic["cd_gender"] != params["gender"]:
            continue
        if demographic["cd_marital_status"] != params["marital_status"]:
            continue
        if demographic["cd_education_status"] != params["education_status"]:
            continue
        if not (promotion["p_channel_email"] == "N" or promotion["p_channel_event"] == "N"):
            continue
        if date["d_year"] != params["year"]:
            continue
        groups.setdefault(items[sale["ss_item_sk"]]["i_item_id"], []).append(sale)

    rows = []
    for item_id in sorted(groups):
        sales = groups[item_id]
        rows.append(
            {
                "i_item_id": item_id,
                "agg1": sum(s["ss_quantity"] for s in sales) / len(sales),
                "agg2": sum(s["ss_list_price"] for s in sales) / len(sales),
                "agg3": sum(s["ss_coupon_amt"] for s in sales) / len(sales),
                "agg4": sum(s["ss_sales_price"] for s in sales) / len(sales),
            }
        )
    return rows


def reference_query21(tables):
    params = query_parameters(21)
    sales_date = params["sales_date"]
    start = (dt.date.fromisoformat(sales_date) - dt.timedelta(days=30)).isoformat()
    end = (dt.date.fromisoformat(sales_date) + dt.timedelta(days=30)).isoformat()
    dates = {r["d_date_sk"]: r for r in tables["date_dim"]}
    items = {r["i_item_sk"]: r for r in tables["item"]}
    warehouses = {r["w_warehouse_sk"]: r for r in tables["warehouse"]}

    groups: dict[tuple[str, str], dict[str, int]] = {}
    for row in tables["inventory"]:
        item = items[row["inv_item_sk"]]
        if not (params["price_min"] <= item["i_current_price"] <= params["price_max"]):
            continue
        date = dates[row["inv_date_sk"]]
        if not (start <= date["d_date"] <= end):
            continue
        warehouse = warehouses[row["inv_warehouse_sk"]]
        key = (warehouse["w_warehouse_name"], item["i_item_id"])
        bucket = groups.setdefault(key, {"before": 0, "after": 0})
        if date["d_date"] < sales_date:
            bucket["before"] += row["inv_quantity_on_hand"]
        else:
            bucket["after"] += row["inv_quantity_on_hand"]

    rows = []
    for (warehouse_name, item_id), bucket in sorted(groups.items()):
        if bucket["before"] <= 0:
            continue
        ratio = bucket["after"] / bucket["before"]
        if 2.0 / 3.0 <= ratio <= 3.0 / 2.0:
            rows.append(
                {
                    "w_warehouse_name": warehouse_name,
                    "i_item_id": item_id,
                    "inv_before": bucket["before"],
                    "inv_after": bucket["after"],
                }
            )
    return rows


def reference_query46(tables):
    params = query_parameters(46)
    cities = {c.strip().strip("'") for c in str(params["cities"]).split(",")}
    years = {params["year"], params["year"] + 1, params["year"] + 2}
    dates = {r["d_date_sk"]: r for r in tables["date_dim"]}
    stores = {r["s_store_sk"]: r for r in tables["store"]}
    households = {r["hd_demo_sk"]: r for r in tables["household_demographics"]}
    addresses = {r["ca_address_sk"]: r for r in tables["customer_address"]}
    customers = {r["c_customer_sk"]: r for r in tables["customer"]}

    groups: dict[tuple, dict[str, float]] = {}
    for sale in tables["store_sales"]:
        date = dates[sale["ss_sold_date_sk"]]
        store = stores[sale["ss_store_sk"]]
        household = households[sale["ss_hdemo_sk"]]
        if date["d_dow"] not in (6, 0) or date["d_year"] not in years:
            continue
        if store["s_city"] not in cities:
            continue
        if not (
            household["hd_dep_count"] == params["dep_count"]
            or household["hd_vehicle_count"] == params["vehicle_count"]
        ):
            continue
        customer = customers[sale["ss_customer_sk"]]
        bought_city = addresses[sale["ss_addr_sk"]]["ca_city"]
        current_city = addresses[customer["c_current_addr_sk"]]["ca_city"]
        if current_city == bought_city:
            continue
        key = (
            customer["c_last_name"],
            customer["c_first_name"],
            current_city,
            bought_city,
            sale["ss_ticket_number"],
            sale["ss_customer_sk"],
            sale["ss_addr_sk"],
        )
        bucket = groups.setdefault(key, {"amt": 0.0, "profit": 0.0})
        bucket["amt"] += sale["ss_coupon_amt"]
        bucket["profit"] += sale["ss_net_profit"]
    return groups


def reference_query50(tables):
    params = query_parameters(50)
    dates = {r["d_date_sk"]: r for r in tables["date_dim"]}
    stores = {r["s_store_sk"]: r for r in tables["store"]}
    sales_by_key = {}
    for sale in tables["store_sales"]:
        key = (sale["ss_ticket_number"], sale["ss_item_sk"], sale["ss_customer_sk"])
        sales_by_key.setdefault(key, []).append(sale)

    buckets_per_store: dict[str, list[int]] = {}
    for return_row in tables["store_returns"]:
        return_date = dates[return_row["sr_returned_date_sk"]]
        if return_date["d_year"] != params["year"] or return_date["d_moy"] != params["month"]:
            continue
        key = (
            return_row["sr_ticket_number"],
            return_row["sr_item_sk"],
            return_row["sr_customer_sk"],
        )
        for sale in sales_by_key.get(key, []):
            store_name = stores[sale["ss_store_sk"]]["s_store_name"]
            lag = return_row["sr_returned_date_sk"] - sale["ss_sold_date_sk"]
            counts = buckets_per_store.setdefault(
                stores[sale["ss_store_sk"]]["s_store_id"], [0, 0, 0, 0, 0]
            )
            if lag <= 30:
                counts[0] += 1
            elif lag <= 60:
                counts[1] += 1
            elif lag <= 90:
                counts[2] += 1
            elif lag <= 120:
                counts[3] += 1
            else:
                counts[4] += 1
    return buckets_per_store


@pytest.fixture(scope="module")
def tables(tiny_generator):
    return {name: tiny_generator.generate_table(name) for name in (
        "store_sales",
        "store_returns",
        "inventory",
        "date_dim",
        "item",
        "customer_demographics",
        "promotion",
        "store",
        "household_demographics",
        "customer_address",
        "customer",
        "warehouse",
    )}


# ---------------------------------------------------------------------------
# Denormalized pipelines against the oracle
# ---------------------------------------------------------------------------

class TestDenormalizedAgainstReference:
    def test_query7_matches_reference(self, denormalized_db, tables):
        expected = reference_query7(tables)
        actual = run_denormalized_query(denormalized_db, 7)
        assert [row["i_item_id"] for row in actual] == [row["i_item_id"] for row in expected]
        for actual_row, expected_row in zip(actual, expected):
            for measure in ("agg1", "agg2", "agg3", "agg4"):
                assert actual_row[measure] == pytest.approx(expected_row[measure])

    def test_query21_matches_reference(self, denormalized_db, tables):
        expected = reference_query21(tables)
        actual = run_denormalized_query(denormalized_db, 21)
        assert [(r["w_warehouse_name"], r["i_item_id"]) for r in actual] == [
            (r["w_warehouse_name"], r["i_item_id"]) for r in expected
        ]
        for actual_row, expected_row in zip(actual, expected):
            assert actual_row["inv_before"] == expected_row["inv_before"]
            assert actual_row["inv_after"] == expected_row["inv_after"]

    def test_query46_matches_reference(self, denormalized_db, tables):
        expected = reference_query46(tables)
        actual = run_denormalized_query(denormalized_db, 46)
        assert len(actual) == len(expected)
        expected_amounts = {
            (key[0], key[1], key[4]): bucket for key, bucket in expected.items()
        }
        for row in actual:
            key = (row["c_last_name"], row["c_first_name"], row["ss_ticket_number"])
            assert key in expected_amounts
            assert row["amt"] == pytest.approx(expected_amounts[key]["amt"])
            assert row["profit"] == pytest.approx(expected_amounts[key]["profit"])

    def test_query50_matches_reference(self, denormalized_db, tables):
        expected = reference_query50(tables)
        actual = run_denormalized_query(denormalized_db, 50)
        assert len(actual) == len(expected)
        total_expected = [sum(counts) for counts in expected.values()]
        labels = ("30 days", "31-60 days", "61-90 days", "91-120 days", ">120 days")
        total_actual = [sum(row[label] for label in labels) for row in actual]
        assert sorted(total_actual) == sorted(total_expected)

    def test_query_results_are_sorted(self, denormalized_db):
        rows = run_denormalized_query(denormalized_db, 7)
        ids = [row["i_item_id"] for row in rows]
        assert ids == sorted(ids)

    def test_out_stage_writes_result_collection(self, denormalized_db):
        results = run_denormalized_query(denormalized_db, 7, write_output=True)
        stored = denormalized_db["query7_output"].find({}).to_list()
        assert len(stored) == len(results) > 0


# ---------------------------------------------------------------------------
# Normalized algorithm (stand-alone and sharded) against the denormalized run
# ---------------------------------------------------------------------------

class TestNormalizedAgainstDenormalized:
    @pytest.mark.parametrize("query_id", [7, 21, 46, 50])
    def test_standalone_normalized_agrees(self, standalone_db, denormalized_db, query_id):
        denormalized = run_denormalized_query(denormalized_db, query_id)
        normalized = run_normalized_query(standalone_db, query_id)
        assert normalized.result_documents == len(denormalized)

    @pytest.mark.parametrize("query_id", [7, 21, 46, 50])
    def test_sharded_normalized_agrees(self, sharded_env, denormalized_db, query_id):
        _cluster, routed = sharded_env
        denormalized = run_denormalized_query(denormalized_db, query_id)
        sharded = run_normalized_query(routed, query_id)
        assert sharded.result_documents == len(denormalized)

    def test_query7_values_identical_between_models(self, standalone_db, denormalized_db):
        denormalized = run_denormalized_query(denormalized_db, 7)
        normalized = run_normalized_query(standalone_db, 7).results
        by_item_denormalized = {row["i_item_id"]: row for row in denormalized}
        by_item_normalized = {row["i_item_id"]: row for row in normalized}
        assert set(by_item_denormalized) == set(by_item_normalized)
        for item_id, row in by_item_denormalized.items():
            assert by_item_normalized[item_id]["agg1"] == pytest.approx(row["agg1"])

    def test_intermediate_collection_cleanup(self, standalone_db):
        run_normalized_query(standalone_db, 7)
        assert "query7_intermediate" not in standalone_db.list_collection_names() or (
            standalone_db["query7_intermediate"].count_documents({}) == 0
        )

    def test_keep_intermediate_option(self, standalone_db):
        report = run_normalized_query(standalone_db, 7, keep_intermediate=True)
        assert standalone_db["query7_intermediate"].count_documents({}) == report.semi_join_documents
        standalone_db["query7_intermediate"].drop()

    def test_report_contains_breakdown(self, standalone_db):
        report = run_normalized_query(standalone_db, 46)
        assert report.dimension_keys["store"] >= 1
        assert report.semi_join_documents >= report.result_documents
        assert "customer" in report.embedded_dimensions
        assert report.seconds > 0

    def test_write_output_creates_result_collection(self, standalone_db):
        report = run_normalized_query(standalone_db, 21, write_output=True)
        assert standalone_db["query21_output"].count_documents({}) == report.result_documents


class TestPipelineBuilders:
    def test_denormalized_pipeline_starts_with_match(self):
        for query_id in (7, 21, 46, 50):
            pipeline = denormalized_pipeline(query_id)
            assert "$match" in pipeline[0]

    def test_denormalized_pipeline_out_is_last(self):
        pipeline = denormalized_pipeline(7, out="target")
        assert pipeline[-1] == {"$out": "target"}

    def test_normalized_final_pipeline_has_no_leading_match(self):
        for query_id in (7, 21, 46):
            pipeline = normalized_final_pipeline(query_id)
            assert "$match" not in pipeline[0]

    def test_query50_final_pipeline_groups_by_store(self):
        pipeline = normalized_final_pipeline(50)
        group = pipeline[0]["$group"]
        assert group["_id"]["store"] == "$ss_store_sk.s_store_name"
        assert ">120 days" in group

    def test_pipeline_parameters_change_predicates(self):
        pipeline = denormalized_pipeline(7, {"year": 1998})
        match = pipeline[0]["$match"]["$and"]
        assert {"ss_sold_date_sk.d_year": 1998} in match

    def test_unknown_query_rejected(self):
        with pytest.raises(KeyError):
            denormalized_pipeline(99)
