"""Tests for the structured query specifications."""

from __future__ import annotations

import pytest

from repro.core.queryspec import QUERY_SPECS, date_sk_for, query_spec


class TestDateSurrogateKeys:
    def test_base_date(self):
        assert date_sk_for("1998-01-01") == 2_450_815

    def test_known_offset(self):
        assert date_sk_for("1998-01-31") == 2_450_815 + 30

    def test_matches_generator_keys(self, tiny_generator):
        dates = tiny_generator.generate_table("date_dim")
        sample = dates[500]
        assert date_sk_for(sample["d_date"]) == sample["d_date_sk"]


class TestQuery7Spec:
    def test_fact_and_dimensions(self):
        spec = QUERY_SPECS[7]
        assert spec.fact_collection == "store_sales"
        assert {d.collection for d in spec.dimensions} == {
            "customer_demographics",
            "date_dim",
            "promotion",
            "item",
        }

    def test_filters_follow_sql_predicates(self):
        spec = QUERY_SPECS[7]
        demographics = next(d for d in spec.dimensions if d.collection == "customer_demographics")
        assert demographics.filter == {
            "cd_gender": "M",
            "cd_marital_status": "M",
            "cd_education_status": "4 yr Degree",
        }
        dates = next(d for d in spec.dimensions if d.collection == "date_dim")
        assert dates.filter == {"d_year": 2001}

    def test_only_item_is_embedded_for_aggregation(self):
        spec = QUERY_SPECS[7]
        assert [d.collection for d in spec.embedded_dimensions()] == ["item"]

    def test_parameter_overrides_flow_into_filters(self):
        spec = query_spec(7, {"year": 1999, "gender": "F"})
        dates = next(d for d in spec.dimensions if d.collection == "date_dim")
        demographics = next(
            d for d in spec.dimensions if d.collection == "customer_demographics"
        )
        assert dates.filter["d_year"] == 1999
        assert demographics.filter["cd_gender"] == "F"


class TestQuery21Spec:
    def test_price_band_filter(self):
        spec = QUERY_SPECS[21]
        item = next(d for d in spec.dimensions if d.collection == "item")
        assert item.filter == {"i_current_price": {"$gte": 0.99, "$lte": 1.49}}

    def test_date_window_is_sixty_one_days(self):
        spec = QUERY_SPECS[21]
        dates = next(d for d in spec.dimensions if d.collection == "date_dim")
        window = dates.filter["d_date"]
        assert window == {"$gte": "2002-04-29", "$lte": "2002-06-28"}

    def test_all_three_dimensions_embedded(self):
        spec = QUERY_SPECS[21]
        assert {d.collection for d in spec.embedded_dimensions()} == {
            "item",
            "date_dim",
            "warehouse",
        }


class TestQuery46Spec:
    def test_city_and_year_filters(self):
        spec = QUERY_SPECS[46]
        store = next(d for d in spec.dimensions if d.collection == "store")
        assert store.filter == {"s_city": {"$in": ["Fairview", "Midway"]}}
        dates = next(d for d in spec.dimensions if d.collection == "date_dim")
        assert dates.filter["d_dow"] == {"$in": [6, 0]}
        assert dates.filter["d_year"] == {"$in": [1998, 1999, 2000]}

    def test_household_filter_is_disjunctive(self):
        spec = QUERY_SPECS[46]
        household = next(
            d for d in spec.dimensions if d.collection == "household_demographics"
        )
        assert household.filter == {
            "$or": [{"hd_dep_count": 2}, {"hd_vehicle_count": 3}]
        }

    def test_customer_and_address_embedded(self):
        spec = QUERY_SPECS[46]
        assert {d.collection for d in spec.embedded_dimensions()} == {
            "customer",
            "customer_address",
        }


class TestQuery50Spec:
    def test_fact_join_on_ticket_item_customer(self):
        spec = QUERY_SPECS[50]
        assert spec.fact_join is not None
        assert spec.fact_join.collection == "store_returns"
        assert spec.fact_join.join_fields == (
            ("ss_ticket_number", "sr_ticket_number"),
            ("ss_item_sk", "sr_item_sk"),
            ("ss_customer_sk", "sr_customer_sk"),
        )

    def test_return_date_filter_lives_on_secondary_fact(self):
        spec = QUERY_SPECS[50]
        return_dates = spec.fact_join.dimensions[0]
        assert return_dates.fact_field == "sr_returned_date_sk"
        assert return_dates.filter == {"d_year": 1998, "d_moy": 10}

    def test_store_embedded_for_grouping(self):
        spec = QUERY_SPECS[50]
        assert [d.collection for d in spec.embedded_dimensions()] == ["store"]

    def test_all_tables_enumerated(self):
        assert set(QUERY_SPECS[50].all_tables()) == {
            "store_sales",
            "store_returns",
            "store",
            "date_dim",
        }


class TestSpecConsistency:
    def test_specs_exist_for_all_four_queries(self):
        assert set(QUERY_SPECS) == {7, 21, 46, 50}

    def test_unknown_query_rejected(self):
        with pytest.raises(KeyError):
            query_spec(3)

    def test_filtered_dimensions_subset_of_dimensions(self):
        for spec in QUERY_SPECS.values():
            for dimension in spec.filtered_dimensions():
                assert any(dimension is candidate for candidate in spec.dimensions)

    def test_output_collection_names(self):
        for query_id, spec in QUERY_SPECS.items():
            if spec.output_collection:
                assert spec.output_collection == f"query{query_id}_output"
