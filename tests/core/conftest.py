"""Shared fixtures for the core-algorithm tests.

The fixtures build one very small dataset (a ``tiny`` scale profile) and load
it into a stand-alone deployment, a denormalized stand-alone deployment, and
a 3-shard cluster.  They are session-scoped: the load and denormalization
work is done once for the whole core test package.
"""

from __future__ import annotations

import pytest

from repro.core.denormalize import denormalize_all_facts
from repro.core.experiments import EXPERIMENT_CHUNK_SIZE_BYTES, SHARD_KEYS, tiny_profile
from repro.core.migration import migrate_generated_dataset
from repro.documentstore import DocumentStoreClient
from repro.sharding import ShardedCluster
from repro.tpcds import TPCDSGenerator
from repro.tpcds.schema import QUERY_TABLES

TINY = tiny_profile(1.0 / 10_000.0)
SEED = 20151109


@pytest.fixture(scope="session")
def tiny_generator():
    return TPCDSGenerator(TINY, seed=SEED)


@pytest.fixture(scope="session")
def standalone_db(tiny_generator):
    """A stand-alone database loaded with the normalized tiny dataset."""
    client = DocumentStoreClient()
    database = client[TINY.database_name]
    migrate_generated_dataset(database, tiny_generator, tables=QUERY_TABLES)
    return database


@pytest.fixture(scope="session")
def denormalized_db(tiny_generator):
    """A stand-alone database with normalized *and* denormalized collections."""
    client = DocumentStoreClient()
    database = client[TINY.database_name]
    migrate_generated_dataset(database, tiny_generator, tables=QUERY_TABLES)
    denormalize_all_facts(database)
    return database


@pytest.fixture(scope="session")
def sharded_env(tiny_generator):
    """A 3-shard cluster loaded with the normalized tiny dataset."""
    cluster = ShardedCluster(shard_count=3)
    database_name = TINY.database_name
    cluster.enable_sharding(database_name)
    for collection_name, shard_key in SHARD_KEYS.items():
        if collection_name in QUERY_TABLES:
            cluster.shard_collection(
                database_name,
                collection_name,
                shard_key,
                chunk_size_bytes=EXPERIMENT_CHUNK_SIZE_BYTES,
            )
    routed = cluster.get_database(database_name)
    migrate_generated_dataset(routed, tiny_generator, tables=QUERY_TABLES)
    cluster.balance()
    cluster.reset_metrics()
    return cluster, routed
