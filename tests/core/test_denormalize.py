"""Tests for the denormalization / EmbedDocuments algorithms (Figs. 4.6, 4.7)."""

from __future__ import annotations

import pytest

from repro.core.denormalize import (
    INVENTORY_EMBEDDING_PLAN,
    STORE_SALES_EMBEDDING_PLAN,
    create_denormalized_collection,
    embed_documents,
)
from repro.core.queryspec import DimensionJoin
from repro.documentstore import DocumentStoreClient


@pytest.fixture()
def book_database():
    """The publisher/book example of Section 2.1.1, as two collections."""
    client = DocumentStoreClient()
    database = client["library"]
    database["publisher"].insert_many(
        [
            {"publisher_id": 1, "publisher": "O'Reilly Media", "founded": 1978},
            {"publisher_id": 2, "publisher": "Elsevier", "founded": 1880},
        ]
    )
    database["book"].insert_many(
        [
            {"title": "MongoDB", "publisher_id": 1, "pages": 216},
            {"title": "Java in a Nutshell", "publisher_id": 1, "pages": 418},
            {"title": "Data Modeling", "publisher_id": 2, "pages": 300},
            {"title": "Orphan Book", "publisher_id": 99, "pages": 10},
        ]
    )
    return database


class TestEmbedDocuments:
    def test_foreign_key_replaced_by_dimension_document(self, book_database):
        report = embed_documents(
            book_database["book"],
            book_database["publisher"],
            fact_field="publisher_id",
            dimension_primary_key="publisher_id",
        )
        embedded = book_database["book"].find_one({"title": "MongoDB"})
        assert embedded["publisher_id"]["publisher"] == "O'Reilly Media"
        assert report.dimension_documents == 2
        assert report.fact_documents_updated == 3

    def test_embedded_document_has_no_id_field(self, book_database):
        embed_documents(
            book_database["book"],
            book_database["publisher"],
            fact_field="publisher_id",
            dimension_primary_key="publisher_id",
        )
        embedded = book_database["book"].find_one({"title": "MongoDB"})
        assert "_id" not in embedded["publisher_id"]

    def test_unreferenced_keys_leave_facts_untouched(self, book_database):
        embed_documents(
            book_database["book"],
            book_database["publisher"],
            fact_field="publisher_id",
            dimension_primary_key="publisher_id",
        )
        orphan = book_database["book"].find_one({"title": "Orphan Book"})
        assert orphan["publisher_id"] == 99

    def test_dimension_filter_restricts_embedding(self, book_database):
        embed_documents(
            book_database["book"],
            book_database["publisher"],
            fact_field="publisher_id",
            dimension_primary_key="publisher_id",
            dimension_filter={"founded": {"$gte": 1900}},
        )
        modern = book_database["book"].find_one({"title": "MongoDB"})
        older = book_database["book"].find_one({"title": "Data Modeling"})
        assert isinstance(modern["publisher_id"], dict)
        assert older["publisher_id"] == 2

    def test_dimension_collection_is_not_modified(self, book_database):
        embed_documents(
            book_database["book"],
            book_database["publisher"],
            fact_field="publisher_id",
            dimension_primary_key="publisher_id",
        )
        assert book_database["publisher"].count_documents({}) == 2
        assert book_database["publisher"].find_one({"publisher_id": 1})["founded"] == 1978


class TestCreateDenormalizedCollection:
    def test_creates_separate_target_collection(self, book_database):
        report = create_denormalized_collection(
            book_database,
            "book",
            [DimensionJoin("publisher", "publisher_id", "publisher_id")],
        )
        assert report.target_collection == "book_denormalized"
        assert book_database["book_denormalized"].count_documents({}) == 4
        # The source collection keeps its scalar foreign keys.
        assert book_database["book"].find_one({"title": "MongoDB"})["publisher_id"] == 1

    def test_custom_target_name(self, book_database):
        create_denormalized_collection(
            book_database,
            "book",
            [DimensionJoin("publisher", "publisher_id", "publisher_id")],
            target_name="books_wide",
        )
        assert book_database["books_wide"].count_documents({}) == 4

    def test_report_lists_embeddings(self, book_database):
        report = create_denormalized_collection(
            book_database,
            "book",
            [DimensionJoin("publisher", "publisher_id", "publisher_id")],
        )
        assert len(report.embeddings) == 1
        assert report.embeddings[0].dimension_collection == "publisher"
        assert report.seconds > 0


class TestFactTablePlans:
    def test_store_sales_plan_covers_query_dimensions(self):
        fields = [dimension.fact_field for dimension in STORE_SALES_EMBEDDING_PLAN]
        for field in (
            "ss_sold_date_sk",
            "ss_item_sk",
            "ss_cdemo_sk",
            "ss_store_sk",
            "ss_promo_sk",
            "ss_customer_sk",
        ):
            assert field in fields
        assert "ss_customer_sk.c_current_addr_sk" in fields

    def test_inventory_plan(self):
        assert [d.collection for d in INVENTORY_EMBEDDING_PLAN] == [
            "date_dim",
            "item",
            "warehouse",
        ]


class TestDenormalizedFactCollections:
    """Structure checks on the session-scoped denormalized tiny dataset."""

    def test_denormalized_collections_exist(self, denormalized_db):
        names = denormalized_db.list_collection_names()
        for name in (
            "store_sales_denormalized",
            "store_returns_denormalized",
            "inventory_denormalized",
        ):
            assert name in names

    def test_document_counts_match_source_facts(self, denormalized_db):
        assert denormalized_db["store_sales_denormalized"].count_documents(
            {}
        ) == denormalized_db["store_sales"].count_documents({})
        assert denormalized_db["inventory_denormalized"].count_documents(
            {}
        ) == denormalized_db["inventory"].count_documents({})

    def test_foreign_keys_replaced_by_documents(self, denormalized_db):
        document = denormalized_db["store_sales_denormalized"].find_one({})
        assert isinstance(document["ss_sold_date_sk"], dict)
        assert "d_year" in document["ss_sold_date_sk"]
        assert isinstance(document["ss_item_sk"], dict)
        assert isinstance(document["ss_store_sk"], dict)

    def test_measures_stay_scalar(self, denormalized_db):
        document = denormalized_db["store_sales_denormalized"].find_one({})
        assert isinstance(document["ss_quantity"], int)
        assert isinstance(document["ss_ticket_number"], int)

    def test_nested_customer_address_embedding(self, denormalized_db):
        document = denormalized_db["store_sales_denormalized"].find_one({})
        customer = document["ss_customer_sk"]
        assert isinstance(customer, dict)
        assert isinstance(customer["c_current_addr_sk"], dict)
        assert "ca_city" in customer["c_current_addr_sk"]

    def test_matching_returns_embedded_for_query50(self, denormalized_db):
        with_return = denormalized_db["store_sales_denormalized"].find_one(
            {"ss_return": {"$exists": True}}
        )
        assert with_return is not None
        embedded_return = with_return["ss_return"]
        assert embedded_return["sr_ticket_number"] == with_return["ss_ticket_number"]
        assert embedded_return["sr_item_sk"] == with_return["ss_item_sk"]["i_item_sk"]
        assert "d_year" in embedded_return["sr_returned_date"]

    def test_denormalization_grows_document_size(self, denormalized_db):
        """Embedding repeats dimension data per fact document (Section 4.1.2)."""
        normalized_stats = denormalized_db["store_sales"].stats()
        denormalized_stats = denormalized_db["store_sales_denormalized"].stats()
        assert denormalized_stats.avg_document_size > 3 * normalized_stats.avg_document_size

    def test_inventory_denormalized_structure(self, denormalized_db):
        document = denormalized_db["inventory_denormalized"].find_one({})
        assert isinstance(document["inv_date_sk"], dict)
        assert isinstance(document["inv_item_sk"], dict)
        assert isinstance(document["inv_warehouse_sk"], dict)
        assert isinstance(document["inv_quantity_on_hand"], int)
