"""Tests for the experiment harness (Table 4.1), selectivity (Table 4.4),
and the result-rendering helpers."""

from __future__ import annotations

import pytest

from repro.core import (
    EXPERIMENTS,
    ExperimentHarness,
    format_seconds,
    measure_selectivity,
    paper_reference_table_44,
    paper_reference_table_45,
    render_bar_chart,
    render_table,
    selectivity_table,
    tiny_profile,
)
from repro.tpcds import SCALE_LARGE, SCALE_SMALL


class TestExperimentDefinitions:
    def test_table_41_grid(self):
        assert EXPERIMENTS[1].data_model == "normalized"
        assert EXPERIMENTS[1].environment == "sharded"
        assert EXPERIMENTS[2].environment == "standalone"
        assert EXPERIMENTS[3].data_model == "denormalized"
        assert EXPERIMENTS[4].scale is SCALE_LARGE
        assert EXPERIMENTS[1].scale is SCALE_SMALL
        assert EXPERIMENTS[6].data_model == "denormalized"

    def test_extension_experiments_are_denormalized_sharded(self):
        assert EXPERIMENTS[7].data_model == "denormalized"
        assert EXPERIMENTS[7].environment == "sharded"
        assert EXPERIMENTS[8].scale is SCALE_LARGE

    def test_labels_are_descriptive(self):
        assert "normalized" in EXPERIMENTS[2].label
        assert "stand" in EXPERIMENTS[2].label


@pytest.fixture(scope="module")
def harness():
    """A harness whose both scales are overridden with tiny profiles."""
    return ExperimentHarness(
        scale_overrides={
            "small": tiny_profile(1.0 / 10_000.0),
            "large": tiny_profile(1.0 / 5_000.0),
        },
    )


class TestExperimentHarness:
    def test_standalone_denormalized_experiment(self, harness):
        result = harness.run_experiment(3, query_ids=(7,))
        run = result.query_runs[7]
        assert run.simulated_seconds == pytest.approx(run.wall_seconds)
        assert run.result_documents > 0
        assert run.router_metrics is None

    def test_standalone_normalized_experiment(self, harness):
        result = harness.run_experiment(2, query_ids=(7, 50))
        assert set(result.query_runs) == {7, 50}
        assert all(run.simulated_seconds > 0 for run in result.query_runs.values())

    def test_sharded_normalized_experiment_reports_router_metrics(self, harness):
        result = harness.run_experiment(1, query_ids=(7,))
        run = result.query_runs[7]
        assert run.router_metrics is not None
        assert run.network["messages"] > 0
        assert run.simulated_seconds > 0

    def test_results_agree_across_experiments(self, harness):
        """All three deployments return the same number of result rows."""
        counts = set()
        for experiment in (1, 2, 3):
            result = harness.run_experiment(experiment, query_ids=(46,))
            counts.add(result.query_runs[46].result_documents)
        assert len(counts) == 1

    def test_repetitions_take_best_run(self, harness):
        run = harness.run_query(3, 7, repetitions=3)
        assert run.runs == 3

    def test_load_report_available_after_standalone_run(self, harness):
        result = harness.run_experiment(2, query_ids=(7,))
        assert result.load_report is not None
        assert result.load_report.total_documents > 0

    def test_runtime_row_format(self, harness):
        result = harness.run_experiment(3, query_ids=(7, 21))
        row = result.runtime_row()
        assert row["experiment"] == 3
        assert "query7" in row and "query21" in row

    def test_environments_are_cached(self, harness):
        first = harness.standalone_database(harness.scale(EXPERIMENTS[2]))
        second = harness.standalone_database(harness.scale(EXPERIMENTS[2]))
        assert first is second

    def test_denormalized_sharded_extension_runs(self, harness):
        result = harness.run_experiment(7, query_ids=(7,))
        assert result.query_runs[7].result_documents > 0


class TestSelectivity:
    def test_selectivity_positive_for_all_queries(self, harness):
        database = harness.standalone_denormalized_database(harness.scale(EXPERIMENTS[3]))
        table = selectivity_table(database)
        assert set(table) == {7, 21, 46, 50}
        for query_id, measurement in table.items():
            assert measurement.result_bytes >= 0
            assert measurement.megabytes == pytest.approx(
                measurement.result_bytes / (1024 * 1024)
            )

    def test_query46_returns_more_data_than_query50(self, harness):
        """Table 4.4: Q46 has the largest result, Q50 the smallest."""
        database = harness.standalone_denormalized_database(harness.scale(EXPERIMENTS[3]))
        q46 = measure_selectivity(database, 46)
        q50 = measure_selectivity(database, 50)
        assert q46.result_bytes > q50.result_bytes

    def test_selectivity_row_shape(self, harness):
        database = harness.standalone_denormalized_database(harness.scale(EXPERIMENTS[3]))
        row = measure_selectivity(database, 7).as_row()
        assert set(row) == {"query", "documents", "bytes", "megabytes"}


class TestResultRendering:
    def test_format_seconds_matches_paper_style(self):
        assert format_seconds(0.62) == "0.62s"
        assert format_seconds(63.93) == "1m03.93s"
        assert format_seconds(3 * 3600 + 31 * 60 + 53.72) == "3h31m53.72s"

    def test_render_table_aligns_columns(self):
        text = render_table(
            ["query", "seconds"], [[7, 0.62], [21, 0.17]], title="Table 4.5"
        )
        lines = text.splitlines()
        assert lines[0] == "Table 4.5"
        assert "query" in lines[1] and "seconds" in lines[1]
        assert len(lines) == 5

    def test_render_bar_chart_scales_bars(self):
        chart = render_bar_chart({"standalone": 1.0, "sharded": 2.0}, title="Fig 4.10")
        lines = chart.splitlines()
        assert lines[0] == "Fig 4.10"
        assert lines[2].count("#") > lines[1].count("#")

    def test_render_bar_chart_empty_series(self):
        assert "(no data)" in render_bar_chart({})

    def test_paper_reference_tables(self):
        table_45 = paper_reference_table_45()
        assert table_45[3][7] == pytest.approx(0.62)
        assert table_45[4][46] == pytest.approx(665.0)
        table_44 = paper_reference_table_44()
        assert table_44["small"][46] == pytest.approx(2.48)
