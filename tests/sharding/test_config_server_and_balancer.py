"""Tests for the config server metadata catalogue and the chunk balancer."""

from __future__ import annotations

import pytest

from repro.documentstore import ShardKeyError, ShardingError
from repro.sharding import Balancer, ConfigServer, Shard, ShardedCluster, SimulatedNetwork


class TestConfigServer:
    def make_config(self):
        config = ConfigServer()
        for shard_id in ("shard1", "shard2", "shard3"):
            config.add_shard(shard_id)
        return config

    def test_add_shard_twice_rejected(self):
        config = self.make_config()
        with pytest.raises(ShardingError):
            config.add_shard("shard1")

    def test_enable_sharding_requires_shards(self):
        with pytest.raises(ShardingError):
            ConfigServer().enable_sharding("db")

    def test_primary_shard_defaults_to_first(self):
        config = self.make_config()
        config.enable_sharding("db")
        assert config.primary_shard("db") == "shard1"

    def test_primary_shard_can_be_chosen(self):
        config = self.make_config()
        config.enable_sharding("db", primary_shard="shard2")
        assert config.primary_shard("db") == "shard2"

    def test_unknown_primary_rejected(self):
        config = self.make_config()
        with pytest.raises(ShardingError):
            config.enable_sharding("db", primary_shard="nope")

    def test_shard_collection_requires_enabled_database(self):
        config = self.make_config()
        with pytest.raises(ShardingError):
            config.shard_collection("db", "c", "k")

    def test_shard_collection_twice_rejected(self):
        config = self.make_config()
        config.enable_sharding("db")
        config.shard_collection("db", "c", "k")
        with pytest.raises(ShardingError):
            config.shard_collection("db", "c", "k")

    def test_is_sharded_and_chunk_manager(self):
        config = self.make_config()
        config.enable_sharding("db")
        config.shard_collection("db", "c", {"k": "hashed"})
        assert config.is_sharded("db", "c")
        assert not config.is_sharded("db", "other")
        assert config.chunk_manager("db", "c").shard_key.hashed

    def test_chunk_manager_for_unsharded_collection_raises(self):
        config = self.make_config()
        config.enable_sharding("db")
        with pytest.raises(ShardKeyError):
            config.chunk_manager("db", "nope")

    def test_describe_lists_everything(self):
        config = self.make_config()
        config.enable_sharding("db")
        config.shard_collection("db", "c", "k")
        description = config.describe()
        assert description["shards"] == ["shard1", "shard2", "shard3"]
        assert "db.c" in description["collections"]

    def test_chunk_distribution_counts_chunks_per_shard(self):
        config = self.make_config()
        config.enable_sharding("db")
        config.shard_collection("db", "c", {"k": "hashed"}, initial_chunks_per_shard=2)
        distribution = config.chunk_distribution()["db.c"]
        assert sum(distribution.values()) == 6

    def test_drop_collection_metadata(self):
        config = self.make_config()
        config.enable_sharding("db")
        config.shard_collection("db", "c", "k")
        config.drop_collection_metadata("db", "c")
        assert not config.is_sharded("db", "c")


class TestBalancer:
    def build_unbalanced_cluster(self):
        """Range-sharded data all lands on shard1 until the balancer runs."""
        cluster = ShardedCluster(shard_count=3)
        cluster.enable_sharding("db")
        cluster.shard_collection("db", "events", {"day": 1}, chunk_size_bytes=2_000)
        events = cluster.get_database("db")["events"]
        events.insert_many([{"day": i, "payload": "x" * 40} for i in range(400)])
        return cluster

    def test_range_inserts_pile_onto_one_shard_before_balancing(self):
        cluster = self.build_unbalanced_cluster()
        distribution = cluster.data_distribution("db", "events")
        assert distribution["shard1"] == 400
        assert cluster.balancer.needs_balancing("db", "events")

    def test_balancing_moves_documents_with_chunks(self):
        cluster = self.build_unbalanced_cluster()
        migrations = cluster.balancer.balance_collection("db", "events")
        assert migrations, "expected at least one chunk migration"
        distribution = cluster.data_distribution("db", "events")
        assert sum(distribution.values()) == 400
        assert min(distribution.values()) > 0
        assert not cluster.balancer.needs_balancing("db", "events")

    def test_queries_return_same_results_after_balancing(self):
        cluster = self.build_unbalanced_cluster()
        events = cluster.get_database("db")["events"]
        before = sorted(doc["day"] for doc in events.find({"day": {"$lt": 50}}))
        cluster.balance()
        after = sorted(doc["day"] for doc in events.find({"day": {"$lt": 50}}))
        assert before == after == list(range(50))

    def test_migration_records_track_moved_bytes(self):
        cluster = self.build_unbalanced_cluster()
        migrations = cluster.balancer.balance_collection("db", "events")
        assert all(record.documents_moved > 0 for record in migrations)
        assert all(record.bytes_moved > 0 for record in migrations)
        assert all(record.source_shard != record.destination_shard for record in migrations)

    def test_balanced_collection_is_a_noop(self):
        cluster = ShardedCluster(shard_count=2)
        cluster.enable_sharding("db")
        cluster.shard_collection("db", "c", {"k": "hashed"})
        cluster.get_database("db")["c"].insert_many([{"k": i} for i in range(50)])
        assert cluster.balancer.balance_collection("db", "c") == []

    def test_hashed_chunk_migration_moves_only_chunk_documents(self):
        cluster = ShardedCluster(shard_count=2)
        cluster.enable_sharding("db")
        manager = cluster.shard_collection("db", "c", {"k": "hashed"})
        collection = cluster.get_database("db")["c"]
        collection.insert_many([{"k": i} for i in range(100)])
        chunk = next(c for c in manager.chunks if c.document_count > 0)
        other = "shard2" if chunk.shard_id == "shard1" else "shard1"
        before_total = collection.count_documents({})
        record = cluster.balancer.migrate_chunk("db", "c", chunk, other)
        assert record.documents_moved == chunk.document_count
        assert collection.count_documents({}) == before_total

    def test_balancer_standalone_construction(self):
        config = ConfigServer()
        config.add_shard("a")
        config.add_shard("b")
        config.enable_sharding("db")
        shards = {"a": Shard("a"), "b": Shard("b")}
        balancer = Balancer(config, shards, SimulatedNetwork())
        config.shard_collection("db", "c", "k")
        assert balancer.balance_collection("db", "c") == []
