"""Tests for the query router: targeting, broadcasting, merging, metrics."""

from __future__ import annotations

import pytest

from repro.documentstore import ShardKeyError
from repro.sharding import NetworkModel, ShardDescription, ShardedCluster


@pytest.fixture()
def cluster():
    built = ShardedCluster(shard_count=3)
    built.enable_sharding("shop")
    built.shard_collection("shop", "orders", {"order_id": "hashed"})
    built.shard_collection(
        "shop", "events", {"day": 1}, chunk_size_bytes=2_000, initial_chunks_per_shard=1
    )
    return built


@pytest.fixture()
def loaded(cluster):
    orders = cluster.get_database("shop")["orders"]
    orders.insert_many(
        [{"order_id": i, "amount": float(i), "store": i % 4} for i in range(300)]
    )
    events = cluster.get_database("shop")["events"]
    events.insert_many([{"day": i % 30, "kind": "click"} for i in range(300)])
    cluster.balance()
    cluster.reset_metrics()
    return cluster


class TestRoutingDecisions:
    def test_inserts_spread_across_shards_with_hashed_key(self, loaded):
        distribution = loaded.data_distribution("shop", "orders")
        assert all(count > 0 for count in distribution.values())
        assert sum(distribution.values()) == 300

    def test_insert_missing_shard_key_rejected(self, loaded):
        with pytest.raises(ShardKeyError):
            loaded.get_database("shop")["orders"].insert_one({"amount": 1.0})

    def test_equality_on_shard_key_is_targeted(self, loaded):
        orders = loaded.get_database("shop")["orders"]
        assert len(orders.find({"order_id": 17}).to_list()) == 1
        metrics = loaded.router.metrics
        assert metrics.targeted_operations >= 1
        assert metrics.broadcast_operations == 0

    def test_query_without_shard_key_broadcasts(self, loaded):
        orders = loaded.get_database("shop")["orders"]
        assert len(orders.find({"store": 2}).to_list()) == 75
        assert loaded.router.metrics.broadcast_operations >= 1

    def test_in_on_shard_key_targets_owning_shards(self, loaded):
        orders = loaded.get_database("shop")["orders"]
        results = orders.find({"order_id": {"$in": [1, 2, 3]}}).to_list()
        assert len(results) == 3

    def test_range_on_range_shard_key_targets_subset(self, loaded):
        events = loaded.get_database("shop")["events"]
        results = events.find({"day": {"$gte": 0, "$lte": 5}}).to_list()
        assert len(results) == 60

    def test_unsharded_collection_lives_on_primary(self, loaded):
        dims = loaded.get_database("shop")["dimensions"]
        dims.insert_many([{"k": i} for i in range(10)])
        distribution = loaded.data_distribution("shop", "dimensions")
        assert distribution[loaded.config_server.primary_shard("shop")] == 10
        assert sum(distribution.values()) == 10


class TestReadsAndWrites:
    def test_count_documents_sums_shards(self, loaded):
        orders = loaded.get_database("shop")["orders"]
        assert orders.count_documents({}) == 300
        assert orders.count_documents({"store": 0}) == 75

    def test_distinct_merges_shards(self, loaded):
        orders = loaded.get_database("shop")["orders"]
        assert sorted(orders.distinct("store")) == [0, 1, 2, 3]

    def test_find_one(self, loaded):
        orders = loaded.get_database("shop")["orders"]
        assert orders.find_one({"order_id": 5})["amount"] == 5.0

    def test_cursor_sort_limit_after_merge(self, loaded):
        orders = loaded.get_database("shop")["orders"]
        top = orders.find({}).sort("amount", -1).limit(3).to_list()
        assert [doc["amount"] for doc in top] == [299.0, 298.0, 297.0]

    def test_update_many_across_shards(self, loaded):
        orders = loaded.get_database("shop")["orders"]
        result = orders.update_many({"store": 1}, {"$set": {"flagged": True}})
        assert result.modified_count == 75
        assert orders.count_documents({"flagged": True}) == 75

    def test_update_one_touches_single_document(self, loaded):
        orders = loaded.get_database("shop")["orders"]
        result = orders.update_one({"store": 1}, {"$set": {"first": True}})
        assert result.modified_count == 1
        assert orders.count_documents({"first": True}) == 1

    def test_upsert_through_router(self, loaded):
        orders = loaded.get_database("shop")["orders"]
        result = orders.update_many(
            {"order_id": 999_999}, {"$set": {"amount": 1.0}}, upsert=True
        )
        assert result.upserted_id is not None
        assert orders.count_documents({"order_id": 999_999}) == 1

    def test_delete_many_across_shards(self, loaded):
        orders = loaded.get_database("shop")["orders"]
        assert orders.delete_many({"store": 3}).deleted_count == 75
        assert orders.count_documents({}) == 225

    def test_create_and_drop_index_everywhere(self, loaded):
        orders = loaded.get_database("shop")["orders"]
        name = orders.create_index("store")
        for shard in loaded.shards:
            assert name in shard.collection("shop", "orders").index_information()
        orders.drop_index(name)
        for shard in loaded.shards:
            assert name not in shard.collection("shop", "orders").index_information()

    def test_drop_collection_everywhere(self, loaded):
        orders = loaded.get_database("shop")["orders"]
        orders.drop()
        assert orders.count_documents({}) == 0
        assert not loaded.config_server.is_sharded("shop", "orders")


class TestAggregation:
    def test_group_merges_partial_results(self, loaded):
        orders = loaded.get_database("shop")["orders"]
        result = orders.aggregate(
            [
                {"$group": {"_id": "$store", "total": {"$sum": "$amount"}, "n": {"$sum": 1}}},
                {"$sort": {"_id": 1}},
            ]
        )
        assert len(result) == 4
        assert result[0]["n"] == 75
        assert sum(row["total"] for row in result) == sum(float(i) for i in range(300))

    def test_match_group_pipeline_matches_standalone_answer(self, loaded):
        orders = loaded.get_database("shop")["orders"]
        result = orders.aggregate(
            [
                {"$match": {"amount": {"$gte": 200.0}}},
                {"$group": {"_id": None, "n": {"$sum": 1}}},
            ]
        )
        assert result == [{"_id": None, "n": 100}]

    def test_targeted_aggregate_uses_shard_key_match(self, loaded):
        orders = loaded.get_database("shop")["orders"]
        result = orders.aggregate(
            [{"$match": {"order_id": 42}}, {"$project": {"_id": 0, "amount": 1}}]
        )
        assert result == [{"amount": 42.0}]
        assert loaded.router.metrics.targeted_operations >= 1

    def test_aggregate_out_writes_through_router(self, loaded):
        orders = loaded.get_database("shop")["orders"]
        orders.aggregate(
            [
                {"$group": {"_id": "$store", "total": {"$sum": "$amount"}}},
                {"$out": "store_totals"},
            ]
        )
        totals = loaded.get_database("shop")["store_totals"]
        assert totals.count_documents({}) == 4

    def test_sort_and_limit_apply_after_merge(self, loaded):
        orders = loaded.get_database("shop")["orders"]
        result = orders.aggregate(
            [{"$sort": {"amount": -1}}, {"$limit": 5}, {"$project": {"_id": 0, "amount": 1}}]
        )
        assert [row["amount"] for row in result] == [299.0, 298.0, 297.0, 296.0, 295.0]


class TestMetricsAndCostModel:
    def test_metrics_reset(self, loaded):
        orders = loaded.get_database("shop")["orders"]
        orders.find({"store": 1}).to_list()
        assert loaded.router.metrics.operations > 0
        loaded.reset_metrics()
        assert loaded.router.metrics.operations == 0
        assert loaded.network.stats.messages == 0

    def test_network_traffic_recorded(self, loaded):
        orders = loaded.get_database("shop")["orders"]
        orders.find({}).to_list()
        stats = loaded.network.stats
        assert stats.messages > 0
        assert stats.bytes_transferred > 0
        assert stats.simulated_seconds > 0

    def test_broadcast_contacts_every_shard(self, loaded):
        orders = loaded.get_database("shop")["orders"]
        loaded.reset_metrics()
        orders.find({"store": 0}).to_list()
        assert loaded.router.metrics.shards_contacted == 3

    def test_cpu_factor_scales_modelled_parallel_seconds(self):
        # The cost model scales the slowest branch by the shard's cpu_factor;
        # with factor 4 the modelled makespan must exceed even the *sum* of
        # the raw per-shard execution times (2 shards x factor 4 > 2).
        slow_nodes = [
            ShardDescription(shard_id=f"s{i}", cpu_factor=4.0) for i in range(2)
        ]
        cluster = ShardedCluster(shard_descriptions=slow_nodes)
        cluster.enable_sharding("db")
        cluster.shard_collection("db", "c", {"k": "hashed"})
        collection = cluster.get_database("db")["c"]
        collection.insert_many([{"k": i} for i in range(50)])
        cluster.reset_metrics()
        collection.find({}).to_list()
        metrics = cluster.router.metrics
        assert metrics.modelled_parallel_seconds > metrics.shard_seconds_total / 2

    def test_observed_makespan_is_measured(self, loaded):
        # parallel_shard_seconds is now an observed wall-clock makespan: it
        # must cover at least the longest single branch of each fan-out but
        # stay a real measurement (> 0) rather than a derived estimate.
        orders = loaded.get_database("shop")["orders"]
        loaded.reset_metrics()
        orders.find({}).to_list()
        metrics = loaded.router.metrics
        assert metrics.operations == 1
        assert metrics.parallel_shard_seconds > 0

    def test_simulated_overhead_includes_network(self, loaded):
        orders = loaded.get_database("shop")["orders"]
        loaded.reset_metrics()
        orders.find({}).to_list()
        metrics = loaded.router.metrics
        assert metrics.network_seconds > 0
        # The overhead swaps the observed concurrent execution window for the
        # modelled cluster makespan plus simulated network costs.
        assert metrics.snapshot()["simulated_overhead_seconds"] == pytest.approx(
            metrics.modelled_parallel_seconds
            + metrics.network_seconds
            - metrics.parallel_shard_seconds
        )

    def test_higher_latency_model_costs_more(self):
        def run_with(model):
            cluster = ShardedCluster(shard_count=2, network_model=model)
            cluster.enable_sharding("db")
            cluster.shard_collection("db", "c", {"k": "hashed"})
            collection = cluster.get_database("db")["c"]
            collection.insert_many([{"k": i} for i in range(100)])
            cluster.reset_metrics()
            collection.find({}).to_list()
            return cluster.router.metrics.network_seconds

        slow = run_with(NetworkModel(latency_seconds=0.01))
        fast = run_with(NetworkModel(latency_seconds=0.0001))
        assert slow > fast

    def test_cluster_status_reports_topology(self, loaded):
        status = loaded.status()
        assert status["shard_count"] == 3
        assert "shop.orders" in status["config"]["collections"]
