"""Tests for single-pass batch routing of inserts through the query router."""

from __future__ import annotations

import pytest

from repro.documentstore import Collection, DuplicateKeyError
from repro.sharding import ShardedCluster
from repro.sharding.chunks import ChunkManager, ShardKeyPattern


def make_cluster(shard_key) -> ShardedCluster:
    cluster = ShardedCluster(shard_count=3)
    cluster.enable_sharding("db")
    cluster.shard_collection("db", "items", shard_key)
    return cluster


def documents(count: int = 240) -> list[dict]:
    return [{"_id": i, "k": i, "store": i % 9, "pad": "x" * 32} for i in range(count)]


class TestBatchRoutingParity:
    @pytest.mark.parametrize(
        "shard_key", [{"k": "hashed"}, {"k": 1}], ids=["hashed", "range"]
    )
    def test_sharded_load_matches_standalone(self, shard_key):
        cluster = make_cluster(shard_key)
        routed = cluster.get_database("db")["items"]
        routed.insert_many(documents())

        standalone = Collection(None, "items")
        standalone.insert_many(documents())

        routed_docs = sorted(routed.find({}).to_list(), key=lambda d: d["_id"])
        local_docs = sorted(standalone.find({}).to_list(), key=lambda d: d["_id"])
        assert routed_docs == local_docs

    def test_inserted_ids_preserve_batch_order(self):
        cluster = make_cluster({"k": "hashed"})
        routed = cluster.get_database("db")["items"]
        result = routed.insert_many(documents(50))
        assert result.inserted_ids == list(range(50))

    def test_route_batch_matches_chunk_for(self):
        manager = ChunkManager(
            "db.items", ShardKeyPattern.create({"k": "hashed"}), ["s1", "s2", "s3"]
        )
        pattern = manager.shard_key
        values = [pattern.routing_value(i) for i in range(300)]
        batch_chunks = manager.route_batch(values)
        for value, chunk in zip(values, batch_chunks):
            assert manager.chunk_for(value) is chunk

    def test_route_batch_after_splits_and_migrations(self):
        manager = ChunkManager(
            "db.items",
            ShardKeyPattern.create({"k": 1}),
            ["s1", "s2"],
            chunk_size_bytes=500,
        )
        for i in range(200):
            manager.record_insert(i, 50)
        manager.move_chunk(manager.chunks[0], "s2")
        values = list(range(0, 200, 7))
        for value, chunk in zip(values, manager.route_batch(values)):
            assert manager.chunk_for(value) is chunk


class TestSingleFanOut:
    def test_one_operation_and_one_shipment_per_shard(self):
        cluster = make_cluster({"k": "hashed"})
        cluster.reset_metrics()
        routed = cluster.get_database("db")["items"]
        routed.insert_many(documents(120))
        metrics = cluster.router.metrics
        # One routed operation for the whole batch (not one per shard).
        assert metrics.operations == 1
        assert metrics.shards_contacted == cluster.shard_count
        # One document shipment per contacted shard.
        by_purpose = cluster.network.stats.by_purpose
        shipments = by_purpose.get("insert:request", 0)
        # Each shard receives one batch message plus one command envelope.
        assert shipments == 2 * cluster.shard_count
        assert by_purpose.get("insert:ack", 0) == cluster.shard_count

    def test_unsharded_batch_is_one_targeted_operation(self):
        cluster = ShardedCluster(shard_count=3)
        cluster.enable_sharding("plain")
        cluster.reset_metrics()
        collection = cluster.get_database("plain")["events"]
        collection.insert_many([{"n": i} for i in range(25)])
        metrics = cluster.router.metrics
        assert metrics.operations == 1
        assert metrics.targeted_operations == 1
        assert metrics.shards_contacted == 1


class TestChunkAccounting:
    def test_chunk_statistics_recorded_after_ack(self):
        cluster = make_cluster({"k": 1})
        routed = cluster.get_database("db")["items"]
        routed.insert_many(documents(100))
        manager = cluster.config_server.chunk_manager("db", "items")
        assert sum(chunk.document_count for chunk in manager.chunks) == 100
        assert sum(chunk.size_bytes for chunk in manager.chunks) > 0

    def test_failed_insert_does_not_skew_chunk_statistics(self):
        # Regression: chunk sizes used to be recorded while routing, before
        # the shard executed the insert, so a failed insert permanently
        # inflated the chunk table (and misled the balancer).
        cluster = make_cluster({"k": 1})
        routed = cluster.get_database("db")["items"]
        routed.insert_many(documents(20))
        manager = cluster.config_server.chunk_manager("db", "items")
        counts_before = [chunk.document_count for chunk in manager.chunks]
        sizes_before = [chunk.size_bytes for chunk in manager.chunks]
        with pytest.raises(DuplicateKeyError):
            routed.insert_many([{"_id": 5, "k": 5}])  # duplicate _id on the shard
        assert [chunk.document_count for chunk in manager.chunks] == counts_before
        assert [chunk.size_bytes for chunk in manager.chunks] == sizes_before

    def test_oversized_batch_splits_chunks_recursively(self):
        cluster = ShardedCluster(shard_count=2)
        cluster.enable_sharding("db")
        cluster.shard_collection(
            "db", "items", {"k": 1}, chunk_size_bytes=2_000, initial_chunks_per_shard=1
        )
        routed = cluster.get_database("db")["items"]
        routed.insert_many(documents(240))  # ~70 bytes each, far beyond one chunk
        manager = cluster.config_server.chunk_manager("db", "items")
        assert len(manager.chunks) > 2
        assert all(
            chunk.size_bytes <= 2_000 or chunk.jumbo for chunk in manager.chunks
        )
        # The split chunks still cover the whole key space contiguously.
        for left, right in zip(manager.chunks, manager.chunks[1:]):
            assert left.upper is right.lower or left.upper == right.lower

    def test_shard_key_missing_rejects_batch_before_recording(self):
        cluster = make_cluster({"k": 1})
        routed = cluster.get_database("db")["items"]
        from repro.documentstore import ShardKeyError

        with pytest.raises(ShardKeyError):
            routed.insert_many([{"k": 1}, {"no_key": True}])
        manager = cluster.config_server.chunk_manager("db", "items")
        assert sum(chunk.document_count for chunk in manager.chunks) == 0
