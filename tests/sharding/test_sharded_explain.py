"""Shard-side execution parity: index pushdown, explain, $lookup/$out.

The router must execute shard stages through the same engine entry point as
a stand-alone collection, so an indexed leading ``$match`` runs as an IXSCAN
on every targeted shard (not a full shard scan) and ``$lookup``/``$out``
resolve collections identically on standalone and sharded deployments.
"""

from __future__ import annotations

import pytest

from repro.documentstore import DocumentStoreClient
from repro.sharding import ShardedCluster


ROWS = [
    {"day": i % 30, "store": i % 8, "amount": float(i % 53), "order_id": i}
    for i in range(600)
]


@pytest.fixture()
def cluster():
    built = ShardedCluster(shard_count=3)
    built.enable_sharding("shop")
    built.shard_collection(
        "shop", "orders", {"day": 1}, chunk_size_bytes=4_000, initial_chunks_per_shard=1
    )
    orders = built.get_database("shop")["orders"]
    orders.insert_many(ROWS)
    built.balance()
    built.reset_metrics()
    return built


class TestShardedAggregateExplain:
    def test_indexed_leading_match_reports_ixscan_on_every_shard(self, cluster):
        orders = cluster.get_database("shop")["orders"]
        orders.create_index("store")
        explain = orders.explain_aggregate(
            [
                {"$match": {"store": 5}},
                {"$group": {"_id": "$day", "total": {"$sum": "$amount"}}},
            ]
        )
        assert explain["shards"], "expected at least one shard plan"
        for shard_plan in explain["shards"].values():
            winning = shard_plan["queryPlanner"]["winningPlan"]
            assert winning["stage"] == "IXSCAN"
            assert winning["indexName"] == "store_1"
            match_stage = shard_plan["executionStats"]["stages"][0]
            assert match_stage["stage"] == "$match"
            # Each shard examined only its index candidates, not its slice.
            assert match_stage["docsExamined"] < len(ROWS) // 3
        assert explain["mergeStages"] == ["$group"]

    def test_unindexed_match_reports_collscan(self, cluster):
        orders = cluster.get_database("shop")["orders"]
        explain = orders.explain_aggregate([{"$match": {"store": 5}}])
        for shard_plan in explain["shards"].values():
            assert shard_plan["queryPlanner"]["winningPlan"]["stage"] == "COLLSCAN"

    def test_shard_key_match_targets_subset_of_shards(self, cluster):
        orders = cluster.get_database("shop")["orders"]
        explain = orders.explain_aggregate([{"$match": {"day": 3}}])
        assert explain["targeted"] is True
        assert len(explain["shardsContacted"]) < cluster.shard_count

    def test_aggregate_results_match_standalone(self, cluster):
        pipeline = [
            {"$match": {"store": {"$in": [1, 2, 3]}}},
            {"$group": {"_id": "$store", "total": {"$sum": "$amount"}}},
            {"$sort": {"_id": 1}},
        ]
        client = DocumentStoreClient()
        standalone = client["shop"]["orders"]
        standalone.insert_many(ROWS)
        expected = [
            {"_id": row["_id"], "total": row["total"]}
            for row in standalone.aggregate(pipeline)
        ]
        sharded = cluster.get_database("shop")["orders"].aggregate(pipeline)
        assert [
            {"_id": row["_id"], "total": row["total"]} for row in sharded
        ] == expected


class TestShardedLookupAndOut:
    def test_lookup_in_merge_stages_resolves_cluster_collection(self, cluster):
        stores = cluster.get_database("shop")["stores"]
        stores.insert_many(
            [{"store": i, "region": "north" if i < 4 else "south"} for i in range(8)]
        )
        orders = cluster.get_database("shop")["orders"]
        results = orders.aggregate(
            [
                {"$match": {"day": 3}},
                {
                    "$lookup": {
                        "from": "stores",
                        "localField": "store",
                        "foreignField": "store",
                        "as": "store_info",
                    }
                },
            ]
        )
        assert results
        for row in results:
            assert len(row["store_info"]) == 1
            assert row["store_info"][0]["region"] in ("north", "south")

    def test_out_writes_merged_results_through_router(self, cluster):
        orders = cluster.get_database("shop")["orders"]
        returned = orders.aggregate(
            [
                {"$match": {"store": 2}},
                {"$group": {"_id": "$day", "total": {"$sum": "$amount"}}},
                {"$out": "daily_totals"},
            ]
        )
        assert returned == []
        written = cluster.get_database("shop")["daily_totals"].find().to_list()
        standalone_totals = {}
        for row in ROWS:
            if row["store"] == 2:
                standalone_totals.setdefault(row["day"], 0.0)
                standalone_totals[row["day"]] += row["amount"]
        assert {row["_id"]: row["total"] for row in written} == standalone_totals
