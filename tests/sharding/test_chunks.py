"""Tests for shard keys, chunks, and chunk splitting (Section 2.1.3.3)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.documentstore import ChunkSplitError, ShardKeyError
from repro.sharding import MAX_KEY, MIN_KEY, Chunk, ChunkManager, ShardKeyPattern
from repro.sharding.chunks import compare_boundary


class TestShardKeyPattern:
    def test_create_from_string(self):
        pattern = ShardKeyPattern.create("ss_item_sk")
        assert pattern.fields == ("ss_item_sk",)
        assert not pattern.hashed

    def test_create_hashed_from_mapping(self):
        pattern = ShardKeyPattern.create({"ss_item_sk": "hashed"})
        assert pattern.hashed

    def test_compound_key(self):
        pattern = ShardKeyPattern.create(["a", "b"])
        assert pattern.extract({"a": 1, "b": 2}) == (1, 2)

    def test_hashed_compound_rejected(self):
        with pytest.raises(ShardKeyError):
            ShardKeyPattern(fields=("a", "b"), hashed=True)

    def test_empty_key_rejected(self):
        with pytest.raises(ShardKeyError):
            ShardKeyPattern(fields=())

    def test_extract_missing_field_raises(self):
        pattern = ShardKeyPattern.create("k")
        with pytest.raises(ShardKeyError):
            pattern.extract({"other": 1})

    def test_range_key_routes_on_raw_value(self):
        pattern = ShardKeyPattern.create("k")
        assert pattern.extract({"k": 42}) == 42

    def test_hashed_key_routes_on_hash(self):
        pattern = ShardKeyPattern.create({"k": "hashed"})
        assert pattern.extract({"k": 42}) != 42

    def test_as_dict(self):
        assert ShardKeyPattern.create({"k": "hashed"}).as_dict() == {"k": "hashed"}
        assert ShardKeyPattern.create("k").as_dict() == {"k": 1}


class TestBoundaries:
    def test_min_key_sorts_first(self):
        assert compare_boundary(MIN_KEY, -10**12) < 0
        assert compare_boundary(-10**12, MIN_KEY) > 0

    def test_max_key_sorts_last(self):
        assert compare_boundary(MAX_KEY, 10**12) > 0

    def test_same_sentinel_is_equal(self):
        assert compare_boundary(MIN_KEY, MIN_KEY) == 0
        assert compare_boundary(MAX_KEY, MAX_KEY) == 0

    def test_chunk_contains_lower_inclusive_upper_exclusive(self):
        chunk = Chunk(lower=100, upper=200, shard_id="shard1")
        assert chunk.contains(100)
        assert chunk.contains(199)
        assert not chunk.contains(200)
        assert not chunk.contains(99)

    def test_full_range_chunk_contains_everything(self):
        chunk = Chunk(lower=MIN_KEY, upper=MAX_KEY, shard_id="shard1")
        assert chunk.contains(-1)
        assert chunk.contains("strings too")


class TestRangePartitioning:
    def make_manager(self, **kwargs):
        return ChunkManager(
            "db.coll",
            ShardKeyPattern.create("k"),
            ["shard1", "shard2", "shard3"],
            **kwargs,
        )

    def test_starts_with_single_full_range_chunk(self):
        manager = self.make_manager()
        assert len(manager.chunks) == 1
        assert manager.chunk_for(12345).shard_id == "shard1"

    def test_record_insert_splits_oversized_chunk(self):
        manager = self.make_manager(chunk_size_bytes=2_000)
        for key in range(100):
            manager.record_insert(key, 100)
        assert len(manager.chunks) > 1
        # Chunks are non-overlapping and cover the whole key space.
        boundaries = [(c.lower, c.upper) for c in manager.chunks]
        assert boundaries[0][0] is MIN_KEY
        assert boundaries[-1][1] is MAX_KEY
        for (_, upper), (lower, _) in zip(boundaries, boundaries[1:]):
            assert compare_boundary(upper, lower) == 0

    def test_identical_keys_produce_jumbo_chunk(self):
        """Figure 2.7: a chunk whose keys are all equal cannot be split."""
        manager = self.make_manager(chunk_size_bytes=1_000)
        for _ in range(100):
            manager.record_insert(36, 100)
        jumbo_chunks = [chunk for chunk in manager.chunks if chunk.jumbo]
        assert jumbo_chunks, "expected the overfull single-value chunk to be marked jumbo"

    def test_explicit_split_rejects_out_of_range_point(self):
        manager = self.make_manager()
        chunk = manager.chunks[0]
        manager.record_insert(10, 10)
        with pytest.raises(ChunkSplitError):
            manager.split_chunk(chunk, split_point=MIN_KEY)

    def test_shards_for_range_returns_overlapping_chunks_only(self):
        manager = self.make_manager()
        chunk = manager.chunks[0]
        for key in range(0, 300):
            chunk.record_insert(key, 1)
        left, right = manager.split_chunk(chunk, split_point=150)
        manager.move_chunk(right, "shard2")
        assert manager.shards_for_range(0, 100) == {"shard1"}
        assert manager.shards_for_range(160, 200) == {"shard2"}
        assert manager.shards_for_range(100, 200) == {"shard1", "shard2"}

    def test_shard_for_value_follows_moves(self):
        manager = self.make_manager()
        manager.move_chunk(manager.chunks[0], "shard3")
        assert manager.shard_for_value(7) == "shard3"


class TestHashPartitioning:
    def make_manager(self):
        return ChunkManager(
            "db.coll",
            ShardKeyPattern.create({"k": "hashed"}),
            ["shard1", "shard2", "shard3"],
            initial_chunks_per_shard=2,
        )

    def test_initial_chunks_spread_across_all_shards(self):
        manager = self.make_manager()
        assert len(manager.chunks) == 6
        assert set(manager.all_shards()) == {"shard1", "shard2", "shard3"}

    def test_nearby_keys_land_on_different_shards(self):
        """Hash partitioning spreads monotonically increasing keys."""
        manager = self.make_manager()
        shards = {manager.shard_for_value(key) for key in range(50)}
        assert len(shards) == 3

    def test_range_queries_broadcast_on_hashed_keys(self):
        manager = self.make_manager()
        assert manager.shards_for_range(0, 10) == {"shard1", "shard2", "shard3"}

    def test_describe_includes_key_and_chunks(self):
        description = self.make_manager().describe()
        assert description["key"] == {"k": "hashed"}
        assert len(description["chunks"]) == 6


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=200))
def test_every_key_is_owned_by_exactly_one_chunk(keys):
    """Property: chunk ranges partition the key space (no gaps, no overlap)."""
    manager = ChunkManager(
        "db.coll",
        ShardKeyPattern.create("k"),
        ["shard1", "shard2"],
        chunk_size_bytes=500,
    )
    for key in keys:
        manager.record_insert(key, 50)
    for key in keys:
        owners = [chunk for chunk in manager.chunks if chunk.contains(key)]
        assert len(owners) == 1
