"""Tests for the concurrent scatter-gather execution core.

Covers the parity matrix (standalone vs serial-sharded vs parallel-sharded),
deadline/cancellation behavior with a slow-shard fixture, streaming gather,
first-match-wins ``update_one``, process-mode snapshot execution, and the
concurrency stress test that pins metric totals under parallel scatter to
the sequential baseline.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.documentstore import DocumentStoreClient
from repro.sharding import (
    NetworkModel,
    ScatterPolicy,
    ShardedCluster,
    ShardTimeoutError,
)
from repro.sharding.executor import ScatterRunner, StreamGather

DOCS = [
    {"order_id": i, "amount": float(i % 97), "store": i % 4, "tag": f"t{i % 7}"}
    for i in range(240)
]

PIPELINE = [
    {"$match": {"store": {"$lte": 2}}},
    {"$group": {"_id": "$store", "total": {"$sum": "$amount"}, "n": {"$sum": 1}}},
    {"$sort": {"_id": 1}},
]


def build_cluster(mode: str, **kwargs) -> ShardedCluster:
    cluster = ShardedCluster(shard_count=3, executor_mode=mode, **kwargs)
    cluster.enable_sharding("shop")
    cluster.shard_collection("shop", "orders", {"order_id": "hashed"})
    cluster.get_database("shop")["orders"].insert_many(DOCS)
    cluster.balance()
    cluster.reset_metrics()
    return cluster


@pytest.fixture()
def parallel_cluster():
    cluster = build_cluster("thread")
    yield cluster
    cluster.close()


@pytest.fixture()
def standalone():
    client = DocumentStoreClient()
    client["shop"]["orders"].insert_many(DOCS)
    return client["shop"]["orders"]


def sorted_by_id(docs):
    """Deterministic order, ignoring the auto-generated ``_id`` values."""
    return sorted(
        ({k: v for k, v in d.items() if k != "_id"} for d in docs),
        key=lambda d: d["order_id"],
    )


class TestParityMatrix:
    """Parallel-sharded results must match the stand-alone database exactly."""

    def test_find_broadcast(self, parallel_cluster, standalone):
        routed = parallel_cluster.get_database("shop")["orders"]
        got = routed.find({"store": 2}).to_list()
        want = standalone.find({"store": 2}).to_list()
        assert sorted_by_id(got) == sorted_by_id(want)

    def test_find_sort_skip_limit_projection(self, parallel_cluster, standalone):
        routed = parallel_cluster.get_database("shop")["orders"]
        kwargs = dict(
            projection={"_id": 0, "order_id": 1, "amount": 1},
            sort=[("amount", -1), ("order_id", 1)],
            skip=5,
            limit=20,
        )
        got = routed.find({"store": {"$gte": 1}}, **kwargs).to_list()
        want = standalone.find({"store": {"$gte": 1}}, **kwargs).to_list()
        assert got == want

    def test_find_targeted(self, parallel_cluster, standalone):
        routed = parallel_cluster.get_database("shop")["orders"]
        assert sorted_by_id(routed.find({"order_id": 41}).to_list()) == sorted_by_id(
            standalone.find({"order_id": 41}).to_list()
        )

    def test_count_and_distinct(self, parallel_cluster, standalone):
        routed = parallel_cluster.get_database("shop")["orders"]
        assert routed.count_documents({"store": 3}) == standalone.count_documents(
            {"store": 3}
        )
        assert sorted(routed.distinct("tag")) == sorted(standalone.distinct("tag"))

    def test_aggregate(self, parallel_cluster, standalone):
        routed = parallel_cluster.get_database("shop")["orders"]
        assert routed.aggregate(PIPELINE) == standalone.aggregate(PIPELINE)

    def test_update_many_and_delete_many(self, parallel_cluster, standalone):
        routed = parallel_cluster.get_database("shop")["orders"]
        update = {"$set": {"flag": True}}
        got_update = routed.update_many({"store": 1}, update)
        want_update = standalone.update_many({"store": 1}, update)
        assert got_update.modified_count == want_update.modified_count
        got_delete = routed.delete_many({"store": 0})
        want_delete = standalone.delete_many({"store": 0})
        assert got_delete.deleted_count == want_delete.deleted_count
        assert routed.count_documents({}) == standalone.count_documents({})

    def test_serial_mode_matches_thread_mode(self):
        serial = build_cluster("serial")
        threaded = build_cluster("thread")
        try:
            q = {"store": {"$in": [0, 2]}}
            s = serial.get_database("shop")["orders"]
            t = threaded.get_database("shop")["orders"]
            assert sorted_by_id(s.find(q).to_list()) == sorted_by_id(t.find(q).to_list())
            assert s.aggregate(PIPELINE) == t.aggregate(PIPELINE)
            assert s.count_documents(q) == t.count_documents(q)
        finally:
            serial.close()
            threaded.close()


def slow_down_shard(cluster, shard_id: str, seconds: float) -> None:
    """Make every storage operation on one shard sleep before executing."""
    shard = cluster.shard(shard_id)
    original = shard.run

    def slow_run(operation, *args, **kwargs):
        time.sleep(seconds)
        return original(operation, *args, **kwargs)

    shard.run = slow_run


class TestDeadlines:
    def test_raise_policy_names_the_laggard(self):
        cluster = build_cluster(
            "thread", scatter_policy=ScatterPolicy(deadline_seconds=0.15)
        )
        try:
            slow_down_shard(cluster, "shard2", 1.0)
            orders = cluster.get_database("shop")["orders"]
            with pytest.raises(ShardTimeoutError) as excinfo:
                orders.count_documents({"store": 1})
            assert "shard2" in excinfo.value.shard_ids
            assert excinfo.value.deadline_seconds == pytest.approx(0.15)
        finally:
            cluster.close()

    def test_partial_policy_returns_responsive_shards(self):
        cluster = build_cluster(
            "thread",
            scatter_policy=ScatterPolicy(deadline_seconds=0.15, on_timeout="partial"),
        )
        try:
            slow_down_shard(cluster, "shard2", 1.0)
            orders = cluster.get_database("shop")["orders"]
            full = sum(
                1 for d in DOCS if d["store"] == 1
            )
            partial = orders.count_documents({"store": 1})
            assert 0 < partial < full
            metrics = cluster.router.metrics
            assert metrics.shards_timed_out >= 1
            assert metrics.partial_operations >= 1
        finally:
            cluster.close()

    def test_partial_policy_streaming_find(self):
        cluster = build_cluster(
            "thread",
            scatter_policy=ScatterPolicy(deadline_seconds=0.15, on_timeout="partial"),
        )
        try:
            slow_down_shard(cluster, "shard1", 1.0)
            orders = cluster.get_database("shop")["orders"]
            docs = orders.find({}, sort=[("order_id", 1)]).to_list()
            assert 0 < len(docs) < len(DOCS)
            ids = [d["order_id"] for d in docs]
            assert ids == sorted(ids)
        finally:
            cluster.close()

    def test_streaming_find_raise_policy(self):
        cluster = build_cluster(
            "thread", scatter_policy=ScatterPolicy(deadline_seconds=0.15)
        )
        try:
            slow_down_shard(cluster, "shard3", 1.0)
            orders = cluster.get_database("shop")["orders"]
            with pytest.raises(ShardTimeoutError):
                orders.find({}, sort=[("order_id", 1)]).to_list()
        finally:
            cluster.close()

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            ScatterPolicy(deadline_seconds=-1.0)
        with pytest.raises(ValueError):
            ScatterPolicy(on_timeout="retry")


class TestStreamingGather:
    def test_merge_starts_before_slowest_branch_finishes(self):
        """The gather consumes early batches while a slow branch still runs."""
        runner = ScatterRunner("thread")
        stream = StreamGather(["fast", "slow"], per_shard=False)
        release_slow = threading.Event()

        def fast(branch):
            stream.put("fast", [{"k": 1}])
            stream.finish("fast")

        def slow(branch):
            release_slow.wait(timeout=5.0)
            stream.put("slow", [{"k": 2}])
            stream.finish("slow")

        pending = runner.launch(
            "find", [("fast", fast), ("slow", slow)], ScatterPolicy()
        )
        try:
            iterator = stream.iterators(pending)[0]
            first = next(iterator)
            # The first document arrived while the slow branch is still held.
            assert first == {"k": 1}
            slow_branch = next(b for b in pending.branches if b.shard_id == "slow")
            assert not slow_branch.done.is_set()
            release_slow.set()
            assert list(iterator) == [{"k": 2}]
            pending.gather()
        finally:
            release_slow.set()
            runner.close()

    def test_limit_cancels_remaining_shipping(self, parallel_cluster):
        orders = parallel_cluster.get_database("shop")["orders"]
        parallel_cluster.reset_metrics()
        docs = orders.find({}, sort=[("order_id", 1)], limit=9).to_list()
        assert [d["order_id"] for d in docs] == list(range(9))
        # limit pushdown: each shard ships at most `limit` documents.
        assert parallel_cluster.router.metrics.documents_shipped <= 3 * 9


class TestFirstMatchUpdateOne:
    def test_exactly_one_document_updated(self, parallel_cluster):
        orders = parallel_cluster.get_database("shop")["orders"]
        result = orders.update_one({"store": 2}, {"$set": {"touched": True}})
        assert result.matched_count == 1
        assert result.modified_count == 1
        assert orders.count_documents({"touched": True}) == 1

    def test_no_match_and_upsert(self, parallel_cluster):
        orders = parallel_cluster.get_database("shop")["orders"]
        miss = orders.update_one({"store": 99}, {"$set": {"x": 1}})
        assert miss.matched_count == 0
        upserted = orders.update_one(
            {"order_id": 9001, "store": 99}, {"$set": {"x": 1}}, upsert=True
        )
        assert upserted.upserted_id is not None
        assert orders.count_documents({"store": 99}) == 1


class TestExplainExecutionStats:
    def test_explain_find_execution_stats(self, parallel_cluster):
        router = parallel_cluster.router
        from repro.documentstore.findspec import FindSpec

        explain = router.explain_find(
            "shop", "orders", FindSpec(filter={"store": 1}), execution_stats=True
        )
        stats = explain["executionStats"]
        assert stats["executorMode"] == "thread"
        assert stats["parallelSeconds"] > 0
        assert set(stats["shards"]) == {"shard1", "shard2", "shard3"}
        for timing in stats["shards"].values():
            assert set(timing) == {
                "queueSeconds",
                "dispatchSeconds",
                "executeSeconds",
                "shipSeconds",
                "totalSeconds",
            }

    def test_explain_aggregate_execution_stats(self, parallel_cluster):
        routed = parallel_cluster.get_database("shop")["orders"]
        explain = routed.explain_aggregate(PIPELINE, execution_stats=True)
        assert explain["executionStats"]["parallelSeconds"] >= 0


def run_stress_workload(cluster, client_count: int, concurrent: bool) -> None:
    """The exact same operation mix, concurrent or sequential."""

    def client_ops(client_id: int):
        db = cluster.get_database("shop")
        orders = db["orders"]
        private = db[f"scratch_{client_id}"]
        for round_no in range(3):
            orders.find({"store": client_id % 4}).to_list()
            orders.count_documents({"tag": f"t{client_id % 7}"})
            orders.distinct("store", {"tag": f"t{round_no % 7}"})
            private.insert_many(
                [{"k": client_id * 100 + round_no * 10 + i} for i in range(10)]
            )
            private.update_many(
                {"k": {"$gte": client_id * 100}}, {"$set": {"r": round_no}}
            )
        private.delete_many({"r": 0})

    if concurrent:
        threads = [
            threading.Thread(target=client_ops, args=(client_id,))
            for client_id in range(client_count)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    else:
        for client_id in range(client_count):
            client_ops(client_id)


class TestConcurrencyStress:
    def test_metric_totals_exact_under_parallel_scatter(self):
        """8 concurrent clients: totals must equal the sequential baseline."""
        serial = build_cluster("serial")
        threaded = build_cluster("thread")
        try:
            run_stress_workload(serial, client_count=8, concurrent=False)
            run_stress_workload(threaded, client_count=8, concurrent=True)

            want = serial.router.metrics
            got = threaded.router.metrics
            assert got.operations == want.operations
            assert got.targeted_operations == want.targeted_operations
            assert got.broadcast_operations == want.broadcast_operations
            assert got.shards_contacted == want.shards_contacted
            assert got.documents_shipped == want.documents_shipped
            assert got.bytes_shipped == want.bytes_shipped
            assert got.shards_timed_out == 0

            want_net = serial.network.stats
            got_net = threaded.network.stats
            assert got_net.messages == want_net.messages
            assert got_net.bytes_transferred == want_net.bytes_transferred
            assert got_net.by_purpose == want_net.by_purpose
            assert len(threaded.network.log) == len(serial.network.log)

            # Per-shard operation counts are deterministic too.
            for shard_id in ("shard1", "shard2", "shard3"):
                assert (
                    threaded.shard(shard_id).operations
                    == serial.shard(shard_id).operations
                )
        finally:
            serial.close()
            threaded.close()


class TestProcessMode:
    def test_reads_match_and_writes_invalidate_snapshot(self):
        cluster = build_cluster("process")
        try:
            orders = cluster.get_database("shop")["orders"]
            want = sorted_by_id(d for d in DOCS if d["store"] == 1)
            got = orders.find({"store": 1}, {"_id": 0}).to_list()
            assert sorted_by_id(got) == want
            assert orders.count_documents({}) == len(DOCS)
            assert sorted(orders.distinct("tag")) == sorted({d["tag"] for d in DOCS})
            assert orders.aggregate(PIPELINE)
            # A write must discard the forked snapshot: the next read sees it.
            orders.insert_many([{"order_id": 10_001, "store": 8}])
            assert orders.count_documents({"store": 8}) == 1
            orders.delete_many({"store": 8})
            assert orders.count_documents({"store": 8}) == 0
        finally:
            cluster.close()


class TestRealtimeNetworkOverlap:
    def test_threads_overlap_realtime_network_waits(self):
        """With realtime emulation, 3 concurrent branches ≈ max not sum."""
        model = NetworkModel(latency_seconds=0.02, realtime=True)
        serial = build_cluster("serial", network_model=model)
        threaded = build_cluster("thread", network_model=model)
        try:
            query = {"store": 1}

            def timed(cluster):
                started = time.perf_counter()
                cluster.get_database("shop")["orders"].find(query).to_list()
                return time.perf_counter() - started

            serial_wall = min(timed(serial) for _ in range(3))
            parallel_wall = min(timed(threaded) for _ in range(3))
            assert parallel_wall < serial_wall
        finally:
            serial.close()
            threaded.close()
