"""Tests for the ShardedCluster facade (topology of Figure 3.1)."""

from __future__ import annotations

import pytest

from repro.sharding import NetworkModel, ShardDescription, ShardedCluster


class TestTopology:
    def test_default_topology_matches_paper(self):
        """Section 3.3: 3 shards, 1 config server, 1 query router."""
        cluster = ShardedCluster()
        assert cluster.shard_count == 3
        assert cluster.config_server.shard_ids == ["shard1", "shard2", "shard3"]
        assert cluster.router is not None

    def test_custom_shard_count(self):
        assert ShardedCluster(shard_count=5).shard_count == 5

    def test_custom_descriptions(self):
        descriptions = [
            ShardDescription(shard_id="alpha", ram_bytes=16 * 1024**3, cpu_factor=2.0),
            ShardDescription(shard_id="beta"),
        ]
        cluster = ShardedCluster(shard_descriptions=descriptions)
        assert cluster.shard("alpha").description.cpu_factor == 2.0
        assert cluster.shard_count == 2

    def test_zero_shards_rejected(self):
        with pytest.raises(ValueError):
            ShardedCluster(shard_descriptions=[])

    def test_custom_network_model_is_used(self):
        model = NetworkModel(latency_seconds=0.123)
        cluster = ShardedCluster(network_model=model)
        assert cluster.network.model.latency_seconds == 0.123


class TestAdministration:
    def test_shard_collection_enables_sharding_implicitly(self):
        cluster = ShardedCluster()
        cluster.shard_collection("db", "c", {"k": "hashed"})
        assert cluster.config_server.is_sharding_enabled("db")
        assert cluster.config_server.is_sharded("db", "c")

    def test_shard_collection_creates_supporting_index(self):
        cluster = ShardedCluster()
        cluster.shard_collection("db", "c", {"k": "hashed"})
        for shard in cluster.shards:
            index_info = shard.collection("db", "c").index_information()
            assert any(name != "_id_" for name in index_info)

    def test_status_reports_chunks_and_network(self):
        cluster = ShardedCluster()
        cluster.shard_collection("db", "c", {"k": "hashed"})
        cluster.get_database("db")["c"].insert_many([{"k": i} for i in range(10)])
        status = cluster.status()
        assert status["shard_count"] == 3
        assert status["network"]["messages"] > 0
        assert "db.c" in status["config"]["collections"]

    def test_getitem_returns_routed_database(self):
        cluster = ShardedCluster()
        database = cluster["analytics"]
        database["events"].insert_one({"kind": "click"})
        assert database["events"].count_documents({}) == 1

    def test_shard_lookup_by_id(self):
        cluster = ShardedCluster()
        assert cluster.shard("shard2").shard_id == "shard2"

    def test_reset_metrics_clears_shard_accounting(self):
        cluster = ShardedCluster()
        cluster.shard_collection("db", "c", {"k": "hashed"})
        cluster.get_database("db")["c"].insert_many([{"k": i} for i in range(10)])
        assert any(shard.busy_seconds > 0 for shard in cluster.shards)
        cluster.reset_metrics()
        assert all(shard.busy_seconds == 0 for shard in cluster.shards)

    def test_shard_stats_report_data_size(self):
        cluster = ShardedCluster()
        cluster.shard_collection("db", "c", {"k": "hashed"})
        cluster.get_database("db")["c"].insert_many([{"k": i, "pad": "x" * 50} for i in range(60)])
        sizes = [shard.stats()["dataSize"] for shard in cluster.shards]
        assert sum(sizes) > 0

    def test_routed_database_stats_aggregate_shards(self):
        cluster = ShardedCluster()
        cluster.shard_collection("db", "c", {"k": "hashed"})
        cluster.get_database("db")["c"].insert_many([{"k": i} for i in range(30)])
        stats = cluster.get_database("db").stats()
        assert stats["objects"] == 30

    def test_list_collection_names_across_shards(self):
        cluster = ShardedCluster()
        cluster.shard_collection("db", "sharded_one", {"k": "hashed"})
        database = cluster.get_database("db")
        database["sharded_one"].insert_one({"k": 1})
        database["plain_one"].insert_one({"v": 2})
        names = database.list_collection_names()
        assert "sharded_one" in names and "plain_one" in names
