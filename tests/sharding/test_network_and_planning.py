"""Tests for the simulated network and the cluster-sizing formulas."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.documentstore import ObjectId
from repro.sharding import (
    ClusterSizingInputs,
    NetworkModel,
    SHARDING_OVERHEAD,
    SimulatedNetwork,
    recommend_shard_count,
    shards_for_disk_storage,
    shards_for_iops,
    shards_for_ops,
    shards_for_ram,
    working_set_size,
)

GB = 1024 ** 3
TB = 1024 ** 4


class TestNetworkModel:
    def test_message_cost_includes_latency_and_transfer(self):
        model = NetworkModel(latency_seconds=0.001, bandwidth_bytes_per_second=1_000_000)
        assert model.message_seconds(0) == pytest.approx(0.001)
        assert model.message_seconds(1_000_000) == pytest.approx(1.001)

    def test_zero_payload_transfer_is_free(self):
        assert NetworkModel().transfer_seconds(0) == 0.0

    def test_send_accumulates_stats(self):
        network = SimulatedNetwork(NetworkModel(latency_seconds=0.002))
        network.send("mongos", "shard1", "find:request", 100)
        network.send("shard1", "mongos", "find:response", 5_000)
        stats = network.stats
        assert stats.messages == 2
        assert stats.bytes_transferred == 5_100
        assert stats.simulated_seconds > 0.004
        assert stats.by_purpose["find:request"] == 1

    def test_ship_documents_round_trips_and_isolates(self):
        network = SimulatedNetwork()
        original = [{"_id": ObjectId(), "nested": {"v": [1, 2]}}]
        shipped = network.ship_documents(
            original, source="shard1", destination="mongos", purpose="test"
        )
        assert shipped == original
        shipped[0]["nested"]["v"].append(3)
        assert original[0]["nested"]["v"] == [1, 2]

    def test_ship_command_counts_one_message(self):
        network = SimulatedNetwork()
        network.ship_command({"find": "c"}, source="a", destination="b", purpose="cmd")
        assert network.stats.messages == 1

    def test_reset_clears_log_and_stats(self):
        network = SimulatedNetwork()
        network.send("a", "b", "x", 10)
        network.reset()
        assert network.stats.messages == 0
        assert network.log == []

    def test_log_preserves_order(self):
        network = SimulatedNetwork()
        network.send("a", "b", "first", 1)
        network.send("b", "a", "second", 1)
        assert [message.purpose for message in network.log] == ["first", "second"]


class TestShardCountFormulas:
    """The worked examples of Section 2.1.3.2."""

    def test_disk_storage_example(self):
        assert shards_for_disk_storage(1.5 * TB, 256 * GB) == 6

    def test_ram_example(self):
        assert shards_for_ram(200 * GB, 64 * GB) == 4

    def test_ram_with_reserved_memory(self):
        # 9.94GB of data on 8GB nodes with 2GB reserved -> 6GB usable each.
        assert shards_for_ram(9.94 * GB, 8 * GB, reserved_bytes=2 * GB) == 2

    def test_iops_example(self):
        assert shards_for_iops(12_000, 5_000) == 3

    def test_ops_formula(self):
        # N = G / (S * 0.7): 10,000 required at 2,000 per server -> 8 shards.
        assert shards_for_ops(10_000, 2_000) == 8
        assert SHARDING_OVERHEAD == 0.7

    def test_zero_or_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            shards_for_disk_storage(100, 0)
        with pytest.raises(ValueError):
            shards_for_ops(100, 0)

    def test_tiny_requirement_still_needs_one_shard(self):
        assert shards_for_disk_storage(1, 10 * GB) == 1

    def test_working_set_definition(self):
        assert working_set_size(2 * GB, 6 * GB) == 8 * GB

    def test_recommendation_takes_maximum_across_rules(self):
        inputs = ClusterSizingInputs(
            data_size_bytes=1.5 * TB,
            working_set_bytes=200 * GB,
            shard_ram_bytes=64 * GB,
            shard_disk_bytes=256 * GB,
            reserved_ram_bytes=0,
            required_iops=12_000,
            shard_iops=5_000,
        )
        recommendation = recommend_shard_count(inputs)
        assert recommendation["disk"] == 6
        assert recommendation["ram"] == 4
        assert recommendation["iops"] == 3
        assert recommendation["recommended"] == 6

    def test_thesis_small_cluster_recommendation(self):
        """Section 3.3: the 9.94 GB dataset on 8 GB nodes needs >= 2 shards
        (the thesis rounds up to 3 for indexes and intermediate collections)."""
        inputs = ClusterSizingInputs(
            data_size_bytes=9.94 * GB,
            working_set_bytes=9.94 * GB,
            shard_ram_bytes=8 * GB,
            shard_disk_bytes=256 * GB,
        )
        recommendation = recommend_shard_count(inputs)
        assert recommendation["ram"] == 2
        assert recommendation["recommended"] >= 2


@given(
    st.floats(min_value=1, max_value=1e15),
    st.floats(min_value=1, max_value=1e12),
)
def test_shard_counts_always_cover_the_requirement(required, per_shard):
    """Property: N shards of capacity C always cover the requirement."""
    shards = shards_for_disk_storage(required, per_shard)
    assert shards * per_shard >= required
    assert shards >= 1


@given(st.integers(min_value=0, max_value=10_000_000))
def test_transfer_time_is_monotonic_in_payload(payload):
    model = NetworkModel()
    assert model.message_seconds(payload) >= model.message_seconds(0)
