"""Shard-side pushdown for the unified FindSpec/Cursor read protocol.

Covers the acceptance criteria of the redesign: a sorted + limited find on
the cluster ships at most ``shards × (skip + limit)`` documents, ``find_one``
no longer materializes full shard results, standalone and sharded ``find``
agree across a (filter, projection, sort, skip, limit) matrix, and
``explain()`` has the same shape on both backends.
"""

from __future__ import annotations

import itertools

import pytest

from repro.documentstore.collection import Collection
from repro.sharding import ShardedCluster

SHARDS = 3
DOCS = 240


def _documents():
    return [
        {
            "_id": i,
            "order_id": i,
            "store": i % 7,
            "amount": float((i * 53) % 200) / 2.0,
            "day": i % 30,
            "customer": {"city": f"city{i % 11}", "tier": i % 3},
        }
        for i in range(DOCS)
    ]


@pytest.fixture()
def backends():
    standalone = Collection(None, "orders")
    standalone.insert_many(_documents())

    cluster = ShardedCluster(shard_count=SHARDS)
    cluster.enable_sharding("shop")
    cluster.shard_collection("shop", "orders", {"order_id": "hashed"})
    routed = cluster.get_database("shop")["orders"]
    routed.insert_many(_documents())
    cluster.balance()
    cluster.reset_metrics()
    return standalone, routed, cluster


# A total order (every sort ends with the unique order_id) makes results
# deterministic on both backends, so lists can be compared element-wise.
SORTS = [
    [("order_id", 1)],
    [("amount", 1), ("order_id", 1)],
    [("amount", -1), ("order_id", -1)],
    [("day", 1), ("amount", -1), ("order_id", 1)],
]
FILTERS = [
    None,
    {"store": 3},
    {"amount": {"$gte": 40.0}},
    {"order_id": {"$in": [5, 17, 40, 77, 150]}},
    {"customer.tier": 1, "day": {"$lt": 20}},
]
PROJECTIONS = [
    None,
    {"amount": 1, "order_id": 1},
    {"customer": 0},
    {"customer.city": 1, "amount": 1, "day": 1, "order_id": 1, "_id": 0},
]
PAGING = [(0, 0), (0, 10), (25, 10), (5, 0)]


class TestReadParity:
    @pytest.mark.parametrize(
        ("filter_", "sort"), list(itertools.product(FILTERS, SORTS))
    )
    def test_sorted_results_identical(self, backends, filter_, sort):
        standalone, routed, _cluster = backends
        expected = standalone.find(filter_, sort=sort).to_list()
        actual = routed.find(filter_, sort=sort).to_list()
        assert actual == expected

    @pytest.mark.parametrize(
        ("projection", "skip", "limit"),
        [
            (projection, skip, limit)
            for projection in PROJECTIONS
            for (skip, limit) in PAGING
        ],
    )
    def test_projection_and_paging_identical(self, backends, projection, skip, limit):
        standalone, routed, _cluster = backends
        sort = [("amount", 1), ("order_id", 1)]
        expected = standalone.find(
            {"day": {"$lt": 25}}, projection, sort=sort, skip=skip, limit=limit
        ).to_list()
        actual = routed.find(
            {"day": {"$lt": 25}}, projection, sort=sort, skip=skip, limit=limit
        ).to_list()
        assert actual == expected

    def test_unsorted_results_identical_as_multisets(self, backends):
        standalone, routed, _cluster = backends
        expected = standalone.find({"store": 2}).to_list()
        actual = routed.find({"store": 2}).to_list()
        def key(doc):
            return repr(sorted(doc.items(), key=repr))

        assert sorted(actual, key=key) == sorted(expected, key=key)

    def test_distinct_identical(self, backends):
        standalone, routed, _cluster = backends
        expected = standalone.distinct("store", {"day": {"$lt": 15}})
        actual = routed.distinct("store", {"day": {"$lt": 15}})
        assert sorted(actual) == sorted(expected)


class TestPushdownAccounting:
    def test_sorted_limited_broadcast_ships_at_most_shards_times_bound(self, backends):
        _standalone, routed, cluster = backends
        skip, limit = 5, 10
        routed.find({}, sort=[("amount", -1), ("order_id", 1)], skip=skip, limit=limit).to_list()
        metrics = cluster.router.metrics
        assert metrics.broadcast_operations >= 1
        assert 0 < metrics.documents_shipped <= SHARDS * (skip + limit)
        assert metrics.bytes_shipped > 0

    def test_find_one_ships_at_most_one_document_per_shard(self, backends):
        _standalone, routed, cluster = backends
        document = routed.find_one({"store": 4})
        assert document is not None
        assert cluster.router.metrics.documents_shipped <= SHARDS

    def test_targeted_find_contacts_one_shard(self, backends):
        _standalone, routed, cluster = backends
        routed.find({"order_id": 17}).to_list()
        metrics = cluster.router.metrics
        assert metrics.targeted_operations == 1
        assert metrics.shards_contacted == 1

    def test_projection_pushdown_reduces_bytes_shipped(self, backends):
        _standalone, routed, cluster = backends
        spec_sort = [("amount", 1), ("order_id", 1)]
        routed.find({}, sort=spec_sort, limit=20).to_list()
        full_bytes = cluster.router.metrics.bytes_shipped
        cluster.reset_metrics()
        routed.find({}, {"amount": 1, "order_id": 1}, sort=spec_sort, limit=20).to_list()
        projected_bytes = cluster.router.metrics.bytes_shipped
        assert projected_bytes < full_bytes

    def test_distinct_ships_unique_values_and_accounts_bytes(self, backends):
        _standalone, routed, cluster = backends
        values = routed.distinct("store")
        metrics = cluster.router.metrics
        assert sorted(values) == list(range(7))
        # Each shard ships at most one entry per distinct value, never one
        # per matching document.
        assert 0 < metrics.documents_shipped <= SHARDS * 7
        assert metrics.bytes_shipped > 0

    def test_unsorted_limited_find_still_bounded(self, backends):
        _standalone, routed, cluster = backends
        routed.find({}, limit=7).to_list()
        assert cluster.router.metrics.documents_shipped <= SHARDS * 7


class TestExplainParity:
    def test_both_backends_share_the_explain_shape(self, backends):
        standalone, routed, _cluster = backends
        sort = [("amount", -1), ("order_id", 1)]
        local = standalone.find({"store": 1}, sort=sort, limit=5).explain()
        sharded = routed.find({"store": 1}, sort=sort, limit=5).explain()
        for explain in (local, sharded):
            assert set(explain) == {"queryPlanner"}
            assert set(explain["queryPlanner"]) == {"winningPlan", "sortMode", "findSpec"}
            assert explain["queryPlanner"]["findSpec"]["limit"] == 5

    def test_sharded_explain_reports_pushdown_and_per_shard_plans(self, backends):
        _standalone, routed, _cluster = backends
        explain = routed.find(
            {}, {"amount": 1, "order_id": 1}, sort=[("amount", 1), ("order_id", 1)], skip=5, limit=10
        ).explain()
        plan = explain["queryPlanner"]["winningPlan"]
        assert plan["stage"] == "SHARD_MERGE"
        assert plan["targeted"] is False
        assert len(plan["shardsContacted"]) == SHARDS
        assert plan["pushdown"] == {"projection": True, "sort": True, "limit": 15}
        for shard_plan in plan["shards"].values():
            assert set(shard_plan) == {"winningPlan", "sortMode", "findSpec"}
            assert shard_plan["findSpec"]["limit"] == 15
            assert shard_plan["findSpec"]["skip"] == 0
        assert explain["queryPlanner"]["sortMode"] == "streamingKWayMerge"

    def test_targeted_explain_is_single_shard(self, backends):
        _standalone, routed, _cluster = backends
        explain = routed.find({"order_id": 17}).explain()
        plan = explain["queryPlanner"]["winningPlan"]
        assert plan["stage"] == "SINGLE_SHARD"
        assert plan["targeted"] is True
