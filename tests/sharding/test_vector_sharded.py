"""Cluster-wide vector search: routed ``$vectorSearch`` parity and explain."""

from __future__ import annotations

import pytest

from repro.documentstore import (
    EXECUTION_KEYS,
    PLANNER_KEYS,
    TOP_LEVEL_KEYS,
    DocumentStoreClient,
)
from repro.sharding import ShardedCluster

DIMS = 4

DOCS = [
    {
        "_id": i,
        "doc_id": i,
        "embedding": [float((i * 13 + axis * 5) % 23) for axis in range(DIMS)],
        "tenant": i % 3,
    }
    for i in range(240)
]

VECTOR_SPEC = {"keys": ["embedding"], "type": "vector", "dims": DIMS}

QUERY = [11.0, 7.0, 3.0, 17.0]


@pytest.fixture()
def cluster():
    cluster = ShardedCluster(shard_count=3)
    cluster.enable_sharding("rag")
    cluster.shard_collection("rag", "chunks", {"doc_id": "hashed"})
    cluster.get_database("rag")["chunks"].insert_many(DOCS)
    cluster.balance()
    yield cluster
    cluster.close()


@pytest.fixture()
def routed(cluster):
    collection = cluster.get_database("rag")["chunks"]
    collection.create_index(VECTOR_SPEC)
    return collection


@pytest.fixture()
def standalone():
    collection = DocumentStoreClient()["rag"]["chunks"]
    collection.insert_many(DOCS)
    collection.create_index(VECTOR_SPEC)
    return collection


# Exact mode keeps per-shard rankings free of IVF training differences, so
# sharded results must match the stand-alone engine bit for bit.
def exact_search(collection, k, **extra):
    spec = {"queryVector": QUERY, "k": k, "exact": True, **extra}
    return collection.aggregate([{"$vectorSearch": spec}])


class TestShardedParity:
    def test_index_created_on_every_shard(self, cluster, routed):
        for shard in cluster.router.shards:
            info = shard.collection("rag", "chunks").index_information()
            assert info["embedding_vector"]["type"] == "vector"

    def test_list_indexes_matches_standalone(self, routed, standalone):
        # The cluster adds a shard-key index; the vector index spec itself
        # must round-trip identically on both surfaces.
        sharded = {s["name"]: s for s in routed.list_indexes()}
        local = {s["name"]: s for s in standalone.list_indexes()}
        assert sharded["embedding_vector"] == local["embedding_vector"]

    def test_topk_ids_and_scores_match_standalone(self, routed, standalone):
        for k in (1, 5, 17):
            sharded = exact_search(routed, k)
            local = exact_search(standalone, k)
            assert [(d["_id"], d["_score"]) for d in sharded] == [
                (d["_id"], d["_score"]) for d in local
            ]

    def test_prefiltered_search_matches_standalone(self, routed, standalone):
        sharded = exact_search(routed, 9, filter={"tenant": 1})
        local = exact_search(standalone, 9, filter={"tenant": 1})
        assert sharded == local
        assert all(doc["tenant"] == 1 for doc in sharded)

    def test_merge_stages_after_vector_search(self, routed, standalone):
        pipeline = [
            {"$vectorSearch": {"queryVector": QUERY, "k": 12, "exact": True}},
            {"$project": {"_id": 1, "_score": 1}},
            {"$limit": 4},
        ]
        assert routed.aggregate(pipeline) == standalone.aggregate(pipeline)

    def test_shard_key_filter_targets_subset(self, cluster, routed):
        explain = cluster.router.explain_aggregate(
            "rag",
            "chunks",
            [
                {
                    "$vectorSearch": {
                        "queryVector": QUERY,
                        "k": 5,
                        "exact": True,
                        "filter": {"doc_id": 7},
                    }
                }
            ],
        )
        assert explain["targeted"] is True
        assert len(explain["shardsContacted"]) == 1

    def test_unfiltered_vector_search_broadcasts(self, cluster, routed):
        explain = cluster.router.explain_aggregate(
            "rag",
            "chunks",
            [{"$vectorSearch": {"queryVector": QUERY, "k": 5, "exact": True}}],
        )
        assert explain["targeted"] is False
        assert len(explain["shardsContacted"]) == 3


class TestShardedExplain:
    def test_unified_find_schema(self, routed):
        explain = routed.explain({"tenant": 1}, verbosity="executionStats")
        assert set(explain) == set(TOP_LEVEL_KEYS) | {"executionStats"}
        assert explain["surface"] == "sharded"
        assert explain["operation"] == "find"
        assert set(explain["queryPlanner"]) == set(PLANNER_KEYS)
        assert EXECUTION_KEYS <= set(explain["executionStats"])
        assert explain["shards"]

    def test_unified_aggregate_schema(self, routed):
        explain = routed.explain(
            [{"$vectorSearch": {"queryVector": QUERY, "k": 5, "exact": True}}],
            verbosity="executionStats",
        )
        assert set(explain) == set(TOP_LEVEL_KEYS) | {"executionStats"}
        assert explain["surface"] == "sharded"
        assert explain["operation"] == "aggregate"
        assert explain["executionStats"]["nReturned"] == 5
        for shard_explain in explain["shards"].values():
            plan = shard_explain["queryPlanner"]["winningPlan"]
            assert plan["stage"] == "VECTOR_SEARCH"

    def test_legacy_router_shapes_survive(self, cluster, routed):
        legacy = routed.explain_aggregate([{"$match": {"tenant": 1}}])
        assert {"targeted", "shardsContacted", "shards", "mergeStages"} <= set(legacy)
