"""Tests for the TPC-DS schema description and dataset scaling."""

from __future__ import annotations

import pytest

from repro.tpcds import (
    DIMENSION_TABLES,
    FACT_TABLES,
    NON_SCALING_TABLES,
    PAPER_ROW_COUNTS,
    QUERY_TABLES,
    SCALE_LARGE,
    SCALE_SMALL,
    ScaleProfile,
    TPCDS_TABLES,
    generation_row_counts,
    paper_row_counts,
    table_schema,
)


class TestSchema:
    def test_twenty_four_tables(self):
        """Section 3.4: 7 fact tables and 17 dimension tables."""
        assert len(TPCDS_TABLES) == 24
        assert len(FACT_TABLES) == 7
        assert len(DIMENSION_TABLES) == 17

    def test_query_tables_are_three_facts_and_nine_dimensions(self):
        facts = [name for name in QUERY_TABLES if TPCDS_TABLES[name].is_fact]
        dimensions = [name for name in QUERY_TABLES if not TPCDS_TABLES[name].is_fact]
        assert sorted(facts) == ["inventory", "store_returns", "store_sales"]
        assert len(dimensions) == 9

    def test_store_sales_foreign_keys_reference_dimensions(self):
        schema = table_schema("store_sales")
        referenced = {fk.references_table for fk in schema.foreign_keys}
        assert {"date_dim", "item", "customer_demographics", "store", "promotion"} <= referenced

    def test_every_foreign_key_references_an_existing_column(self):
        for table in TPCDS_TABLES.values():
            for foreign_key in table.foreign_keys:
                target = table_schema(foreign_key.references_table)
                assert foreign_key.references_column in target.column_names
                assert foreign_key.column in table.column_names

    def test_primary_key_is_a_column(self):
        for table in TPCDS_TABLES.values():
            assert table.primary_key in table.column_names

    def test_column_lookup(self):
        assert table_schema("item").column("i_current_price").type == "decimal"
        with pytest.raises(KeyError):
            table_schema("item").column("nonexistent")

    def test_unknown_table_raises(self):
        with pytest.raises(KeyError):
            table_schema("no_such_table")

    def test_inventory_is_narrow(self):
        """Inventory has only 4 columns, as in TPC-DS."""
        assert len(table_schema("inventory").columns) == 4


class TestPaperRowCounts:
    def test_table_36_row_counts_for_1gb(self):
        counts = paper_row_counts(1)
        assert counts["store_sales"] == 2_880_404
        assert counts["inventory"] == 11_745_000
        assert counts["store"] == 12

    def test_table_36_row_counts_for_5gb(self):
        counts = paper_row_counts(5)
        assert counts["store_sales"] == 14_400_052
        assert counts["customer"] == 277_000

    def test_only_published_scales_accepted(self):
        with pytest.raises(ValueError):
            paper_row_counts(10)

    def test_non_scaling_tables_match_between_scales(self):
        """Observation (i) of Section 4.3 rests on these tables being equal."""
        for name in NON_SCALING_TABLES:
            small, large = PAPER_ROW_COUNTS[name]
            assert small == large
        assert "customer_demographics" in NON_SCALING_TABLES
        assert "date_dim" in NON_SCALING_TABLES

    def test_every_table_has_paper_counts(self):
        assert set(PAPER_ROW_COUNTS) == set(TPCDS_TABLES)


class TestGenerationScaling:
    def test_large_profile_scales_fact_tables_roughly_5x(self):
        small = generation_row_counts(SCALE_SMALL)
        large = generation_row_counts(SCALE_LARGE)
        ratio = large["store_sales"] / small["store_sales"]
        assert 4.5 <= ratio <= 5.5

    def test_non_scaling_tables_identical_across_profiles(self):
        small = generation_row_counts(SCALE_SMALL)
        large = generation_row_counts(SCALE_LARGE)
        for name in NON_SCALING_TABLES:
            assert small[name] == large[name]

    def test_small_reference_tables_keep_exact_paper_cardinality(self):
        small = generation_row_counts(SCALE_SMALL)
        large = generation_row_counts(SCALE_LARGE)
        assert small["store"] == 12 and large["store"] == 52
        assert small["warehouse"] == 5 and large["warehouse"] == 7
        assert small["promotion"] == 300 and large["promotion"] == 388

    def test_date_dim_covers_query_year_range(self):
        counts = generation_row_counts(SCALE_SMALL)
        assert counts["date_dim"] == (2191)  # 1998-01-01 .. 2003-12-31

    def test_generation_counts_never_exceed_paper_counts(self):
        for profile in (SCALE_SMALL, SCALE_LARGE):
            generated = generation_row_counts(profile)
            paper = paper_row_counts(profile.paper_gb)
            for name, count in generated.items():
                assert count <= paper[name]

    def test_custom_reduction_profile(self):
        tiny = ScaleProfile(name="tiny", paper_gb=1, reduction=1.0 / 100_000.0)
        counts = generation_row_counts(tiny)
        assert counts["store_sales"] == 50  # clamped to the minimum
        assert counts["date_dim"] == 2191  # date dimension never shrinks

    def test_profile_database_names_match_thesis(self):
        assert SCALE_SMALL.database_name == "Dataset_1GB"
        assert SCALE_LARGE.database_name == "Dataset_5GB"
