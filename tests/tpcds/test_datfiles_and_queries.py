"""Tests for the ``.dat`` file format and the query definitions."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.experiments import tiny_profile
from repro.tpcds import (
    QUERY_DEFINITIONS,
    QUERY_FEATURES,
    QUERY_IDS,
    TPCDSGenerator,
    format_row,
    parse_line,
    query_definition,
    query_parameters,
    read_dat_file,
    table_schema,
    write_dat_file,
    write_dataset,
)


class TestDatFiles:
    def test_format_row_uses_pipe_delimiter(self):
        schema = table_schema("warehouse")
        row = {"w_warehouse_sk": 1, "w_warehouse_name": "Doors canno", "w_city": "Midway"}
        line = format_row(schema, row)
        assert line.count("|") == len(schema.columns)
        assert line.startswith("1|")

    def test_null_columns_are_empty_fields(self):
        schema = table_schema("warehouse")
        line = format_row(schema, {"w_warehouse_sk": 3})
        parsed = parse_line(schema, line)
        assert parsed["w_warehouse_sk"] == 3
        assert parsed["w_warehouse_name"] is None

    def test_parse_line_types_columns(self):
        schema = table_schema("item")
        row = {"i_item_sk": 5, "i_item_id": "AAAA5", "i_current_price": 1.25}
        parsed = parse_line(schema, format_row(schema, row))
        assert parsed["i_item_sk"] == 5
        assert parsed["i_current_price"] == pytest.approx(1.25)
        assert parsed["i_item_id"] == "AAAA5"

    def test_write_and_read_round_trip(self, tmp_path):
        generator = TPCDSGenerator(tiny_profile(1 / 20_000), seed=5)
        rows = generator.generate_table("store")
        path = write_dat_file("store", rows, tmp_path)
        assert path.name == "store.dat"
        read_back = list(read_dat_file("store", path))
        assert len(read_back) == len(rows)
        assert read_back[0]["s_store_sk"] == rows[0]["s_store_sk"]
        assert read_back[0]["s_city"] == rows[0]["s_city"]

    def test_write_dataset_creates_one_file_per_table(self, tmp_path):
        generator = TPCDSGenerator(tiny_profile(1 / 20_000), seed=5)
        tables = {name: generator.generate_table(name) for name in ("store", "warehouse")}
        paths = write_dataset(tables, tmp_path)
        assert set(paths) == {"store", "warehouse"}
        assert all(path.exists() for path in paths.values())

    def test_float_formatting_keeps_two_decimals(self):
        schema = table_schema("item")
        line = format_row(schema, {"i_item_sk": 1, "i_current_price": 1.5})
        assert "|1.50|" in line


class TestQueryDefinitions:
    def test_the_four_selected_queries(self):
        assert QUERY_IDS == (7, 21, 46, 50)
        assert set(QUERY_DEFINITIONS) == {7, 21, 46, 50}

    def test_table_35_feature_counts(self):
        assert QUERY_FEATURES[7]["tables"] == 5
        assert QUERY_FEATURES[21]["tables"] == 4
        assert QUERY_FEATURES[46]["tables"] == 6
        assert QUERY_FEATURES[50]["tables"] == 5
        assert QUERY_FEATURES[50]["conditional_constructs"] == 5
        assert QUERY_FEATURES[46]["correlated_subqueries"] == 1

    def test_each_query_meets_three_or_more_selection_criteria(self):
        """Section 3.4: every selected query satisfies >= 3 of the 5 criteria."""
        for query_id, features in QUERY_FEATURES.items():
            criteria_met = sum(
                [
                    features["tables"] >= 4,
                    features["aggregation_functions"] >= 1,
                    features["group_order_clauses"] >= 1,
                    features["conditional_constructs"] >= 1,
                    features["correlated_subqueries"] >= 1,
                ]
            )
            assert criteria_met >= 3, f"query {query_id} meets only {criteria_met} criteria"

    def test_sql_text_substitutes_parameters(self):
        sql = query_definition(7).sql()
        assert "cd_education_status = '4 yr Degree'" in sql
        assert "d_year = 2001" in sql

    def test_sql_text_with_custom_parameters(self):
        sql = query_definition(7).sql({"year": 1999, "gender": "F"})
        assert "d_year = 1999" in sql and "cd_gender = 'F'" in sql

    def test_query50_sql_contains_aging_buckets(self):
        sql = query_definition(50).sql()
        assert '"30 days"' in sql and '">120 days"' in sql

    def test_query_tables_listed(self):
        assert query_definition(21).tables == ("inventory", "warehouse", "item", "date_dim")
        assert "store_returns" in query_definition(50).fact_tables

    def test_query_parameters_default_and_scaled(self):
        assert query_parameters(50)["month"] == 10
        assert query_parameters(7, "large")["year"] == 2001

    def test_unknown_query_rejected(self):
        with pytest.raises(KeyError):
            query_definition(99)


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=1, max_value=10_000),
    st.floats(min_value=0, max_value=10_000, allow_nan=False),
    st.text(alphabet="abcXYZ 0123", max_size=15),
)
def test_dat_round_trip_property(key, price, name):
    """Property: any row survives the format/parse round trip."""
    schema = table_schema("item")
    row = {"i_item_sk": key, "i_current_price": round(price, 2), "i_product_name": name}
    parsed = parse_line(schema, format_row(schema, row))
    assert parsed["i_item_sk"] == key
    assert parsed["i_current_price"] == pytest.approx(round(price, 2))
    expected_name = name if name != "" else None
    assert parsed["i_product_name"] == expected_name
