"""Tests for the synthetic data generator."""

from __future__ import annotations

import pytest

from repro.core.experiments import tiny_profile
from repro.tpcds import (
    SCALE_SMALL,
    TPCDSGenerator,
    generation_row_counts,
    table_schema,
)


@pytest.fixture(scope="module")
def generator():
    return TPCDSGenerator(tiny_profile(1.0 / 10_000.0), seed=7)


class TestDeterminismAndCounts:
    def test_row_counts_match_scaling(self, generator):
        counts = generation_row_counts(generator.profile)
        for table in ("store_sales", "item", "store", "inventory"):
            assert len(generator.generate_table(table)) == counts[table]

    def test_same_seed_same_data(self):
        profile = tiny_profile(1.0 / 10_000.0)
        first = TPCDSGenerator(profile, seed=11).generate_table("store_sales")
        second = TPCDSGenerator(profile, seed=11).generate_table("store_sales")
        assert first == second

    def test_different_seed_different_data(self):
        profile = tiny_profile(1.0 / 10_000.0)
        first = TPCDSGenerator(profile, seed=11).generate_table("store_sales")
        second = TPCDSGenerator(profile, seed=12).generate_table("store_sales")
        assert first != second

    def test_generation_is_order_independent(self):
        """Generating a dependent table first must not change its contents."""
        profile = tiny_profile(1.0 / 10_000.0)
        eager = TPCDSGenerator(profile, seed=3)
        eager_returns = eager.generate_table("store_returns")
        lazy = TPCDSGenerator(profile, seed=3)
        lazy.generate_table("item")
        lazy.generate_table("store")
        assert lazy.generate_table("store_returns") == eager_returns

    def test_generate_all_covers_every_table(self, generator):
        dataset = generator.generate_all()
        assert len(dataset.tables) == 24
        assert dataset.row_counts()["warehouse"] == 5

    def test_unknown_table_rejected(self, generator):
        with pytest.raises(KeyError):
            generator.generate_table("nope")


class TestRowShape:
    def test_rows_match_schema_columns(self, generator):
        for table_name in ("store_sales", "date_dim", "customer", "web_sales"):
            schema = table_schema(table_name)
            row = generator.generate_table(table_name)[0]
            assert set(row) == set(schema.column_names)

    def test_surrogate_keys_are_sequential(self, generator):
        items = generator.generate_table("item")
        assert [row["i_item_sk"] for row in items] == list(range(1, len(items) + 1))

    def test_date_dim_is_contiguous_calendar(self, generator):
        dates = generator.generate_table("date_dim")
        assert dates[0]["d_date"] == "1998-01-01"
        assert dates[-1]["d_date"] == "2003-12-31"
        keys = [row["d_date_sk"] for row in dates]
        assert keys == list(range(keys[0], keys[0] + len(keys)))

    def test_date_dim_weekend_flags(self, generator):
        dates = generator.generate_table("date_dim")
        # 1998-01-04 is a Sunday -> d_dow == 0 in the TPC-DS convention.
        sunday = next(row for row in dates if row["d_date"] == "1998-01-04")
        assert sunday["d_dow"] == 0
        saturday = next(row for row in dates if row["d_date"] == "1998-01-03")
        assert saturday["d_dow"] == 6


class TestReferentialIntegrity:
    def test_store_sales_foreign_keys_resolve(self, generator):
        sales = generator.generate_table("store_sales")
        item_keys = {row["i_item_sk"] for row in generator.generate_table("item")}
        store_keys = {row["s_store_sk"] for row in generator.generate_table("store")}
        date_keys = {row["d_date_sk"] for row in generator.generate_table("date_dim")}
        for sale in sales:
            assert sale["ss_item_sk"] in item_keys
            assert sale["ss_store_sk"] in store_keys
            assert sale["ss_sold_date_sk"] in date_keys

    def test_store_returns_reference_existing_sales(self, generator):
        sales_keys = {
            (row["ss_ticket_number"], row["ss_item_sk"], row["ss_customer_sk"])
            for row in generator.generate_table("store_sales")
        }
        for return_row in generator.generate_table("store_returns"):
            key = (
                return_row["sr_ticket_number"],
                return_row["sr_item_sk"],
                return_row["sr_customer_sk"],
            )
            assert key in sales_keys

    def test_returns_happen_after_sales(self, generator):
        sales_by_key = {
            (row["ss_ticket_number"], row["ss_item_sk"]): row["ss_sold_date_sk"]
            for row in generator.generate_table("store_sales")
        }
        for return_row in generator.generate_table("store_returns"):
            sold = sales_by_key[(return_row["sr_ticket_number"], return_row["sr_item_sk"])]
            assert return_row["sr_returned_date_sk"] >= sold

    def test_inventory_references_items_and_warehouses(self, generator):
        item_count = len(generator.generate_table("item"))
        warehouse_count = len(generator.generate_table("warehouse"))
        for row in generator.generate_table("inventory")[:500]:
            assert 1 <= row["inv_item_sk"] <= item_count
            assert 1 <= row["inv_warehouse_sk"] <= warehouse_count


class TestQueryPredicateCoverage:
    """The query predicates must select non-empty, non-trivial fractions."""

    @pytest.fixture(scope="class")
    def small_generator(self):
        return TPCDSGenerator(SCALE_SMALL, seed=20151109)

    def test_q7_demographic_bucket_exists(self, small_generator):
        demographics = small_generator.generate_table("customer_demographics")
        bucket = [
            row
            for row in demographics
            if row["cd_gender"] == "M"
            and row["cd_marital_status"] == "M"
            and row["cd_education_status"] == "4 yr Degree"
        ]
        assert bucket, "Q7's demographic bucket must exist"

    def test_q7_sales_exist_in_2001(self, small_generator):
        dates_2001 = {
            row["d_date_sk"]
            for row in small_generator.generate_table("date_dim")
            if row["d_year"] == 2001
        }
        sales = small_generator.generate_table("store_sales")
        fraction = sum(1 for s in sales if s["ss_sold_date_sk"] in dates_2001) / len(sales)
        assert 0.05 < fraction < 0.4

    def test_q21_price_band_has_items(self, small_generator):
        items = small_generator.generate_table("item")
        in_band = [row for row in items if 0.99 <= row["i_current_price"] <= 1.49]
        assert in_band

    def test_q46_cities_present_in_stores(self, small_generator):
        cities = {row["s_city"] for row in small_generator.generate_table("store")}
        assert {"Midway", "Fairview"} & cities

    def test_q50_october_1998_returns_exist(self, small_generator):
        october_dates = {
            row["d_date_sk"]
            for row in small_generator.generate_table("date_dim")
            if row["d_year"] == 1998 and row["d_moy"] == 10
        }
        returns = small_generator.generate_table("store_returns")
        assert any(row["sr_returned_date_sk"] in october_dates for row in returns)

    def test_promotions_mostly_off_email_and_event_channels(self, small_generator):
        promotions = small_generator.generate_table("promotion")
        matching = [
            row
            for row in promotions
            if row["p_channel_email"] == "N" or row["p_channel_event"] == "N"
        ]
        assert len(matching) / len(promotions) > 0.8
