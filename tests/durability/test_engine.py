"""Storage-engine behaviour: restart fidelity, checkpoints, fsync policies.

These are the non-crash tests — a clean close / reopen must restore every
acknowledged write, checkpoints must compact the log without losing
anything, and the durability counters must reflect the configured policy.
"""

from __future__ import annotations

import warnings

import pytest

import faults
from repro.documentstore import (
    DocumentStoreClient,
    OperationFailure,
    RecoveryError,
    dump_collection,
    load_collection,
)
from repro.documentstore.recovery import snapshot_path, wal_path


def make_client(tmp_path, **kwargs):
    return DocumentStoreClient(data_dir=tmp_path / "data", **kwargs)


class TestRestartFidelity:
    def test_all_write_shapes_survive_restart(self, tmp_path):
        with make_client(tmp_path, fsync="always") as client:
            people = client.db.people
            people.insert_many([{"_id": i, "n": i, "tags": [i, i + 1]} for i in range(20)])
            people.insert_one({"_id": 100, "n": 100})
            people.create_index([("n", 1)], name="by_n")
            people.update_many({"n": {"$lt": 5}}, {"$set": {"small": True}})
            people.update_one({"_id": 100}, {"$inc": {"n": 1}})
            people.replace_one({"_id": 19}, {"replaced": True})
            people.delete_many({"n": {"$gte": 15, "$lt": 18}})
            people.update_one(
                {"_id": "up"}, {"$set": {"via": "upsert"}}, upsert=True
            )
            expected = sorted(people.find(), key=lambda d: str(d["_id"]))

        with make_client(tmp_path) as client:
            people = client.db.people
            recovered = sorted(people.find(), key=lambda d: str(d["_id"]))
            assert recovered == expected
            assert "by_n" in people.index_information()

    def test_drop_collection_and_database_survive_restart(self, tmp_path):
        with make_client(tmp_path, fsync="always") as client:
            client.db.keep.insert_one({"_id": 1})
            client.db.gone.insert_one({"_id": 1})
            client.db.drop_collection("gone")
            client.other.c.insert_one({"_id": 1})
            client.drop_database("other")

        with make_client(tmp_path) as client:
            assert client.db.list_collection_names() == ["keep"]
            assert "other" not in client.list_database_names()

    def test_unique_index_constraint_survives_restart(self, tmp_path):
        from repro.documentstore import DuplicateKeyError

        with make_client(tmp_path, fsync="always") as client:
            client.db.c.create_index([("email", 1)], unique=True)
            client.db.c.insert_one({"email": "a@x"})

        with make_client(tmp_path) as client:
            with pytest.raises(DuplicateKeyError):
                client.db.c.insert_one({"email": "a@x"})


class TestCheckpoint:
    def test_checkpoint_compacts_and_preserves(self, tmp_path):
        with make_client(tmp_path, fsync="always") as client:
            client.db.c.insert_many([{"_id": i} for i in range(500)])
            data_dir = client.engine.data_dir
            wal_before = wal_path(data_dir, 0).stat().st_size
            generation = client.checkpoint()
            assert generation == 1
            # Old generation's files are gone, new WAL starts empty.
            assert not wal_path(data_dir, 0).exists()
            assert snapshot_path(data_dir, 1).exists()
            assert wal_path(data_dir, 1).stat().st_size == 0
            assert wal_before > 0
            client.db.c.insert_many([{"_id": 500 + i} for i in range(10)])

        with make_client(tmp_path) as client:
            assert client.db.c.count_documents({}) == 510
            report = client.engine.recovery_report
            assert report.snapshot_documents == 500
            assert report.records_replayed == 1  # only the post-checkpoint batch

    def test_auto_checkpoint_triggers_on_wal_growth(self, tmp_path):
        with make_client(tmp_path, fsync="off", auto_checkpoint_bytes=20_000) as client:
            for start in range(0, 2000, 100):
                client.db.c.insert_many([{"_id": start + i, "pad": "x" * 40} for i in range(100)])
            assert client.engine.checkpoints >= 1
            assert client.engine.generation >= 1

        with make_client(tmp_path) as client:
            assert client.db.c.count_documents({}) == 2000

    def test_repeated_checkpoints_keep_single_generation(self, tmp_path):
        with make_client(tmp_path) as client:
            for round_number in range(3):
                client.db.c.insert_one({"round": round_number})
                client.checkpoint()
            files = sorted(p.name for p in client.engine.data_dir.iterdir())
            assert files == ["snapshot-00000003.snap", "wal-00000003.log"]


class TestFsyncPolicies:
    def test_always_fsyncs_every_append(self, tmp_path):
        with make_client(tmp_path, fsync="always") as client:
            for i in range(5):
                client.db.c.insert_one({"_id": i})
            counters = client.engine.counters
            assert counters.records_appended == 5
            assert counters.fsync_calls >= 5
            assert counters.bytes_fsynced == counters.bytes_appended

    def test_batch_group_commits(self, tmp_path):
        with make_client(tmp_path, fsync="batch", batch_fsync_every=10) as client:
            for i in range(25):
                client.db.c.insert_one({"_id": i})
            counters = client.engine.counters
            assert counters.records_appended == 25
            assert counters.fsync_calls == 2  # at 10 and 20
            client.flush_durability()
            assert counters.bytes_fsynced == counters.bytes_appended

    def test_off_never_fsyncs_until_flush(self, tmp_path):
        with make_client(tmp_path, fsync="off") as client:
            for i in range(25):
                client.db.c.insert_one({"_id": i})
            assert client.engine.counters.fsync_calls == 0
            client.flush_durability()
            assert client.engine.counters.fsync_calls == 1

    def test_invalid_policy_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            make_client(tmp_path, fsync="sometimes")


class TestStatusSurface:
    def test_status_reports_counters_and_recovery(self, tmp_path):
        with make_client(tmp_path, fsync="always") as client:
            client.db.c.insert_many([{"_id": i} for i in range(7)])
        with make_client(tmp_path) as client:
            status = client.durability_status()
            assert status["active"] is True
            assert status["fsync_policy"] == "batch"
            assert status["recovery"]["records_replayed"] == 1
            assert status["recovery"]["replay_seconds"] >= 0
            assert status["wal"]["active"] is True

    def test_in_memory_client_reports_inactive(self):
        client = DocumentStoreClient()
        assert client.durability_status() == {"active": False}
        assert client.checkpoint() is None
        client.flush_durability()  # no-op, must not raise


class TestCorruptSnapshotRefused:
    def test_bit_rotted_snapshot_raises_instead_of_silently_losing_data(self, tmp_path):
        with make_client(tmp_path) as client:
            client.db.c.insert_many([{"_id": i} for i in range(50)])
            client.checkpoint()
            snapshot = snapshot_path(client.engine.data_dir, 1)
        faults.flip_byte(snapshot, snapshot.stat().st_size // 2)
        with pytest.raises(RecoveryError):
            make_client(tmp_path)


class TestAtomicDumpsAndTolerantLoads:
    def test_dump_leaves_no_temp_and_loads_back(self, tmp_path):
        client = DocumentStoreClient()
        client.db.c.insert_many([{"_id": i, "n": i} for i in range(10)])
        target = tmp_path / "dump.jsonl"
        assert dump_collection(client.db.c, target) == 10
        assert not list(tmp_path.glob("*.tmp"))
        fresh = DocumentStoreClient()
        assert load_collection(fresh.db.c, target) == 10
        assert fresh.db.c.count_documents({}) == 10

    def test_torn_tail_line_is_skipped_with_warning(self, tmp_path):
        client = DocumentStoreClient()
        client.db.c.insert_many([{"_id": i} for i in range(5)])
        target = tmp_path / "dump.jsonl"
        dump_collection(client.db.c, target)
        # Tear the last line the way a crashed appender would.
        data = target.read_bytes()
        target.write_bytes(data[: len(data) - 8])
        fresh = DocumentStoreClient()
        with pytest.warns(UserWarning, match="torn tail"):
            loaded = load_collection(fresh.db.c, target)
        assert loaded == 4

    def test_mid_file_corruption_still_raises(self, tmp_path):
        client = DocumentStoreClient()
        client.db.c.insert_many([{"_id": i} for i in range(5)])
        target = tmp_path / "dump.jsonl"
        dump_collection(client.db.c, target)
        lines = target.read_bytes().splitlines(keepends=True)
        lines[1] = b"{definitely not json\n"
        target.write_bytes(b"".join(lines))
        fresh = DocumentStoreClient()
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # no warning allowed on this path
            with pytest.raises(OperationFailure, match="mid-file"):
                load_collection(fresh.db.c, target)
