"""Crash recovery under an exhaustively enumerated crash schedule.

The workload below performs a fixed sequence of acknowledged write
operations (inserts, updates, deletes, an index build, and a checkpoint)
against a durable client whose filesystem is a :class:`faults.FaultyFS`.
Every state-changing filesystem operation the workload performs is a crash
point; the schedule kills the run at each of them, in each crash phase, and
for each unsynced-tail survival mode.

The correctness property is exact: with ``fsync="always"`` every
acknowledged operation is durable before its call returns, and every WAL
record carries one whole operation — so the recovered store must equal the
state after the last acknowledged operation, or (when the crash interrupted
the logging of an already-applied in-flight operation whose record
nevertheless reached disk intact) the state one operation later.  Nothing
in between, nothing invented: no lost acks, no ghost writes.

A crash *after* operation *i* leaves the same disk state as a crash
*before* operation *i+1* — the schedule therefore enumerates the
``"before"`` and ``"partial"`` phases over every index, which covers the
``"after"`` states implicitly.
"""

from __future__ import annotations

import pytest

import faults
from repro.documentstore import DocumentStoreClient
from repro.documentstore.storage import StorageEngine

# --------------------------------------------------------------------------
# The workload: a fixed, deterministic operation sequence.
# --------------------------------------------------------------------------


def op_insert_first(client):
    client.db.c.insert_many([{"_id": i, "n": i} for i in range(8)])


def op_create_index(client):
    client.db.c.create_index([("n", 1)], name="by_n")


def op_update(client):
    client.db.c.update_many({"n": {"$lt": 4}}, {"$set": {"flag": True}})


def op_checkpoint(client):
    client.checkpoint()


def op_delete(client):
    client.db.c.delete_many({"n": {"$gte": 6}})


def op_insert_second(client):
    client.db.c.insert_many([{"_id": 100 + i, "n": 100 + i} for i in range(4)])


OPERATIONS = [
    op_insert_first,
    op_create_index,
    op_update,
    op_checkpoint,
    op_delete,
    op_insert_second,
]


def store_state(client) -> dict:
    """Canonical store contents: namespace -> {_id: document}."""
    state = {}
    for database in client:
        for collection in database:
            documents = {doc["_id"]: doc for doc in collection.find()}
            state[(database.name, collection.name)] = {
                "documents": documents,
                "indexes": sorted(collection.index_information()),
            }
    return state


def expected_states() -> list[dict]:
    """State after 0, 1, ... len(OPERATIONS) acknowledged operations."""
    client = DocumentStoreClient()
    states = [store_state(client)]
    for operation in OPERATIONS:
        operation(client)
        states.append(store_state(client))
    return states


def run_workload(data_dir, fs, completed: list[int]) -> None:
    """Run the operation sequence durably; track acknowledged op count."""
    engine = StorageEngine(
        data_dir, fsync="always", auto_checkpoint_bytes=None, fs=fs
    )
    client = DocumentStoreClient(storage_engine=engine)
    for index, operation in enumerate(OPERATIONS):
        operation(client)
        completed[0] = index + 1
    client.close()


# --------------------------------------------------------------------------
# The schedule.
# --------------------------------------------------------------------------


def _schedule() -> list[faults.CrashPoint]:
    import pathlib
    import tempfile

    with tempfile.TemporaryDirectory() as scratch:
        count = faults.count_operations(
            lambda fs: run_workload(
                pathlib.Path(scratch) / "data", fs, completed=[0]
            )
        )
    return list(faults.enumerate_crash_points(count, phases=("before", "partial")))


def pytest_generate_tests(metafunc):
    if "crash_point" in metafunc.fixturenames:
        points = _schedule()
        metafunc.parametrize(
            "crash_point", points, ids=[str(point) for point in points]
        )


class TestEnumeratedCrashSchedule:
    def test_recovery_restores_exactly_the_acknowledged_prefix(
        self, crash_point, tmp_path
    ):
        data_dir = tmp_path / "data"
        states = expected_states()
        completed = [0]
        fs = faults.FaultyFS(crash_point)
        with pytest.raises(faults.SimulatedCrash):
            run_workload(data_dir, fs, completed)
        assert fs.dead

        recovered_client = DocumentStoreClient(data_dir=data_dir)
        recovered = store_state(recovered_client)
        acked = completed[0]
        # Acked state at minimum; at most one in-flight op may also have
        # reached disk whole before the crash.
        allowed = states[acked : min(acked + 2, len(states))]
        assert recovered in allowed, (
            f"crash at {crash_point} after {acked} acked ops recovered a "
            f"state matching none of the allowed prefixes"
        )
        # The reopened directory must be healthy: clean log, writable store.
        recovered_client.db.c.insert_one({"_id": "post-recovery"})
        recovered_client.close()

        final_client = DocumentStoreClient(data_dir=data_dir)
        assert (
            final_client.db.c.find_one({"_id": "post-recovery"}) is not None
        )
        final_client.close()


class TestNoCrashBaseline:
    def test_workload_without_crash_reaches_final_state(self, tmp_path):
        data_dir = tmp_path / "data"
        completed = [0]
        run_workload(data_dir, faults.FaultyFS(None), completed)
        assert completed[0] == len(OPERATIONS)
        client = DocumentStoreClient(data_dir=data_dir)
        assert store_state(client) == expected_states()[-1]
        client.close()


class TestShardedClusterRecovery:
    """Per-shard WALs: each shard recovers independently, routing survives."""

    def test_acked_writes_survive_abandoned_cluster(self, tmp_path):
        from repro.documentstore.wal import encode_record
        from repro.sharding.cluster import ShardedCluster

        data_dir = tmp_path / "cluster"
        cluster = ShardedCluster(3, data_dir=data_dir, fsync="always")
        cluster.shard_collection("db", "people", {"uid": "hashed"})
        cluster["db"].people.insert_many([{"uid": i, "n": i} for i in range(60)])
        cluster["db"].people.update_many({"uid": {"$lt": 10}}, {"$set": {"f": 1}})
        distribution = cluster.data_distribution("db", "people")
        assert sum(distribution.values()) == 60
        # SIGKILL model: abandon without close().  fsync="always" means every
        # acknowledged batch is already on disk; then tear each shard's WAL
        # tail the way a crash mid-append would.
        cluster.router.close()
        half_record = encode_record(b"garbage" * 8)
        for shard in cluster.shards:
            log = shard.engine.wal.path
            with open(log, "ab") as handle:
                handle.write(half_record[: len(half_record) // 2])

        reopened = ShardedCluster(3, data_dir=data_dir)
        assert reopened.config_server.is_sharded("db", "people")
        assert reopened.data_distribution("db", "people") == distribution
        assert reopened["db"].people.count_documents({"f": 1}) == 10
        for shard in reopened.shards:
            assert shard.engine.recovery_report.tail_state == "torn"
        # The reopened cluster keeps working and routing.
        reopened["db"].people.insert_many([{"uid": 100 + i} for i in range(12)])
        assert reopened["db"].people.count_documents({}) == 72
        reopened.close()

        final = ShardedCluster(3, data_dir=data_dir)
        assert final["db"].people.count_documents({}) == 72
        final.close()

    def test_topology_mismatch_is_refused(self, tmp_path):
        from repro.documentstore.errors import ShardingError
        from repro.sharding.cluster import ShardedCluster

        data_dir = tmp_path / "cluster"
        cluster = ShardedCluster(3, data_dir=data_dir)
        cluster.shard_collection("db", "c", "k")
        cluster.close()
        with pytest.raises(ShardingError):
            ShardedCluster(2, data_dir=data_dir)


class TestByteLevelDamage:
    def test_torn_wal_tail_is_truncated_and_prefix_survives(self, tmp_path):
        from repro.documentstore.recovery import wal_path
        from repro.documentstore.wal import encode_record

        data_dir = tmp_path / "data"
        with DocumentStoreClient(data_dir=data_dir, fsync="always") as client:
            client.db.c.insert_many([{"_id": i} for i in range(10)])
        # A crash mid-append leaves half a record at the tail.
        log = wal_path(data_dir, 0)
        record = encode_record(b"x" * 64)
        with open(log, "ab") as handle:
            handle.write(record[: len(record) // 2])

        client = DocumentStoreClient(data_dir=data_dir)
        report = client.engine.recovery_report
        assert report.tail_state == "torn"
        assert report.torn_bytes_truncated == len(record) // 2
        assert client.db.c.count_documents({}) == 10
        client.close()

    def test_bit_flipped_wal_tail_is_dropped_and_prefix_survives(self, tmp_path):
        from repro.documentstore.recovery import wal_path

        data_dir = tmp_path / "data"
        with DocumentStoreClient(data_dir=data_dir, fsync="always") as client:
            client.db.c.insert_many([{"_id": i} for i in range(5)])
            client.db.c.insert_many([{"_id": 100 + i} for i in range(5)])
        log = wal_path(data_dir, 0)
        size = log.stat().st_size
        faults.flip_byte(log, size - 10)

        client = DocumentStoreClient(data_dir=data_dir)
        report = client.engine.recovery_report
        assert report.tail_state == "corrupt"
        # The damaged record (and only it) is gone; the first batch survives.
        assert client.db.c.count_documents({"_id": {"$lt": 100}}) == 5
        assert client.db.c.count_documents({"_id": {"$gte": 100}}) == 0
        client.close()
