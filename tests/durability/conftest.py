"""Make the fault-injection helpers importable as ``import faults``."""

import pathlib
import sys

_HERE = str(pathlib.Path(__file__).resolve().parent)
if _HERE not in sys.path:
    sys.path.insert(0, _HERE)
